"""Tests for sampling, splitter selection and bucket computation (Section V-A)."""

import pytest

from repro.dist.partition import (
    bucket_boundaries,
    bucket_sizes_upper_bound_chars,
    bucket_sizes_upper_bound_strings,
    character_based_samples,
    select_splitters,
    split_into_buckets,
    string_based_samples,
)
from repro.strings.generators import dn_instance, random_strings, skewed_dn_instance
from repro.strings.lcp import lcp_array


class TestStringBasedSamples:
    def test_number_of_samples(self):
        data = sorted(random_strings(100, 1, 5, seed=1))
        assert len(string_based_samples(data, 7)) == 7

    def test_samples_are_sorted_and_members(self):
        data = sorted(random_strings(200, 1, 5, seed=2))
        samples = string_based_samples(data, 10)
        assert samples == sorted(samples)
        assert all(s in data for s in samples)

    def test_evenly_spaced(self):
        data = [bytes([97 + i // 10, 97 + i % 10]) for i in range(100)]
        samples = string_based_samples(data, 4)
        # omega = 20: indices ~ 19, 39, 59, 79
        assert samples == [data[19], data[39], data[59], data[79]]

    def test_degenerate_inputs(self):
        assert string_based_samples([], 5) == []
        assert string_based_samples([b"x"], 0) == []
        assert string_based_samples([b"x"], 3) == [b"x"] * 3


class TestCharacterBasedSamples:
    def test_number_of_samples(self):
        data = sorted(random_strings(100, 1, 20, seed=3))
        assert len(character_based_samples(data, 6)) == 6

    def test_long_strings_attract_samples(self):
        # one huge string among tiny ones: character-based sampling must pick
        # strings near it, string-based sampling spreads uniformly
        data = [b"a" * 2] * 50 + [b"b" * 5000] + [b"c" * 2] * 50
        samples = character_based_samples(data, 5)
        assert b"b" * 5000 in samples

    def test_custom_weights(self):
        data = [b"aa", b"bb", b"cc", b"dd"]
        # all weight on the last string
        samples = character_based_samples(data, 3, weights=[0, 0, 0, 100])
        assert samples == [b"dd"] * 3

    def test_zero_weights_fall_back_to_string_sampling(self):
        data = [b"aa", b"bb", b"cc"]
        assert character_based_samples(data, 2, weights=[0, 0, 0]) == string_based_samples(data, 2)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            character_based_samples([b"a"], 2, weights=[1, 2])


class TestSelectSplitters:
    def test_count_and_membership(self):
        sample = sorted(random_strings(60, 1, 4, seed=4))
        splitters = select_splitters(sample, 5)
        assert len(splitters) == 4
        assert splitters == sorted(splitters)
        assert all(s in sample for s in splitters)

    def test_single_part_needs_no_splitters(self):
        assert select_splitters([b"a", b"b"], 1) == []

    def test_empty_sample(self):
        assert select_splitters([], 4) == []


class TestBucketBoundaries:
    def test_semantics_of_boundaries(self):
        data = sorted([b"a", b"b", b"c", b"d", b"e", b"f"])
        splitters = [b"b", b"d"]
        bounds = bucket_boundaries(data, splitters)
        assert bounds == [0, 2, 4, 6]
        # bucket j = (f_{j-1}, f_j]
        assert data[bounds[0]:bounds[1]] == [b"a", b"b"]
        assert data[bounds[1]:bounds[2]] == [b"c", b"d"]
        assert data[bounds[2]:bounds[3]] == [b"e", b"f"]

    def test_duplicates_go_to_lower_bucket(self):
        data = [b"m"] * 10
        bounds = bucket_boundaries(data, [b"m"])
        assert bounds == [0, 10, 10]

    def test_splitter_smaller_than_everything(self):
        data = [b"x", b"y"]
        assert bucket_boundaries(data, [b"a"]) == [0, 0, 2]

    def test_unsorted_splitters_rejected(self):
        with pytest.raises(ValueError):
            bucket_boundaries([b"a", b"b"], [b"z", b"a"])


class TestSplitIntoBuckets:
    def test_buckets_cover_input_and_keep_lcps(self):
        data = sorted(dn_instance(120, 0.4, length=30, seed=5))
        lcps = lcp_array(data)
        splitters = select_splitters(string_based_samples(data, 12), 4)
        buckets = split_into_buckets(data, lcps, splitters)
        assert len(buckets) == 4
        assert [s for strs, _ in buckets for s in strs] == data
        for strs, blcps in buckets:
            assert len(strs) == len(blcps)
            if blcps:
                assert blcps[0] == 0
                assert blcps == lcp_array(strs) or blcps[1:] == lcp_array(strs)[1:]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            split_into_buckets([b"a"], [0, 0], [])


class TestTheoremBounds:
    """Theorems 2 and 3: regular sampling bounds the bucket sizes."""

    def test_theorem2_string_bound_holds(self):
        # simulate p local arrays, sample each, merge samples, check buckets
        p, v = 4, 8
        blocks = [sorted(random_strings(250, 1, 12, seed=10 + i)) for i in range(p)]
        sample = sorted(
            s for blk in blocks for s in string_based_samples(blk, v)
        )
        splitters = select_splitters(sample, p)
        n = sum(len(b) for b in blocks)
        bound = bucket_sizes_upper_bound_strings(n, p, v)
        for j in range(p):
            bucket_size = 0
            for blk in blocks:
                bounds = bucket_boundaries(blk, splitters)
                bucket_size += bounds[j + 1] - bounds[j]
            assert bucket_size <= bound + p  # +p slack for rounding of sample indices

    def test_theorem3_character_bound_holds(self):
        p, v = 4, 8
        blocks = [
            sorted(skewed_dn_instance(200, 0.5, length=40, seed=20 + i))
            for i in range(p)
        ]
        sample = sorted(
            s for blk in blocks for s in character_based_samples(blk, v)
        )
        splitters = select_splitters(sample, p)
        total_chars = sum(len(s) for blk in blocks for s in blk)
        max_len = max(len(s) for blk in blocks for s in blk)
        bound = bucket_sizes_upper_bound_chars(total_chars, p, v, max_len)
        for j in range(p):
            bucket_chars = 0
            for blk in blocks:
                bounds = bucket_boundaries(blk, splitters)
                bucket_chars += sum(len(s) for s in blk[bounds[j] : bounds[j + 1]])
            assert bucket_chars <= bound + p * max_len  # rounding slack

    def test_bound_helpers_validate_arguments(self):
        with pytest.raises(ValueError):
            bucket_sizes_upper_bound_strings(10, 0, 1)
        with pytest.raises(ValueError):
            bucket_sizes_upper_bound_chars(10, 1, 0, 5)
