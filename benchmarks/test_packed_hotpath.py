"""Micro-benchmark of the packed (vectorized) hot path — end-to-end (PR 6).

Measures, stage by stage, one PE's share of a large distributed sort with
the packed representation carried end-to-end (sort → exchange → merge):

* ``sort``       — local sort of the unsorted block (vectorized
  ``np.argsort``/``np.lexsort`` key sort vs the scalar MSD radix
  recursion; packing cost charged to the packed side);
* ``lcp``        — LCP array of the locally sorted run (packing included);
* ``partition``  — cutting the run into per-destination buckets;
* ``encode``     — LCP front coding of every bucket;
* ``wire``       — varint/payload wire-byte accounting of every block;
* ``decode``     — yielding the received runs to the merge
  (``decode_run()``: a packed run crosses the exchange boundary with *no*
  per-string materialization, where the scalar path rebuilds a
  ``list[bytes]``);
* ``merge``      — multiway LCP merge of the received runs (batched
  segment emission into a packed output vs the per-string loser tree).

Each stage runs twice: once over ``list[bytes]`` with the scalar code
(``use_packed(False)``) and once over :class:`PackedStringArray` with the
vectorized kernels.  The acceptance gates assert the exchange aggregate
(lcp + partition + encode + wire + decode, the same stages the PR 2
trajectory gated) is **≥ 5× faster**, the full end-to-end aggregate with
the new sort and merge stages is **≥ 3× faster**, and every stage clears
its own floor (see ``STAGE_FLOORS`` — notably ``decode ≥ 3×``, up from
the ~1.05× the PR 2 materializing decode was stuck at).  Crucially, wire
bytes, decoded runs and merged output must be bit-identical.  A second
test pins byte-identical sorted output and traffic across all six
``dsort`` algorithms with the packed path on and off.

Results (strings/second per stage plus peak RSS) are written to
``BENCH_PR6.json`` so future PRs have a trajectory to regress against; the
CI perf-smoke job runs exactly this module and archives the JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import scaled
from repro.bench.harness import peak_rss_bytes
from repro.dist.api import ALGORITHMS, dsort
from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.dist.partition import split_into_buckets, string_based_samples, select_splitters
from repro.sequential import sort_strings_with_lcp
from repro.sequential.lcp_losertree import lcp_multiway_merge, lcp_multiway_merge_packed
from repro.sequential.msd_radix import msd_radix_sort
from repro.strings.generators import commoncrawl_like, dn_instance
from repro.strings.lcp import lcp
from repro.strings.packed import (
    PackedStringArray,
    packed_lcp_array,
    use_packed,
)

# the ROADMAP's target scale: one PE's share of a large exchange
NUM_STRINGS = scaled(100_000, minimum=20_000)
NUM_DESTINATIONS = 8
SPEEDUP_GATE = 5.0
END_TO_END_GATE = 3.0

# the PR 2 trajectory's aggregate: the exchange stages only (sort and
# merge were added in PR 6 and get their own end-to-end aggregate — the
# sort stage moves the most absolute data, so folding it into the old
# aggregate would redefine what the 5x gate measures)
_EXCHANGE_STAGES = ("lcp", "partition", "encode", "wire", "decode")

# per-stage regression floors (speedup of packed over scalar).  ``decode``
# is the PR 6 tentpole: ``decode_run()`` hands the merge a packed run
# without materializing strings, where PR 2's ``decode()``-both-sides
# measurement was pinned at ~1.05x.  ``sort`` is bounded by key-column
# construction on this corpus (long strings -> lexsort fallback), so its
# floor is modest.
STAGE_FLOORS = {
    "sort": 1.3,
    "lcp": 2.5,
    "partition": 2.5,
    "encode": 2.5,
    "decode": 3.0,
    "merge": 4.0,
}

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def _scalar_lcp_array(strings):
    out = [0] * len(strings)
    for i in range(1, len(strings)):
        out[i] = lcp(strings[i - 1], strings[i])
    return out


def _timed(fn, reps=4):
    """Best-of-``reps`` wall time (first runs pay page-fault warmup)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def local_run():
    """One PE's unsorted block, its sorted run, and splitters."""
    corpus = commoncrawl_like(NUM_STRINGS, seed=11)
    srt, lcps = sort_strings_with_lcp(corpus)
    samples = string_based_samples(srt, 16 * NUM_DESTINATIONS)
    splitters = select_splitters(sorted(samples), NUM_DESTINATIONS)
    return corpus, srt, lcps, splitters


def _measure_pipelines(corpus, srt, splitters):
    """One measurement pass: per-stage best-of-reps times for both paths."""
    # -- scalar pipeline (the pre-packed code path) ----------------------------
    with use_packed(False):
        t_sort_s, (sorted_s, sort_lcps_s) = _timed(
            lambda: sort_strings_with_lcp(corpus)
        )
        t_lcp_s, h_s = _timed(lambda: _scalar_lcp_array(srt))
        t_part_s, buckets_s = _timed(lambda: split_into_buckets(srt, h_s, splitters))
        t_enc_s, blocks_s = _timed(
            lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets_s]
        )
        t_wire_s, wires_s = _timed(lambda: [b.wire_bytes() for b in blocks_s])
        t_dec_s, decoded_s = _timed(lambda: [b.decode() for b in blocks_s])
        runs_s = [run for run, _ in decoded_s]
        run_lcps_s = [hs for _, hs in decoded_s]
        t_mrg_s, (merged_s, merged_lcps_s) = _timed(
            lambda: lcp_multiway_merge(runs_s, run_lcps_s)
        )

    # -- packed pipeline (packing cost charged to sort / lcp) ------------------
    with use_packed(True):
        t_sort_p, (sorted_p, sort_lcps_p) = _timed(
            lambda: msd_radix_sort(PackedStringArray.from_strings(corpus))
        )

    def packed_lcp():
        arr = PackedStringArray.from_strings(srt)
        return arr, packed_lcp_array(arr)

    t_lcp_p, (arr, h_p) = _timed(packed_lcp)
    t_part_p, buckets_p = _timed(lambda: split_into_buckets(arr, h_p, splitters))
    t_enc_p, blocks_p = _timed(
        lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets_p]
    )
    t_wire_p, wires_p = _timed(lambda: [b.wire_bytes() for b in blocks_p])
    t_dec_p, decoded_p = _timed(lambda: [b.decode_run() for b in blocks_p])
    runs_p = [run for run, _ in decoded_p]
    run_lcps_p = [np.asarray(hs, dtype=np.int64) for _, hs in decoded_p]
    t_mrg_p, (merged_p, merged_lcps_p) = _timed(
        lambda: lcp_multiway_merge_packed(runs_p, run_lcps_p)
    )

    # -- identity: the packed path must change nothing but the speed ----------
    assert sorted_p.to_list() == sorted_s
    assert sort_lcps_p.tolist() == sort_lcps_s
    assert h_p.tolist() == h_s
    assert wires_p == wires_s
    assert [s for run in runs_p for s in run] == [s for run in runs_s for s in run]
    assert [int(h) for hs in run_lcps_p for h in hs] == [
        h for hs in run_lcps_s for h in hs
    ]
    assert merged_p.to_list() == merged_s
    assert merged_lcps_p.tolist() == merged_lcps_s

    scalar_times = {
        "sort": t_sort_s,
        "lcp": t_lcp_s,
        "partition": t_part_s,
        "encode": t_enc_s,
        "wire": t_wire_s,
        "decode": t_dec_s,
        "merge": t_mrg_s,
    }
    packed_times = {
        "sort": t_sort_p,
        "lcp": t_lcp_p,
        "partition": t_part_p,
        "encode": t_enc_p,
        "wire": t_wire_p,
        "decode": t_dec_p,
        "merge": t_mrg_p,
    }
    return scalar_times, packed_times


def test_packed_exchange_hotpath_speedup(local_run):
    corpus, srt, lcps, splitters = local_run
    n = len(srt)
    stages = {}

    # wall-clock gates flake under noisy-neighbour CPU contention; keep the
    # best of a few attempts (each stage is already best-of-reps inside)
    def _exchange_ratio(scalar_times, packed_times):
        return sum(scalar_times[s] for s in _EXCHANGE_STAGES) / sum(
            packed_times[s] for s in _EXCHANGE_STAGES
        )

    best = None
    for attempt in range(3):
        scalar_times, packed_times = _measure_pipelines(corpus, srt, splitters)
        ratio = _exchange_ratio(scalar_times, packed_times)
        floors_ok = all(
            scalar_times[s] / packed_times[s] >= floor * 1.1
            for s, floor in STAGE_FLOORS.items()
        )
        if best is None or ratio > best[0]:
            best = (ratio, scalar_times, packed_times)
        if best[0] >= SPEEDUP_GATE * 1.1 and floors_ok:
            break
    _, scalar_times, packed_times = best
    for stage in scalar_times:
        s, p = scalar_times[stage], packed_times[stage]
        stages[stage] = {
            "scalar_seconds": round(s, 6),
            "packed_seconds": round(p, 6),
            "scalar_strings_per_sec": round(n / s) if s > 0 else None,
            "packed_strings_per_sec": round(n / p) if p > 0 else None,
            "speedup": round(s / p, 2) if p > 0 else None,
            "floor": STAGE_FLOORS.get(stage),
        }

    exch_s = sum(scalar_times[s] for s in _EXCHANGE_STAGES)
    exch_p = sum(packed_times[s] for s in _EXCHANGE_STAGES)
    speedup = exch_s / exch_p
    total_s = sum(scalar_times.values())
    total_p = sum(packed_times.values())
    e2e_speedup = total_s / total_p
    payload = {
        "benchmark": "packed end-to-end hot path (one PE: sort, exchange, merge)",
        "num_strings": n,
        "num_destinations": NUM_DESTINATIONS,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "stages": stages,
        "aggregate": {
            "scalar_seconds": round(exch_s, 6),
            "packed_seconds": round(exch_p, 6),
            "scalar_strings_per_sec": round(n / exch_s),
            "packed_strings_per_sec": round(n / exch_p),
            "speedup": round(speedup, 2),
            "gate": SPEEDUP_GATE,
            "stages": list(_EXCHANGE_STAGES),
        },
        "end_to_end": {
            "scalar_seconds": round(total_s, 6),
            "packed_seconds": round(total_p, 6),
            "scalar_strings_per_sec": round(n / total_s),
            "packed_strings_per_sec": round(n / total_p),
            "speedup": round(e2e_speedup, 2),
            "gate": END_TO_END_GATE,
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= SPEEDUP_GATE, (
        f"packed exchange path only {speedup:.1f}x faster than scalar "
        f"(gate {SPEEDUP_GATE}x); stages: "
        + ", ".join(f"{k}={v['speedup']}x" for k, v in stages.items())
    )
    assert e2e_speedup >= END_TO_END_GATE, (
        f"packed end-to-end path only {e2e_speedup:.1f}x faster than "
        f"scalar (gate {END_TO_END_GATE}x)"
    )
    for stage, floor in STAGE_FLOORS.items():
        got = scalar_times[stage] / packed_times[stage]
        assert got >= floor, (
            f"stage '{stage}' only {got:.2f}x faster than scalar "
            f"(floor {floor}x)"
        )


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_all_algorithms_byte_identical(algorithm):
    """Packed vs scalar path: identical sorted output and wire accounting."""
    corpus = dn_instance(scaled(600, minimum=200), 0.7, length=48, seed=13)
    with use_packed(True):
        fast = dsort(corpus, algorithm=algorithm, num_pes=4, check=True, seed=5)
    with use_packed(False):
        slow = dsort(corpus, algorithm=algorithm, num_pes=4, check=True, seed=5)
    assert fast.sorted_strings == slow.sorted_strings
    assert fast.outputs_per_pe == slow.outputs_per_pe
    assert fast.report.total_bytes_sent == slow.report.total_bytes_sent
    assert dict(fast.report.phase_bytes) == dict(slow.report.phase_bytes)
    assert fast.report.bytes_sent_per_pe == slow.report.bytes_sent_per_pe
