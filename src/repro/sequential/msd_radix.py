"""MSD string radix sort with LCP-array output.

Section II-A: a variant of MSD String Radix Sort is used as the local
(sequential) sorter of every distributed algorithm.  The recursion considers
subproblems in which all strings share a common prefix of length ``depth``
and partitions them by their ``depth``-th character into ``sigma + 1``
buckets (one extra for strings that end at ``depth``).  The recursion stops
once a subproblem holds fewer than ``radix_threshold`` strings, which is then
handled by Multikey Quicksort (which itself bottoms out in LCP insertion
sort).  Together this gives ``O(D + n log sigma)`` character work.

LCP bookkeeping mirrors :mod:`repro.sequential.multikey_quicksort`: the
boundary between two consecutive non-empty buckets has LCP exactly ``depth``
(the strings agree on the common prefix and differ at position ``depth``),
strings in the end-of-string bucket are pairwise equal (LCP ``depth``), and
LCPs inside a character bucket come from the recursion at ``depth + 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..strings.packed import PackedStringArray, packed_enabled
from .multikey_quicksort import multikey_quicksort
from .stats import CharStats
from .vector_sort import vector_sort_with_lcp

__all__ = ["msd_radix_sort"]

_RADIX_THRESHOLD = 128


def msd_radix_sort(
    strings: Sequence[bytes],
    depth: int = 0,
    stats: Optional[CharStats] = None,
    radix_threshold: int = _RADIX_THRESHOLD,
    insertion_threshold: int = 24,
) -> Tuple[List[bytes], List[int]]:
    """Sort ``strings`` and return ``(sorted_strings, lcp_array)``.

    This is the default local sorter used by the distributed algorithms (it
    matches the paper's choice of MSD radix sort with Multikey Quicksort and
    LCP insertion sort as base cases).  The produced LCP array comes at no
    extra asymptotic cost, exactly as described in the paper.

    A :class:`repro.strings.packed.PackedStringArray` input under
    ``REPRO_PACKED`` dispatches to the vectorized
    :func:`repro.sequential.vector_sort.vector_sort_with_lcp` (returning a
    packed array + ``int64`` LCP array with bit-identical contents); its
    long-string fallback — and every ``list`` input — runs the scalar
    recursion below.
    """
    if depth == 0 and packed_enabled() and isinstance(strings, PackedStringArray):
        vectorized = vector_sort_with_lcp(strings, stats)
        if vectorized is not None:
            return vectorized
    out: List[bytes] = []
    lcps: List[int] = []
    _radix(list(strings), depth, out, lcps, stats, radix_threshold, insertion_threshold)
    if lcps and depth == 0:
        lcps[0] = 0
    return out, lcps


def _radix(
    strings: List[bytes],
    depth: int,
    out: List[bytes],
    lcps: List[int],
    stats: Optional[CharStats],
    radix_threshold: int,
    insertion_threshold: int,
) -> None:
    n = len(strings)
    if n == 0:
        return
    start0 = len(out)
    if n == 1:
        out.append(strings[0])
        lcps.append(depth)
        return
    if n < radix_threshold:
        sub, sub_lcps = multikey_quicksort(
            strings, depth, stats, insertion_threshold=insertion_threshold
        )
        sub_lcps[0] = depth
        out.extend(sub)
        lcps.extend(sub_lcps)
        return

    if stats is not None:
        stats.bucket_passes += 1
        stats.add_chars(sum(1 for s in strings if depth < len(s)))

    # bucket by the character at ``depth``; ``finished`` collects strings that
    # end here (their implicit 0 terminator sorts before every real character)
    finished: List[bytes] = []
    buckets: Dict[int, List[bytes]] = {}
    for s in strings:
        if depth >= len(s):
            finished.append(s)
        else:
            buckets.setdefault(s[depth], []).append(s)

    wrote_any = False
    if finished:
        # all strings in this bucket are equal (same prefix, same length)
        out.extend(finished)
        lcps.extend([depth] * len(finished))
        wrote_any = True

    for ch in sorted(buckets):
        start = len(out)
        _radix(
            buckets[ch], depth + 1, out, lcps, stats, radix_threshold, insertion_threshold
        )
        if wrote_any:
            # boundary with the previous bucket: differs at position ``depth``
            lcps[start] = depth
        wrote_any = True

    lcps[start0] = depth
