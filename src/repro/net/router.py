"""Topology-aware routed delivery for the personalised all-to-all (Section II).

Section II of the paper weighs two ways of delivering a personalised
all-to-all: **direct** delivery (every PE sends one message to every other
PE: ``O(alpha p + beta h)``, volume optimal) and **multi-level** delivery
(messages travel through intermediate PEs that combine payloads:
``O(alpha log p + beta h log p)`` for a hypercube, latency optimal at the
price of inflated volume).  Before this module the tradeoff existed only as
the two closed-form cost formulas of
:class:`repro.net.cost_model.MachineModel`; here the multi-level delivery is
an *actual routed exchange*, so the claimed ``log p`` volume inflation is
measured instead of assumed.

Three strategies implement one :class:`ExchangeTopology` interface:

=========== ================================================================
direct       today's behaviour: one message per (src, dst) pair, 1 hop
hypercube    ``d = log2 p`` rounds; round ``k`` exchanges combined payloads
             with the neighbour across dimension ``k`` (store and forward);
             non-power-of-two ``p`` falls back to direct delivery
grid         two rounds over an ``r x c`` factorisation: a row phase moves
             every frame into its destination's column, a column phase
             delivers it; prime ``p`` degenerates to ``1 x p`` = direct
=========== ================================================================

Delivery is **store-and-forward with explicit framing**: each bucket
travels as a :class:`RouteFrame` carrying its origin, destination and exact
payload wire size; per round, a PE bundles the frames sharing a next hop
into one batch message.  Frame headers and forwarded payload bytes are
attributed separately from origin bytes
(:meth:`repro.net.metrics.TrafficReport.forwarded_bytes`), so the *origin*
volume — the paper's communication-volume metric — is bit-identical across
topologies while the measured total exposes the routing inflation.

The route taken by every frame is fully determined by
:meth:`ExchangeTopology.next_hop`; :meth:`ExchangeTopology.path` *simulates*
exactly those hops, so the path algebra the property tests verify is by
construction the algebra the routed exchange executes.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..faults.checksum import (
    CHECKSUM_WIRE_BYTES,
    payload_checksum,
    wire_checksums_enabled,
)
from ..faults.errors import CorruptFrameError
from ..mpi.serialization import varint_size
from .topology import grid_dims, hypercube_dimension, is_power_of_two, partner

__all__ = [
    "RouteFrame",
    "frame_wire_bytes",
    "batch_wire_bytes",
    "ExchangeTopology",
    "DirectTopology",
    "HypercubeTopology",
    "GridTopology",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "resolve_topology",
    "exchange_topology_name",
    "set_exchange_topology",
    "use_exchange_topology",
    "routed_exchange",
    "routed_exchange_iter",
]

# tag base of the routed exchange rounds (one tag per round), outside the
# ranges hquick (100/200/300 + dimension) and the split-phase direct
# exchange (450) claim, so the engine's tag-ordering diagnostics stay sharp
_TAG_ROUTED = 470


@dataclass
class RouteFrame:
    """One bucket in transit: origin PE, final destination, payload, wire size.

    The payload moves by reference inside the simulated machine (exactly as
    the direct exchange moves blocks); ``nbytes`` is its exact wire size so
    every hop charges what a real store-and-forward implementation would.

    When wire checksums are enabled the origin PE *seals* the frame — a
    per-origin sequence number plus a CRC32 of the payload — and the
    destination PE verifies the seal on delivery (forwarders pass sealed
    frames through untouched, exactly like a real store-and-forward router
    would): end-to-end integrity over multi-hop paths, charged as
    ``varint(seq) + 4`` extra wire bytes per sealed frame.
    """

    origin: int
    dest: int
    payload: Any
    nbytes: int
    #: per-origin frame sequence number (only meaningful when sealed)
    seq: int = 0
    #: CRC32 of the payload, or ``None`` for an unsealed frame
    crc: Optional[int] = None

    def content_crc(self) -> int:
        """The checksum the envelope layer folds in (the seal, or fresh)."""
        return self.crc if self.crc is not None else payload_checksum(self.payload)

    def verify(self) -> None:
        """Check the seal at the destination; no-op for unsealed frames.

        Raises
        ------
        CorruptFrameError
            When the payload's CRC32 no longer matches the origin's seal.
        """
        if self.crc is not None and payload_checksum(self.payload) != self.crc:
            raise CorruptFrameError(
                f"route frame {self.origin}->{self.dest} seq {self.seq}: "
                "payload CRC32 does not match the origin's seal "
                "(frame corrupted in transit)"
            )


def frame_wire_bytes(frame: RouteFrame) -> int:
    """Wire size of one frame: varint origin + dest + payload size + payload.

    A sealed frame additionally carries ``varint(seq)`` + its 4-byte CRC32.
    """
    total = (
        varint_size(frame.origin)
        + varint_size(frame.dest)
        + varint_size(frame.nbytes)
        + frame.nbytes
    )
    if frame.crc is not None:
        total += varint_size(frame.seq) + CHECKSUM_WIRE_BYTES
    return total


def batch_wire_bytes(frames: Sequence[RouteFrame]) -> int:
    """Wire size of one per-hop batch: varint frame count + framed payloads."""
    return varint_size(len(frames)) + sum(frame_wire_bytes(f) for f in frames)


class ExchangeTopology:
    """How a personalised all-to-all is delivered: rounds, peers, next hops.

    Implementations are pure functions of rank numbers (no communicator
    needed), which is what makes the path algebra property-testable.  The
    contract, for a machine of ``p`` PEs:

    * :meth:`num_rounds` rounds are executed in order; in round ``k`` a PE
      exchanges exactly one batch with every peer in
      :meth:`round_peers` (the peer relation must be symmetric or every
      rank deadlocks);
    * a frame currently held by ``rank`` and destined for ``dest`` moves to
      :meth:`next_hop` in round ``k`` (``None`` = hold this round); the
      result must be one of the round's peers;
    * after the last round every frame has reached its destination.
    """

    #: registry name of this delivery strategy
    name: str = ""

    @property
    def is_direct(self) -> bool:
        """Whether this strategy is plain direct delivery (no forwarding)."""
        return self.name == "direct"

    def num_rounds(self, p: int) -> int:
        """Number of store-and-forward rounds on a ``p``-PE machine."""
        raise NotImplementedError

    def round_label(self, p: int, k: int) -> str:
        """Accounting label of round ``k`` (keys ``TrafficReport.route_bytes``)."""
        raise NotImplementedError

    def round_peers(self, rank: int, p: int, k: int) -> List[int]:
        """The PEs ``rank`` exchanges one batch with in round ``k``."""
        raise NotImplementedError

    def next_hop(self, rank: int, dest: int, p: int, k: int) -> Optional[int]:
        """Where a frame at ``rank`` destined for ``dest`` moves in round ``k``.

        ``None`` means the frame is held this round (or has already
        arrived, when ``rank == dest``).
        """
        raise NotImplementedError

    def max_hops(self, p: int) -> int:
        """Upper bound on the path length (edges) between any two PEs."""
        raise NotImplementedError

    def collective_kind(self, p: int) -> str:
        """The cost-model event kind a routed exchange on ``p`` PEs records."""
        raise NotImplementedError

    def path(self, src: int, dst: int, p: int) -> List[int]:
        """The rank sequence a frame travels, ``[src, ..., dst]`` inclusive.

        Derived by simulating :meth:`next_hop` round by round — the path
        algebra *is* the delivery algebra, not a parallel reimplementation.
        """
        if not (0 <= src < p and 0 <= dst < p):
            raise ValueError(f"ranks must be in [0, {p}), got {src} -> {dst}")
        pos, hops = src, [src]
        for k in range(self.num_rounds(p)):
            if pos == dst:
                break
            nxt = self.next_hop(pos, dst, p, k)
            if nxt is not None:
                if nxt not in self.round_peers(pos, p, k):
                    raise RuntimeError(
                        f"{self.name}: next hop {nxt} of {pos}->{dst} is not "
                        f"a round-{k} peer of {pos}"
                    )
                hops.append(nxt)
                pos = nxt
        if pos != dst:
            raise RuntimeError(
                f"{self.name}: {src}->{dst} undelivered after "
                f"{self.num_rounds(p)} rounds on {p} PEs"
            )
        return hops


class DirectTopology(ExchangeTopology):
    """Direct delivery: every frame travels its single (src, dst) edge."""

    name = "direct"

    def num_rounds(self, p: int) -> int:
        """One round delivers everything."""
        return 1 if p > 1 else 0

    def round_label(self, p: int, k: int) -> str:
        """A single ``"direct"`` accounting label."""
        return "direct"

    def round_peers(self, rank: int, p: int, k: int) -> List[int]:
        """Every other PE."""
        return [r for r in range(p) if r != rank]

    def next_hop(self, rank: int, dest: int, p: int, k: int) -> Optional[int]:
        """The destination itself (frames at home never move)."""
        return dest if dest != rank else None

    def max_hops(self, p: int) -> int:
        """One hop."""
        return 1

    def collective_kind(self, p: int) -> str:
        """Direct all-to-all: ``O(alpha p + beta h)``."""
        return "alltoall"


class HypercubeTopology(ExchangeTopology):
    """``log2 p`` pairwise rounds across the hypercube dimensions.

    Round ``k`` exchanges one combined batch with the neighbour across
    dimension ``k``: a frame moves iff its destination differs from its
    current holder in bit ``k``, so after round ``k`` the low ``k+1`` bits
    of holder and destination agree and every frame arrives after exactly
    ``popcount(src ^ dst)`` hops.  Non-power-of-two ``p`` has no hypercube;
    routing falls back to direct delivery in one round (and records a plain
    ``alltoall`` cost event) — the documented, property-tested fallback.
    """

    name = "hypercube"

    def num_rounds(self, p: int) -> int:
        """``log2 p`` dimension rounds, or one direct round off a power of two."""
        if p <= 1:
            return 0
        return hypercube_dimension(p) if is_power_of_two(p) else 1

    def round_label(self, p: int, k: int) -> str:
        """``hypercube-dim<k>`` per dimension; the fallback labels itself."""
        if not is_power_of_two(p):
            return "hypercube-fallback"
        return f"hypercube-dim{k}"

    def round_peers(self, rank: int, p: int, k: int) -> List[int]:
        """The single dimension-``k`` partner (all others in the fallback)."""
        if not is_power_of_two(p):
            return [r for r in range(p) if r != rank]
        return [partner(rank, k)]

    def next_hop(self, rank: int, dest: int, p: int, k: int) -> Optional[int]:
        """Cross dimension ``k`` iff destination differs in bit ``k``."""
        if dest == rank:
            return None
        if not is_power_of_two(p):
            return dest
        return partner(rank, k) if ((rank ^ dest) >> k) & 1 else None

    def max_hops(self, p: int) -> int:
        """``d`` hops (Hamming distance bound), 1 in the fallback."""
        return hypercube_dimension(p) if is_power_of_two(p) and p > 1 else 1

    def collective_kind(self, p: int) -> str:
        """``alltoall-hypercube`` (``alltoall`` when the fallback routes)."""
        return "alltoall-hypercube" if is_power_of_two(p) and p > 1 else "alltoall"


class GridTopology(ExchangeTopology):
    """Two-level delivery over the ``r x c`` grid of :func:`grid_dims`.

    Rank ``i`` sits at row ``i // c``, column ``i % c``.  The **row phase**
    moves every frame to the PE in the holder's row that shares the
    destination's column; the **column phase** delivers it within that
    column.  Every path has at most 2 hops; frames already in the right
    column skip the row phase.  Prime ``p`` factors as ``1 x p``, making
    the row phase direct delivery and the column phase empty.
    """

    name = "grid"

    def num_rounds(self, p: int) -> int:
        """A row round and a column round (none on a single PE)."""
        return 2 if p > 1 else 0

    def round_label(self, p: int, k: int) -> str:
        """``grid-rows`` then ``grid-cols``."""
        return "grid-rows" if k == 0 else "grid-cols"

    def round_peers(self, rank: int, p: int, k: int) -> List[int]:
        """Row mates in round 0, column mates in round 1."""
        rows, cols = grid_dims(p)
        row, col = divmod(rank, cols)
        if k == 0:
            return [row * cols + j for j in range(cols) if j != col]
        return [i * cols + col for i in range(rows) if i != row]

    def next_hop(self, rank: int, dest: int, p: int, k: int) -> Optional[int]:
        """Row phase aligns the column; column phase reaches the destination."""
        if dest == rank:
            return None
        _, cols = grid_dims(p)
        row, col = divmod(rank, cols)
        dest_col = dest % cols
        if k == 0:
            return row * cols + dest_col if col != dest_col else None
        return dest if col == dest_col else None

    def max_hops(self, p: int) -> int:
        """Two hops (one when a grid dimension is trivial)."""
        rows, cols = grid_dims(p)
        return (1 if rows > 1 else 0) + (1 if cols > 1 else 0) if p > 1 else 0

    def collective_kind(self, p: int) -> str:
        """``alltoall-grid``: ``O(alpha (r + c) + beta h)`` per phase."""
        return "alltoall-grid" if p > 1 else "alltoall"


#: name -> strategy singleton (strategies are stateless)
TOPOLOGIES: Dict[str, ExchangeTopology] = {
    t.name: t for t in (DirectTopology(), HypercubeTopology(), GridTopology())
}

#: the valid ``exchange_topology`` vocabulary (specs, CLI, env toggle)
TOPOLOGY_NAMES: Tuple[str, ...] = tuple(sorted(TOPOLOGIES))

_TOPOLOGY_NAME = (
    os.environ.get("REPRO_EXCHANGE_TOPOLOGY", "direct").strip().lower() or "direct"
)


def exchange_topology_name() -> str:
    """The process-wide default delivery strategy of the bucket exchange.

    Defaults to the ``REPRO_EXCHANGE_TOPOLOGY`` environment variable
    (``direct`` unless set).  The strategy changes *how* buckets travel —
    and therefore the measured total volume and startup counts — never what
    is computed: outputs, LCP arrays and **origin** wire bytes are
    bit-identical across strategies (pinned by
    ``tests/test_exchange_topologies.py`` across all six algorithms).
    """
    return _TOPOLOGY_NAME


def set_exchange_topology(name: str) -> str:
    """Set the process-wide delivery strategy; returns the previous name."""
    global _TOPOLOGY_NAME
    if name not in TOPOLOGIES:
        raise ValueError(
            f"unknown exchange topology {name!r}; "
            f"available: {list(TOPOLOGY_NAMES)}"
        )
    previous = _TOPOLOGY_NAME
    _TOPOLOGY_NAME = name
    return previous


@contextmanager
def use_exchange_topology(name: str):
    """Context-manager form of :func:`set_exchange_topology` (tests, sessions)."""
    previous = set_exchange_topology(name)
    try:
        yield
    finally:
        set_exchange_topology(previous)


def resolve_topology(
    topology: Union[str, ExchangeTopology, None],
) -> ExchangeTopology:
    """Resolve a topology argument to a strategy object.

    ``None`` means "inherit the process-wide setting" (see
    :func:`exchange_topology_name`), a string is looked up in
    :data:`TOPOLOGIES`, and a ready :class:`ExchangeTopology` instance
    passes through — the same three spellings
    :func:`repro.dist.exchange.exchange_buckets` accepts.
    """
    if topology is None:
        topology = _TOPOLOGY_NAME
    if isinstance(topology, ExchangeTopology):
        return topology
    try:
        return TOPOLOGIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown exchange topology {topology!r}; "
            f"available: {list(TOPOLOGY_NAMES)}"
        ) from None


# ---------------------------------------------------------------------------
# the routed exchange engine
# ---------------------------------------------------------------------------


def _split_outgoing(
    topology: ExchangeTopology,
    transit: List[RouteFrame],
    rank: int,
    p: int,
    k: int,
    peers: Sequence[int],
) -> Tuple[Dict[int, List[RouteFrame]], List[RouteFrame]]:
    """Group in-transit frames by round-``k`` next hop; return (outgoing, held)."""
    outgoing: Dict[int, List[RouteFrame]] = {peer: [] for peer in peers}
    held: List[RouteFrame] = []
    for frame in transit:
        nxt = topology.next_hop(rank, frame.dest, p, k)
        if nxt is None:
            held.append(frame)
        else:
            outgoing[nxt].append(frame)
    return outgoing, held


def _post_round_sends(comm, topology, outgoing, p: int, k: int) -> List[Any]:
    """Send one (possibly empty) batch per peer; attribute forwarded bytes."""
    label = topology.round_label(p, k)
    requests = []
    for peer, batch in outgoing.items():
        wire = batch_wire_bytes(batch)
        own = sum(f.nbytes for f in batch if f.origin == comm.rank)
        requests.append(comm.isend(batch, peer, tag=_TAG_ROUTED + k, nbytes=wire))
        # headers and relayed payloads are routing overhead, not origin
        # volume: attributing them separately is what keeps the paper's
        # bytes-per-string metric comparable across delivery strategies
        comm.record_route(label, wire, wire - own)
    return requests


def _prepare_frames(
    comm, messages: Sequence[Any], sizes: Sequence[int]
) -> Tuple[List[Tuple[int, Any]], List[RouteFrame], int]:
    """Split per-destination messages into (already home, in transit, origin bytes)."""
    ready: List[Tuple[int, Any]] = []
    transit: List[RouteFrame] = []
    origin_total = 0
    seal = wire_checksums_enabled()
    seq = 0
    for dst, message in enumerate(messages):
        if dst == comm.rank:
            ready.append((comm.rank, message))
        else:
            frame = RouteFrame(comm.rank, dst, message, sizes[dst])
            origin_total += sizes[dst]
            if seal:
                frame.seq = seq
                frame.crc = payload_checksum(message)
                seq += 1
                # the seal rides from origin to destination: origin volume
                origin_total += varint_size(frame.seq) + CHECKSUM_WIRE_BYTES
            transit.append(frame)
    return ready, transit, origin_total


def routed_exchange(
    comm,
    topology: ExchangeTopology,
    messages: Sequence[Any],
    sizes: Sequence[int],
) -> List[Any]:
    """Deliver ``messages[dst]`` to every ``dst`` over ``topology`` (blocking).

    The bulk-synchronous twin of :func:`routed_exchange_iter`: all rounds
    run to completion, then the payloads are returned indexed by origin PE —
    the same shape ``Communicator.alltoall`` returns, so the caller's decode
    loop is byte-for-byte the one the direct exchange uses.  Records one
    cost-model collective event (:meth:`ExchangeTopology.collective_kind`)
    carrying the **origin** bottleneck volume, exactly as the direct
    all-to-all does — the measured routed volume lives in the traffic
    meter's forwarded/route counters instead.
    """
    p, rank = comm.size, comm.rank
    received: List[Any] = [None] * p
    ready, transit, origin_total = _prepare_frames(comm, messages, sizes)
    for src, payload in ready:
        received[src] = payload
    for k in range(topology.num_rounds(p)):
        peers = topology.round_peers(rank, p, k)
        outgoing, transit = _split_outgoing(topology, transit, rank, p, k, peers)
        requests = _post_round_sends(comm, topology, outgoing, p, k)
        for peer in peers:
            for frame in comm.recv(peer, tag=_TAG_ROUTED + k):
                if frame.dest == rank:
                    frame.verify()  # end-to-end seal check at the destination
                    received[frame.origin] = frame.payload
                else:
                    transit.append(frame)
        comm.waitall(requests)
    if transit:  # pragma: no cover - topology contract violation
        raise RuntimeError(
            f"{topology.name}: {len(transit)} frame(s) undelivered at rank {rank}"
        )
    comm.record_exchange_collective(
        origin_total, kind=topology.collective_kind(p)
    )
    return received


def routed_exchange_iter(
    comm,
    topology: ExchangeTopology,
    messages: Sequence[Any],
    sizes: Sequence[int],
) -> Iterator[Tuple[int, Any]]:
    """Split-phase routed delivery: yield ``(origin, payload)`` in arrival order.

    Frames reach their destination spread over the rounds (a hypercube
    neighbour's bucket arrives in round 0 even when ``d`` rounds remain), so
    the caller decodes early arrivals — everything it does between ``yield``
    s — while later rounds are still in flight.  The time the caller spends
    on a yielded payload is counted as overlap only when at least one of the
    current round's receives is genuinely un-arrived both when the segment
    starts *and* when it ends, the same deliberately low-biased rule the
    direct split-phase exchange uses.  Wire accounting (origin, forwarded
    and per-round route bytes) is identical to :func:`routed_exchange`; the
    epilogue records the overlap and the one cost-model collective event.

    Like every split-phase collective, the generator must be exhausted at
    the same SPMD program point on all ranks.
    """
    p, rank = comm.size, comm.rank
    window_start = time.perf_counter()
    ready, transit, origin_total = _prepare_frames(comm, messages, sizes)
    overlapped = 0.0

    def drain_ready(outstanding: List[Any]) -> Iterator[Tuple[int, Any]]:
        """Yield queued arrivals, crediting caller time while recvs are open."""
        nonlocal overlapped
        while ready:
            item = ready.pop(0)
            overlapping = any(not r.test() for r in outstanding)
            started = time.perf_counter()
            yield item
            ended = time.perf_counter()
            if overlapping and any(not r.test() for r in outstanding):
                overlapped += ended - started

    for k in range(topology.num_rounds(p)):
        peers = topology.round_peers(rank, p, k)
        outgoing, transit = _split_outgoing(topology, transit, rank, p, k, peers)
        requests = _post_round_sends(comm, topology, outgoing, p, k)
        recvs = [comm.irecv(peer, tag=_TAG_ROUTED + k) for peer in peers]
        # decode what already arrived while this round's batches fly
        yield from drain_ready(recvs)
        pending = list(range(len(peers)))
        while pending:
            done = pending.pop(comm.waitany([recvs[i] for i in pending]))
            for frame in recvs[done].wait():
                if frame.dest == rank:
                    frame.verify()  # end-to-end seal check at the destination
                    ready.append((frame.origin, frame.payload))
                else:
                    transit.append(frame)
            yield from drain_ready([recvs[i] for i in pending])
        comm.waitall(requests)
    if transit:  # pragma: no cover - topology contract violation
        raise RuntimeError(
            f"{topology.name}: {len(transit)} frame(s) undelivered at rank {rank}"
        )
    # nothing is in flight any more: the final drain earns no overlap credit
    while ready:
        yield ready.pop(0)
    window = time.perf_counter() - window_start
    fraction = overlapped / window if window > 0.0 else 0.0
    comm.record_overlap(overlapped, window)
    comm.record_exchange_collective(
        origin_total,
        overlap_fraction=fraction,
        kind=topology.collective_kind(p),
    )
