"""Zero-copy shared-memory data plane of the multiprocessing engine.

The processes engine (:mod:`repro.mpi.procengine`) moves control frames over
OS pipes, but bulk payloads — packed string buckets, LCP arrays, route
frames — would be painfully slow to copy through a pipe twice.  This module
encodes any message object into a small pipe blob plus, when the payload is
large, **one** POSIX shared-memory segment:

* the object is pickled with protocol 5, which surfaces every contiguous
  ``numpy`` buffer (the PR 2 packed layout: one ``uint8`` character buffer
  plus an ``int64`` offset array) as an out-of-band :class:`pickle.PickleBuffer`;
* the pickle stream and the raw buffers are laid out 8-byte-aligned in a
  single :class:`multiprocessing.shared_memory.SharedMemory` segment;
* the receiver attaches, **unlinks immediately** (ownership transfer — on
  Linux the mapping stays valid until the last close), and unpickles with
  ``buffers=`` pointing straight into the mapping, so the reconstructed
  arrays are zero-copy views of shared memory.

Segment names carry an engine/run-unique prefix so a parent can sweep
leftovers of a crashed run (:func:`sweep_segments`) and the leak-check test
fixture can assert nothing survived a test.
"""

from __future__ import annotations

import os
import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Any, List, Optional, Tuple

__all__ = [
    "SHM_THRESHOLD",
    "dumps",
    "loads",
    "sweep_segments",
    "shared_memory_available",
    "ensure_tracker",
]

#: payloads at or above this many bytes travel through a shared-memory
#: segment instead of in-band through the pipe.  Kept well under the 64 KiB
#: Linux pipe buffer so one in-band frame can never fill the pipe and
#: deadlock two ranks that write to each other before reading.
SHM_THRESHOLD = 1 << 15

#: where Linux materialises POSIX shared memory (used by the leak sweep)
SHM_DIR = "/dev/shm"

_IN_BAND = b"I"
_SEGMENT = b"S"


def _align(n: int) -> int:
    """Round ``n`` up to the next multiple of 8 (buffer alignment)."""
    return (n + 7) & ~7


def dumps(
    obj: Any,
    segment_name: Optional[str] = None,
    threshold: int = SHM_THRESHOLD,
) -> Tuple[bytes, int]:
    """Encode ``obj`` into a pipe blob, spilling bulk data to shared memory.

    Returns ``(blob, shm_bytes)``: the blob goes through the pipe,
    ``shm_bytes`` is how many bytes (0 for in-band messages) were placed in
    the shared segment — the caller adds both into the real-transport
    counters.  ``segment_name`` must be unique per message and is only used
    when the payload crosses ``threshold``; pass ``None`` to force the
    in-band path.
    """
    buffers: List[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [buf.raw() for buf in buffers]
    total = len(data) + sum(v.nbytes for v in views)
    if segment_name is None or total < threshold:
        for buf in buffers:
            buf.release()
        if not buffers:
            return _IN_BAND + data, 0
        # small payload: re-pickle with the buffers serialised in-band (one
        # extra copy is cheaper than a segment round-trip)
        return _IN_BAND + pickle.dumps(obj, protocol=5), 0
    # lay out [pickle stream][buffer 0][buffer 1]... in one segment
    spans: List[Tuple[int, int]] = []
    offset = _align(len(data))
    for view in views:
        spans.append((offset, view.nbytes))
        offset = _align(offset + view.nbytes)
    seg = shared_memory.SharedMemory(name=segment_name, create=True, size=max(1, offset))
    try:
        seg.buf[: len(data)] = data
        for (start, size), view in zip(spans, views):
            if size:
                seg.buf[start : start + size] = view
    finally:
        for buf in buffers:
            buf.release()
        seg.close()
    meta = (segment_name, len(data), spans)
    return _SEGMENT + pickle.dumps(meta, protocol=5), offset


def loads(blob: bytes) -> Tuple[Any, Optional[shared_memory.SharedMemory]]:
    """Decode a :func:`dumps` blob; returns ``(obj, segment_handle_or_None)``.

    For segment-backed messages the segment is unlinked here (ownership
    transfer: the name disappears, the mapping survives) and the handle is
    returned so the caller can keep it alive as long as the zero-copy views
    inside ``obj`` are in use, then ``close()`` it at teardown.
    """
    kind = blob[:1]
    body = memoryview(blob)[1:]
    if kind == _IN_BAND:
        return pickle.loads(body), None
    if kind != _SEGMENT:
        raise ValueError(f"unknown shm blob marker {kind!r}")
    name, data_len, spans = pickle.loads(body)
    seg = shared_memory.SharedMemory(name=name)
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already swept by a cleanup
        pass
    views = [seg.buf[start : start + size] for start, size in spans]
    obj = pickle.loads(seg.buf[:data_len], buffers=views)
    return obj, seg


def sweep_segments(prefix: str) -> List[str]:
    """Unlink leftover segments named ``prefix*``; returns the names removed.

    The normal lifecycle leaves nothing behind (receivers unlink on
    decode), so anything matching the prefix is debris of a crashed or
    aborted run.  Safe to call repeatedly and on platforms without
    ``/dev/shm`` (it simply finds nothing).
    """
    removed: List[str] = []
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return removed
    for fname in entries:
        if not fname.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(SHM_DIR, fname))
        except OSError:
            continue
        try:
            # keep the resource tracker's ledger consistent with the manual
            # unlink so interpreter exit does not warn about leaked segments
            resource_tracker.unregister("/" + fname, "shared_memory")
        except Exception:
            pass
        removed.append(fname)
    return removed


def ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Called by the processes engine before forking workers so every worker
    inherits the same tracker: segment registrations from the creating
    worker and the unlink from the receiving worker then balance out in one
    ledger, and the interpreter exits without spurious leak warnings.
    """
    resource_tracker.ensure_running()


_AVAILABLE: Optional[Tuple[bool, str]] = None


def shared_memory_available() -> Tuple[bool, str]:
    """Probe (once per process) whether shared-memory segments work here.

    Returns ``(ok, reason)``; ``reason`` is an empty string when available.
    Sandboxed platforms may lack ``/dev/shm`` or forbid ``shm_open``; the
    engine conformance fixtures use this to skip ``processes`` cells
    gracefully instead of erroring.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
        except Exception as exc:  # pragma: no cover - platform specific
            _AVAILABLE = (False, f"shared memory unavailable: {exc!r}")
        else:
            _AVAILABLE = (True, "")
    return _AVAILABLE
