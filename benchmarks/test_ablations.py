"""Design-choice ablations discussed throughout Sections V-VII.

One benchmark per variant, all on the COMMONCRAWL-like corpus (where the LCP
machinery matters most) and on a DNA corpus for the prefix-doubling knobs:

* MS-simple -> MS             : LCP compression + LCP merging
* MS string vs character sampling
* MS central vs hQuick sample sorting
* PDMS epsilon (growth factor) sweep
* PDMS with / without Golomb coding
"""

from __future__ import annotations

import pytest

from conftest import print_experiment, scaled
from repro.bench.harness import ExperimentResult, ExperimentRunner
from repro.dist.api import distribute_strings
from repro.strings.generators import commoncrawl_like, dna_reads

_RUNNER = ExperimentRunner(seed=4)
P = 8

_WEB = distribute_strings(commoncrawl_like(scaled(6000), seed=8), P, by="chars")
_DNA = distribute_strings(dna_reads(scaled(5000), seed=9), P, by="chars")

_RESULT = ExperimentResult(
    name="ablations",
    description="Design-choice ablations (COMMONCRAWL-like and DNAREADS-like corpora)",
)

VARIANTS = [
    # (label, algorithm, blocks, options)
    ("web/ms-simple", "ms-simple", "_WEB", {}),
    ("web/ms", "ms", "_WEB", {}),
    ("web/ms-char-sampling", "ms", "_WEB", {"sampling": "character"}),
    ("web/ms-hquick-samples", "ms", "_WEB", {"sample_sort": "hquick"}),
    ("web/pdms", "pdms", "_WEB", {}),
    ("dna/pdms-eps0.5", "pdms", "_DNA", {"epsilon": 0.5}),
    ("dna/pdms-eps1", "pdms", "_DNA", {}),
    ("dna/pdms-eps3", "pdms", "_DNA", {"epsilon": 3.0}),
    ("dna/pdms-golomb", "pdms-golomb", "_DNA", {}),
    ("dna/ms", "ms", "_DNA", {}),
]


@pytest.mark.parametrize("label, algorithm, blocks_name, options", VARIANTS)
def test_ablation_cell(benchmark, label, algorithm, blocks_name, options):
    blocks = _WEB if blocks_name == "_WEB" else _DNA
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(_RESULT.name, algorithm, P, label, blocks),
        kwargs=options,
        rounds=1,
        iterations=1,
    )
    cell.extra["variant"] = label
    _RESULT.add(cell)
    benchmark.extra_info["bytes_per_string"] = round(cell.bytes_per_string, 2)


def test_ablation_render_and_shape(benchmark):
    benchmark(lambda: _RESULT.render("bytes_per_string"))
    print_experiment(_RESULT)

    def volume(label):
        return next(c for c in _RESULT.cells if c.extra["variant"] == label).bytes_per_string

    # LCP compression is the dominant saving on web text
    assert volume("web/ms") < volume("web/ms-simple")
    # the sampling scheme and the sample sorter do not change the exchange
    # volume materially (they affect balance/latency, not payload)
    assert volume("web/ms-char-sampling") == pytest.approx(volume("web/ms"), rel=0.35)
    assert volume("web/ms-hquick-samples") == pytest.approx(volume("web/ms"), rel=0.35)

    def cell(label):
        return next(c for c in _RESULT.cells if c.extra["variant"] == label)

    # finer growth factors approximate D more tightly (smaller exchange
    # payload) at the price of more duplicate-detection rounds — the tradeoff
    # Section VI-A describes for the choice of epsilon
    assert (
        cell("dna/pdms-eps0.5").extra["phase_bytes"]["exchange"]
        <= cell("dna/pdms-eps3").extra["phase_bytes"]["exchange"] * 1.05
    )
    assert (
        cell("dna/pdms-eps0.5").extra["doubling_rounds"]
        >= cell("dna/pdms-eps3").extra["doubling_rounds"]
    )
    # Golomb coding never increases the volume
    assert volume("dna/pdms-golomb") <= volume("dna/pdms-eps1") * 1.02
    # prefix doubling beats MS on the DNA corpus
    assert volume("dna/pdms-eps1") < volume("dna/ms")
