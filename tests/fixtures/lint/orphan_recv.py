"""Seeded bug: a blocking receive whose tag no send ever posts.

The even ranks send with tag 11 but the odd ranks wait on tag 12 — the
receive can never be satisfied.  Expected finding: ``spmd-orphan-recv``.
"""


def mismatched_tags(comm, local):
    if comm.rank % 2 == 0:
        comm.send(local, comm.rank + 1, tag=11)
        return local
    return comm.recv(comm.rank - 1, tag=12)
