"""Section VII-E experiments: the suffix instance and the skewed D/N instance.

* Suffix instance: all suffixes of a text, D/N ~ 1e-4 in the paper.  PDMS is
  reported to be about 30x faster than every other algorithm at p = 160
  because it only communicates the tiny distinguishing prefixes.  The
  reproduction asserts the corresponding communication-volume gap.

* Skewed D/N instance: the 20 % smallest strings are padded to 4x length
  without contributing to the distinguishing prefix.  The paper reports that
  character-based sampling now pays off because it avoids the load imbalance
  string-based sampling incurs on the skewed output lengths.
"""

from __future__ import annotations

import pytest

from conftest import print_experiment, scaled
from repro.bench.harness import ExperimentResult, ExperimentRunner
from repro.dist.api import distribute_strings
from repro.strings.generators import skewed_dn_instance, suffix_instance

_RUNNER = ExperimentRunner(seed=3)

# ---------------------------------------------------------------------------
# suffix instance
# ---------------------------------------------------------------------------

SUFFIX_TEXT_LEN = scaled(5000)
SUFFIX_ALGOS = ("fkmerge", "ms-simple", "ms", "pdms", "pdms-golomb")
_SUFFIX_CORPUS = suffix_instance(
    text_len=SUFFIX_TEXT_LEN, alphabet_size=4, max_suffix_len=500, seed=5
)
_SUFFIX_RESULT = ExperimentResult(
    name="sec7e-suffix",
    description=f"Suffix instance: {SUFFIX_TEXT_LEN} suffixes, D/N << 1",
)


@pytest.mark.parametrize("algorithm", SUFFIX_ALGOS)
def test_suffix_instance_cell(benchmark, algorithm):
    p = 8
    blocks = distribute_strings(_SUFFIX_CORPUS, p, by="strings")
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(_SUFFIX_RESULT.name, algorithm, p, "wiki-suffixes", blocks),
        rounds=1,
        iterations=1,
    )
    _SUFFIX_RESULT.add(cell)
    benchmark.extra_info["bytes_per_string"] = round(cell.bytes_per_string, 2)


def test_suffix_instance_render_and_shape(benchmark):
    benchmark(lambda: _SUFFIX_RESULT.render("bytes_per_string"))
    print_experiment(_SUFFIX_RESULT)

    def volume(alg):
        return _SUFFIX_RESULT.filter(algorithm=alg)[0].bytes_per_string

    # the headline claim: PDMS communicates a small fraction of what the
    # full-string algorithms move (paper: ~30x running-time advantage)
    assert volume("pdms") < volume("ms") / 10
    assert volume("pdms") < volume("ms-simple") / 10
    assert volume("pdms-golomb") <= volume("pdms") * 1.05


# ---------------------------------------------------------------------------
# skewed D/N instance: string- vs character-based sampling
# ---------------------------------------------------------------------------

SKEW_STRINGS = scaled(5000)
_SKEW_CORPUS = skewed_dn_instance(SKEW_STRINGS, 0.5, length=120, seed=6)
_SKEW_RESULT = ExperimentResult(
    name="sec7e-skewed-sampling",
    description=f"Skewed D/N instance ({SKEW_STRINGS} strings), MS sampling schemes",
)


@pytest.mark.parametrize("scheme", ("string", "character"))
def test_skewed_sampling_cell(benchmark, scheme):
    p = 8
    blocks = distribute_strings(_SKEW_CORPUS, p, by="strings")
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(_SKEW_RESULT.name, "ms", p, f"skewed-{scheme}", blocks),
        kwargs={"sampling": scheme},
        rounds=1,
        iterations=1,
    )
    cell.extra["sampling"] = scheme
    _SKEW_RESULT.add(cell)
    benchmark.extra_info["imbalance"] = round(cell.imbalance, 3)


def test_skewed_sampling_render_and_shape(benchmark):
    benchmark(lambda: _SKEW_RESULT.render("imbalance"))
    print_experiment(_SKEW_RESULT, metrics=("imbalance", "bytes_per_string"))

    by_scheme = {c.extra["sampling"]: c for c in _SKEW_RESULT.cells}
    # character-based sampling balances the output characters at least as well
    # as string-based sampling on the skewed instance (paper, Section VII-E)
    assert by_scheme["character"].imbalance <= by_scheme["string"].imbalance * 1.05
