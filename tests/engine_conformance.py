"""Cross-engine conformance harness: the executable contract of an engine.

Any backend registered via :func:`repro.mpi.engine.register_engine` must be
observationally indistinguishable from the reference thread engine: the
same rank programs must produce **bit-identical** sorted outputs, LCP
arrays, PDMS origin labels, origin wire bytes, per-PE byte vectors and
config hashes — for every algorithm, exchange topology and exchange mode.
This module packages that contract as reusable pieces:

* :func:`all_engines` / :func:`engine_params` — the engine axis for pytest
  parametrization, with graceful skips where a backend cannot run (e.g. the
  platform lacks ``fork`` or POSIX shared memory);
* :func:`set_engine` — a context manager scoping ``REPRO_ENGINE`` so the
  whole call tree (``Cluster``, ``dsort``, ``run_spmd``) runs on the chosen
  backend;
* :func:`sort_fingerprint` — one conformance cell: run a sort on a given
  engine and reduce the result to the comparable fingerprint;
* :func:`assert_engines_agree` — compare a fingerprint against the
  reference engine's, with readable per-field failures.

``tests/test_engine_conformance.py`` drives the full matrix over the
in-tree engines; a third-party backend conforms when the same suite passes
with its name added to the axis (or by calling these helpers directly).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

import pytest

from repro.mpi.engine import ENGINES
from repro.mpi.procengine import process_engine_available
from repro.session import Cluster, default_registry

#: the matrix axes of the conformance suite
ALGORITHMS = ("ms", "ms-simple", "pdms", "pdms-golomb", "hquick", "fkmerge")
TOPOLOGIES = ("direct", "hypercube", "grid")
EXCHANGE_MODES = (False, True)  # sync, async

#: the engine every other backend is compared against
REFERENCE_ENGINE = "threads"

#: fingerprint fields that must be bit-identical across engines
_IDENTICAL_FIELDS = (
    "outputs_per_pe",
    "lcps_per_pe",
    "origins_per_pe",
    "config_hash",
    "total_bytes_sent",
    "origin_bytes_sent",
    "bytes_sent_per_pe",
    "forwarded_bytes_per_pe",
    "chars_inspected_per_pe",
)


def engine_available(name: str) -> Tuple[bool, str]:
    """Whether engine ``name`` can run on this platform: ``(ok, reason)``."""
    if name == "processes":
        return process_engine_available()
    if name in ENGINES:
        return True, ""
    return False, f"engine {name!r} is not registered"


def all_engines() -> List[str]:
    """Registered in-tree engine names, runnable or not (stable order)."""
    ordered = [REFERENCE_ENGINE]
    ordered += sorted(n for n in ENGINES if n != REFERENCE_ENGINE)
    return ordered


def engine_params() -> List[Any]:
    """The engine axis for ``@pytest.fixture(params=...)`` / parametrize.

    Engines that cannot run on this platform become skip-marked params, so
    a matrix cell reports *skipped with the platform's reason* instead of
    erroring — the graceful-degradation contract of the suite.
    """
    params: List[Any] = []
    for name in all_engines():
        ok, reason = engine_available(name)
        if ok:
            params.append(name)
        else:
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


@contextmanager
def set_engine(name: str) -> Iterator[str]:
    """Scope ``REPRO_ENGINE`` to ``name`` (restores the prior value)."""
    prior = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = name
    try:
        yield name
    finally:
        if prior is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prior


# CI sweeps the whole matrix under several workload seeds; locally the
# default keeps every cell deterministic run to run
DEFAULT_SEED = int(os.environ.get("REPRO_CONFORMANCE_SEED", "5"))


def conformance_workload(seed: int = DEFAULT_SEED):
    """The skew-heavy corpus every conformance cell sorts (adversarial mix)."""
    from repro.strings.generators import dn_instance

    corpus = dn_instance(110, 0.6, length=32, seed=seed)
    # empties and exact duplicates exercise the boundary paths
    return corpus + [b"", b"a" * 31, corpus[0], corpus[0]]


def sort_fingerprint(
    engine: str,
    algorithm: str,
    topology: str = "direct",
    async_exchange: bool = False,
    num_pes: int = 4,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """Run one conformance cell on ``engine``; returns its fingerprint.

    The fingerprint holds everything the contract pins bit-identically
    (outputs, LCPs, origins, config hash, the origin/total/per-PE wire byte
    vectors, decoded local work) plus the report's ``engine`` tag and real
    ``transported_bytes`` (informational — transport cost is the one thing
    engines legitimately differ on).
    """
    spec = default_registry().spec_class(algorithm)(seed=3)
    with Cluster(
        num_pes=num_pes,
        engine=engine,
        exchange_topology=topology,
        async_exchange=True if async_exchange else None,
    ) as cluster:
        result = cluster.sort(conformance_workload(seed), spec, check=True)
    report = result.report
    return {
        "outputs_per_pe": result.outputs_per_pe,
        "lcps_per_pe": result.lcps_per_pe,
        "origins_per_pe": result.origins_per_pe,
        "config_hash": spec.config_hash(),
        "total_bytes_sent": report.total_bytes_sent,
        "origin_bytes_sent": report.origin_bytes_sent,
        "bytes_sent_per_pe": list(report.bytes_sent_per_pe),
        "forwarded_bytes_per_pe": list(report.forwarded_bytes_per_pe),
        "chars_inspected_per_pe": list(report.chars_inspected_per_pe),
        "engine_tag": report.engine,
        "transported_bytes": report.transported_bytes,
    }


def assert_engines_agree(
    candidate: Dict[str, Any], reference: Dict[str, Any], label: str = ""
) -> None:
    """Assert a candidate fingerprint matches the reference bit-for-bit."""
    for field in _IDENTICAL_FIELDS:
        assert candidate[field] == reference[field], (
            f"engine conformance violated{f' ({label})' if label else ''}: "
            f"{field} differs from the {REFERENCE_ENGINE!r} reference"
        )
