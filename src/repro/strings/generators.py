"""Workload generators for the paper's evaluation inputs (Section VII-A).

The paper evaluates on

* the synthetic **D/N** family with tunable ratio ``r = D/N`` (string length
  500): the *i*-th string is "an appropriate number of repetitions of the
  first character of the alphabet, followed by a base-sigma encoding of *i*,
  followed by further characters to achieve the desired string length".
  ``r = 0`` means the counter starts immediately, ``r = 1`` means the counter
  ends at the end of the string;
* **COMMONCRAWL** — 82 GB of web-page text dumps, one line per string,
  D/N = 0.68, alphabet 242, average line 40 chars, average LCP 23.9 (60 %);
* **DNAREADS** — 125 GB of DNA reads over {A,C,G,T}, average read 98.7 base
  pairs, D/N = 0.38, average LCP 29.2 (30 %);
* a **suffix** instance (all suffixes of a Wikipedia prefix, D/N ≈ 1e-4);
* a **skewed** variant of D/N where the 20 % smallest strings are padded to
  4× the length without contributing to the distinguishing prefix.

We cannot ship the proprietary/real corpora, so :func:`commoncrawl_like` and
:func:`dna_reads` generate synthetic corpora calibrated to the statistics that
drive the algorithms (D/N ratio, LCP fraction, alphabet size, duplicate
lines).  The D/N, skewed and suffix instances are direct reimplementations of
the paper's constructions.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

__all__ = [
    "dn_instance",
    "skewed_dn_instance",
    "dn_instance_for_pes",
    "random_strings",
    "commoncrawl_like",
    "dna_reads",
    "suffix_instance",
    "duplicate_heavy",
    "GeneratorSpec",
    "make_generator",
]

# Printable alphabet used by the D/N instances, in ascending byte order so
# that the base-sigma counter encoding preserves numeric order
# lexicographically.  The first character plays the role of the repeated
# filler ("first character of Sigma" in the paper).
_DN_ALPHABET = bytes(
    sorted(
        bytes(range(ord("0"), ord("0") + 10))
        + bytes(range(ord("A"), ord("A") + 26))
        + bytes(range(ord("a"), ord("a") + 26))
    )
)


def _encode_base_sigma(value: int, alphabet: bytes, width: int) -> bytes:
    """Base-``len(alphabet)`` encoding of ``value`` padded to ``width`` digits."""
    sigma = len(alphabet)
    digits = bytearray()
    v = value
    while v > 0:
        digits.append(alphabet[v % sigma])
        v //= sigma
    while len(digits) < width:
        digits.append(alphabet[0])
    digits.reverse()
    return bytes(digits)


def dn_instance(
    num_strings: int,
    dn: float,
    length: int = 500,
    alphabet: bytes = _DN_ALPHABET,
    seed: Optional[int] = None,
    shuffle: bool = True,
) -> List[bytes]:
    """The paper's D/N instance with tunable ratio ``r = D/N``.

    Parameters
    ----------
    num_strings:
        Number of strings to generate.
    dn:
        Target ``D/N`` ratio in ``[0, 1]``.  ``0`` places the distinguishing
        counter at the very start of each string, ``1`` at the very end.
    length:
        Length of every string (the paper uses 500).
    alphabet:
        Alphabet to draw characters from; its first character is the filler.
    seed:
        Seed for the trailing filler characters and the final shuffle.
    shuffle:
        The strings are generated in counter order; the paper distributes the
        D/N strings randomly over PEs, which we emulate with a global shuffle.
    """
    if not 0.0 <= dn <= 1.0:
        raise ValueError("dn must be in [0, 1]")
    if length <= 0:
        raise ValueError("length must be positive")
    sigma = len(alphabet)
    counter_width = max(1, math.ceil(math.log(max(num_strings, 2), sigma)))
    counter_width = min(counter_width, length)

    # prefix of repeated filler characters: its length controls where the
    # counter (the only distinguishing part) sits inside the string
    max_prefix = length - counter_width
    prefix_len = int(round(dn * max_prefix))
    prefix = bytes([alphabet[0]]) * prefix_len

    rng = np.random.default_rng(seed)
    suffix_len = length - prefix_len - counter_width
    if suffix_len > 0:
        # one shared random tail keeps D/N exact: the tail never distinguishes
        tail_idx = rng.integers(0, sigma, size=suffix_len)
        tail = bytes(alphabet[int(i)] for i in tail_idx)
    else:
        tail = b""

    out: List[bytes] = []
    for i in range(num_strings):
        counter = _encode_base_sigma(i, alphabet, counter_width)
        out.append(prefix + counter + tail)

    if shuffle:
        perm = rng.permutation(num_strings)
        out = [out[int(j)] for j in perm]
    return out


def skewed_dn_instance(
    num_strings: int,
    dn: float,
    length: int = 500,
    pad_factor: int = 4,
    pad_fraction: float = 0.2,
    alphabet: bytes = _DN_ALPHABET,
    seed: Optional[int] = None,
) -> List[bytes]:
    """Skewed D/N variant from Section VII-E.

    The ``pad_fraction`` (20 %) lexicographically smallest strings are padded
    with extra filler characters to ``pad_factor`` (4×) their length without
    contributing to the distinguishing prefixes.  This skews the *output*
    string length distribution and stresses character-based sampling.
    """
    base = dn_instance(num_strings, dn, length, alphabet, seed=seed, shuffle=False)
    base.sort()
    cutoff = int(len(base) * pad_fraction)
    pad = bytes([alphabet[0]]) * (length * (pad_factor - 1))
    out = [s + pad if i < cutoff else s for i, s in enumerate(base)]
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(out))
    return [out[int(j)] for j in perm]


def dn_instance_for_pes(
    num_pes: int,
    strings_per_pe: int,
    dn: float,
    length: int = 500,
    seed: Optional[int] = None,
) -> List[List[bytes]]:
    """Generate the weak-scaling D/N input already partitioned over PEs.

    The paper generates 500 000 strings of length 500 *per PE* and
    distributes them randomly.  The return value is a list of per-PE string
    lists (the shuffled global instance dealt into equal blocks).
    """
    total = num_pes * strings_per_pe
    strings = dn_instance(total, dn, length, seed=seed, shuffle=True)
    return [
        strings[r * strings_per_pe : (r + 1) * strings_per_pe] for r in range(num_pes)
    ]


def random_strings(
    num_strings: int,
    min_len: int = 1,
    max_len: int = 30,
    alphabet_size: int = 26,
    seed: Optional[int] = None,
) -> List[bytes]:
    """Uniformly random strings; the workhorse input for unit/property tests."""
    if min_len < 0 or max_len < min_len:
        raise ValueError("invalid length range")
    rng = np.random.default_rng(seed)
    lengths = rng.integers(min_len, max_len + 1, size=num_strings)
    total = int(lengths.sum())
    chars = rng.integers(ord("a"), ord("a") + alphabet_size, size=total, dtype=np.uint8)
    out: List[bytes] = []
    pos = 0
    buf = chars.tobytes()
    for ln in lengths:
        ln = int(ln)
        out.append(buf[pos : pos + ln])
        pos += ln
    return out


# ---------------------------------------------------------------------------
# COMMONCRAWL-like synthetic web text
# ---------------------------------------------------------------------------

_WEB_MARKUP = [
    b"<html>",
    b"<head>",
    b"<title>",
    b"</div>",
    b"<p class=\"content\">",
    b"http://www.",
    b"https://",
    b"Copyright (c) ",
    b"All rights reserved.",
    b"<a href=\"/index.html\">",
    b"<meta charset=\"utf-8\">",
    b"&nbsp;",
]


def _zipf_word_vocabulary(rng: np.random.Generator, vocab_size: int) -> List[bytes]:
    """A vocabulary of pseudo-words with natural-language-like lengths."""
    vowels = b"aeiou"
    consonants = b"bcdfghjklmnpqrstvwxyz"
    words: List[bytes] = []
    for _ in range(vocab_size):
        syllables = int(rng.integers(1, 4))
        w = bytearray()
        for _ in range(syllables):
            w.append(consonants[int(rng.integers(0, len(consonants)))])
            w.append(vowels[int(rng.integers(0, len(vowels)))])
            if rng.random() < 0.4:
                w.append(consonants[int(rng.integers(0, len(consonants)))])
        words.append(bytes(w))
    return words


def commoncrawl_like(
    num_strings: int,
    avg_len: int = 40,
    vocab_size: int = 4000,
    duplicate_fraction: float = 0.45,
    markup_fraction: float = 0.35,
    unicode_fraction: float = 0.08,
    seed: Optional[int] = None,
) -> List[bytes]:
    """Synthetic substitute for the COMMONCRAWL input.

    The generator produces web-dump-like lines: Zipf-distributed words, a
    sizeable fraction of boiler-plate/markup lines that repeat verbatim
    (duplicates), and shared line prefixes — yielding a high D/N ratio
    (≈ 0.6–0.8), a large effective alphabet, ≈40-character lines and long
    LCPs, matching the statistics the paper reports (D/N = 0.68, average line
    40 chars, average LCP 60 % of the line).
    """
    rng = np.random.default_rng(seed)
    vocab = _zipf_word_vocabulary(rng, vocab_size)
    # Zipf ranks: probability ~ 1/rank
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()

    # a pool of boiler-plate lines that will be repeated verbatim
    boilerplate: List[bytes] = []
    for i in range(64):
        head = _WEB_MARKUP[i % len(_WEB_MARKUP)]
        words = rng.choice(vocab_size, size=4, p=probs)
        line = head + b" " + b" ".join(vocab[int(w)] for w in words)
        boilerplate.append(line)

    out: List[bytes] = []
    for _ in range(num_strings):
        u = rng.random()
        if u < duplicate_fraction:
            out.append(boilerplate[int(rng.integers(0, len(boilerplate)))])
            continue
        line = bytearray()
        if rng.random() < markup_fraction:
            line += _WEB_MARKUP[int(rng.integers(0, len(_WEB_MARKUP)))]
            line += b" "
        target = max(5, int(rng.normal(avg_len, avg_len * 0.35)))
        while len(line) < target:
            w = vocab[int(rng.choice(vocab_size, p=probs))]
            line += w
            if rng.random() < unicode_fraction:
                # non-ASCII bytes (UTF-8 encoded text fragments) drive the
                # large effective alphabet (242) of the real COMMONCRAWL dump
                line += bytes([int(rng.integers(0xC2, 0xDF)), int(rng.integers(0x80, 0xBF))])
            if rng.random() < 0.15:
                line += b", "
            else:
                line += b" "
        out.append(bytes(line[:target]))
    return out


def dna_reads(
    num_strings: int,
    read_len: int = 99,
    genome_len: Optional[int] = None,
    error_rate: float = 0.007,
    repeat_fraction: float = 0.5,
    num_repeat_sites: int = 40,
    seed: Optional[int] = None,
) -> List[bytes]:
    """Synthetic substitute for the DNAREADS input.

    Reads of (roughly) fixed length are sampled from a random reference
    genome with a small per-base error rate.  A ``repeat_fraction`` of the
    reads starts at one of a few repeat "hotspots" — mimicking the repetitive
    regions and duplicate reads of real WGS data that give the paper's
    DNAREADS corpus its D/N of 0.38 and an average LCP of ~30 % of a read —
    while the remaining reads start at uniformly random positions (D/N of the
    generated corpus lands in the 0.3–0.45 band for the default parameters).
    """
    rng = np.random.default_rng(seed)
    bases = np.frombuffer(b"ACGT", dtype=np.uint8)
    if genome_len is None:
        # coverage of roughly 8x keeps read overlaps realistic
        genome_len = max(read_len * 4, num_strings * read_len // 8)
    genome = bases[rng.integers(0, 4, size=genome_len)]

    max_start = max(1, genome_len - read_len)
    hotspot_positions = rng.integers(0, max_start, size=max(1, num_repeat_sites))

    out: List[bytes] = []
    from_hotspot = rng.random(num_strings) < repeat_fraction
    uniform_starts = rng.integers(0, max_start, size=num_strings)
    hotspot_picks = rng.integers(0, len(hotspot_positions), size=num_strings)
    for i in range(num_strings):
        st = int(hotspot_positions[hotspot_picks[i]]) if from_hotspot[i] else int(uniform_starts[i])
        read = genome[st : st + read_len].copy()
        if error_rate > 0:
            errs = rng.random(read.shape[0]) < error_rate
            if errs.any():
                read[errs] = bases[rng.integers(0, 4, size=int(errs.sum()))]
        out.append(read.tobytes())
    return out


def suffix_instance(
    text_len: int = 20000,
    alphabet_size: int = 26,
    max_suffix_len: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[bytes]:
    """All suffixes of a random text — the Section VII-E suffix-sorting input.

    The real instance uses Wikipedia text; a random text over a small alphabet
    reproduces the essential property ``D/N ≪ 1`` (distinguishing prefixes of
    suffixes are around ``log_sigma(text_len)`` characters, while the suffixes
    themselves average ``text_len / 2`` characters).  ``max_suffix_len`` can
    truncate suffixes to bound memory, which preserves D/N ≪ 1 as long as it
    stays much larger than ``log_sigma(text_len)``.
    """
    rng = np.random.default_rng(seed)
    chars = rng.integers(ord("a"), ord("a") + alphabet_size, size=text_len, dtype=np.uint8)
    text = chars.tobytes()
    if max_suffix_len is None:
        return [text[i:] for i in range(text_len)]
    return [text[i : i + max_suffix_len] for i in range(text_len)]


def duplicate_heavy(
    num_strings: int,
    num_distinct: int = 50,
    length: int = 20,
    seed: Optional[int] = None,
) -> List[bytes]:
    """Input with many exactly repeated strings.

    The paper notes that FKmerge crashes on inputs with many repeated strings
    (Section VII-D); this generator is used to test that our implementations
    handle heavy duplication (ties in splitters, zero-length LCP remainders).
    """
    rng = np.random.default_rng(seed)
    distinct = random_strings(num_distinct, length, length, seed=seed)
    picks = rng.integers(0, num_distinct, size=num_strings)
    return [distinct[int(i)] for i in picks]


# ---------------------------------------------------------------------------
# Registry used by the benchmark harness / examples
# ---------------------------------------------------------------------------

class GeneratorSpec:
    """A named, parameterised workload used by the benchmark harness."""

    def __init__(self, name: str, factory, **params):
        self.name = name
        self.factory = factory
        self.params = params

    def generate(self, num_strings: int, seed: Optional[int] = None) -> List[bytes]:
        """Instantiate the workload at ``num_strings`` strings."""
        return self.factory(num_strings, seed=seed, **self.params)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GeneratorSpec({self.name!r}, {self.params})"


_REGISTRY = {
    "dn0": lambda n, seed=None: dn_instance(n, 0.0, length=64, seed=seed),
    "dn25": lambda n, seed=None: dn_instance(n, 0.25, length=64, seed=seed),
    "dn50": lambda n, seed=None: dn_instance(n, 0.5, length=64, seed=seed),
    "dn75": lambda n, seed=None: dn_instance(n, 0.75, length=64, seed=seed),
    "dn100": lambda n, seed=None: dn_instance(n, 1.0, length=64, seed=seed),
    "commoncrawl": lambda n, seed=None: commoncrawl_like(n, seed=seed),
    "dnareads": lambda n, seed=None: dna_reads(n, seed=seed),
    "random": lambda n, seed=None: random_strings(n, seed=seed),
    "duplicates": lambda n, seed=None: duplicate_heavy(n, seed=seed),
}


def make_generator(name: str):
    """Look up a named generator (used by examples and the bench harness)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown generator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
