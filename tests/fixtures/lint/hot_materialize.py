"""Seeded bug: ``to_list()`` inside a packed hot-path function.

``decode_run`` is on the zero-copy hot path; materializing the packed
arena into python objects there re-introduces exactly the overhead the
packed representation exists to avoid.  Expected finding:
``wire-hot-materialize``.
"""


def decode_run(block):
    strings = block.to_list()
    return sorted(strings)
