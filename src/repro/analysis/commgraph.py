"""Comm-graph extraction: parse the package, summarise every rank program.

This module is the analyzer's front end.  It parses a source tree with
:mod:`ast`, indexes every function (including methods and nested
functions, with proper ``__qualname__``-style names), resolves
repro-internal calls through each module's imports, and extracts a
:class:`~repro.analysis.model.CommEvent` for every call on a function's
``comm`` parameter.  On top of the per-function summaries it provides

* :func:`transitive_closure` — the set of functions reachable from an
  entry point through resolved repro-internal calls (cycle safe);
* :func:`collective_sequence` — the spliced, call-site-ordered sequence
  of collective methods an entry point issues (the SPMD pass compares
  these across rank-dependent branches);
* :func:`detect_algorithms` — the statically visible
  ``AlgorithmRegistry`` entries (``AlgorithmEntry(...)`` constructions and
  ``register_algorithm(...)`` calls), mapping algorithm names to their
  rank-runner functions;
* :func:`build_commgraph` — the per-algorithm comm-graph JSON artifact
  (deterministic ordering, pinned by the test gate).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .model import (
    COLLECTIVE_METHODS,
    CommEvent,
    FunctionSummary,
    ModuleInfo,
    SuppressionIndex,
)

__all__ = [
    "PackageIndex",
    "parse_tree",
    "transitive_closure",
    "collective_sequence",
    "detect_algorithms",
    "build_commgraph",
]

#: methods of the ``Communicator`` protocol that the extractor records
_COMM_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "gather",
        "scatter",
        "allgather",
        "allreduce",
        "alltoall",
        "reduce",
        "record_exchange_collective",
        "send",
        "recv",
        "sendrecv",
        "isend",
        "irecv",
    }
)

#: positional argument layouts of the recorded methods (name -> parameter
#: names in positional order, ``None`` marking the payload slots the
#: extractor does not capture)
_SIGNATURES: Dict[str, Tuple[Optional[str], ...]] = {
    "send": (None, "peer", "tag"),
    "recv": ("peer", "tag"),
    "sendrecv": (None, "peer", "tag"),
    "isend": (None, "peer", "tag"),
    "irecv": ("peer", "tag"),
    "bcast": (None, "root"),
    "gather": (None, "root"),
    "scatter": (None, "root"),
    "reduce": (None, "op", "root"),
    "allreduce": (None, "op"),
    "allgather": (None,),
    "alltoall": (None,),
    "barrier": (),
    "record_exchange_collective": (None,),
}


def _unparse(node: Optional[ast.AST]) -> Optional[str]:
    """Source text of an expression node (``None`` passes through)."""
    if node is None:
        return None
    return ast.unparse(node)


class PackageIndex:
    """Everything the passes need about one parsed source tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        #: ``module:qualname`` -> the function's AST node (for re-walks)
        self.nodes: Dict[str, ast.AST] = {}
        #: per-module name -> ``module:qualname`` resolution table
        self._resolvers: Dict[str, Dict[str, str]] = {}
        self.suppressions = SuppressionIndex()

    # ------------------------------------------------------------------ parsing
    def add_package(self, root: Path, package: str) -> None:
        """Parse every ``*.py`` under ``root`` as modules of ``package``."""
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module = ".".join([package] + parts) if parts else package
            self.add_file(path, module)

    def add_file(self, path: Path, module: str) -> None:
        """Parse one source file under the given dotted module name."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        info = ModuleInfo(module=module, path=str(path), tree=tree, source=source)
        self.modules[module] = info
        self.suppressions.index_file(str(path), source)

    # ------------------------------------------------------------------ indexing
    def build(self) -> None:
        """Index functions, imports and comm events of all parsed modules."""
        # first pass: register every function key and each module's name
        # resolution table, so the summarisation pass can resolve calls into
        # modules that come later in parse order (and through re-exports)
        for info in self.modules.values():
            imports = _module_imports(info)
            resolver: Dict[str, str] = {}
            for qualname, node in _collect_functions(info):
                # a bare name refers to the module-level def; nested/method
                # names are only reachable through the qualname itself
                key = f"{info.module}:{qualname}"
                self.nodes[key] = node
                if "." not in qualname:
                    resolver[qualname] = key
            resolver.update(imports)
            self._resolvers[info.module] = resolver

        for info in self.modules.values():
            for qualname, node in _collect_functions(info):
                summary = _summarise_function(info, qualname, node, self)
                self.functions[summary.key] = summary

    def resolve_call(self, module: str, func: ast.expr) -> Optional[str]:
        """Resolve a call's target to a ``module:qualname`` key, if internal.

        Handles bare names (local defs and ``from X import name``) and
        one-level attribute calls on imported modules (``mod.func(...)``).
        Unresolvable targets — dynamic dispatch, stdlib, methods — return
        ``None`` and contribute nothing to the closure.
        """
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = self._resolvers.get(module, {}).get(func.value.id)
            if base is not None and base.endswith(":<module>"):
                target = f"{base[: -len(':<module>')]}:{func.attr}"
                return self._chase(target)
        return None

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare name in ``module`` to a function key, if internal."""
        return self._chase(self._resolvers.get(module, {}).get(name))

    def _chase(self, target: Optional[str], _hops: int = 0) -> Optional[str]:
        """Follow package re-exports (``from .sub import f`` in __init__).

        An import bound to ``repro.dist:hquick_sort`` where ``repro.dist``
        is a package resolves through that package's own import table to
        the defining module, ``repro.dist.hquick:hquick_sort``.
        """
        if target is None or _hops > 8:
            return None
        if target in self.nodes:
            return target
        module, _, name = target.partition(":")
        reexport = self._resolvers.get(module, {}).get(name)
        if reexport is not None and reexport != target:
            return self._chase(reexport, _hops + 1)
        return None


def _module_imports(info: ModuleInfo) -> Dict[str, str]:
    """Name -> ``module:qualname`` (or ``module:<module>``) import table."""
    table: Dict[str, str] = {}
    package_parts = info.module.split(".")
    for node in ast.walk(info.tree):  # type: ignore[arg-type]
        if isinstance(node, ast.ImportFrom):
            if node.level:
                # relative import: strip one part for the module itself plus
                # (level - 1) further packages
                base = package_parts[: len(package_parts) - node.level]
            else:
                base = []
            if node.module:
                base = base + node.module.split(".")
            target_module = ".".join(base)
            for alias in node.names:
                bound = alias.asname or alias.name
                table[bound] = f"{target_module}:{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                table[bound] = f"{alias.name}:<module>"
    return table


def _collect_functions(info: ModuleInfo) -> List[Tuple[str, ast.AST]]:
    """All function defs of a module with ``__qualname__``-style names."""
    found: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found.append((qualname, child))
                visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                visit(child, prefix)

    visit(info.tree, "")  # type: ignore[arg-type]
    return found


def _comm_param(node: ast.AST) -> Optional[str]:
    """The function's communicator parameter name, if it has one.

    By package convention (see :mod:`repro.mpi.comm`) rank programs and
    their helpers receive the communicator as a parameter named ``comm`` or
    one annotated ``Communicator``.
    """
    args = getattr(node, "args", None)
    if args is None:
        return None
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg == "comm":
            return "comm"
        annotation = _unparse(arg.annotation)
        if annotation and "Communicator" in annotation:
            return arg.arg
    return None


class _EventExtractor(ast.NodeVisitor):
    """Walk one function body collecting comm events and internal calls."""

    def __init__(
        self,
        info: ModuleInfo,
        qualname: str,
        comm_param: Optional[str],
        index: PackageIndex,
    ) -> None:
        self.info = info
        self.qualname = qualname
        self.comm_param = comm_param
        self.index = index
        self.events: List[CommEvent] = []
        self.calls: List[str] = []
        self.effects: List[Tuple[str, str]] = []
        self.phase_stack: List[str] = []

    # nested defs get their own summaries; do not descend into them
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: D102
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:  # noqa: D102
        pass

    def visit_With(self, node: ast.With) -> None:
        """Track static ``with comm.phase("...")`` labels."""
        labels: List[str] = []
        for item in node.items:
            label = self._phase_label(item.context_expr)
            if label is not None:
                labels.append(label)
        self.phase_stack.extend(labels)
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in labels:
            self.phase_stack.pop()

    def _phase_label(self, expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "phase"
            and self._is_comm(expr.func.value)
            and expr.args
        ):
            arg = expr.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return _unparse(arg) or ""
        return None

    def _is_comm(self, expr: ast.expr) -> bool:
        return (
            self.comm_param is not None
            and isinstance(expr, ast.Name)
            and expr.id == self.comm_param
        )

    def visit_Call(self, node: ast.Call) -> None:
        """Record a comm event or an internal call edge, then recurse."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and self._is_comm(func.value)
            and func.attr in _COMM_METHODS
        ):
            self.events.append(self._event(func.attr, node))
            self.effects.append(("event", func.attr))
        else:
            target = self.index.resolve_call(self.info.module, func)
            if target is not None:
                self.calls.append(target)
                self.effects.append(("call", target))
        self.generic_visit(node)

    def _event(self, method: str, node: ast.Call) -> CommEvent:
        layout = _SIGNATURES.get(method, ())
        values: Dict[str, Optional[str]] = {"root": None, "op": None, "tag": None, "peer": None}
        for position, arg in enumerate(node.args):
            if position < len(layout) and layout[position] is not None:
                values[layout[position]] = _unparse(arg)  # type: ignore[index]
        for keyword in node.keywords:
            if keyword.arg in values:
                values[keyword.arg] = _unparse(keyword.value)
        if method in _SIGNATURES and "tag" in _SIGNATURES[method]:
            # MPI default: tag 0 matches tag 0
            values["tag"] = values["tag"] or "0"
        return CommEvent(
            method=method,
            module=self.info.module,
            qualname=self.qualname,
            line=node.lineno,
            phase=self.phase_stack[-1] if self.phase_stack else "",
            root=values["root"],
            op=values["op"],
            tag=values["tag"],
            peer=values["peer"],
        )


def _summarise_function(
    info: ModuleInfo, qualname: str, node: ast.AST, index: PackageIndex
) -> FunctionSummary:
    """Build the :class:`FunctionSummary` of one function definition."""
    comm_param = _comm_param(node)
    extractor = _EventExtractor(info, qualname, comm_param, index)
    for stmt in getattr(node, "body", []):
        extractor.visit(stmt)
    return FunctionSummary(
        module=info.module,
        qualname=qualname,
        line=getattr(node, "lineno", 0),
        path=info.path,
        comm_param=comm_param,
        events=extractor.events,
        calls=extractor.calls,
        effects=extractor.effects,
    )


# ---------------------------------------------------------------------------
# closures and sequences
# ---------------------------------------------------------------------------

def transitive_closure(index: PackageIndex, entry: str) -> List[str]:
    """Function keys reachable from ``entry`` (entry first, then BFS order)."""
    seen: Set[str] = set()
    order: List[str] = []
    frontier = [entry]
    while frontier:
        key = frontier.pop(0)
        if key in seen or key not in index.functions:
            continue
        seen.add(key)
        order.append(key)
        frontier.extend(index.functions[key].calls)
    return order


def collective_sequence(
    index: PackageIndex, entry: str, _stack: Optional[Set[str]] = None
) -> List[str]:
    """Spliced collective-method sequence issued from ``entry``.

    Point-to-point posts are omitted (they match pairwise across ranks
    rather than by global order); calls to resolved repro functions splice
    the callee's sequence at the call site; recursion is cut at the cycle.
    """
    stack = _stack if _stack is not None else set()
    if entry in stack or entry not in index.functions:
        return []
    stack = stack | {entry}
    summary = index.functions[entry]
    out: List[str] = []
    for kind, value in summary.effects:
        if kind == "event":
            if value in COLLECTIVE_METHODS:
                out.append(value)
        else:
            out.extend(collective_sequence(index, value, stack))
    return out


# ---------------------------------------------------------------------------
# algorithm registry detection
# ---------------------------------------------------------------------------

def detect_algorithms(index: PackageIndex) -> Dict[str, str]:
    """Statically visible registry entries: algorithm name -> function key.

    Finds ``AlgorithmEntry("name", runner, ...)`` constructions and
    ``register_algorithm("name", runner, ...)`` calls anywhere in the tree
    and resolves ``runner`` through the defining module's import table, so
    both the built-in table and third-party registrations that live inside
    the scanned tree are analyzed.
    """
    algorithms: Dict[str, str] = {}
    for info in index.modules.values():
        for node in ast.walk(info.tree):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in ("AlgorithmEntry", "register_algorithm"):
                continue
            if len(node.args) < 2:
                continue
            label, runner = node.args[0], node.args[1]
            if not (isinstance(label, ast.Constant) and isinstance(label.value, str)):
                continue
            if not isinstance(runner, ast.Name):
                continue
            target = index.resolve_name(info.module, runner.id)
            if target is not None:
                algorithms[label.value] = target
    return algorithms


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


# ---------------------------------------------------------------------------
# the comm-graph artifact
# ---------------------------------------------------------------------------

def build_commgraph(index: PackageIndex, name: str, entry: str) -> Dict[str, object]:
    """The per-algorithm comm-graph JSON (schema in docs/ANALYSIS.md).

    Deterministic by construction: functions are keyed and sorted by
    ``module:qualname``, events stay in source order, and the spliced
    collective sequence is a flat list of method names.
    """
    closure = transitive_closure(index, entry)
    functions: Dict[str, object] = {}
    for key in sorted(closure):
        summary = index.functions[key]
        if not summary.events and not summary.calls:
            continue
        functions[key] = {
            "path": summary.path,
            "line": summary.line,
            "events": [event.to_dict() for event in summary.events],
            "calls": sorted(set(summary.calls)),
        }
    return {
        "algorithm": name,
        "entry": entry,
        "collective_sequence": collective_sequence(index, entry),
        "functions": functions,
        "schema": "repro.analysis/commgraph/v1",
    }


def parse_tree(
    root: Path,
    package: str = "repro",
    extra_paths: Sequence[Path] = (),
) -> PackageIndex:
    """Parse ``root`` as ``package`` plus loose extra files; build the index.

    ``extra_paths`` entries may be files or directories; they are indexed
    under synthetic ``lintfixture.<stem>`` module names so fixtures never
    shadow real package modules.
    """
    index = PackageIndex()
    if root is not None:
        index.add_package(root, package)
    for extra in extra_paths:
        extra = Path(extra)
        files: Iterable[Path]
        if extra.is_dir():
            files = sorted(extra.rglob("*.py"))
        else:
            files = [extra]
        for path in files:
            index.add_file(path, f"lintfixture.{path.stem}")
    index.build()
    return index
