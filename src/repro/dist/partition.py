"""Regular sampling and bucket computation (Section V-A, Theorems 2 and 3).

All functions here are pure, per-PE helpers: they act on one rank's sorted
local string array and never touch the communicator, so Theorems 2/3 can be
unit-tested without a running machine.  :mod:`repro.dist.splitters` lifts
them into the distributed splitter-determination protocol.

Two regular sampling schemes are implemented:

* *string-based*: ``v`` samples at equidistant positions of the local array
  — bounds the number of **strings** per bucket (Theorem 2);
* *character-based*: ``v`` samples at equidistant positions of the local
  array's character mass (optionally with caller-supplied weights, e.g. the
  approximated distinguishing prefix lengths used by PDMS) — bounds the
  number of **characters** per bucket (Theorem 3), which is what keeps the
  skewed instances of Section VII-E balanced.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..strings.packed import PackedStringArray, packed_bucket_boundaries

__all__ = [
    "string_based_samples",
    "character_based_samples",
    "select_splitters",
    "bucket_boundaries",
    "split_into_buckets",
    "bucket_sizes_upper_bound_strings",
    "bucket_sizes_upper_bound_chars",
]


def string_based_samples(sorted_strings: Sequence[bytes], v: int) -> List[bytes]:
    """``v`` regular samples of a sorted local array (Theorem 2's scheme).

    Sample ``k`` sits at position ``(k+1)·n/(v+1)`` (1-based), i.e. the
    samples split the local array into ``v+1`` equal parts.  Small arrays
    yield repeated samples rather than fewer of them, so every PE always
    contributes exactly ``v`` samples to the global sample.
    """
    n = len(sorted_strings)
    if n == 0 or v <= 0:
        return []
    return [
        sorted_strings[max(0, ((k + 1) * n) // (v + 1) - 1)] for k in range(v)
    ]


def character_based_samples(
    sorted_strings: Sequence[bytes],
    v: int,
    weights: Optional[Sequence[int]] = None,
) -> List[bytes]:
    """``v`` samples at equidistant positions of the character mass (Theorem 3).

    ``weights`` defaults to the string lengths; PDMS passes the approximated
    distinguishing prefix lengths instead so that splitters balance the data
    that is actually communicated.  All-zero weights fall back to
    string-based sampling.
    """
    n = len(sorted_strings)
    if weights is not None and len(weights) != n:
        raise ValueError(
            f"weights length {len(weights)} != number of strings {n}"
        )
    if n == 0 or v <= 0:
        return []
    if weights is None and isinstance(sorted_strings, PackedStringArray):
        # packed fast path: the cumulative character mass is one cumsum and
        # all v sample positions fall out of a single searchsorted
        cumulative_np = np.cumsum(sorted_strings.lengths)
        total = int(cumulative_np[-1])
        if total <= 0:
            return string_based_samples(sorted_strings, v)
        targets = (np.arange(1, v + 1, dtype=np.int64) * total) // (v + 1)
        idx = np.minimum(n - 1, np.searchsorted(cumulative_np, targets, side="right"))
        return [sorted_strings[int(i)] for i in idx]
    if weights is None:
        weights = [len(s) for s in sorted_strings]
    total = sum(weights)
    if total <= 0:
        return string_based_samples(sorted_strings, v)
    cumulative = list(accumulate(weights))
    out: List[bytes] = []
    for k in range(v):
        target = ((k + 1) * total) // (v + 1)
        idx = min(n - 1, bisect_right(cumulative, target))
        out.append(sorted_strings[idx])
    return out


def select_splitters(sorted_sample: Sequence[bytes], parts: int) -> List[bytes]:
    """``parts - 1`` splitters at equidistant ranks of the global sorted sample."""
    m = len(sorted_sample)
    if parts <= 1 or m == 0:
        return []
    return [
        sorted_sample[min(m - 1, max(0, ((j + 1) * m) // parts - 1))]
        for j in range(parts - 1)
    ]


def bucket_boundaries(
    sorted_strings: Sequence[bytes], splitters: Sequence[bytes]
) -> List[int]:
    """Cumulative bucket boundaries of a sorted local array.

    Bucket ``j`` holds the strings in ``(f_{j-1}, f_j]`` — ties with a
    splitter go to the *lower* bucket, which is what makes exact duplicates
    land on a single PE.  The return value has ``len(splitters) + 2``
    entries, starting at 0 and ending at ``len(sorted_strings)``.

    Packed inputs dispatch to the ``np.searchsorted`` kernel of
    :mod:`repro.strings.packed`; the boundaries are identical.
    """
    if isinstance(sorted_strings, PackedStringArray):
        return packed_bucket_boundaries(sorted_strings, splitters)
    for i in range(1, len(splitters)):
        if splitters[i - 1] > splitters[i]:
            raise ValueError("splitters must be sorted")
    bounds = [0]
    for f in splitters:
        bounds.append(bisect_right(sorted_strings, f, lo=bounds[-1]))
    bounds.append(len(sorted_strings))
    return bounds


def split_into_buckets(
    sorted_strings: Sequence[bytes],
    lcps: Sequence[int],
    splitters: Sequence[bytes],
) -> List[Tuple[List[bytes], List[int]]]:
    """Cut a sorted local array (with LCP array) into per-destination buckets.

    The LCP values inside a bucket stay valid because the bucket is a
    contiguous run; only the first entry is reset to 0 (its predecessor goes
    to a different PE).

    With a packed input the buckets are **zero-copy views** of the local
    array (shared character buffer, narrowed offsets) paired with ``int64``
    LCP slices — no string data is moved until the exchange serialises it.
    """
    if len(sorted_strings) != len(lcps):
        raise ValueError(
            f"strings ({len(sorted_strings)}) and lcps ({len(lcps)}) "
            "must have equal length"
        )
    bounds = bucket_boundaries(sorted_strings, splitters)
    if isinstance(sorted_strings, PackedStringArray):
        lcps_np = np.asarray(lcps, dtype=np.int64)
        packed_buckets: List[Tuple[PackedStringArray, np.ndarray]] = []
        for j in range(len(bounds) - 1):
            lo, hi = bounds[j], bounds[j + 1]
            bucket_lcps = lcps_np[lo:hi].copy()
            if bucket_lcps.size:
                bucket_lcps[0] = 0
            packed_buckets.append((sorted_strings[lo:hi], bucket_lcps))
        return packed_buckets
    buckets: List[Tuple[List[bytes], List[int]]] = []
    for j in range(len(bounds) - 1):
        lo, hi = bounds[j], bounds[j + 1]
        bucket_strings = list(sorted_strings[lo:hi])
        bucket_lcps = list(lcps[lo:hi])
        if bucket_lcps:
            bucket_lcps[0] = 0
        buckets.append((bucket_strings, bucket_lcps))
    return buckets


def bucket_sizes_upper_bound_strings(n: int, p: int, v: int) -> float:
    """Theorem 2: with ``v`` regular samples per PE, every bucket receives at
    most ``n/p + n/v`` strings (up to rounding of the sample positions)."""
    if p <= 0 or v <= 0:
        raise ValueError("p and v must be positive")
    return n / p + n / v


def bucket_sizes_upper_bound_chars(
    total_chars: int, p: int, v: int, max_len: int
) -> float:
    """Theorem 3: with ``v`` character-based samples per PE, every bucket
    receives at most ``N/p + N/v + p·l_hat`` characters, where ``l_hat`` is
    the longest string (each sample position is quantised to a string
    boundary, costing up to one string length per contributing PE)."""
    if p <= 0 or v <= 0:
        raise ValueError("p and v must be positive")
    if max_len < 0:
        raise ValueError("max_len must be non-negative")
    return total_chars / p + total_chars / v + p * max_len
