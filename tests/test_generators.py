"""Unit tests for the workload generators (Section VII-A inputs)."""

import pytest

from repro.strings.generators import (
    commoncrawl_like,
    dn_instance,
    dn_instance_for_pes,
    dna_reads,
    duplicate_heavy,
    make_generator,
    random_strings,
    skewed_dn_instance,
    suffix_instance,
)
from repro.strings.lcp import dn_ratio, merge_lcp_statistics


class TestDnInstance:
    def test_counts_and_lengths(self):
        data = dn_instance(200, 0.5, length=80, seed=1)
        assert len(data) == 200
        assert all(len(s) == 80 for s in data)

    def test_all_strings_distinct(self):
        data = dn_instance(500, 0.5, length=64, seed=2)
        assert len(set(data)) == 500

    def test_dn_zero_distinguishes_at_front(self):
        data = dn_instance(100, 0.0, length=64, seed=3)
        # no shared filler prefix: the first few characters already differ
        assert dn_ratio(data) < 0.15

    def test_dn_one_distinguishes_at_back(self):
        data = dn_instance(100, 1.0, length=64, seed=3)
        assert dn_ratio(data) > 0.9

    def test_intermediate_ratios_are_ordered(self):
        ratios = [dn_ratio(dn_instance(150, r, length=64, seed=4)) for r in (0.25, 0.5, 0.75)]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_deterministic_given_seed(self):
        a = dn_instance(50, 0.5, seed=9)
        b = dn_instance(50, 0.5, seed=9)
        assert a == b

    def test_shuffle_flag(self):
        unshuffled = dn_instance(50, 0.0, length=16, seed=5, shuffle=False)
        assert unshuffled == sorted(unshuffled)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            dn_instance(10, -0.1)
        with pytest.raises(ValueError):
            dn_instance(10, 1.5)
        with pytest.raises(ValueError):
            dn_instance(10, 0.5, length=0)


class TestSkewedDnInstance:
    def test_padded_strings_are_longer(self):
        data = skewed_dn_instance(200, 0.5, length=50, seed=1)
        lengths = sorted({len(s) for s in data})
        assert lengths == [50, 200]

    def test_pad_fraction_respected(self):
        data = skewed_dn_instance(200, 0.5, length=50, pad_fraction=0.2, seed=1)
        long_count = sum(1 for s in data if len(s) == 200)
        assert long_count == pytest.approx(40, abs=1)

    def test_padding_does_not_change_distinguishing_prefixes(self):
        base = dn_instance(150, 0.5, length=50, seed=2, shuffle=False)
        skew = skewed_dn_instance(150, 0.5, length=50, seed=2)
        # total D identical: the padding never needs to be inspected
        from repro.strings.lcp import distinguishing_prefix_size

        assert distinguishing_prefix_size(base) == distinguishing_prefix_size(skew)


class TestDnInstanceForPes:
    def test_shapes(self):
        blocks = dn_instance_for_pes(4, 50, 0.5, length=32, seed=1)
        assert len(blocks) == 4
        assert all(len(b) == 50 for b in blocks)

    def test_union_is_the_global_instance(self):
        blocks = dn_instance_for_pes(3, 40, 0.25, length=32, seed=2)
        flat = [s for b in blocks for s in b]
        assert len(set(flat)) == 120


class TestRandomStrings:
    def test_length_bounds(self):
        data = random_strings(300, 2, 7, seed=1)
        assert all(2 <= len(s) <= 7 for s in data)

    def test_alphabet_bound(self):
        data = random_strings(100, 1, 10, alphabet_size=3, seed=2)
        assert set(b"".join(data)) <= set(b"abc")

    def test_zero_length_allowed(self):
        data = random_strings(50, 0, 2, seed=3)
        assert len(data) == 50

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            random_strings(10, 5, 2)


class TestCommoncrawlLike:
    def test_statistics_in_paper_ballpark(self):
        corpus = commoncrawl_like(4000, seed=7)
        ratio = dn_ratio(corpus)
        _, lcp_frac = merge_lcp_statistics(corpus)
        avg_len = sum(len(s) for s in corpus) / len(corpus)
        # paper: D/N = 0.68, LCP fraction 0.60, average line 40 characters
        assert 0.45 <= ratio <= 0.85
        assert 0.40 <= lcp_frac <= 0.75
        assert 25 <= avg_len <= 60

    def test_contains_duplicate_lines(self):
        corpus = commoncrawl_like(2000, seed=1)
        assert len(set(corpus)) < len(corpus)

    def test_alphabet_is_large(self):
        corpus = commoncrawl_like(2000, seed=1)
        assert len({b for s in corpus for b in s}) > 60

    def test_deterministic(self):
        assert commoncrawl_like(100, seed=5) == commoncrawl_like(100, seed=5)


class TestDnaReads:
    def test_alphabet_is_acgt(self):
        reads = dna_reads(500, seed=1)
        assert set(b"".join(reads)) <= set(b"ACGT")

    def test_read_length(self):
        reads = dna_reads(200, read_len=77, seed=2)
        assert all(len(r) == 77 for r in reads)

    def test_dn_in_paper_ballpark(self):
        reads = dna_reads(3000, seed=11)
        # paper: D/N = 0.38 for DNAREADS
        assert 0.2 <= dn_ratio(reads) <= 0.6

    def test_no_repeats_lowers_dn(self):
        with_repeats = dna_reads(1500, seed=3)
        without = dna_reads(1500, repeat_fraction=0.0, seed=3)
        assert dn_ratio(without) < dn_ratio(with_repeats)


class TestSuffixInstance:
    def test_number_of_suffixes(self):
        data = suffix_instance(text_len=100, seed=1)
        assert len(data) == 100
        assert sorted({len(s) for s in data}) == list(range(1, 101))

    def test_truncation(self):
        data = suffix_instance(text_len=100, max_suffix_len=10, seed=1)
        assert max(len(s) for s in data) == 10

    def test_dn_is_small(self):
        data = suffix_instance(text_len=1500, alphabet_size=4, max_suffix_len=200, seed=2)
        assert dn_ratio(data) < 0.1


class TestDuplicateHeavy:
    def test_number_of_distinct_values(self):
        data = duplicate_heavy(1000, num_distinct=20, seed=1)
        assert len(set(data)) <= 20
        assert len(data) == 1000


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["dn0", "dn50", "dn100", "commoncrawl", "dnareads", "random", "duplicates"]
    )
    def test_named_generators_produce_strings(self, name):
        gen = make_generator(name)
        data = gen(50, seed=1)
        assert len(data) == 50
        assert all(isinstance(s, bytes) for s in data)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_generator("nope")
