"""Setup shim.

Kept so that ``python setup.py develop`` works on environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package
available offline); all metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
