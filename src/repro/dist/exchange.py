"""The all-to-all string exchange (Section V, Step 3).

Each PE cuts its locally sorted array into ``p`` buckets and delivers bucket
``j`` to PE ``j`` in one personalised all-to-all.  Two message formats are
available:

* :class:`StringBlock` — strings verbatim, each with a varint length header
  (MS-simple; an LCP array may optionally ride along);
* :class:`LcpCompressedBlock` — LCP front coding: the first string travels
  in full, every following string only as its suffix past the LCP with its
  predecessor (MS, PDMS).  The receiver reconstructs the full strings from
  the previous string and the LCP value, so the LCP array rides along for
  free *and* pays for itself.

Both classes implement ``wire_bytes`` so the traffic meter charges exactly
what a real implementation would put on the wire; the Python objects
themselves move by reference inside the simulated machine.

Both classes are **dual-backed**: constructed from a
:class:`repro.strings.packed.PackedStringArray` bucket (the hot path) all
encoding, wire accounting and decoding run as vectorized numpy kernels over
the contiguous byte buffer; constructed from ``list[bytes]`` the original
scalar code runs.  Wire sizes and decoded contents are bit-identical either
way — the benchmark suite pins this across all six ``dsort`` algorithms.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults.checksum import (
    CHECKSUM_WIRE_BYTES,
    block_checksum,
    wire_checksums_enabled,
)
from ..faults.errors import CorruptFrameError
from ..mpi.comm import Communicator, waitany
from ..mpi.serialization import (
    WireSized,
    packed_wire_bytes,
    varint_size,
    varint_total,
    wire_size,
)
from ..net.router import (
    ExchangeTopology,
    exchange_topology_name,
    resolve_topology,
    routed_exchange,
    routed_exchange_iter,
    set_exchange_topology,
    use_exchange_topology,
)
from ..strings.lcp import lcp_array
from ..strings.packed import (
    PackedStringArray,
    front_code,
    front_decode,
    packed_lcp_array,
)

__all__ = [
    "StringBlock",
    "LcpCompressedBlock",
    "exchange_buckets",
    "exchange_buckets_async",
    "async_exchange_enabled",
    "set_async_exchange",
    "use_async_exchange",
    "exchange_topology_name",
    "set_exchange_topology",
    "use_exchange_topology",
]

# tag base for the split-phase exchange, outside the ranges hquick claims
# (100/200/300 + dimension), so mixed SPMD programs keep the engine's
# tag-ordering diagnostics meaningful
_TAG_ASYNC_EXCHANGE = 450

_ASYNC_ENABLED = os.environ.get("REPRO_ASYNC_EXCHANGE", "0").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def async_exchange_enabled() -> bool:
    """Whether ``dsort``'s rank programs use the split-phase exchange.

    Defaults to the ``REPRO_ASYNC_EXCHANGE`` environment variable (off unless
    set to ``1``/``true``/``yes``/``on``).  The toggle changes *when* work
    happens, never *what* is computed: outputs, LCP arrays and wire-byte
    accounting are bit-identical either way (pinned by
    ``tests/test_async_exchange.py`` across all six algorithms).
    """
    return _ASYNC_ENABLED


def set_async_exchange(flag: bool) -> bool:
    """Enable/disable the split-phase exchange; returns the previous setting."""
    global _ASYNC_ENABLED
    previous = _ASYNC_ENABLED
    _ASYNC_ENABLED = bool(flag)
    return previous


@contextmanager
def use_async_exchange(flag: bool):
    """Context manager form of :func:`set_async_exchange` (for tests/benchmarks)."""
    previous = set_async_exchange(flag)
    try:
        yield
    finally:
        set_async_exchange(previous)

Strings = Union[Sequence[bytes], PackedStringArray]
Lcps = Union[Sequence[int], np.ndarray, None]


class StringBlock(WireSized):
    """One bucket sent verbatim, optionally together with its LCP array.

    When wire checksums are enabled (``REPRO_WIRE_CHECKSUMS`` /
    :func:`repro.faults.set_wire_checksums`) the block is *sealed* at
    construction: a CRC32 of its content travels with it (4 extra wire
    bytes) and :meth:`decode` / :meth:`decode_run` verify the seal, raising
    :class:`~repro.faults.errors.CorruptFrameError` on mismatch.
    """

    def __init__(self, strings: Strings, lcps: Lcps = None):
        if lcps is not None and len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        if isinstance(strings, PackedStringArray):
            self._packed: Optional[PackedStringArray] = strings
            self.strings: Sequence[bytes] = strings
            self.lcps = None if lcps is None else np.asarray(lcps, dtype=np.int64)
        else:
            self._packed = None
            self.strings = list(strings)
            self.lcps = list(lcps) if lcps is not None else None
        self._crc: Optional[int] = (
            self._compute_crc() if wire_checksums_enabled() else None
        )

    def _compute_crc(self) -> int:
        """CRC32 of the block's content, recomputed from scratch (bulk)."""
        content = self._packed if self._packed is not None else self.strings
        return block_checksum(content, self.lcps)

    def content_crc(self) -> int:
        """The checksum the envelope layer folds in (the seal, or fresh)."""
        return self._crc if self._crc is not None else self._compute_crc()

    def _verify_seal(self) -> None:
        if self._crc is not None and self._compute_crc() != self._crc:
            raise CorruptFrameError(
                "StringBlock checksum mismatch: block content does not match "
                "its seal (frame corrupted in transit)"
            )

    def decode(self) -> Tuple[List[bytes], List[int]]:
        """``(strings, lcps)``; the LCP array is recomputed when not shipped."""
        self._verify_seal()
        if self._packed is not None:
            strings = self._packed.to_list()
            if self.lcps is not None:
                return strings, self.lcps.tolist()
            return strings, packed_lcp_array(self._packed).tolist()
        strings = list(self.strings)
        lcps = list(self.lcps) if self.lcps is not None else lcp_array(strings)
        return strings, lcps

    def decode_run(self) -> Tuple[Strings, Lcps]:
        """Decode to the natural representation of the sent bucket.

        A packed-backed block yields its :class:`PackedStringArray` and an
        ``int64`` LCP array **without materialising** ``list[bytes]`` — the
        downstream local sort and merge consume the packed run directly.  A
        list-backed block behaves exactly like :meth:`decode`.  Contents are
        bit-identical either way.
        """
        self._verify_seal()
        if self._packed is not None:
            if self.lcps is not None:
                return self._packed, self.lcps
            return self._packed, packed_lcp_array(self._packed)
        return self.decode()

    def wire_bytes(self) -> int:
        """Varint count + per-string (varint length, payload) [+ varint LCPs].

        A sealed block additionally carries its 4-byte CRC32 on the wire.
        """
        seal = CHECKSUM_WIRE_BYTES if self._crc is not None else 0
        if self._packed is not None:
            return packed_wire_bytes(self._packed, self.lcps) + seal
        total = varint_size(len(self.strings))
        for s in self.strings:
            total += varint_size(len(s)) + len(s)
        if self.lcps is not None:
            total += sum(varint_size(h) for h in self.lcps)
        return total + seal


class LcpCompressedBlock(WireSized):
    """One bucket with LCP front coding: ``(lcp, suffix-past-lcp)`` per string.

    Like :class:`StringBlock`, the block is sealed with a content CRC32 when
    wire checksums are enabled, verified at decode time (4 extra wire bytes;
    :class:`~repro.faults.errors.CorruptFrameError` on mismatch).  The seal
    covers the front-coded wire form — LCPs and suffixes — not the
    zero-copy ``original`` reference.
    """

    def __init__(self, entries: Sequence[Tuple[int, bytes]]):
        self.entries: Optional[List[Tuple[int, bytes]]] = list(entries)
        self._lcps: Optional[np.ndarray] = None
        self._suffixes: Optional[PackedStringArray] = None
        self._original: Optional[PackedStringArray] = None
        self._crc: Optional[int] = (
            self._compute_crc() if wire_checksums_enabled() else None
        )

    @classmethod
    def _from_packed(
        cls,
        lcps: np.ndarray,
        suffixes: PackedStringArray,
        original: Optional[PackedStringArray] = None,
    ) -> "LcpCompressedBlock":
        blk = cls.__new__(cls)
        blk.entries = None
        blk._lcps = lcps
        blk._suffixes = suffixes
        blk._original = original
        blk._crc = blk._compute_crc() if wire_checksums_enabled() else None
        return blk

    def _compute_crc(self) -> int:
        """CRC32 of the front-coded wire content, recomputed from scratch.

        Folds the suffix payload and the LCP array in bulk
        (:func:`block_checksum`), so a packed-backed and an entry-backed
        block with the same front-coded content seal identically.
        """
        if self._suffixes is not None:
            return block_checksum(self._suffixes, self._lcps)
        if not self.entries:
            return block_checksum((), np.zeros(0, dtype=np.int64))
        lcps, suffixes = zip(*self.entries)
        return block_checksum(
            suffixes, np.fromiter(lcps, dtype=np.int64, count=len(suffixes))
        )

    def content_crc(self) -> int:
        """The checksum the envelope layer folds in (the seal, or fresh)."""
        return self._crc if self._crc is not None else self._compute_crc()

    def _verify_seal(self) -> None:
        if self._crc is not None and self._compute_crc() != self._crc:
            raise CorruptFrameError(
                "LcpCompressedBlock checksum mismatch: block content does "
                "not match its seal (frame corrupted in transit)"
            )

    @classmethod
    def encode(cls, strings: Strings, lcps: Lcps) -> "LcpCompressedBlock":
        """Front-code a sorted run with its LCP array.

        The first string always travels in full; LCP values are clipped
        defensively (an LCP can never exceed either neighbour).  Packed
        buckets are encoded by the batched :func:`repro.strings.packed.front_code`
        kernel — one gather builds the whole suffix buffer.
        """
        if len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        if isinstance(strings, PackedStringArray):
            clipped, suffixes = front_code(strings, lcps)
            # keep a reference to the encoded run: the simulated machine
            # delivers messages zero-copy (exactly as StringBlock does), so
            # the receiver charges wire bytes for the front-coded form but
            # does not redo the byte-level reconstruction that
            # :func:`front_decode` implements (and the tests pin)
            return cls._from_packed(clipped, suffixes, original=strings)
        entries: List[Tuple[int, bytes]] = []
        prev_len = 0
        for i, (s, h) in enumerate(zip(strings, lcps)):
            h = 0 if i == 0 else min(h, len(s), prev_len)
            entries.append((h, s[h:]))
            prev_len = len(s)
        return cls(entries)

    def __len__(self) -> int:
        if self._suffixes is not None:
            return len(self._suffixes)
        return len(self.entries)

    @property
    def chars_sent(self) -> int:
        """Characters on the wire after front coding (suffixes only)."""
        if self._suffixes is not None:
            return self._suffixes.num_chars
        return sum(len(suffix) for _, suffix in self.entries)

    def decode(self) -> Tuple[List[bytes], List[int]]:
        """Reconstruct ``(strings, lcps)`` from the front-coded entries."""
        self._verify_seal()
        if self._suffixes is not None:
            if self._original is not None:
                return self._original.to_list(), self._lcps.tolist()
            decoded = front_decode(self._lcps, self._suffixes)
            return decoded.to_list(), self._lcps.tolist()
        strings: List[bytes] = []
        lcps: List[int] = []
        prev = b""
        for h, suffix in self.entries:
            if h > len(prev):
                raise ValueError(
                    f"corrupt LCP-compressed block: LCP {h} exceeds the "
                    f"previous string's length {len(prev)}"
                )
            s = prev[:h] + suffix
            strings.append(s)
            lcps.append(h)
            prev = s
        return strings, lcps

    def decode_run(self) -> Tuple[Strings, Lcps]:
        """Decode to the natural representation of the sent bucket.

        A packed-backed block yields a :class:`PackedStringArray` plus the
        ``int64`` LCP array **without materialising** ``list[bytes]``: the
        reference-shipped original when present (the simulated machine
        delivers messages zero-copy), otherwise the vectorized
        :func:`repro.strings.packed.front_decode` reconstruction.  An
        entry-backed block behaves exactly like :meth:`decode`.
        """
        self._verify_seal()
        if self._suffixes is not None:
            if self._original is not None:
                return self._original, self._lcps
            return front_decode(self._lcps, self._suffixes), self._lcps
        return self.decode()

    def wire_bytes(self) -> int:
        """Varint count + per-string (varint LCP, varint suffix length, suffix).

        A sealed block additionally carries its 4-byte CRC32 on the wire.
        """
        seal = CHECKSUM_WIRE_BYTES if self._crc is not None else 0
        if self._suffixes is not None:
            return (
                varint_size(len(self._suffixes))
                + varint_total(self._lcps)
                + varint_total(self._suffixes.lengths)
                + self._suffixes.num_chars
                + seal
            )
        total = varint_size(len(self.entries))
        for h, suffix in self.entries:
            total += varint_size(h) + varint_size(len(suffix)) + len(suffix)
        return total + seal


def _run_chars(strings: Strings) -> int:
    """Total characters of a decoded run (packed or list) for work accounting."""
    if isinstance(strings, PackedStringArray):
        return strings.num_chars
    return sum(len(s) for s in strings)


def _validate_buckets(
    comm: Communicator,
    buckets: Sequence[Tuple[Strings, Lcps]],
    payloads: Optional[Sequence[Any]],
) -> None:
    if len(buckets) != comm.size:
        raise ValueError(
            f"need one bucket per PE ({comm.size}), got {len(buckets)}"
        )
    if payloads is not None and len(payloads) != comm.size:
        raise ValueError("payloads must have one entry per PE")


def _encode_blocks(
    buckets: Sequence[Tuple[Strings, Lcps]],
    lcp_compression: bool,
    ship_lcps: bool,
) -> List[WireSized]:
    """Encode per-destination buckets into wire blocks (shared by both paths)."""
    if lcp_compression:
        return [
            LcpCompressedBlock.encode(strings, lcps) for strings, lcps in buckets
        ]
    return [
        StringBlock(strings, lcps if ship_lcps and lcps is not None else None)
        for strings, lcps in buckets
    ]


def exchange_buckets(
    comm: Communicator,
    buckets: Sequence[Tuple[Strings, Lcps]],
    lcp_compression: bool = False,
    payloads: Optional[Sequence[Any]] = None,
    ship_lcps: bool = True,
    topology: Union[str, ExchangeTopology, None] = None,
):
    """Deliver bucket ``j`` to PE ``j``; return the received runs.

    ``buckets`` must contain exactly ``comm.size`` ``(strings, lcps)`` pairs
    (either ``list[bytes]`` + ``list[int]`` or packed arrays + ``int64``
    arrays).  The return value has one entry per *source* PE:
    ``(strings, lcps)`` tuples, or ``(strings, lcps, payload)`` when
    ``payloads`` supplies one extra (wire-accounted) object per destination —
    PDMS uses this to ship each bucket's origin offset alongside the
    prefixes.

    Without ``lcp_compression`` the caller's LCP arrays ride along as varints
    (``ship_lcps=True``, the default) instead of being silently dropped and
    recomputed O(N) at the receiver.  Baselines that genuinely have no LCP
    machinery on the wire (FKmerge, MS-simple) pass ``ship_lcps=False`` to
    keep their message format — and their measured traffic — faithful to the
    paper; their receivers then recompute the LCP arrays locally.

    ``topology`` selects the delivery strategy (Section II): ``"direct"``
    (one message per destination — the default), ``"hypercube"`` or
    ``"grid"`` (multi-level store-and-forward routing through
    :mod:`repro.net.router`), or ``None`` to inherit the process-wide
    setting (``REPRO_EXCHANGE_TOPOLOGY`` /
    :func:`use_exchange_topology`, scoped per session by
    :class:`repro.session.Cluster`).  Routing changes startup counts and the
    measured total volume (forwarded bytes are attributed separately) but
    never the decoded runs or the origin wire bytes.
    """
    _validate_buckets(comm, buckets, payloads)
    topo = resolve_topology(topology)

    with comm.phase("exchange"):
        blocks = _encode_blocks(buckets, lcp_compression, ship_lcps)
        if payloads is None:
            messages: List[Any] = list(blocks)
        else:
            messages = [(blk, pay) for blk, pay in zip(blocks, payloads)]
        if topo.is_direct:
            received = comm.alltoall(messages)
        else:
            sizes = [wire_size(m) for m in messages]
            received = routed_exchange(comm, topo, messages, sizes)

        out = []
        decoded_chars = 0
        for message in received:
            if payloads is None:
                block, payload = message, None
            else:
                block, payload = message
            strings, lcps = block.decode_run()
            decoded_chars += _run_chars(strings)
            out.append(
                (strings, lcps) if payloads is None else (strings, lcps, payload)
            )
        comm.record_local_work(decoded_chars, sum(len(r[0]) for r in out))
    return out


def exchange_buckets_async(
    comm: Communicator,
    buckets: Sequence[Tuple[Strings, Lcps]],
    lcp_compression: bool = False,
    payloads: Optional[Sequence[Any]] = None,
    ship_lcps: bool = True,
    topology: Union[str, ExchangeTopology, None] = None,
) -> Iterator[Tuple]:
    """Split-phase twin of :func:`exchange_buckets`: yield runs as they land.

    Posts one non-blocking send per destination (the packed bucket views of
    PR 2 make these zero-copy) and one non-blocking receive per source *up
    front*, then yields ``(src, strings, lcps)`` — or ``(src, strings, lcps,
    payload)`` with ``payloads`` — in **arrival order** as deliveries
    complete.  Each run is decoded (front-decoding, LCP reconstruction) the
    moment it lands, and whatever the caller does between ``yield``s — e.g.
    preparing the LCP loser-tree merge — happens while the remaining
    deliveries are still in flight.  There is no serialisation barrier in
    the middle of the exchange; the epilogue synchronises only to agree on
    the collective's bottleneck volume for the cost model.

    Accounting contract (pinned by ``tests/test_async_exchange.py``): wire
    bytes, phase attribution and decoded local work are **identical** to the
    blocking path — encoding, wire sizing and decoding are the very same
    code.  Additionally the meter records the *overlap*: the wall-clock time
    this rank spent decoding/merging while at least one receive was
    outstanding, surfaced as ``TrafficReport.overlap_fraction("exchange")``
    and credited against the bandwidth term by
    :meth:`repro.net.cost_model.MachineModel.overlap_credit`.

    The generator must be exhausted (all ranks reach the epilogue at the
    same SPMD program point); abandoning it mid-exchange deadlocks the run
    like any skipped collective would.

    ``topology`` works exactly as in :func:`exchange_buckets`; under a
    multi-level topology the deliveries are driven by
    :func:`repro.net.router.routed_exchange_iter`, which yields runs as
    their frames reach this rank (arrivals are spread over the routing
    rounds), with the same decoded contents and wire accounting as the
    blocking routed path.
    """
    _validate_buckets(comm, buckets, payloads)
    topo = resolve_topology(topology)
    if not topo.is_direct:
        yield from _routed_exchange_async(
            comm, topo, buckets, lcp_compression, payloads, ship_lcps
        )
        return

    with comm.phase("exchange"):
        window_start = time.perf_counter()
        blocks = _encode_blocks(buckets, lcp_compression, ship_lcps)
        if payloads is None:
            messages: List[Any] = list(blocks)
        else:
            messages = [(blk, pay) for blk, pay in zip(blocks, payloads)]
        sizes = [wire_size(m) for m in messages]

        send_requests = [
            comm.isend(m, dst, tag=_TAG_ASYNC_EXCHANGE, nbytes=sizes[dst])
            for dst, m in enumerate(messages)
        ]
        recv_requests = [
            comm.irecv(src, tag=_TAG_ASYNC_EXCHANGE) for src in range(comm.size)
        ]

        pending = list(range(comm.size))
        decoded_chars = 0
        decoded_items = 0
        overlapped = 0.0

        def in_flight() -> bool:
            # a delivery is in flight only while its message has not arrived;
            # an arrived-but-unconsumed request must not inflate the overlap
            return any(not recv_requests[s].test() for s in pending)

        while pending:
            src = pending.pop(waitany([recv_requests[s] for s in pending]))
            message = recv_requests[src].wait()  # completed; returns payload
            if payloads is None:
                block, payload = message, None
            else:
                block, payload = message
            # a compute segment counts as overlapped only when a delivery was
            # in flight both when it started *and* when it ended — a message
            # landing mid-segment thus voids the whole segment, biasing the
            # measurement (and hence the cost-model credit) low, never high
            overlapping = bool(pending) and in_flight()
            decode_start = time.perf_counter()
            strings, lcps = block.decode_run()
            decoded_chars += _run_chars(strings)
            decoded_items += len(strings)
            yield_at = time.perf_counter()
            if overlapping and in_flight():
                overlapped += yield_at - decode_start
            overlapping = bool(pending) and in_flight()
            yield (
                (src, strings, lcps)
                if payloads is None
                else (src, strings, lcps, payload)
            )
            # time the caller spent on the run we just handed over, with
            # later deliveries still in flight
            if overlapping and in_flight():
                overlapped += time.perf_counter() - yield_at

        comm.waitall(send_requests)
        comm.record_local_work(decoded_chars, decoded_items)

        window = time.perf_counter() - window_start
        fraction = overlapped / window if window > 0.0 else 0.0
        comm.record_overlap(overlapped, window)
        my_total = sum(sz for dst, sz in enumerate(sizes) if dst != comm.rank)
        comm.record_exchange_collective(my_total, overlap_fraction=fraction)


def _routed_exchange_async(
    comm: Communicator,
    topo: ExchangeTopology,
    buckets: Sequence[Tuple[Strings, Lcps]],
    lcp_compression: bool,
    payloads: Optional[Sequence[Any]],
    ship_lcps: bool,
) -> Iterator[Tuple]:
    """Split-phase twin of the routed exchange (multi-level topologies).

    Encodes like the direct paths, hands delivery to
    :func:`repro.net.router.routed_exchange_iter` and decodes each run the
    moment its frames reach this rank — the decode (and whatever the caller
    does before pulling the next run) happens between the router's yields,
    which is exactly the window the router meters as overlap.
    """
    with comm.phase("exchange"):
        blocks = _encode_blocks(buckets, lcp_compression, ship_lcps)
        if payloads is None:
            messages: List[Any] = list(blocks)
        else:
            messages = [(blk, pay) for blk, pay in zip(blocks, payloads)]
        sizes = [wire_size(m) for m in messages]

        decoded_chars = 0
        decoded_items = 0
        for src, message in routed_exchange_iter(comm, topo, messages, sizes):
            if payloads is None:
                block, payload = message, None
            else:
                block, payload = message
            strings, lcps = block.decode_run()
            decoded_chars += _run_chars(strings)
            decoded_items += len(strings)
            yield (
                (src, strings, lcps)
                if payloads is None
                else (src, strings, lcps, payload)
            )
        comm.record_local_work(decoded_chars, decoded_items)
