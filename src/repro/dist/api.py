"""Rank programs and the legacy facade of the distributed string sorters.

The *current* public API lives in :mod:`repro.session`: a
:class:`~repro.session.Cluster` running typed
:class:`~repro.session.SortSpec` configurations through the pluggable
algorithm registry.  This module keeps

* the per-algorithm rank programs (:func:`ms_sort`, :func:`pdms_sort`,
  :func:`fkmerge_sort`, plus :func:`repro.dist.hquick.hquick_sort`), usable
  directly with :func:`repro.mpi.run_spmd` when a caller wants to embed a
  sorter inside a larger SPMD computation;
* :class:`DSortResult`, the result object both APIs return;
* :func:`dsort`, the legacy one-shot facade — now a thin shim that maps its
  keyword options onto a :class:`~repro.session.SortSpec` (emitting a
  :class:`DeprecationWarning` for the untyped ``**options`` spelling) and
  runs it on a throwaway :class:`~repro.session.Cluster`.

Algorithms (Sections IV-VI):

========== =================================================================
hquick      hypercube quicksort, strings as atoms (baseline)
fkmerge     Fischer-Kurpicz merge sort: centralised splitters, atomic merge
ms-simple   distributed merge sort without the LCP optimisations
ms          merge sort with LCP compression and LCP-aware multiway merging
pdms        prefix-doubling merge sort: only DIST prefixes are communicated
pdms-golomb PDMS with Golomb-coded fingerprint messages
========== =================================================================
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mpi.comm import Communicator
from ..net.cost_model import DEFAULT_MACHINE, MachineModel
from ..net.metrics import TrafficReport
from ..sequential import sort_strings_with_lcp
from ..sequential.lcp_losertree import lcp_multiway_merge, lcp_multiway_merge_packed
from ..sequential.losertree import multiway_merge
from ..sequential.stats import CharStats
from ..strings.lcp import lcp_array
from ..strings.packed import (
    PackedStringArray,
    packed_enabled,
    packed_lcp_array,
    truncate,
)
from ..strings.stringset import StringSet, validate_strings
from .exchange import (
    async_exchange_enabled,
    exchange_buckets,
    exchange_buckets_async,
)
from .hquick import hquick_sort
from .partition import split_into_buckets
from .prefix_doubling import approximate_dist_prefixes
from .splitters import determine_splitters

__all__ = [
    "ALGORITHMS",
    "MSConfig",
    "PDMSConfig",
    "DSortResult",
    "RankOutput",
    "distribute_strings",
    "dsort",
    "ms_sort",
    "pdms_sort",
    "fkmerge_sort",
    "hquick_sort",
]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

@dataclass
class MSConfig:
    """Tuning knobs of the distributed merge sort (MS / MS-simple)."""

    sampling: str = "string"            # "string" | "character"
    sample_sort: str = "central"        # "central" | "hquick"
    local_sorter: str = "msd_radix"
    oversampling: Optional[int] = None
    lcp_compression: bool = True        # Step 3 front coding
    lcp_merge: bool = True              # Step 4 LCP loser tree
    # bucket-delivery strategy ("direct" | "hypercube" | "grid"); None
    # inherits the process/cluster setting (REPRO_EXCHANGE_TOPOLOGY)
    exchange_topology: Optional[str] = None


@dataclass
class PDMSConfig:
    """Tuning knobs of the prefix-doubling merge sort (PDMS / PDMS-Golomb)."""

    sampling: str = "string"
    sample_sort: str = "central"
    local_sorter: str = "msd_radix"
    oversampling: Optional[int] = None
    epsilon: float = 1.0                # prefix growth factor (1 + epsilon)
    initial_length: int = 16
    golomb: bool = False
    # bucket-delivery strategy; None inherits the process/cluster setting
    exchange_topology: Optional[str] = None


# ---------------------------------------------------------------------------
# input distribution
# ---------------------------------------------------------------------------

def _distribute_packed(
    data: PackedStringArray, num_pes: int, by: str
) -> List[PackedStringArray]:
    """Zero-copy distribution of a packed array: blocks are buffer views."""
    n = len(data)
    if by == "strings":
        return [
            data[_strings_lo(n, num_pes, r) : _strings_lo(n, num_pes, r + 1)]
            for r in range(num_pes)
        ]
    if by == "chars":
        total = data.num_chars
        if total == 0:
            return _distribute_packed(data, num_pes, "strings")
        # vectorized twin of the scalar greedy loop: after appending string
        # i the target block is min(p-1, cum_i * p // total), and string i
        # lands in the block that was current *before* it was appended
        cum = np.cumsum(data.lengths)
        after = np.minimum(num_pes - 1, (cum * num_pes) // total)
        owner = np.concatenate([np.zeros(1, dtype=np.int64), after[:-1]]) if n else after
        counts = np.bincount(owner, minlength=num_pes) if n else np.zeros(num_pes, int)
        bounds = np.zeros(num_pes + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return [data[int(bounds[r]) : int(bounds[r + 1])] for r in range(num_pes)]
    raise ValueError(f"unknown distribution criterion {by!r}; use 'strings' or 'chars'")


def _strings_lo(n: int, num_pes: int, r: int) -> int:
    base, rem = divmod(n, num_pes)
    return r * base + min(r, rem)


def distribute_strings(
    data: Sequence, num_pes: int, by: str = "strings"
) -> List[List[bytes]]:
    """Deal a string array into ``num_pes`` contiguous, balanced blocks.

    ``by="strings"`` balances string counts (block sizes differ by at most
    one); ``by="chars"`` balances character mass, the right notion when
    string lengths are skewed.  Order is preserved; ``str`` inputs are
    UTF-8 encoded.

    :class:`StringSet` and :class:`PackedStringArray` inputs are distributed
    **zero-copy**: each block is a view into the shared character buffer.
    """
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    if isinstance(data, StringSet):
        data = data.packed()
    if isinstance(data, PackedStringArray):
        return _distribute_packed(data, num_pes, by)
    strings = validate_strings(data)
    n = len(strings)
    if by == "strings":
        base, rem = divmod(n, num_pes)
        blocks: List[List[bytes]] = []
        pos = 0
        for r in range(num_pes):
            size = base + (1 if r < rem else 0)
            blocks.append(strings[pos : pos + size])
            pos += size
        return blocks
    if by == "chars":
        total = sum(len(s) for s in strings)
        if total == 0:
            # no character mass to balance (e.g. all-empty strings):
            # balancing counts is the only meaningful criterion left
            return distribute_strings(strings, num_pes, by="strings")
        blocks = [[] for _ in range(num_pes)]
        cum = 0
        block = 0
        for s in strings:
            blocks[block].append(s)
            cum += len(s)
            while block < num_pes - 1 and cum * num_pes >= (block + 1) * total:
                block += 1
        return blocks
    raise ValueError(f"unknown distribution criterion {by!r}; use 'strings' or 'chars'")


# ---------------------------------------------------------------------------
# rank programs
# ---------------------------------------------------------------------------

def _local_sort(comm: Communicator, strings, sorter: str):
    """Step 1: sort this rank's block; packed in, packed out on the hot path.

    Under ``REPRO_PACKED`` with the default ``msd_radix`` sorter the block
    is lifted into a :class:`PackedStringArray` (zero-copy when it already
    is one) and :func:`repro.sequential.msd_radix.msd_radix_sort` dispatches
    to the vectorized fixed-width-key sorter — the sorted run and its LCP
    array stay packed end-to-end.  Every other configuration runs the
    original scalar sorters over ``list[bytes]``.
    """
    hot = packed_enabled() and sorter == "msd_radix"
    if isinstance(strings, PackedStringArray):
        if not hot:
            strings = strings.to_list()
    elif hot:
        strings = PackedStringArray.from_strings(strings)
    with comm.phase("local-sort"):
        stats = CharStats()
        out, lcps = sort_strings_with_lcp(strings, sorter, stats)
        comm.record_local_work(stats.chars_inspected, len(out))
    return out, lcps


def _as_hot_path(local_sorted, lcps):
    """Lift a locally sorted run onto the packed hot path (when enabled).

    From here to the exchange everything — sampling, bucket boundaries,
    front coding, wire accounting — runs over the contiguous buffer; with
    the fast paths disabled the original ``list``-based code runs instead.
    """
    if packed_enabled():
        return (
            PackedStringArray.from_strings(local_sorted),
            np.asarray(lcps, dtype=np.int64),
        )
    return local_sorted, lcps


def _exchange(comm: Communicator, buckets, **kwargs):
    """Run the bucket exchange, split-phase when globally enabled.

    With :func:`repro.dist.exchange.async_exchange_enabled` the split-phase
    generator is consumed in arrival order — each run is decoded (and its
    slot in the merge input prepared) while later buckets are still in
    flight, which is where the recorded overlap comes from.  The returned
    list is indexed by source PE either way, so the downstream merge — and
    therefore the sorted output, LCP arrays and traffic accounting — is
    bit-identical across both paths.  The ``topology`` keyword (a config's
    ``exchange_topology``, usually ``None`` = inherit the process/cluster
    setting) selects direct or multi-level routed delivery; it changes the
    measured routing volume, never the decoded runs.
    """
    if not async_exchange_enabled():
        return exchange_buckets(comm, buckets, **kwargs)
    received: List[Any] = [None] * comm.size
    for item in exchange_buckets_async(comm, buckets, **kwargs):
        received[item[0]] = tuple(item[1:])
    return received


def ms_sort(
    comm: Communicator, strings: Sequence[bytes], config: Optional[MSConfig] = None
) -> Tuple[List[bytes], List[int]]:
    """Distributed merge sort (Section V); returns ``(sorted, lcp_array)``."""
    config = config or MSConfig()
    local_sorted, lcps = _local_sort(comm, strings, config.local_sorter)
    local_view, lcps_view = _as_hot_path(local_sorted, lcps)
    splitters = determine_splitters(
        comm,
        local_view,
        scheme=config.sampling,
        sample_sort=config.sample_sort,
        oversampling=config.oversampling,
    )
    buckets = split_into_buckets(local_view, lcps_view, splitters)
    received = _exchange(
        comm,
        buckets,
        lcp_compression=config.lcp_compression,
        ship_lcps=config.lcp_merge,
        topology=config.exchange_topology,
    )
    with comm.phase("merge"):
        stats = CharStats()
        runs = [run for run, _ in received]
        if config.lcp_merge:
            run_lcps = [h for _, h in received]
            if runs and all(isinstance(r, PackedStringArray) for r in runs):
                # packed end-to-end: batched loser-tree emit into one packed
                # output buffer; materialised to lists only at the rank
                # output boundary (contents bit-identical to the scalar merge)
                merged, merged_lcps = lcp_multiway_merge_packed(
                    runs, run_lcps, stats
                )
                out = merged.to_list()
                out_lcps = merged_lcps.tolist()
            else:
                out, out_lcps = lcp_multiway_merge(runs, run_lcps, stats)
        else:
            out = multiway_merge(runs, stats)
            out_lcps = lcp_array(out)
        comm.record_local_work(stats.chars_inspected, len(out))
    return out, out_lcps


def fkmerge_sort(
    comm: Communicator,
    strings: Sequence[bytes],
    oversampling: Optional[int] = None,
    local_sorter: str = "msd_radix",
    exchange_topology: Optional[str] = None,
) -> Tuple[List[bytes], None]:
    """The FKmerge baseline: centralised sample sort, atomic multiway merge.

    No LCP machinery anywhere — full strings travel and the merge rescans
    common prefixes — and the splitters are sorted on PE 0 (the scalability
    bottleneck Section VII-D measures).  Unlike the original implementation,
    repeated strings are handled (documented deviation from the paper).
    """
    local_sorted, lcps = _local_sort(comm, strings, local_sorter)
    local_view, lcps_view = _as_hot_path(local_sorted, lcps)
    splitters = determine_splitters(
        comm,
        local_view,
        scheme="string",
        sample_sort="central",
        oversampling=oversampling,
    )
    buckets = split_into_buckets(local_view, lcps_view, splitters)
    # the baseline has no LCP machinery on the wire: strings travel verbatim
    received = _exchange(
        comm,
        buckets,
        lcp_compression=False,
        ship_lcps=False,
        topology=exchange_topology,
    )
    with comm.phase("merge"):
        stats = CharStats()
        out = multiway_merge([run for run, _ in received], stats)
        comm.record_local_work(stats.chars_inspected, len(out))
    return out, None


def pdms_sort(
    comm: Communicator, strings: Sequence[bytes], config: Optional[PDMSConfig] = None
):
    """Prefix-doubling merge sort (Section VI).

    Returns ``(prefixes, lcp_array, origins, extra)``: the globally sorted
    approximate distinguishing prefixes held by this rank, their LCP array,
    per-prefix ``(source PE, position in that PE's locally sorted array)``
    origin labels, and a dict of protocol statistics.
    """
    config = config or PDMSConfig()
    local_sorted, _ = _local_sort(comm, strings, config.local_sorter)
    if isinstance(local_sorted, PackedStringArray):
        # the prefix-doubling protocol and the origin-labelled merge are
        # per-string by nature; keep them on the original list layout
        local_sorted = local_sorted.to_list()

    doubling = approximate_dist_prefixes(
        comm,
        local_sorted,
        initial_length=config.initial_length,
        epsilon=config.epsilon,
        golomb=config.golomb,
    )
    # prefixes of a sorted array are sorted (every prefix extends past the
    # LCP with its neighbours, by the DIST guarantee), so the LCP array of
    # the prefix sequence is valid input for bucketing
    if packed_enabled():
        prefixes = truncate(
            PackedStringArray.from_strings(local_sorted), doubling.lengths
        )
        prefix_lcps = packed_lcp_array(prefixes)
    else:
        prefixes = [s[:n] for s, n in zip(local_sorted, doubling.lengths)]
        prefix_lcps = lcp_array(prefixes)

    splitters = determine_splitters(
        comm,
        prefixes,
        scheme=config.sampling,
        sample_sort=config.sample_sort,
        oversampling=config.oversampling,
        weights=doubling.lengths if config.sampling == "character" else None,
    )
    buckets = split_into_buckets(prefixes, prefix_lcps, splitters)
    # origin labels are (source PE, position in that PE's locally sorted
    # array).  Each bucket is a contiguous run of that array, so only its
    # start offset needs to travel; the receiver learns the source PE from
    # the message slot and reconstructs the positions by counting.
    starts = []
    start = 0
    for bucket_strings, _ in buckets:
        starts.append(start)
        start += len(bucket_strings)
    received = _exchange(
        comm,
        buckets,
        lcp_compression=True,
        payloads=starts,
        topology=config.exchange_topology,
    )

    with comm.phase("merge"):
        decorated = [
            [(s, (src, first + i)) for i, s in enumerate(run)]
            for src, (run, _, first) in enumerate(received)
        ]
        merged = list(heapq.merge(*decorated, key=lambda item: item[0]))
        out = [s for s, _ in merged]
        origins = [origin for _, origin in merged]
        out_lcps = lcp_array(out)
        comm.record_local_work(sum(len(s) for s in out), len(out))

    extra = {
        "doubling_rounds": doubling.rounds,
        "approx_dist_total": comm.allreduce(sum(doubling.lengths)),
        "fingerprints_sent": comm.allreduce(doubling.fingerprints_sent),
    }
    return out, out_lcps, origins, extra


# ---------------------------------------------------------------------------
# rank output + legacy algorithm table
# ---------------------------------------------------------------------------

@dataclass
class RankOutput:
    """Uniform per-rank result shape across all algorithms.

    Custom rank programs registered via
    :func:`repro.session.register_algorithm` return one of these: the
    rank's sorted strings, optionally their LCP array, the PDMS-style
    origin labels, and a dict of protocol statistics (``extra`` values must
    agree across ranks — the result assembly asserts it).
    """

    strings: List[bytes]
    lcps: Optional[List[int]] = None
    origins: Optional[List[Tuple[int, int]]] = None
    extra: Dict[str, Any] = field(default_factory=dict)


#: backward-compatible alias (the pre-redesign private name)
_RankOutput = RankOutput

RankRunner = Callable[[Communicator, List[bytes], int, Dict[str, Any]], RankOutput]


def _legacy_runner(name: str) -> RankRunner:
    """Adapt a registry entry to the legacy ``(comm, local, seed, options)``
    rank-runner signature (what :data:`ALGORITHMS` has always exposed)."""

    def run(comm, local, seed, options):
        from ..session.specs import LEGACY_OPTIONS, spec_from_options
        from ..session.registry import default_registry

        # the historical runners ignored keys they did not understand;
        # keep that for callers embedding them in their own SPMD programs
        # (``dsort`` itself validates before the run starts)
        options = {k: v for k, v in options.items() if k in LEGACY_OPTIONS}
        spec = spec_from_options(name, options, seed=seed)
        return default_registry().get(name).runner(comm, local, spec)

    run.__name__ = f"run_{name.replace('-', '_')}"
    return run


#: legacy name -> rank-runner table (kept for callers embedding the rank
#: programs in their own SPMD runs; new code resolves algorithms through
#: :class:`repro.session.AlgorithmRegistry` instead)
ALGORITHMS: Dict[str, RankRunner] = {
    name: _legacy_runner(name)
    for name in ("hquick", "fkmerge", "ms-simple", "ms", "pdms", "pdms-golomb")
}


# ---------------------------------------------------------------------------
# result object
# ---------------------------------------------------------------------------

@dataclass
class DSortResult:
    """Everything a caller (or the benchmark harness) wants to know about a run."""

    algorithm: str
    num_pes: int
    num_strings: int
    num_chars: int
    inputs_per_pe: List[List[bytes]]
    outputs_per_pe: List[List[bytes]]
    lcps_per_pe: List[Optional[List[int]]]
    origins_per_pe: Optional[List[List[Tuple[int, int]]]]
    report: TrafficReport
    extra: Dict[str, Any] = field(default_factory=dict)
    #: the machine model of the cluster that produced this result (used by
    #: :meth:`modeled_time` when no explicit model is passed); ``None``
    #: falls back to :data:`repro.net.cost_model.DEFAULT_MACHINE`
    machine: Optional[MachineModel] = None

    @property
    def sorted_strings(self) -> List[bytes]:
        """The globally sorted output as one flat list (PE order)."""
        return [s for part in self.outputs_per_pe for s in part]

    def packed_output(self) -> "PackedStringArray":
        """The globally sorted output as one packed array (PE order)."""
        return PackedStringArray.from_strings(self.sorted_strings)

    def bytes_per_string(self) -> float:
        """The paper's headline metric: total bytes sent / input strings."""
        return self.report.bytes_per_string(self.num_strings)

    def modeled_time(self, machine: Optional[MachineModel] = None) -> float:
        """Modelled running time (local work bottleneck + communication).

        ``machine`` defaults to the model of the cluster that produced this
        result (:attr:`machine`), falling back to
        :data:`~repro.net.cost_model.DEFAULT_MACHINE`.
        """
        if machine is None:
            machine = self.machine if self.machine is not None else DEFAULT_MACHINE
        return self.report.modeled_total_time(machine)

    def overlap_fraction(self) -> float:
        """Communication/computation overlap of the string exchange.

        The fraction of the split-phase exchange window the PEs spent
        decoding and preparing the merge while deliveries were still in
        flight.  0.0 for the bulk-synchronous path (the default; enable the
        split-phase exchange with ``REPRO_ASYNC_EXCHANGE=1`` or
        :func:`repro.dist.exchange.use_async_exchange`).
        """
        return self.report.overlap_fraction("exchange")


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------

def dsort(
    data: Sequence,
    algorithm: str = "ms",
    num_pes: Optional[int] = None,
    pre_distributed: bool = False,
    check: bool = False,
    seed: int = 0,
    timeout: Optional[float] = None,
    distribute_by: str = "strings",
    engine: Optional[str] = None,
    **options: Any,
) -> DSortResult:
    """Sort a string array on a throwaway simulated machine (legacy facade).

    This is the backward-compatible one-shot wrapper over the session API:
    it maps its arguments onto a :class:`repro.session.SortSpec`, builds a
    throwaway :class:`repro.session.Cluster` and runs
    :meth:`~repro.session.Cluster.sort` on it.  Passing algorithm knobs via
    ``**options`` is **deprecated** (emits a :class:`DeprecationWarning`);
    construct the typed spec instead — outputs, LCP arrays and wire bytes
    are bit-identical either way.

    Parameters
    ----------
    data:
        Either a flat sequence of strings (``bytes`` or ``str``), a
        :class:`StringSet`, a :class:`PackedStringArray` (both distributed
        zero-copy as buffer views) or, with ``pre_distributed=True``, a
        sequence of per-PE blocks (lists or packed arrays).
    algorithm:
        A registered algorithm name (:data:`ALGORITHMS` plus ``"auto"``,
        which lets a D/N estimate pick between ``ms`` and ``pdms-golomb``
        at run time).
    num_pes:
        Number of simulated PEs (ignored with ``pre_distributed``, which
        derives it from the number of blocks).  Defaults to 8.
    check:
        Verify the output contract (Section V for the full-string sorters,
        the prefix-permutation contract of Section VI for PDMS).
    seed:
        Randomisation seed (hQuick pivot sampling, D/N estimation); never
        affects the sorted output.
    timeout:
        Deadlock-detection timeout per blocking operation, in seconds;
        ``None`` (default) inherits the process-level setting (the
        ``REPRO_SPMD_TIMEOUT`` environment variable, or 600 s).
    distribute_by:
        Input distribution criterion: ``"strings"`` balances string counts,
        ``"chars"`` balances character mass (for length-skewed workloads).
    engine:
        Execution backend name (``"threads"``, ``"processes"``, or a
        registered third-party backend); ``None`` (default) inherits the
        process-level setting (the ``REPRO_ENGINE`` environment variable,
        or ``"threads"``).  Outputs, LCP arrays and wire bytes are
        bit-identical across engines.
    options:
        Deprecated algorithm knobs: ``sampling``, ``sample_sort``,
        ``local_sorter``, ``oversampling``, ``epsilon``,
        ``initial_length``.  Options not applicable to the chosen algorithm
        are ignored.
    """
    from ..session import Cluster, spec_from_options

    if options:
        warnings.warn(
            "passing algorithm knobs to dsort(**options) is deprecated; "
            "build a typed repro.session.SortSpec (e.g. MSSpec(sampling=...)) "
            "and run it with repro.session.Cluster.sort",
            DeprecationWarning,
            stacklevel=2,
        )
    spec = spec_from_options(
        algorithm, options, seed=seed, distribute_by=distribute_by
    )

    if pre_distributed:
        data = list(data)
        if not data:
            raise ValueError("pre_distributed input needs at least one block")
        num_pes = len(data)
    else:
        num_pes = 8 if num_pes is None else num_pes

    with Cluster(num_pes=num_pes, timeout=timeout, engine=engine) as cluster:
        return cluster.sort(data, spec, check=check, pre_distributed=pre_distributed)
