"""Determinism contract of the exchange topology knob, across all algorithms.

The delivery strategy of the bucket all-to-all (``direct`` / ``hypercube`` /
``grid``, see :mod:`repro.net.router`) changes *how* buckets travel — the
startup counts, the measured total volume, the per-route attribution —
never *what* is computed.  This suite pins, for every algorithm and both
the bulk-synchronous and split-phase exchange paths, on adversarial inputs
(tiny alphabets, duplicates, empty strings, empty ranks, non-power-of-two
machines):

* bit-identical sorted outputs, LCP arrays and PDMS origin labels;
* bit-identical **origin** wire bytes (``TrafficReport.origin_bytes_sent``),
  the paper's communication-volume metric — each bucket leaves its origin
  exactly once no matter how it is routed;
* identical decoded local work (the receivers decode the very same blocks);
* forwarded bytes only ever appear under a multi-level topology, and the
  measured total never exceeds the ``max_hops`` inflation bound.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from engine_conformance import engine_params, set_engine
from repro.dist.api import ALGORITHMS
from repro.net.router import TOPOLOGIES
from repro.session import Cluster, default_registry
from repro.strings.generators import dn_instance

ROUTED = ("hypercube", "grid")


@pytest.fixture(scope="module", params=engine_params(), autouse=True)
def spmd_engine(request):
    """Run every test of this module on each registered execution engine.

    Module-scoped so the hypothesis tests can share it (function-scoped
    parametrized fixtures would reset per example and trip health checks);
    engines the platform cannot run are skipped with the platform's reason.
    """
    with set_engine(request.param):
        yield request.param

# tiny alphabet -> many shared prefixes and exact duplicates; empty strings
# and more PEs than strings are reachable through the size bounds
adversarial_strings = st.lists(
    st.binary(max_size=10).map(lambda b: bytes(97 + (c % 3) for c in b)),
    max_size=60,
)

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _sort(strings, algorithm, p, topology, use_async=False, seed=3):
    spec = default_registry().spec_class(algorithm)(seed=seed)
    cluster = Cluster(
        num_pes=p,
        exchange_topology=topology,
        async_exchange=True if use_async else None,
    )
    return cluster.sort(strings, spec)


def _assert_equivalent(strings, algorithm, p, topology, use_async=False, seed=3):
    direct = _sort(strings, algorithm, p, "direct", use_async=use_async, seed=seed)
    routed = _sort(strings, algorithm, p, topology, use_async=use_async, seed=seed)
    assert routed.sorted_strings == direct.sorted_strings
    assert routed.outputs_per_pe == direct.outputs_per_pe
    assert routed.lcps_per_pe == direct.lcps_per_pe
    assert routed.origins_per_pe == direct.origins_per_pe
    # the paper's volume metric is delivery-invariant ...
    assert direct.report.forwarded_bytes == 0
    assert routed.report.origin_bytes_sent == direct.report.total_bytes_sent
    # ... and so is the decoded local work
    assert (
        routed.report.chars_inspected_per_pe
        == direct.report.chars_inspected_per_pe
    )
    # routing inflation stays within the hop bound the topologies promise
    max_hops = max(1, TOPOLOGIES[topology].max_hops(p))
    exchange_bytes = direct.report.phase_bytes.get("exchange", 0)
    inflation = routed.report.forwarded_bytes
    # forwarded = relayed payloads (< (max_hops - 1) x exchange volume)
    # + frame/batch headers (a few bytes per frame and round)
    header_allowance = 16 * p * p * max_hops
    assert inflation <= (max_hops - 1) * exchange_bytes + header_allowance
    return direct, routed


@settings(**_SETTINGS)
@given(
    strings=adversarial_strings,
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    p=st.integers(min_value=1, max_value=5),
    topology=st.sampled_from(ROUTED),
)
def test_routed_topologies_are_deterministic(strings, algorithm, p, topology):
    _assert_equivalent(strings, algorithm, p, topology)


@pytest.mark.parametrize("topology", ROUTED)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_routed_topologies_fixed_corpus(algorithm, topology):
    """Non-random twin of the hypothesis test on a skew-heavy instance."""
    corpus = dn_instance(num_strings=300, dn=0.8, length=32, seed=17)
    corpus += [b"", b"a" * 31, corpus[0], corpus[0]]  # empties + duplicates
    _assert_equivalent(corpus, algorithm, 4, topology, seed=9)


@pytest.mark.parametrize("topology", ROUTED)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_routed_topologies_split_phase(algorithm, topology):
    """Async + routed: the split-phase routed exchange is equally identical."""
    corpus = dn_instance(num_strings=200, dn=0.6, length=24, seed=11)
    direct, routed = _assert_equivalent(
        corpus, algorithm, 4, topology, use_async=True, seed=7
    )
    # the sync routed run matches the async routed run byte for byte
    sync = _sort(corpus, algorithm, 4, topology, use_async=False, seed=7)
    assert sync.outputs_per_pe == routed.outputs_per_pe
    assert sync.report.total_bytes_sent == routed.report.total_bytes_sent
    assert sync.report.bytes_sent_per_pe == routed.report.bytes_sent_per_pe
    assert (
        sync.report.forwarded_bytes_per_pe
        == routed.report.forwarded_bytes_per_pe
    )
    assert dict(sync.report.route_bytes) == dict(routed.report.route_bytes)


@pytest.mark.parametrize("p", [2, 3, 4, 5, 6, 8])
def test_non_power_of_two_machines(p):
    """Fallback routing (hypercube off 2^d, grid off squares) stays identical."""
    corpus = dn_instance(num_strings=150, dn=0.5, length=20, seed=5)
    for topology in ROUTED:
        _assert_equivalent(corpus, "ms", p, topology, seed=2)


def test_spec_field_overrides_cluster_setting():
    """A spec's explicit exchange_topology wins over the cluster default."""
    corpus = dn_instance(num_strings=120, dn=0.5, length=20, seed=3)
    cluster = Cluster(num_pes=4, exchange_topology="hypercube")
    spec = default_registry().spec_class("ms")(exchange_topology="direct")
    res = cluster.sort(corpus, spec)
    assert res.report.forwarded_bytes == 0
    inherited = cluster.sort(corpus, "ms")
    assert inherited.report.forwarded_bytes > 0


def test_dsort_accepts_exchange_topology_option():
    """The legacy facade maps exchange_topology like every other knob."""
    import warnings

    from repro.dist import dsort

    corpus = dn_instance(num_strings=100, dn=0.5, length=20, seed=4)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        routed = dsort(corpus, algorithm="ms", num_pes=4, exchange_topology="grid")
        direct = dsort(corpus, algorithm="ms", num_pes=4, exchange_topology="direct")
    assert routed.sorted_strings == direct.sorted_strings
    assert routed.report.forwarded_bytes > 0
    assert direct.report.forwarded_bytes == 0
    assert routed.report.origin_bytes_sent == direct.report.total_bytes_sent
