"""Typed, frozen, serializable sorting configurations (:class:`SortSpec`).

One dataclass per algorithm replaces the untyped ``dsort(**options)`` dict:
a spec is validated at construction time, hashable, immutable, and travels
losslessly through ``to_dict`` / :meth:`SortSpec.from_dict`.  The stable
:meth:`SortSpec.config_hash` keys benchmark cells and (per the roadmap)
future checkpoint files, so it must not depend on process state — it is a
SHA-256 over the canonical JSON form, identical across processes, Python
versions and field declaration order.

The hierarchy mirrors the paper's algorithm families:

=================== =======================================================
:class:`HQuickSpec`      hypercube quicksort (Section IV)
:class:`FKMergeSpec`     Fischer-Kurpicz merge sort baseline
:class:`MSSimpleSpec`    distributed merge sort without LCP optimisations
:class:`MSSpec`          merge sort with LCP compression + LCP-aware merge
:class:`PDMSSpec`        prefix-doubling merge sort (Section VI)
:class:`PDMSGolombSpec`  PDMS with Golomb-coded fingerprints
:class:`AutoSpec`        run-time D/N estimate picks ms vs pdms-golomb
=================== =======================================================

Algorithm lookup goes through the :class:`repro.session.registry` so
third-party specs registered via :func:`repro.session.register_algorithm`
deserialize exactly like the built-ins.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, ClassVar, Dict, Mapping, Optional

__all__ = [
    "SortSpec",
    "HQuickSpec",
    "FKMergeSpec",
    "SampledSpec",
    "MSSpec",
    "MSSimpleSpec",
    "PDMSSpec",
    "PDMSGolombSpec",
    "AutoSpec",
    "spec_from_options",
    "LEGACY_OPTIONS",
]

_DISTRIBUTE_BY = ("strings", "chars")
_SAMPLING = ("string", "character")
_SAMPLE_SORT = ("central", "hquick")


def _suggest(name: str, candidates) -> str:
    """``", did you mean 'x'?"`` when ``name`` is close to a candidate."""
    close = difflib.get_close_matches(name, list(candidates), n=1)
    return f", did you mean {close[0]!r}?" if close else ""


@dataclass(frozen=True)
class SortSpec:
    """Common base of all algorithm configurations.

    A spec bundles everything that defines *what* a sort computes and how
    its knobs are set; everything about *where* it runs (number of PEs,
    machine model, engine, packed/async toggles) lives on the
    :class:`repro.session.Cluster` instead.

    Attributes
    ----------
    local_sorter:
        The per-PE sequential sorter, one of
        :data:`repro.sequential.SEQUENTIAL_SORTERS`.
    distribute_by:
        Input distribution criterion: ``"strings"`` balances string counts,
        ``"chars"`` balances character mass (the right notion for
        length-skewed workloads, Section VII-E).
    seed:
        Randomisation seed (hQuick pivots, D/N estimation); never affects
        the sorted output.
    exchange_topology:
        Delivery strategy of the bucket all-to-all (Section II):
        ``"direct"`` (one message per destination), ``"hypercube"`` or
        ``"grid"`` (multi-level store-and-forward routing through
        :mod:`repro.net.router`), or ``None`` (default) to inherit the
        process/cluster setting (``REPRO_EXCHANGE_TOPOLOGY`` /
        ``Cluster(exchange_topology=...)``).  Changes startup counts and
        measured routing volume, never the sorted output or the origin
        wire bytes.
    """

    #: the registry name of the algorithm this spec configures
    algorithm: ClassVar[str] = ""

    local_sorter: str = "msd_radix"
    distribute_by: str = "strings"
    seed: int = 0
    exchange_topology: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate field values (all specs are checked at construction)."""
        from ..net.router import TOPOLOGY_NAMES
        from ..sequential import SEQUENTIAL_SORTERS

        if self.local_sorter not in SEQUENTIAL_SORTERS:
            raise ValueError(
                f"unknown local_sorter {self.local_sorter!r}"
                f"{_suggest(self.local_sorter, SEQUENTIAL_SORTERS)}; "
                f"available: {sorted(SEQUENTIAL_SORTERS)}"
            )
        if self.distribute_by not in _DISTRIBUTE_BY:
            raise ValueError(
                f"unknown distribute_by {self.distribute_by!r}; "
                f"use one of {list(_DISTRIBUTE_BY)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if (
            self.exchange_topology is not None
            and self.exchange_topology not in TOPOLOGY_NAMES
        ):
            raise ValueError(
                f"unknown exchange_topology {self.exchange_topology!r}"
                f"{_suggest(self.exchange_topology, TOPOLOGY_NAMES)}; "
                f"use one of {list(TOPOLOGY_NAMES)} or None to inherit"
            )

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """The spec as a flat JSON-ready dict (``algorithm`` + all fields)."""
        out: Dict[str, Any] = {"algorithm": type(self).algorithm}
        out.update(asdict(self))
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any], registry=None) -> "SortSpec":
        """Rebuild a spec from :meth:`to_dict` output (inverse, key-order free).

        ``data`` must carry an ``"algorithm"`` key naming a registered
        algorithm; the remaining keys must be fields of that algorithm's
        spec class.  Unknown algorithm names and unknown keys raise
        :class:`ValueError` with a nearest-match suggestion.  ``registry``
        defaults to the process-wide default
        :class:`repro.session.AlgorithmRegistry`.
        """
        from .registry import default_registry

        registry = registry if registry is not None else default_registry()
        payload = dict(data)
        try:
            name = payload.pop("algorithm")
        except KeyError:
            raise ValueError("spec dict is missing the 'algorithm' key") from None
        spec_cls = registry.spec_class(name)
        known = {f.name for f in fields(spec_cls)}
        unknown = set(payload) - known
        if unknown:
            worst = sorted(unknown)[0]
            raise ValueError(
                f"unknown key(s) {sorted(unknown)} for {name!r} spec"
                f"{_suggest(worst, known)}; known keys: {sorted(known)}"
            )
        return spec_cls(**payload)

    def config_hash(self) -> str:
        """Stable 16-hex-digit digest of the configuration.

        Computed as SHA-256 over the canonical (sorted-key, compact) JSON
        form of :meth:`to_dict`, so it is identical across processes and
        insensitive to field order — the key the benchmark harness uses for
        its cells and the checkpointing roadmap item will use for resume
        files.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def replace(self, **changes: Any) -> "SortSpec":
        """A copy of the spec with ``changes`` applied (validated again)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class HQuickSpec(SortSpec):
    """Hypercube quicksort (Section IV): strings as atoms, no extra knobs."""

    algorithm: ClassVar[str] = "hquick"


@dataclass(frozen=True)
class FKMergeSpec(SortSpec):
    """FKmerge baseline: centralised splitters, atomic multiway merge.

    ``oversampling`` is the per-PE sample multiplier of the centralised
    splitter determination (``None`` = the implementation default).
    """

    algorithm: ClassVar[str] = "fkmerge"

    oversampling: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate common fields plus the oversampling factor."""
        super().__post_init__()
        if self.oversampling is not None and self.oversampling < 1:
            raise ValueError(
                f"oversampling must be >= 1 or None, got {self.oversampling!r}"
            )


@dataclass(frozen=True)
class SampledSpec(FKMergeSpec):
    """Shared knobs of the sampling-based merge sorts (MS / PDMS families).

    ``sampling`` selects string- or character-based regular sampling
    (Theorems 2/3); ``sample_sort`` sorts the sample centrally on PE 0 or
    with a distributed hypercube quicksort.
    """

    algorithm: ClassVar[str] = ""

    sampling: str = "string"
    sample_sort: str = "central"

    def __post_init__(self) -> None:
        """Validate the sampling scheme and sample-sort backend names."""
        super().__post_init__()
        if self.sampling not in _SAMPLING:
            raise ValueError(
                f"unknown sampling {self.sampling!r}; use one of {list(_SAMPLING)}"
            )
        if self.sample_sort not in _SAMPLE_SORT:
            raise ValueError(
                f"unknown sample_sort {self.sample_sort!r}; "
                f"use one of {list(_SAMPLE_SORT)}"
            )


@dataclass(frozen=True)
class MSSpec(SampledSpec):
    """Distributed merge sort with the LCP machinery on (Section V)."""

    algorithm: ClassVar[str] = "ms"


@dataclass(frozen=True)
class MSSimpleSpec(SampledSpec):
    """Distributed merge sort without LCP compression or LCP-aware merging."""

    algorithm: ClassVar[str] = "ms-simple"


@dataclass(frozen=True)
class PDMSSpec(SampledSpec):
    """Prefix-doubling merge sort (Section VI).

    ``epsilon`` is the prefix growth factor (candidate lengths grow by
    ``1 + epsilon`` per round); ``initial_length`` the first candidate
    prefix length.
    """

    algorithm: ClassVar[str] = "pdms"

    epsilon: float = 1.0
    initial_length: int = 16

    def __post_init__(self) -> None:
        """Validate the prefix-doubling growth parameters."""
        super().__post_init__()
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon!r}")
        if self.initial_length < 1:
            raise ValueError(
                f"initial_length must be >= 1, got {self.initial_length!r}"
            )


@dataclass(frozen=True)
class PDMSGolombSpec(PDMSSpec):
    """PDMS with Golomb-coded fingerprint messages (Section VI-B)."""

    algorithm: ClassVar[str] = "pdms-golomb"


@dataclass(frozen=True)
class AutoSpec(PDMSSpec):
    """Run-time algorithm selection via the sampled D/N estimate.

    Carries the union of the MS and PDMS knobs; whichever algorithm the
    estimate picks (``ms`` or ``pdms-golomb``) uses its subset.
    """

    algorithm: ClassVar[str] = "auto"


#: the legacy ``dsort(**options)`` vocabulary (kept for the shim's errors)
LEGACY_OPTIONS = frozenset(
    {
        "sampling",
        "sample_sort",
        "local_sorter",
        "oversampling",
        "epsilon",
        "initial_length",
        "exchange_topology",
    }
)


def spec_from_options(
    algorithm: str,
    options: Optional[Mapping[str, Any]] = None,
    *,
    seed: int = 0,
    distribute_by: str = "strings",
    registry=None,
) -> SortSpec:
    """Map a legacy ``dsort``-style flat option dict onto the typed spec.

    This is the compatibility seam behind the deprecated ``dsort(**options)``
    spelling: option names are validated against the legacy vocabulary
    (:data:`LEGACY_OPTIONS`, with a nearest-match suggestion on typos), and
    options that do not apply to the chosen algorithm are silently ignored —
    exactly the facade's historical contract.
    """
    from .registry import default_registry

    registry = registry if registry is not None else default_registry()
    options = dict(options or {})
    unknown = set(options) - LEGACY_OPTIONS
    if unknown:
        worst = sorted(unknown)[0]
        raise ValueError(
            f"unknown dsort option(s) {sorted(unknown)}"
            f"{_suggest(worst, LEGACY_OPTIONS)}; "
            f"available: {sorted(LEGACY_OPTIONS)}"
        )
    spec_cls = registry.spec_class(algorithm)
    known = {f.name for f in fields(spec_cls)}
    kwargs = {k: v for k, v in options.items() if k in known and v is not None}
    return spec_cls(seed=seed, distribute_by=distribute_by, **kwargs)
