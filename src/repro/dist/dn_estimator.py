"""Sampling-based D/N estimation and algorithm recommendation.

The paper's evaluation shows a clean decision boundary: when the total
distinguishing prefix size ``D`` is small relative to the raw input size
``N``, prefix doubling (PDMS) wins by a wide margin; when ``D/N`` is close
to 1 the doubling rounds are pure overhead and plain MS is the better
choice.  ``dsort(algorithm="auto")`` automates the choice with a cheap
estimate: every PE contributes a small random sample of its strings, PE 0
computes the sample's D/N ratio exactly, and the verdict is broadcast.

The estimator is intentionally coarse — D/N of a uniform subsample tracks
the population value well for all of the paper's input families, and the
decision only needs one bit of precision (above or below the threshold).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..mpi.comm import Communicator
from ..strings.lcp import distinguishing_prefix_size

__all__ = ["DnEstimate", "estimate_dn_ratio", "recommend_algorithm", "DN_THRESHOLD"]

# below this estimated D/N the doubling rounds pay for themselves
DN_THRESHOLD = 0.5


@dataclass(frozen=True)
class DnEstimate:
    """Machine-wide estimate of the input's D/N ratio (identical on all ranks)."""

    dn_ratio: float
    sample_dist_chars: int
    sample_size: int
    num_strings: int
    num_chars: int

    @property
    def recommends_prefix_doubling(self) -> bool:
        """Whether the estimate favours PDMS (D/N below the threshold)."""
        return self.dn_ratio < DN_THRESHOLD


def estimate_dn_ratio(
    comm: Communicator,
    strings: Sequence[bytes],
    sample_per_pe: int = 64,
    seed: int = 0,
) -> DnEstimate:
    """Estimate the global D/N ratio from per-PE random samples.

    Communication: one gather of the (small) samples to PE 0 plus a
    broadcast of three scalars — far below the cost of even one exchange
    round of any sorting algorithm.
    """
    if sample_per_pe <= 0:
        raise ValueError("sample_per_pe must be positive")
    local = list(strings)
    rng = random.Random((seed << 20) ^ (comm.rank + 1))
    k = min(sample_per_pe, len(local))
    sample = rng.sample(local, k) if k else []

    with comm.phase("dn-estimation"):
        num_strings = comm.allreduce(len(local))
        num_chars = comm.allreduce(sum(len(s) for s in local))
        gathered = comm.gather(sample, root=0)
        if comm.is_root():
            flat = [s for part in gathered for s in part]
            dist = distinguishing_prefix_size(flat)
            chars = sum(len(s) for s in flat)
            verdict = (dist / chars if chars else 0.0, dist, len(flat))
        else:
            verdict = None
        ratio, dist, size = comm.bcast(verdict, root=0)
    return DnEstimate(
        dn_ratio=ratio,
        sample_dist_chars=dist,
        sample_size=size,
        num_strings=num_strings,
        num_chars=num_chars,
    )


def recommend_algorithm(estimate: DnEstimate) -> str:
    """Pick the paper's best algorithm for the estimated regime."""
    return "pdms-golomb" if estimate.recommends_prefix_doubling else "ms"
