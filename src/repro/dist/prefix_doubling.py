"""Approximating distinguishing prefixes by fingerprint doubling (Section VI-A).

PDMS must know, for every string, a prefix length that distinguishes it from
all other strings — without ever comparing strings across PEs.  The paper's
"Step 1 + epsilon" protocol achieves this with geometrically growing
candidate lengths: in round ``k`` every still-active string hashes its
prefix of length ``l_k`` and the machine runs a distributed duplicate test
on the fingerprints.  A unique fingerprint proves (up to hash collisions,
which only err towards *keeping* a string active) that no other string
shares the prefix, so ``l_k`` is a valid DIST upper bound and the string
retires.  Duplicate fingerprints mean the prefix may be shared; the string
stays active with ``l_{k+1} = (1 + epsilon) · l_k``.  A string whose whole
length has been hashed retires with ``DIST = |s|`` — exact duplicates can
never be distinguished by any prefix, matching the paper's convention that
the 0 terminator is part of the string.

The resulting estimate never *under*-shoots the true DIST and, with
``epsilon = 1`` (doubling), overshoots by less than a factor of 2 beyond the
initial length.  Smaller epsilons tighten the estimate at the price of more
detection rounds — the tradeoff of Section VI-A.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..mpi.comm import Communicator
from .duplicates import find_unique_fingerprints, prefix_fingerprint

__all__ = ["PrefixDoublingResult", "approximate_dist_prefixes"]

# 40-bit fingerprints: collisions are ~2^-25 per pair and only ever inflate
# the estimate; 5 bytes per fingerprint is a large share of PDMS's total
# communication volume, so width is chosen as small as safety allows.
DEFAULT_FINGERPRINT_BITS = 40

# Geometric growth reaches any realistic string length quickly; 64 rounds is
# a pure safety net against protocol bugs, never reached in practice.
_MAX_ROUNDS = 64


@dataclass
class PrefixDoublingResult:
    """Per-rank outcome of the doubling protocol."""

    lengths: List[int]
    rounds: int
    round_active_counts: List[int] = field(default_factory=list)
    fingerprints_sent: int = 0


def approximate_dist_prefixes(
    comm: Communicator,
    strings: Sequence[bytes],
    initial_length: int = 16,
    epsilon: float = 1.0,
    golomb: bool = False,
    bits: int = DEFAULT_FINGERPRINT_BITS,
) -> PrefixDoublingResult:
    """Upper bounds on ``DIST(s)`` for every local string (globally valid).

    All ranks execute the same number of rounds (the loop is driven by an
    all-reduce of the active counts), so the protocol is safe to run with
    ragged local inputs including empty ranks.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if initial_length < 1:
        raise ValueError("initial_length must be at least 1")

    n = len(strings)
    lengths = [0] * n
    # empty strings carry no information and retire immediately with DIST 0
    active = [i for i in range(n) if strings[i]]

    result = PrefixDoublingResult(lengths=lengths, rounds=0)
    candidate = int(initial_length)
    with comm.phase("prefix-doubling"):
        while result.rounds < _MAX_ROUNDS:
            globally_active = comm.allreduce(len(active))
            if globally_active == 0:
                break
            result.round_active_counts.append(globally_active)
            result.rounds += 1

            fingerprints = [
                prefix_fingerprint(
                    strings[i][:candidate], salt=result.rounds, bits=bits
                )
                for i in active
            ]
            result.fingerprints_sent += len(fingerprints)
            comm.record_local_work(
                sum(min(candidate, len(strings[i])) for i in active), len(active)
            )
            unique = find_unique_fingerprints(
                comm, fingerprints, bits=bits, golomb=golomb,
                phase="prefix-doubling",
            )

            still_active: List[int] = []
            for i, is_unique in zip(active, unique):
                if is_unique:
                    lengths[i] = min(candidate, len(strings[i]))
                elif candidate >= len(strings[i]):
                    # the entire string is shared: a true (or full-prefix)
                    # duplicate, distinguishable only by its terminator
                    lengths[i] = len(strings[i])
                else:
                    still_active.append(i)
            active = still_active
            candidate = max(int(math.floor(candidate * (1.0 + epsilon))), candidate + 1)

        # safety-net exit: if the round bound was hit with strings still
        # active (pathologically small epsilon/initial_length), retire them
        # with their full length — always a valid DIST upper bound
        for i in active:
            lengths[i] = len(strings[i])
    return result
