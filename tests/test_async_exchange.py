"""The split-phase (asynchronous) exchange: request semantics + determinism.

Two layers are covered here:

* the engine's non-blocking primitives (``isend``/``irecv`` returning
  :class:`repro.mpi.comm.Request` handles, ``waitall``/``waitany``), including
  the MPI non-overtaking rule — receives from one source match messages in
  posting order no matter how their handles are driven;
* the determinism contract of ``REPRO_ASYNC_EXCHANGE``: with the split-phase
  exchange on, every ``dsort`` algorithm must produce **bit-identical**
  sorted outputs, LCP arrays and wire-byte accounting (total, per PE and per
  phase) versus the bulk-synchronous path, on adversarial inputs — tiny
  alphabets, duplicates, empty strings, empty ranks.  Only the overlap
  metrics and the modelled time (via the overlap credit) may differ.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.dist import dsort, use_async_exchange
from repro.dist.api import ALGORITHMS
from repro.dist.exchange import (
    async_exchange_enabled,
    exchange_buckets,
    exchange_buckets_async,
    set_async_exchange,
)
from repro.mpi.comm import waitall, waitany
from repro.mpi.engine import run_spmd
from repro.strings.generators import dn_instance
from repro.strings.lcp import lcp_array

# ---------------------------------------------------------------------------
# request handles (engine level)
# ---------------------------------------------------------------------------


def test_isend_irecv_roundtrip():
    def program(comm):
        peer = (comm.rank + 1) % comm.size
        source = (comm.rank - 1) % comm.size
        send = comm.isend(f"hello from {comm.rank}", peer)
        recv = comm.irecv(source)
        assert send.wait() is None
        assert send.test()
        got = recv.wait()
        assert recv.done
        return got

    results, report = run_spmd(4, program)
    assert results == [f"hello from {(r - 1) % 4}" for r in range(4)]
    assert all(b > 0 for b in report.bytes_sent_per_pe)


def test_irecv_matches_in_posting_order():
    """Driving the *second* request first must not steal the first message."""

    def program(comm):
        if comm.rank == 0:
            comm.isend("first", 1, tag=7).wait()
            comm.isend("second", 1, tag=7).wait()
            return None
        if comm.rank == 1:
            a = comm.irecv(0, tag=7)
            b = comm.irecv(0, tag=7)
            got_b = b.wait()  # out-of-order drive
            got_a = a.wait()
            return (got_a, got_b)
        return None

    results, _ = run_spmd(2, program)
    assert results[1] == ("first", "second")


def test_waitany_reports_completions_and_waitall_orders_payloads():
    def program(comm):
        if comm.rank == 0:
            requests = [comm.irecv(src) for src in range(1, comm.size)]
            seen = []
            remaining = list(requests)
            while remaining:
                idx = waitany(remaining)
                seen.append(remaining.pop(idx).wait())
            # waitall on completed requests returns payloads in request order
            assert waitall(requests) == [f"r{src}" for src in range(1, comm.size)]
            return sorted(seen)
        comm.isend(f"r{comm.rank}", 0).wait()
        return None

    results, _ = run_spmd(3, program)
    assert results[0] == ["r1", "r2"]


def test_isend_to_self_is_free_and_delivered():
    def program(comm):
        comm.isend("mine", comm.rank).wait()
        return comm.irecv(comm.rank).wait()

    results, report = run_spmd(2, program)
    assert results == ["mine", "mine"]
    assert report.total_bytes_sent == 0  # self-messages cost nothing


def test_blocking_recv_interoperates_with_irecv():
    def program(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=1)
            comm.send("b", 1, tag=1)
            return None
        first = comm.irecv(0, tag=1)
        second = comm.recv(0, tag=1)  # blocking recv behind an open irecv
        return (first.wait(), second)

    results, _ = run_spmd(2, program)
    assert results[1] == ("a", "b")


# ---------------------------------------------------------------------------
# split-phase exchange (dist level)
# ---------------------------------------------------------------------------


def _cut_buckets(comm, strings):
    """Trivial bucketing for direct exchange tests: round-robin by rank."""
    srt = sorted(strings)
    buckets = []
    for dst in range(comm.size):
        part = [s for i, s in enumerate(srt) if i % comm.size == dst]
        buckets.append((part, lcp_array(part)))
    return buckets


@pytest.mark.parametrize("lcp_compression", [False, True])
def test_async_exchange_matches_sync(lcp_compression):
    corpus = dn_instance(num_strings=200, dn=0.6, length=24, seed=5)

    def program(comm, use_async):
        buckets = _cut_buckets(comm, corpus)
        if use_async:
            received = [None] * comm.size
            for src, strings, lcps in exchange_buckets_async(
                comm, buckets, lcp_compression=lcp_compression
            ):
                received[src] = (strings, lcps)
        else:
            received = exchange_buckets(
                comm, buckets, lcp_compression=lcp_compression
            )
        return received

    sync_results, sync_report = run_spmd(3, program, common_args=(False,))
    async_results, async_report = run_spmd(3, program, common_args=(True,))
    assert async_results == sync_results
    assert async_report.total_bytes_sent == sync_report.total_bytes_sent
    assert async_report.bytes_sent_per_pe == sync_report.bytes_sent_per_pe
    assert dict(async_report.phase_bytes) == dict(sync_report.phase_bytes)
    assert async_report.chars_inspected_per_pe == sync_report.chars_inspected_per_pe
    # only the async path has an overlap window
    assert sync_report.overlap_window_seconds == {}
    assert async_report.overlap_window_seconds.get("exchange", 0.0) > 0.0


def test_async_exchange_carries_payloads():
    def program(comm):
        buckets = [([b"x%d" % dst], [0]) for dst in range(comm.size)]
        received = [None] * comm.size
        for src, strings, lcps, payload in exchange_buckets_async(
            comm, buckets, payloads=[100 + dst for dst in range(comm.size)]
        ):
            received[src] = (strings, lcps, payload)
        return received

    results, _ = run_spmd(2, program)
    for rank, rows in enumerate(results):
        for src, (strings, lcps, payload) in enumerate(rows):
            assert strings == [b"x%d" % rank]
            assert payload == 100 + rank


def test_overlap_credit_reduces_modeled_comm_time():
    corpus = dn_instance(num_strings=400, dn=0.5, length=40, seed=2)
    with use_async_exchange(False):
        sync = dsort(corpus, algorithm="ms", num_pes=4, seed=1)
    with use_async_exchange(True):
        overlapped = dsort(corpus, algorithm="ms", num_pes=4, seed=1)
    assert overlapped.overlap_fraction() > 0.0
    assert sync.overlap_fraction() == 0.0
    machine = sync.report  # same byte counts feed both models
    assert overlapped.report.modeled_comm_time() <= machine.modeled_comm_time()


def test_toggle_roundtrip():
    before = async_exchange_enabled()
    try:
        assert set_async_exchange(True) == before
        assert async_exchange_enabled()
        with use_async_exchange(False):
            assert not async_exchange_enabled()
        assert async_exchange_enabled()
    finally:
        set_async_exchange(before)


# ---------------------------------------------------------------------------
# determinism across all six algorithms
# ---------------------------------------------------------------------------

# tiny alphabet -> many shared prefixes and exact duplicates; empty strings
# and more PEs than strings are reachable through the size bounds
adversarial_strings = st.lists(
    st.binary(max_size=10).map(lambda b: bytes(97 + (c % 3) for c in b)),
    max_size=60,
)

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _run_both(strings, algorithm, p, seed=3):
    with use_async_exchange(False):
        sync = dsort(strings, algorithm=algorithm, num_pes=p, seed=seed)
    with use_async_exchange(True):
        overlapped = dsort(strings, algorithm=algorithm, num_pes=p, seed=seed)
    assert overlapped.sorted_strings == sync.sorted_strings
    assert overlapped.outputs_per_pe == sync.outputs_per_pe
    assert overlapped.lcps_per_pe == sync.lcps_per_pe
    assert overlapped.origins_per_pe == sync.origins_per_pe
    assert overlapped.report.total_bytes_sent == sync.report.total_bytes_sent
    assert overlapped.report.bytes_sent_per_pe == sync.report.bytes_sent_per_pe
    assert dict(overlapped.report.phase_bytes) == dict(sync.report.phase_bytes)
    assert (
        overlapped.report.chars_inspected_per_pe
        == sync.report.chars_inspected_per_pe
    )


@settings(**_SETTINGS)
@given(
    strings=adversarial_strings,
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    p=st.integers(min_value=1, max_value=4),
)
def test_async_exchange_is_deterministic(strings, algorithm, p):
    _run_both(strings, algorithm, p)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_async_exchange_deterministic_fixed_corpus(algorithm):
    """Non-random twin of the hypothesis test on a skew-heavy instance."""
    corpus = dn_instance(num_strings=300, dn=0.8, length=32, seed=17)
    corpus += [b"", b"a" * 31, corpus[0], corpus[0]]  # empties + duplicates
    _run_both(corpus, algorithm, 4, seed=9)
