"""Fault injection through the engine/exchange/session stack.

Controlled single-fault scenarios where the exact counter values are
deterministic: one rule, one channel, known message counts.  The broader
"any plan, any algorithm" sweeps live in ``tests/test_faults_chaos.py``.
"""

import numpy as np
import pytest

from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.faults import (
    CHECKSUM_WIRE_BYTES,
    CorruptFrameError,
    FaultPlan,
    FaultRule,
    LostMessageError,
    RankCrashError,
    use_wire_checksums,
)
from repro.mpi.engine import (
    SpmdError,
    ThreadEngine,
    default_timeout,
    run_spmd,
)
from repro.net.router import RouteFrame, frame_wire_bytes
from repro.session import Cluster, MSSpec
from repro.strings.generators import random_strings
from repro.strings.lcp import lcp_array
from repro.strings.packed import PackedStringArray


def ring_prog(comm, chunk):
    """Send the local chunk one hop clockwise; receive from anticlockwise."""
    comm.set_phase("exchange")
    comm.send(chunk, (comm.rank + 1) % comm.size, tag=7)
    return comm.recv((comm.rank - 1) % comm.size, tag=7)


ARGS = [(f"payload-{r}",) for r in range(4)]


def run_ring(plan=None, timeout=10.0):
    return run_spmd(4, ring_prog, args_per_rank=ARGS, timeout=timeout,
                    fault_plan=plan)


class TestEnvelopeBaseline:
    def test_empty_plan_output_identical_to_no_plan(self):
        base, _ = run_ring()
        sealed, _ = run_ring(FaultPlan())
        assert sealed == base

    def test_empty_plan_charges_envelope_overhead(self):
        _, base = run_ring()
        _, sealed = run_ring(FaultPlan())
        # 4 messages, each + varint(seq)=1 byte + 4 CRC bytes
        assert sealed.total_bytes_sent == base.total_bytes_sent + 4 * 5
        assert sealed.faults_injected == 0
        assert sealed.faults_detected == 0
        assert sealed.retries == 0
        assert sealed.retransmitted_bytes == 0

    def test_chaos_origin_bytes_match_empty_plan(self):
        _, sealed = run_ring(FaultPlan())
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="drop", src=0),))
        _, faulty = run_ring(plan)
        assert faulty.origin_bytes_sent == sealed.origin_bytes_sent


class TestDropRecovery:
    def test_drop_detected_and_retransmitted(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="drop", src=0, dst=1),))
        results, report = run_ring(plan)
        assert results == [x[0] for x in ARGS][-1:] + [x[0] for x in ARGS][:-1]
        assert report.faults_injected == 1
        assert report.faults_detected == 1
        assert report.retries == 1
        assert report.retransmitted_bytes > 0

    def test_drop_budget_exhaustion_raises_lost_message(self):
        # max_retransmits=0: recovery is not allowed to pull at all
        plan = FaultPlan(
            seed=1,
            rules=(FaultRule(kind="drop", src=0, dst=1),),
            max_retransmits=0,
            retry_delay=0.01,
        )
        with pytest.raises(SpmdError) as excinfo:
            run_ring(plan, timeout=3.0)
        assert isinstance(excinfo.value.__cause__, LostMessageError)


class TestCorruptRecovery:
    def test_corrupt_detected_and_repaired(self):
        plan = FaultPlan(seed=2, rules=(FaultRule(kind="corrupt", src=2, dst=3),))
        results, report = run_ring(plan)
        assert results[3] == "payload-2"
        assert report.faults_injected == 1
        assert report.faults_detected == 1
        assert report.retries == 1

    def test_persistent_corruption_raises_corrupt_frame(self):
        # the rule re-strikes every retransmit: the budget must run out
        plan = FaultPlan(
            seed=2,
            rules=(FaultRule(kind="corrupt", src=2, dst=3, max_hits=None),),
            max_retransmits=3,
        )
        with pytest.raises(SpmdError) as excinfo:
            run_ring(plan, timeout=3.0)
        assert isinstance(excinfo.value.__cause__, CorruptFrameError)


class TestDuplicateAndDelay:
    def test_duplicate_discarded_exactly_once(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="duplicate", src=1, dst=2),))
        results, report = run_ring(plan)
        assert results[2] == "payload-1"
        assert report.faults_injected == 1
        assert report.faults_detected == 1  # the second copy, discarded
        assert report.retries == 0
        assert report.retransmitted_bytes > 0  # the extra copy's wire cost

    def test_delayed_message_recovered(self):
        # the held message is the channel's only one, so the receiver's
        # backoff pull recovers it (nothing ever overtakes it)
        plan = FaultPlan(
            seed=4,
            rules=(FaultRule(kind="delay", src=3, dst=0, delay_messages=5),),
            retry_delay=0.01,
        )
        results, report = run_ring(plan)
        assert results[0] == "payload-3"
        assert report.faults_injected == 1
        assert report.retries >= 1

    def test_reordering_recovered_via_sequence_numbers(self):
        def two_sends(comm):
            comm.set_phase("exchange")
            if comm.rank == 0:
                comm.send("first", 1, tag=1)
                comm.send("second", 1, tag=2)
                return None
            a = comm.recv(0, tag=1)
            b = comm.recv(0, tag=2)
            return (a, b)

        # hold message 0 until one successor overtakes it: the receiver
        # sees seq 1 first, proves the gap, and pulls seq 0 immediately
        plan = FaultPlan(
            seed=5,
            rules=(FaultRule(kind="delay", src=0, dst=1, delay_messages=1),),
        )
        results, report = run_spmd(2, two_sends, timeout=10.0, fault_plan=plan)
        assert results[1] == ("first", "second")
        assert report.faults_injected == 1
        # two detections: the gap (seq 1 before seq 0 proves the drop) and
        # the held original arriving late as a stale duplicate
        assert report.faults_detected == 2
        assert report.retries == 1


class TestCrashAndStraggle:
    def test_crash_raises_typed_error(self):
        plan = FaultPlan(seed=6, rules=(FaultRule(kind="crash", rank=1),))
        eng = ThreadEngine(4, timeout=10.0, fault_plan=plan)
        with pytest.raises(SpmdError) as excinfo:
            eng.run(ring_prog, args_per_rank=ARGS)
        assert isinstance(excinfo.value.__cause__, RankCrashError)

    def test_crash_once_then_engine_retry_succeeds(self):
        plan = FaultPlan(seed=6, rules=(FaultRule(kind="crash", rank=1, max_hits=1),))
        eng = ThreadEngine(4, timeout=10.0, fault_plan=plan)
        with pytest.raises(SpmdError):
            eng.run(ring_prog, args_per_rank=ARGS)
        results, _ = eng.run(ring_prog, args_per_rank=ARGS)
        base, _ = run_ring()
        assert results == base

    def test_straggle_slows_but_completes(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(kind="straggle", rank=2,
                                                  seconds=0.05),))
        results, report = run_ring(plan)
        base, _ = run_ring()
        assert results == base
        assert report.faults_injected == 1


class TestDefaultTimeout:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "42.5")
        assert default_timeout() == 42.5
        assert ThreadEngine(2).timeout == 42.5
        assert Cluster(num_pes=2).timeout == 42.5

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_TIMEOUT", raising=False)
        assert default_timeout() == 600.0

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SPMD_TIMEOUT"):
            default_timeout()
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "-3")
        with pytest.raises(ValueError, match="positive"):
            default_timeout()

    def test_explicit_timeout_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "42.5")
        assert ThreadEngine(2, timeout=7.0).timeout == 7.0


class TestCollectiveAccounting:
    def test_reduce_uses_each_ranks_own_size(self):
        def prog(comm):
            # rank r contributes a payload of r+1 bytes
            return comm.reduce(b"x" * (comm.rank + 1), op="max", root=0)

        _, report = run_spmd(3, prog, timeout=5.0)
        from repro.mpi.serialization import wire_size

        expected = sum(wire_size(b"x" * (r + 1)) for r in (1, 2))
        assert report.total_bytes_sent == expected
        # the collective event carries the bottleneck (largest) value
        reduce_events = [e for e in report.collectives if e.kind == "reduce"]
        assert len(reduce_events) == 1
        assert reduce_events[0].max_bytes_per_pe == wire_size(b"xxx")

    def test_allreduce_ring_uses_own_sizes_and_bottleneck_event(self):
        def prog(comm):
            return comm.allreduce(b"y" * (comm.rank + 1), op="max")

        _, report = run_spmd(3, prog, timeout=5.0)
        from repro.mpi.serialization import wire_size

        expected = sum(wire_size(b"y" * (r + 1)) for r in range(3))
        assert report.total_bytes_sent == expected
        events = [e for e in report.collectives if e.kind == "allreduce"]
        assert len(events) == 1
        assert events[0].max_bytes_per_pe == wire_size(b"yyy")


class TestBlockSeals:
    STRINGS = [b"apple", b"apply", b"banana", b""]

    def test_string_block_seal_round_trip_and_overhead(self):
        plain = StringBlock(self.STRINGS)
        with use_wire_checksums(True):
            sealed = StringBlock(self.STRINGS)
            assert sealed.decode()[0] == self.STRINGS
        assert sealed.wire_bytes() == plain.wire_bytes() + CHECKSUM_WIRE_BYTES

    def test_string_block_tamper_detected(self):
        with use_wire_checksums(True):
            blk = StringBlock(list(self.STRINGS))
        blk.strings[1] = b"apqly"
        with pytest.raises(CorruptFrameError, match="StringBlock"):
            blk.decode()

    def test_packed_string_block_seal(self):
        packed = PackedStringArray.from_strings(self.STRINGS)
        plain = StringBlock(packed)
        with use_wire_checksums(True):
            sealed = StringBlock(PackedStringArray.from_strings(self.STRINGS))
            strings, _ = sealed.decode()
        assert strings == self.STRINGS
        assert sealed.wire_bytes() == plain.wire_bytes() + CHECKSUM_WIRE_BYTES

    def test_lcp_block_seal_and_tamper(self):
        lcps = lcp_array(sorted(self.STRINGS))
        run = sorted(self.STRINGS)
        plain = LcpCompressedBlock.encode(run, lcps)
        with use_wire_checksums(True):
            sealed = LcpCompressedBlock.encode(list(run), list(lcps))
            assert sealed.decode()[0] == run
        assert sealed.wire_bytes() == plain.wire_bytes() + CHECKSUM_WIRE_BYTES
        sealed.entries[1] = (0, b"zzz")
        with pytest.raises(CorruptFrameError, match="LcpCompressedBlock"):
            sealed.decode()

    def test_packed_lcp_block_seal(self):
        run = sorted(self.STRINGS)
        packed = PackedStringArray.from_strings(run)
        lcps = np.asarray(lcp_array(run), dtype=np.int64)
        with use_wire_checksums(True):
            sealed = LcpCompressedBlock.encode(packed, lcps)
            assert sealed.decode()[0] == run
        plain = LcpCompressedBlock.encode(packed, lcps)
        assert sealed.wire_bytes() == plain.wire_bytes() + CHECKSUM_WIRE_BYTES

    def test_unsealed_blocks_have_no_overhead(self):
        blk = StringBlock(self.STRINGS)
        assert blk._crc is None
        # tampering an unsealed block goes undetected by design (the
        # baseline wire format carries no checksum)
        blk.strings[0] = b"tampered"
        blk.decode()


class TestRouteFrameSeals:
    def test_frame_seal_wire_overhead(self):
        frame = RouteFrame(0, 1, b"payload", 7)
        sealed = RouteFrame(0, 1, b"payload", 7, seq=3, crc=123)
        assert (
            frame_wire_bytes(sealed)
            == frame_wire_bytes(frame) + 1 + CHECKSUM_WIRE_BYTES
        )

    def test_frame_verify(self):
        from repro.faults import payload_checksum

        good = RouteFrame(0, 1, b"payload", 7, seq=0,
                          crc=payload_checksum(b"payload"))
        good.verify()
        bad = RouteFrame(0, 1, b"payload", 7, seq=0,
                         crc=payload_checksum(b"payload") ^ 1)
        with pytest.raises(CorruptFrameError, match="seq 0"):
            bad.verify()
        # unsealed frames verify trivially
        RouteFrame(0, 1, b"payload", 7).verify()


class TestClusterRetries:
    DATA = random_strings(120, 1, 12, seed=11)

    def test_sort_max_retries_recovers_from_crash(self):
        plan = FaultPlan(seed=8, rules=(FaultRule(kind="crash", rank=1,
                                                  after=1, max_hits=1),))
        cluster = Cluster(num_pes=4, timeout=10.0, fault_plan=plan)
        result = cluster.sort(self.DATA, MSSpec(), check=True, max_retries=2)
        baseline = Cluster(num_pes=4, timeout=10.0).sort(self.DATA, MSSpec())
        assert result.outputs_per_pe == baseline.outputs_per_pe
        assert result.lcps_per_pe == baseline.lcps_per_pe
        # the failed attempt's injection is carried into the final report
        assert result.report.faults_injected == 1
        assert result.report.job_retries == 1

    def test_sort_without_retries_fails_fast(self):
        plan = FaultPlan(seed=8, rules=(FaultRule(kind="crash", rank=1,
                                                  after=1, max_hits=1),))
        cluster = Cluster(num_pes=4, timeout=10.0, fault_plan=plan)
        with pytest.raises(SpmdError):
            cluster.sort(self.DATA, MSSpec())

    def test_negative_max_retries_rejected(self):
        cluster = Cluster(num_pes=2)
        with pytest.raises(ValueError):
            cluster.sort(self.DATA, MSSpec(), max_retries=-1)

    def test_retries_exhausted_reraises(self):
        # an unbounded crash rule defeats any retry budget
        plan = FaultPlan(seed=8, rules=(FaultRule(kind="crash", rank=1,
                                                  max_hits=None),))
        cluster = Cluster(num_pes=4, timeout=10.0, fault_plan=plan)
        with pytest.raises(SpmdError):
            cluster.sort(self.DATA, MSSpec(), max_retries=2)

    def test_batch_stream_resumes_at_failed_chunk(self):
        chunks = [random_strings(60, 1, 10, seed=s) for s in (1, 2, 3)]
        # rank 0 enters the splitter phase once per sort: after=1 makes the
        # crash fire on the second batch (chunk index 1)
        plan = FaultPlan(seed=9, rules=(FaultRule(
            kind="crash", rank=0, phase="splitter-determination",
            after=1, max_hits=1),))
        cluster = Cluster(num_pes=2, timeout=10.0, fault_plan=plan)
        stream = cluster.sort_batches(iter(chunks), MSSpec())
        first = next(stream)
        assert first.sorted_strings == sorted(chunks[0])
        with pytest.raises(SpmdError):
            next(stream)  # chunk 1 crashes...
        resumed = next(stream)  # ...and is retried, not skipped
        assert resumed.sorted_strings == sorted(chunks[1])
        third = next(stream)
        assert third.sorted_strings == sorted(chunks[2])
        with pytest.raises(StopIteration):
            next(stream)
        assert stream.batches_done == 3

    def test_batch_stream_max_retries_inline(self):
        chunks = [random_strings(60, 1, 10, seed=s) for s in (4, 5)]
        plan = FaultPlan(seed=10, rules=(FaultRule(
            kind="crash", rank=0, phase="splitter-determination",
            after=1, max_hits=1),))
        cluster = Cluster(num_pes=2, timeout=10.0, fault_plan=plan)
        results = list(cluster.sort_batches(iter(chunks), MSSpec(),
                                            max_retries=1))
        assert [r.sorted_strings for r in results] == [sorted(c) for c in chunks]
        assert results[1].report.job_retries == 1


class TestClusterWireChecksums:
    DATA = random_strings(150, 1, 12, seed=12)

    def test_checksummed_sort_matches_plain_output(self):
        plain = Cluster(num_pes=4).sort(self.DATA, MSSpec(), check=True)
        sealed = Cluster(num_pes=4, wire_checksums=True).sort(
            self.DATA, MSSpec(), check=True
        )
        assert sealed.outputs_per_pe == plain.outputs_per_pe
        assert sealed.lcps_per_pe == plain.lcps_per_pe
        # seals cost wire bytes: 4 per exchanged block
        assert sealed.report.total_bytes_sent > plain.report.total_bytes_sent

    def test_cluster_flag_scopes_the_toggle(self):
        from repro.faults import wire_checksums_enabled

        Cluster(num_pes=2, wire_checksums=True).sort(self.DATA, MSSpec())
        assert not wire_checksums_enabled()


class TestCliFaultFlags:
    def test_fault_plan_inline_and_summary(self, capsys):
        from repro.cli import main

        rc = main([
            "sort", "-a", "ms", "-p", "4", "-n", "120", "--check",
            "--exchange-topology", "hypercube",
            "--fault-plan",
            '{"seed": 3, "rules": [{"kind": "drop", "src": 0, "dst": 1}]}',
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "faults             : 1 injected, 1 detected, 1 retried" in out
        assert "retransmit bytes" in out

    def test_fault_plan_from_file_with_retries(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(seed=1, rules=(FaultRule(kind="crash", rank=1,
                                                  after=1, max_hits=1),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        rc = main([
            "sort", "-a", "ms", "-p", "4", "-n", "120", "--check",
            "--fault-plan", f"@{path}", "--max-retries", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job retries        : 1" in out

    def test_timeout_flag(self, capsys):
        from repro.cli import main

        rc = main(["sort", "-a", "ms", "-p", "2", "-n", "50",
                   "--timeout", "30"])
        assert rc == 0
