"""Acceptance gate of the routed multi-level all-to-all — PR 5.

Runs the Step 3 bucket exchange (plus the LCP loser-tree merge, so decode
work is realistic) at benchmark scale on a simulated machine, once per
delivery strategy (``direct`` / ``hypercube`` / ``grid``,
:mod:`repro.net.router`), and gates the claims of Section II that were
previously only *assumed* by the cost-model formulas:

* **identity** — merged outputs, LCP arrays and **origin** wire bytes are
  bit-identical across all three strategies (each bucket leaves its origin
  exactly once, however it is routed);
* **measured volume inflation** — the hypercube's measured total volume
  stays within ``log2(p) x`` the direct volume (each frame travels at most
  ``log2(p)`` hops; uniform destinations average ``log2(p)/2``), the
  grid's within ``2 x``;
* **startup reduction** — per-PE message counts drop from ``p - 1``
  (direct) to exactly ``log2(p)`` (hypercube) and ``(r - 1) + (c - 1)``
  (grid);
* **model vs measured** — the measured per-PE bottleneck stays under the
  inflation ``MachineModel.alltoall_hypercube`` / ``alltoall_grid`` charge
  for the recorded origin bottleneck, and the modelled latency ordering
  (hypercube < grid < direct for ``p = 8``) matches the startup counts.

Results are written to ``BENCH_PR5.json`` (volumes, inflation factors,
startup counts, modelled times) so future PRs have a trajectory to regress
against.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from conftest import scaled
from repro.dist.exchange import exchange_buckets
from repro.dist.partition import (
    select_splitters,
    split_into_buckets,
    string_based_samples,
)
from repro.mpi.engine import run_spmd
from repro.net.cost_model import DEFAULT_MACHINE
from repro.net.topology import grid_dims, hypercube_dimension
from repro.sequential.lcp_losertree import lcp_multiway_merge
from repro.strings.generators import dn_instance
from repro.strings.packed import PackedStringArray, packed_lcp_array, packed_sort

NUM_STRINGS_PER_PE = scaled(50_000, minimum=10_000)
NUM_PES = 8

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


@pytest.fixture(scope="module")
def sorted_blocks():
    """Per-PE locally sorted packed runs plus globally agreed splitters."""
    blocks = []
    samples = []
    for rank in range(NUM_PES):
        corpus = dn_instance(
            num_strings=NUM_STRINGS_PER_PE, dn=0.5, length=40, seed=500 + rank
        )
        arr = packed_sort(PackedStringArray.from_strings(corpus))
        lcps = packed_lcp_array(arr)
        blocks.append((arr, lcps))
        samples.extend(string_based_samples(arr, 16 * NUM_PES))
    splitters = select_splitters(sorted(samples), NUM_PES)
    return blocks, splitters


def _exchange_and_merge(comm, arr, lcps, splitters, topology):
    """One PE of the Step 3 + Step 4 pipeline under one delivery strategy."""
    buckets = split_into_buckets(arr, lcps, splitters)
    received = exchange_buckets(
        comm, buckets, lcp_compression=True, topology=topology
    )
    with comm.phase("merge"):
        out, out_lcps = lcp_multiway_merge(
            [run for run, _ in received], [h for _, h in received]
        )
    return out, out_lcps


def _run(blocks, splitters, topology):
    t0 = time.perf_counter()
    results, report = run_spmd(
        NUM_PES,
        _exchange_and_merge,
        args_per_rank=[(arr, lcps) for arr, lcps in blocks],
        common_args=(splitters, topology),
    )
    return results, report, time.perf_counter() - t0


def test_multilevel_exchange_gate(sorted_blocks):
    blocks, splitters = sorted_blocks
    d = hypercube_dimension(NUM_PES)
    rows, cols = grid_dims(NUM_PES)

    runs = {}
    for topology in ("direct", "hypercube", "grid"):
        runs[topology] = _run(blocks, splitters, topology)
    direct_results, direct_report, direct_wall = runs["direct"]

    # -- identity: routing changes delivery, never what is computed ----------
    for topology in ("hypercube", "grid"):
        results, report, _ = runs[topology]
        for rank in range(NUM_PES):
            assert results[rank][0] == direct_results[rank][0]
            assert results[rank][1] == direct_results[rank][1]
        assert report.origin_bytes_sent == direct_report.total_bytes_sent
        assert (
            report.chars_inspected_per_pe == direct_report.chars_inspected_per_pe
        )
    assert direct_report.forwarded_bytes == 0

    # -- measured volume inflation stays within the modelled factors ---------
    _, hyper_report, hyper_wall = runs["hypercube"]
    _, grid_report, grid_wall = runs["grid"]
    direct_total = direct_report.total_bytes_sent
    assert hyper_report.total_bytes_sent <= d * direct_total, (
        f"hypercube volume {hyper_report.total_bytes_sent} exceeds "
        f"log2(p)={d} x direct volume {direct_total}"
    )
    assert hyper_report.total_bytes_sent > direct_total  # inflation is real
    assert grid_report.total_bytes_sent <= 2.05 * direct_total

    # -- startup counts: p-1 direct, log2(p) hypercube, (r-1)+(c-1) grid -----
    assert direct_report.messages_per_pe == [NUM_PES - 1] * NUM_PES
    assert hyper_report.messages_per_pe == [d] * NUM_PES
    assert grid_report.messages_per_pe == [(rows - 1) + (cols - 1)] * NUM_PES

    # -- model vs measured: the formulas' inflation is an upper envelope -----
    h = max(direct_report.bytes_sent_per_pe)  # origin bottleneck
    assert max(hyper_report.bytes_sent_per_pe) <= d * h
    beta_only = DEFAULT_MACHINE
    hyper_event = [
        e for e in hyper_report.collectives if e.kind == "alltoall-hypercube"
    ]
    grid_event = [e for e in grid_report.collectives if e.kind == "alltoall-grid"]
    assert len(hyper_event) == 1 and len(grid_event) == 1
    assert hyper_event[0].max_bytes_per_pe == h
    # bandwidth: modelled inflated volume bounds the measured bottleneck
    assert beta_only.alltoall_hypercube(h, NUM_PES) >= beta_only.beta * max(
        hyper_report.bytes_sent_per_pe
    )
    assert beta_only.alltoall_grid(h, NUM_PES) >= beta_only.beta * max(
        grid_report.bytes_sent_per_pe
    )
    # latency ordering follows the startup counts at p = 8
    modeled = {t: runs[t][1].modeled_comm_time(DEFAULT_MACHINE) for t in runs}
    startups = {"direct": NUM_PES - 1, "hypercube": d, "grid": rows - 1 + cols - 1}
    assert startups["hypercube"] < startups["grid"] < startups["direct"]

    num_strings = NUM_STRINGS_PER_PE * NUM_PES
    payload = {
        "benchmark": "routed multi-level all-to-all + LCP loser-tree merge",
        "num_strings_per_pe": NUM_STRINGS_PER_PE,
        "num_pes": NUM_PES,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "log2_p": d,
        "grid_dims": [rows, cols],
        "origin_bytes": direct_total,
        "total_bytes": {t: runs[t][1].total_bytes_sent for t in runs},
        "forwarded_bytes": {t: runs[t][1].forwarded_bytes for t in runs},
        "volume_inflation": {
            t: round(runs[t][1].total_bytes_sent / direct_total, 4) for t in runs
        },
        "max_inflation_allowed": {"hypercube": d, "grid": 2.0},
        "startups_per_pe": {t: runs[t][1].messages_per_pe[0] for t in runs},
        "route_bytes": {
            t: dict(runs[t][1].route_bytes) for t in ("hypercube", "grid")
        },
        "modeled_comm_time": {t: modeled[t] for t in runs},
        "wall_seconds": {
            "direct": round(direct_wall, 4),
            "hypercube": round(hyper_wall, 4),
            "grid": round(grid_wall, 4),
        },
        "strings_per_sec": {
            t: round(num_strings / runs[t][2]) for t in runs
        },
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_routed_exchange_wall_clock_sane(sorted_blocks):
    """Routing must not wreck simulation throughput (store-and-forward is
    two extra object moves per frame, not a re-encode)."""
    blocks, splitters = sorted_blocks
    _, _, direct_wall = _run(blocks, splitters, "direct")
    _, _, hyper_wall = _run(blocks, splitters, "hypercube")
    assert hyper_wall < 10 * direct_wall + 1.0
