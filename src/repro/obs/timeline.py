"""Span reconstruction: raw per-rank event streams to an aligned timeline.

A :class:`Timeline` is the structured view of one run's recorders: per-rank
phase :class:`Span`\\ s (``local-sort``, ``splitter-determination``,
``exchange``, ``merge``, ...), nested barrier-wait sub-spans, and point
:class:`Instant`\\ s (comm events, fault injections, retransmit pulls).
All timestamps are **rank-offset aligned**: the earliest event over all
ranks becomes ``t = 0`` (the raw monotonic origin is kept in
:attr:`Timeline.origin`), so timelines from the thread engine and from
forked worker processes render identically.

The central attribution fix lives in :meth:`Timeline.phase_seconds`:
*exclusive* phase time subtracts the barrier-wait sub-spans nested inside
a phase, so a straggling rank inflates the ``barrier`` account — not the
``merge`` or ``exchange`` account that happened to surround the wait.

Timelines attach to :class:`repro.net.metrics.TrafficReport` and must obey
its fold contract: :meth:`Timeline.merged` concatenates two runs
end-to-end (the later run's spans are shifted past the earlier run's end),
keeping every span exactly once and adding dropped-event counts — pinned
by ``tests/test_sort_batches.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Span", "Instant", "Timeline"]


@dataclass
class Span:
    """One half-open interval ``[start, end)`` of one rank's time.

    ``cat`` is the span taxonomy bucket: ``"phase"`` for accounting phases
    (one per :meth:`Communicator.set_phase` interval) and ``"barrier"`` for
    the nested barrier-wait sub-spans; third-party instrumentation may add
    further categories.  Times are seconds on the aligned run clock.
    """

    rank: int
    name: str
    cat: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """The span's length in seconds (never negative)."""
        return max(0.0, self.end - self.start)


@dataclass
class Instant:
    """One point event on a rank's timeline (comm event, fault marker)."""

    rank: int
    name: str
    cat: str
    ts: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Timeline:
    """The aligned, structured trace of one (or several folded) runs."""

    num_pes: int
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    #: events lost to ring-buffer overflow, summed over ranks and folds
    dropped_events: int = 0
    #: raw monotonic timestamp that became ``t = 0`` (first folded run's)
    origin: float = 0.0
    #: free-form provenance (engine name, merged-run count, ...)
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_exports(
        cls, exports: Sequence[Dict[str, Any]], num_pes: int
    ) -> "Timeline":
        """Build an aligned timeline from per-rank recorder exports.

        ``exports`` are :meth:`repro.obs.recorder.Recorder.export` payloads
        (any subset of ranks, any order).  Alignment subtracts the earliest
        timestamp over *all* ranks — valid on both engines because
        ``time.monotonic`` is the boot-relative ``CLOCK_MONOTONIC`` shared
        across threads and forked processes alike.  An unclosed final phase
        (a rank whose ``finish`` marker was dropped) is closed at that
        rank's last event.
        """
        origin = min(
            (ev[1] for ex in exports for ev in ex["events"]),
            default=0.0,
        )
        timeline = cls(num_pes=num_pes, origin=origin)
        for ex in exports:
            timeline.dropped_events += int(ex.get("dropped", 0))
            _build_rank(timeline, int(ex["rank"]), ex["events"], origin)
        timeline.spans.sort(key=lambda s: (s.rank, s.start, s.end))
        timeline.instants.sort(key=lambda i: (i.rank, i.ts))
        return timeline

    # ------------------------------------------------------------------ queries
    @property
    def duration(self) -> float:
        """End of the last span/instant on the aligned clock (0.0 if empty)."""
        last = 0.0
        for s in self.spans:
            last = max(last, s.end)
        for i in self.instants:
            last = max(last, i.ts)
        return last

    def phase_names(self) -> List[str]:
        """Distinct phase names, ordered by first appearance on the clock."""
        first: Dict[str, float] = {}
        for s in self.spans:
            if s.cat == "phase" and (s.name not in first or s.start < first[s.name]):
                first[s.name] = s.start
        return sorted(first, key=lambda n: first[n])

    def iter_spans(
        self,
        cat: Optional[str] = None,
        name: Optional[str] = None,
        rank: Optional[int] = None,
    ) -> Iterable[Span]:
        """Spans filtered by category / name / rank (``None`` matches all)."""
        for s in self.spans:
            if cat is not None and s.cat != cat:
                continue
            if name is not None and s.name != name:
                continue
            if rank is not None and s.rank != rank:
                continue
            yield s

    def phase_seconds(
        self,
        name: Optional[str] = None,
        rank: Optional[int] = None,
        exclusive: bool = True,
    ) -> float:
        """Summed seconds of phase spans, by default **exclusive** of barrier wait.

        ``exclusive=True`` subtracts, from every matching phase span, the
        parts of the same rank's barrier-wait sub-spans that fall inside
        it — the attribution fix that keeps a straggler's idle time out of
        the surrounding merge/exchange account.  ``exclusive=False`` is
        plain wall-clock span time.
        """
        total = 0.0
        barrier_by_rank: Dict[int, List[Span]] = {}
        if exclusive:
            for b in self.iter_spans(cat="barrier"):
                barrier_by_rank.setdefault(b.rank, []).append(b)
        for s in self.iter_spans(cat="phase", name=name, rank=rank):
            seconds = s.duration
            if exclusive:
                for b in barrier_by_rank.get(s.rank, ()):
                    seconds -= _intersection(s, b)
            total += max(0.0, seconds)
        return total

    def stage_seconds(self, exclusive: bool = True) -> Dict[str, float]:
        """Per-phase summed seconds over all ranks (see :meth:`phase_seconds`)."""
        return {
            name: self.phase_seconds(name=name, exclusive=exclusive)
            for name in self.phase_names()
        }

    def barrier_seconds(self, rank: Optional[int] = None) -> float:
        """Summed barrier-wait seconds (all ranks, or one rank's)."""
        return sum(s.duration for s in self.iter_spans(cat="barrier", rank=rank))

    def peak_rss_per_stage(self) -> Dict[str, int]:
        """Peak resident-set bytes observed per phase (RSS sampled at boundaries)."""
        peaks: Dict[str, int] = {}
        for s in self.iter_spans(cat="phase"):
            rss = s.args.get("rss_bytes")
            if rss is not None:
                peaks[s.name] = max(peaks.get(s.name, 0), int(rss))
        return peaks

    def overlap_pairs(self, a: str, b: str) -> float:
        """Seconds during which phases ``a`` and ``b`` ran concurrently.

        Summed pairwise intersection of ``a``-spans and ``b``-spans on
        *different* ranks — the quantity that makes split-phase overlap
        (exchange on one rank while another merges) visible as a number,
        not just as interleaved bars in the Chrome trace.
        """
        spans_a = list(self.iter_spans(cat="phase", name=a))
        spans_b = list(self.iter_spans(cat="phase", name=b))
        total = 0.0
        for sa in spans_a:
            for sb in spans_b:
                if sa.rank != sb.rank:
                    total += _intersection(sa, sb)
        return total

    # ------------------------------------------------------------------ algebra
    def shifted(self, offset: float) -> "Timeline":
        """A copy with every timestamp moved by ``offset`` seconds."""
        return Timeline(
            num_pes=self.num_pes,
            spans=[
                Span(s.rank, s.name, s.cat, s.start + offset, s.end + offset, dict(s.args))
                for s in self.spans
            ],
            instants=[
                Instant(i.rank, i.name, i.cat, i.ts + offset, dict(i.args))
                for i in self.instants
            ],
            dropped_events=self.dropped_events,
            origin=self.origin,
            meta=dict(self.meta),
        )

    def merged(self, other: "Timeline") -> "Timeline":
        """A new timeline folding ``other`` after ``self`` (inputs unmutated).

        The fold contract of :func:`repro.net.metrics.fold_traffic_report`
        for the timeline attachment: ``other``'s spans are shifted to start
        where ``self`` ends (batches/retry attempts render sequentially,
        never interleaved with a different run), every span and instant of
        both inputs appears exactly once, and dropped-event counts add.
        """
        if other.num_pes != self.num_pes:
            raise ValueError(
                "cannot merge timelines from machines of different sizes: "
                f"{sorted({self.num_pes, other.num_pes})}"
            )
        shifted = other.shifted(self.duration)
        meta = dict(self.meta)
        for key, value in other.meta.items():
            meta.setdefault(key, value)
        runs = self.meta.get("merged_runs", 1) + other.meta.get("merged_runs", 1)
        meta["merged_runs"] = runs
        return Timeline(
            num_pes=self.num_pes,
            spans=self.spans + shifted.spans,
            instants=self.instants + shifted.instants,
            dropped_events=self.dropped_events + other.dropped_events,
            origin=self.origin,
            meta=meta,
        )


def _intersection(a: Span, b: Span) -> float:
    """Length of the overlap of two spans' intervals (0.0 when disjoint)."""
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))


def _build_rank(
    timeline: Timeline,
    rank: int,
    events: Sequence[Tuple[str, float, Optional[str], Any]],
    origin: float,
) -> None:
    """Replay one rank's event stream into spans/instants (aligned by ``origin``)."""
    open_phase: Optional[Tuple[str, float]] = None  # (name, aligned start)
    sub_stack: List[Tuple[str, float]] = []
    last_t = 0.0

    def close_phase(end: float, rss: Optional[int]) -> None:
        if open_phase is None:
            return
        name, start = open_phase
        args: Dict[str, Any] = {}
        if rss is not None:
            # ru_maxrss is a high-water mark, so the boundary sample at the
            # *exit* of a phase is the peak through that phase
            args["rss_bytes"] = int(rss)
        timeline.spans.append(Span(rank, name, "phase", start, end, args))

    for kind, raw_t, name, data in events:
        t = raw_t - origin
        last_t = max(last_t, t)
        if kind == "phase":
            close_phase(t, data)
            open_phase = (name or "unlabelled", t)
        elif kind == "finish":
            close_phase(t, data)
            open_phase = None
        elif kind == "begin":
            sub_stack.append((name or "sub", t))
        elif kind == "end":
            for idx in range(len(sub_stack) - 1, -1, -1):
                if sub_stack[idx][0] == name:
                    sub_name, start = sub_stack.pop(idx)
                    cat = "barrier" if sub_name == "barrier" else "sub"
                    timeline.spans.append(Span(rank, sub_name, cat, start, t))
                    break
        elif kind == "comm":
            peer, nbytes = data
            timeline.instants.append(
                Instant(rank, name or "send", "comm", t, {"peer": peer, "bytes": nbytes})
            )
        elif kind == "instant":
            args = data if isinstance(data, dict) else ({} if data is None else {"data": data})
            timeline.instants.append(Instant(rank, name or "mark", "mark", t, dict(args)))
    # a rank whose finish marker was lost (ring overflow, crash) still
    # contributes its final phase, closed at its last observed event
    close_phase(last_t, None)
