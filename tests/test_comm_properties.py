"""Engine-independent properties of the ``Communicator`` protocol.

Every backend registered with the engine registry must honour the same
point-to-point matching contract: messages between one (sender, receiver,
tag) channel are matched to receives **in posting order** — the i-th
``irecv`` posted for a channel completes with the i-th ``isend`` of that
channel, regardless of engine, payload shape, or how the completion waits
interleave.  The property is driven by hypothesis over random per-channel
message sequences and exercised on every available engine via the shared
``engine_params`` axis from :mod:`engine_conformance`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from engine_conformance import engine_params, set_engine
from repro.mpi import run_spmd

# payloads that survive any transport: bytes of varying size so both the
# in-band pipe path and (on large examples) the shm path get exercised
payloads = st.lists(
    st.binary(min_size=0, max_size=64),
    min_size=1,
    max_size=6,
)

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module", params=engine_params(), autouse=True)
def comm_engine(request):
    """Run every property of this module on each registered engine.

    Module-scoped so the hypothesis tests can share it (function-scoped
    parametrized fixtures would trip hypothesis health checks); engines
    the platform cannot run are skipped with the platform's reason.
    """
    with set_engine(request.param):
        yield request.param


def _ring_program(messages):
    """Each rank isends ``messages`` to its successor, irecvs in order."""

    def prog(comm):
        dest = (comm.rank + 1) % comm.size
        source = (comm.rank - 1) % comm.size
        sends = [
            comm.isend((i, body), dest=dest, tag=7)
            for i, body in enumerate(messages)
        ]
        recvs = [comm.irecv(source=source, tag=7) for _ in messages]
        received = [r.wait() for r in recvs]
        for s in sends:
            s.wait()
        return received

    return prog


@settings(**_SETTINGS)
@given(messages=payloads, p=st.integers(min_value=2, max_value=3))
def test_isend_irecv_match_in_posting_order(messages, p):
    """The i-th posted irecv on a channel yields the i-th isend's payload."""
    results, _ = run_spmd(p, _ring_program(messages))
    expected = list(enumerate(messages))
    for received in results:
        assert received == expected


@settings(**_SETTINGS)
@given(
    first=st.binary(min_size=0, max_size=32),
    second=st.binary(min_size=0, max_size=32),
)
def test_tag_order_is_enforced_identically(first, second):
    """Receiving tags out of posting order is a typed error on any engine.

    The SPMD contract deliberately rejects cross-tag reordering on one
    (sender, receiver) link — a tag mismatch means the program's send and
    receive schedules disagree, and every backend must surface it as the
    same typed :class:`SpmdError`, never as silent misdelivery.
    """
    from repro.mpi import SpmdError

    def prog(comm):
        peer = 1 - comm.rank
        if comm.rank == 0:
            comm.send(first, dest=peer, tag=1)
            comm.send(second, dest=peer, tag=2)
            return None
        b = comm.recv(source=peer, tag=2)  # posted out of order: must fail
        a = comm.recv(source=peer, tag=1)
        return (a, b)

    with pytest.raises(SpmdError, match="tag mismatch"):
        run_spmd(2, prog)


def test_out_of_order_waits_preserve_matching():
    """Waiting on later receives first must not steal earlier messages."""

    def prog(comm):
        if comm.size == 1:
            return []
        dest = (comm.rank + 1) % comm.size
        source = (comm.rank - 1) % comm.size
        sends = [comm.isend(i, dest=dest, tag=3) for i in range(4)]
        recvs = [comm.irecv(source=source, tag=3) for _ in range(4)]
        # complete in reverse posting order
        received = [None] * 4
        for i in reversed(range(4)):
            received[i] = recvs[i].wait()
        for s in sends:
            s.wait()
        return received

    results, _ = run_spmd(3, prog)
    for received in results:
        assert received == [0, 1, 2, 3]
