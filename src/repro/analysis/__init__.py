"""Static analysis of the repro package: SPMD, wire-format and toggle lint.

An AST-driven analyzer (python :mod:`ast` only — no third-party parser)
that checks the invariants the runtime can only surface as deadlock
timeouts or silent byte drift:

* :mod:`~repro.analysis.spmd` — comm-graph extraction plus the classic
  SPMD bugs (divergent collective order under rank-dependent branches,
  orphaned receives, root/op mismatches, self-addressed blocking posts);
* :mod:`~repro.analysis.wire` — wire-format discipline (verify-before-
  decode on sealed blocks/frames, zero-copy hot path);
* :mod:`~repro.analysis.toggles` — the central ``REPRO_*`` toggle
  registry and its hygiene rules.

Entry points: :func:`~repro.analysis.runner.run_lint` (library),
``repro lint`` (CLI), ``tests/test_comm_lint.py`` (gate).  See
``docs/ANALYSIS.md`` for the pass taxonomy, the comm-graph JSON schema
and the ``# lint: spmd-ok(<rule>)`` suppression syntax.
"""

from .commgraph import (
    PackageIndex,
    build_commgraph,
    collective_sequence,
    detect_algorithms,
    parse_tree,
    transitive_closure,
)
from .model import CommEvent, Finding, FunctionSummary, LintReport, SuppressionIndex
from .runner import (
    default_source_root,
    render_human,
    render_json,
    run_lint,
    write_commgraphs,
)
from .toggles import REGISTRY, ToggleSpec

__all__ = [
    "PackageIndex",
    "build_commgraph",
    "collective_sequence",
    "detect_algorithms",
    "parse_tree",
    "transitive_closure",
    "CommEvent",
    "Finding",
    "FunctionSummary",
    "LintReport",
    "SuppressionIndex",
    "default_source_root",
    "render_human",
    "render_json",
    "run_lint",
    "write_commgraphs",
    "REGISTRY",
    "ToggleSpec",
]
