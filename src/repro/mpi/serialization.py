"""Wire-size accounting for simulated messages.

The simulated communicator does not need to serialise Python objects to move
them between rank threads — references suffice — but the *byte accounting*
must reflect what a real MPI implementation of the paper's algorithms would
put on the wire, because "bytes sent per string" is the headline metric of
Figures 4 and 5.

The rules implemented here:

* ``bytes``/``bytearray``: payload length plus a varint length header
  (strings are sent without 0 terminators but with explicit lengths, which
  is the convention footnote 1 of the paper allows).
* ``int``: LEB128 varint size — LCP values, counts and string lengths are
  small most of the time and a real implementation would use a variable
  length or bit-packed encoding (Section VI-B discusses exactly this).
* ``float``: 8 bytes.
* ``None``/booleans: 1 byte.
* ``list``/``tuple``: sum of the element sizes (no per-element framing beyond
  what elements themselves carry) plus a varint element count.
* ``numpy.ndarray``: ``arr.nbytes``.
* any object exposing ``wire_bytes()``: that value.  The distributed layer
  uses this hook for LCP-compressed string blocks and Golomb-coded
  fingerprint sets so that their compression is reflected exactly.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..strings.packed import PackedStringArray

__all__ = [
    "varint_size",
    "varint_sizes",
    "varint_total",
    "packed_wire_bytes",
    "wire_size",
    "WireSized",
]


class WireSized:
    """Mix-in marking message classes that know their own wire size."""

    def wire_bytes(self) -> int:  # pragma: no cover - interface definition
        """Exact bytes this message would occupy on a real wire."""
        raise NotImplementedError


def varint_size(value: int) -> int:
    """Number of bytes of the LEB128 encoding of ``value`` (>= 0)."""
    if value < 0:
        # zig-zag: one extra bit, same asymptotics; negative values are rare
        value = (-value << 1) | 1
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def varint_sizes(values: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`varint_size`: per-element LEB128 sizes (``int64``).

    Negative values get the same zig-zag treatment as the scalar function.
    The element-wise results are identical to ``[varint_size(v) for v in
    values]``, which the property tests pin; the hot path uses this over the
    length and LCP arrays of packed string blocks.
    """
    v = np.asarray(values, dtype=np.int64)
    if (v < 0).any():
        # rare path (no hot-path caller passes negatives): the zig-zag
        # transform (-v << 1) | 1 can exceed int64, so do it per element in
        # unbounded Python ints exactly as the scalar function does
        return np.fromiter(
            (varint_size(int(x)) for x in v), dtype=np.int64, count=v.size
        )
    sizes = np.ones(v.shape, dtype=np.int64)
    # int64 values need at most 9 LEB128 bytes (ceil(63/7)); the would-be
    # tenth threshold 2**63 overflows int64 and is unreachable anyway
    for k in range(1, 9):
        more = v >= np.int64(1) << np.int64(7 * k)
        if not more.any():
            break
        sizes += more
    return sizes


def varint_total(values: Sequence[int]) -> int:
    """Sum of the LEB128 sizes of ``values`` (one reduction, no Python loop)."""
    return int(varint_sizes(values).sum())


def packed_wire_bytes(
    packed: PackedStringArray, lcps: Any = None
) -> int:
    """Wire size of a packed string block: count + length headers + payload
    (+ optional LCP varints) — the vectorized twin of ``StringBlock``'s
    scalar accounting."""
    lengths = packed.lengths
    total = varint_size(len(packed)) + varint_total(lengths) + packed.num_chars
    if lcps is not None:
        total += varint_total(lcps)
    return total


def wire_size(obj: Any) -> int:
    """Wire size in bytes of ``obj`` under the rules documented above."""
    if obj is None:
        return 1
    if isinstance(obj, WireSized):
        return obj.wire_bytes()
    wire = getattr(obj, "wire_bytes", None)
    if callable(wire):
        return int(wire())
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (bytes, bytearray, memoryview)):
        n = len(obj)
        return n + varint_size(n)
    if isinstance(obj, PackedStringArray):
        # same framing as the equivalent list[bytes]: element count plus a
        # varint length header per string
        return packed_wire_bytes(obj)
    if isinstance(obj, str):
        n = len(obj.encode("utf-8"))
        return n + varint_size(n)
    if isinstance(obj, int):
        return varint_size(obj)
    if isinstance(obj, float):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.integer):
        return varint_size(int(obj))
    if isinstance(obj, np.floating):
        return 8
    if isinstance(obj, (list, tuple)):
        return varint_size(len(obj)) + sum(wire_size(x) for x in obj)
    if isinstance(obj, dict):
        return varint_size(len(obj)) + sum(
            wire_size(k) + wire_size(v) for k, v in obj.items()
        )
    raise TypeError(
        f"cannot compute a wire size for objects of type {type(obj).__name__}; "
        "give the message class a wire_bytes() method"
    )
