"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "ms"
        assert args.num_pes == 8
        assert args.workload == "dn50"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "-a", "bogosort"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "suffix"])
        assert args.name == "suffix"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure-nine"])


class TestSortCommand:
    def test_sort_generated_workload(self, capsys, tmp_path):
        out_file = tmp_path / "sorted.txt"
        code = main(
            [
                "sort", "-a", "ms", "-p", "4", "-w", "random",
                "-n", "300", "--check", "-o", str(out_file),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "bytes per string" in captured
        assert "output check       : passed" in captured
        lines = out_file.read_bytes().splitlines()
        assert len(lines) == 300
        assert lines == sorted(lines)

    def test_sort_from_input_file(self, capsys, tmp_path):
        in_file = tmp_path / "input.txt"
        in_file.write_bytes(b"pear\napple\nfig\n")
        out_file = tmp_path / "out.txt"
        code = main(["sort", "-i", str(in_file), "-p", "2", "-o", str(out_file), "--check"])
        assert code == 0
        assert out_file.read_bytes().splitlines() == [b"apple", b"fig", b"pear"]

    def test_sort_pdms_reports_metrics(self, capsys):
        code = main(["sort", "-a", "pdms-golomb", "-p", "3", "-w", "dnareads", "-n", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total bytes sent" in out and "prefix-doubling" in out


class TestSortSpecFlags:
    def test_distribute_by_chars(self, capsys, tmp_path):
        in_file = tmp_path / "skewed.txt"
        in_file.write_bytes(b"\n".join([b"x" * 60] * 3 + [b"y"] * 100) + b"\n")
        code = main(
            ["sort", "-i", str(in_file), "-p", "4", "--distribute-by", "chars", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "output check       : passed" in out
        assert "config hash" in out

    def test_inline_spec_json(self, capsys):
        code = main(
            [
                "sort", "-n", "200", "-p", "2", "-w", "random",
                "--spec", '{"algorithm": "pdms", "epsilon": 0.5}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm          : pdms" in out

    def test_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text('{"algorithm": "ms", "sampling": "character"}')
        code = main(
            ["sort", "-n", "150", "-p", "2", "-w", "random", "--spec", f"@{spec_file}"]
        )
        assert code == 0
        assert "algorithm          : ms" in capsys.readouterr().out

    def test_bad_spec_key_fails_with_suggestion(self, capsys):
        with pytest.raises(ValueError, match="sampling"):
            main(["sort", "-n", "50", "--spec", '{"algorithm": "ms", "sampilng": "x"}'])


class TestAlgorithmsCommand:
    def test_lists_registry(self, capsys):
        code = main(["algorithms"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("hquick", "fkmerge", "ms-simple", "ms", "pdms", "pdms-golomb", "auto"):
            assert name in out
        assert "config=" in out and "epsilon" in out

    def test_json_output_round_trips_through_from_dict(self, capsys):
        from repro.session import SortSpec

        code = main(["algorithms", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) >= 7
        for entry in payload:
            spec = SortSpec.from_dict(entry)
            assert spec.to_dict() == entry


class TestGenerateCommand:
    def test_generate_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "corpus.txt"
        code = main(["generate", "commoncrawl", "-n", "100", "-o", str(out_file)])
        assert code == 0
        lines = out_file.read_bytes().splitlines()
        assert len(lines) == 100


class TestExperimentCommand:
    def test_experiment_prints_tables_and_dumps_json(self, capsys, tmp_path):
        json_path = tmp_path / "cells.json"
        code = main(["experiment", "skewed", "--json", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bytes_per_string" in out
        payload = json.loads(json_path.read_text())
        assert isinstance(payload, list) and payload[0]["cells"]

    def test_experiment_custom_metric(self, capsys):
        code = main(["experiment", "suffix", "--metric", "imbalance"])
        assert code == 0
        assert "imbalance" in capsys.readouterr().out
