"""Dispatcher for the sequential string sorters.

The distributed algorithms call :func:`sort_strings_with_lcp` for Step 1
(local sorting) and let the caller pick the algorithm; the default is the
paper's choice (MSD radix sort with Multikey Quicksort / LCP insertion sort
base cases).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .lcp_insertion import lcp_insertion_sort
from .lcp_mergesort import lcp_mergesort
from .msd_radix import msd_radix_sort
from .multikey_quicksort import multikey_quicksort
from .stats import CharStats

__all__ = [
    "SEQUENTIAL_SORTERS",
    "sort_strings_with_lcp",
    "sort_strings",
]

SorterFn = Callable[..., Tuple[List[bytes], List[int]]]

SEQUENTIAL_SORTERS: Dict[str, SorterFn] = {
    "msd_radix": msd_radix_sort,
    "multikey_quicksort": multikey_quicksort,
    "lcp_mergesort": lambda strings, stats=None: lcp_mergesort(strings, stats=stats),
    "lcp_insertion": lambda strings, stats=None: lcp_insertion_sort(strings, 0, stats),
    # Python's built-in Timsort on bytes, LCP array computed afterwards; used
    # as a correctness oracle and as a "how fast can CPython possibly be"
    # reference point in benchmarks.
    "timsort": None,  # filled in below to avoid a forward reference
}


def _timsort_with_lcp(
    strings: Sequence[bytes], stats: Optional[CharStats] = None
) -> Tuple[List[bytes], List[int]]:
    out = sorted(strings)
    lcps = [0] * len(out)
    for i in range(1, len(out)):
        a, b = out[i - 1], out[i]
        limit = min(len(a), len(b))
        h = 0
        while h < limit and a[h] == b[h]:
            h += 1
        lcps[i] = h
        if stats is not None:
            stats.add_chars(h + (1 if h < limit else 0))
    return out, lcps


SEQUENTIAL_SORTERS["timsort"] = _timsort_with_lcp


def sort_strings_with_lcp(
    strings: Sequence[bytes],
    algorithm: str = "msd_radix",
    stats: Optional[CharStats] = None,
) -> Tuple[List[bytes], List[int]]:
    """Sort ``strings`` sequentially; returns ``(sorted, lcp_array)``.

    ``algorithm`` is one of :data:`SEQUENTIAL_SORTERS`.
    """
    try:
        sorter = SEQUENTIAL_SORTERS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown sequential sorter {algorithm!r}; "
            f"available: {sorted(SEQUENTIAL_SORTERS)}"
        ) from None
    if algorithm in ("msd_radix", "multikey_quicksort"):
        return sorter(strings, 0, stats)
    return sorter(strings, stats=stats)


def sort_strings(
    strings: Sequence[bytes],
    algorithm: str = "msd_radix",
    stats: Optional[CharStats] = None,
) -> List[bytes]:
    """Convenience wrapper returning only the sorted strings."""
    out, _ = sort_strings_with_lcp(strings, algorithm, stats)
    return out
