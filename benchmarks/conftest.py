"""Shared configuration for the figure/table reproduction benchmarks.

Every benchmark uses the pytest-benchmark fixture (so ``--benchmark-only``
runs exactly this suite) and times one cell of the corresponding figure; the
aggregated tables — the actual reproduction artefacts — are printed by the
``*_render_table`` benchmark of each module and recorded in EXPERIMENTS.md.

The ``REPRO_BENCH_SCALE`` environment variable scales the input sizes
(default 1.0); raising it sharpens the trends at the cost of runtime.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Global input-size multiplier for the benchmark suite."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def scaled(n: int, minimum: int = 50) -> int:
    """Scale a nominal input size by the global benchmark scale."""
    return max(minimum, int(n * bench_scale()))


@pytest.fixture(scope="session")
def machine_paper_regime():
    """Alpha-beta model rescaled to the paper's bandwidth-dominated regime.

    The simulated inputs are orders of magnitude smaller than the paper's
    250 MB per core; interpreting every simulated byte as ``scale`` real
    bytes restores the paper's ratio of bandwidth cost to per-message latency
    so the *time* panels keep their shape (the volume panels need no such
    adjustment — they are exact).
    """
    from repro.net import DEFAULT_MACHINE

    # simulated ~100 KB per PE stands for the paper's ~250 MB per PE
    return DEFAULT_MACHINE.with_data_scale(2500.0)


def print_experiment(result, metrics=("bytes_per_string", "modeled_time")) -> None:
    """Render an ExperimentResult to stdout (captured with pytest -s)."""
    print()
    print("=" * 78)
    print(f"{result.name}: {result.description}")
    for metric in metrics:
        print()
        print(result.render(metric))
    print("=" * 78)
