"""Longest-common-prefix (LCP) and distinguishing-prefix machinery.

Definitions follow Section II of the paper:

* ``LCP(s, t)`` is the length of the longest common prefix of ``s`` and ``t``.
* For a *sorted* string array ``S`` the LCP array is
  ``[bot, h_1, ..., h_{|S|-1}]`` with ``h_i = LCP(S[i-1], S[i])``; we encode the
  undefined first entry ``bot`` as 0.
* The distinguishing prefix length ``DIST(s)`` of a string ``s`` in a set
  ``S`` is the number of characters that must be inspected to distinguish it
  from every *other* string in ``S``:
  ``DIST(s) = max_{t != s} LCP(s, t) + 1`` (capped at ``|s|`` — once the whole
  string, including its implicit 0 terminator, has been read nothing more can
  be inspected).
* ``D = sum_s DIST(s)`` is the total distinguishing prefix size, the lower
  bound on the number of characters any string sorting algorithm must
  inspect.

The LCP array of a sorted set is enough to compute ``DIST`` for every string:
for sorted ``S`` the closest strings (by LCP) are the immediate neighbours, so
``DIST(S[i]) = max(h_i, h_{i+1}) + 1`` clipped to ``|S[i]|``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .packed import (
    PackedStringArray,
    packed_enabled,
    packed_lcp_array,
    packed_sort,
)

__all__ = [
    "lcp",
    "lcp_array",
    "lcp_array_of_sorted",
    "verify_lcp_array",
    "distinguishing_prefixes",
    "distinguishing_prefix_size",
    "dn_ratio",
    "merge_lcp_statistics",
    "lcp_compress_lengths",
]


def lcp(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of ``a`` and ``b``.

    A simple character loop; used on the hot path of the sequential sorters,
    so it fast-paths the fully-equal-prefix case with slicing comparisons.
    """
    n = min(len(a), len(b))
    if a[:n] == b[:n]:
        return n
    lo, hi = 0, n
    # binary search over the first mismatch: a[:mid] == b[:mid] is monotone
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


# past this many strings the one-time packing cost is repaid many times over
# by the broadcasted block comparisons of the vectorized kernel
_PACKED_LCP_THRESHOLD = 64


def lcp_array(strings: Sequence[bytes]) -> List[int]:
    """LCP array of a string sequence in its *given* order.

    ``out[0] == 0`` and ``out[i] == lcp(strings[i-1], strings[i])``.  The input
    does not need to be sorted (the distributed exchange step works with LCP
    arrays of arbitrarily ordered received sequences), but the common case is
    a sorted sequence.

    Packed inputs — and, when the packed fast paths are enabled, any large
    enough ``bytes`` sequence — are dispatched to the vectorized
    :func:`repro.strings.packed.packed_lcp_array`; the values are identical.
    """
    if isinstance(strings, PackedStringArray):
        return packed_lcp_array(strings).tolist()
    if packed_enabled() and len(strings) >= _PACKED_LCP_THRESHOLD:
        try:
            packed = PackedStringArray.from_strings(strings)
        except TypeError:
            pass  # non-bytes elements: fall through to the scalar loop
        else:
            return packed_lcp_array(packed).tolist()
    out = [0] * len(strings)
    for i in range(1, len(strings)):
        out[i] = lcp(strings[i - 1], strings[i])
    return out


def lcp_array_of_sorted(strings: Sequence[bytes]) -> List[int]:
    """LCP array of a sorted sequence; raises if the input is not sorted.

    Useful in tests and checkers where silently accepting unsorted input
    would hide bugs.
    """
    for i in range(1, len(strings)):
        if strings[i - 1] > strings[i]:
            raise ValueError(
                f"input not sorted at position {i}: {strings[i-1]!r} > {strings[i]!r}"
            )
    return lcp_array(strings)


def verify_lcp_array(strings: Sequence[bytes], lcps: Sequence[int]) -> bool:
    """Check that ``lcps`` is the correct LCP array for ``strings``."""
    if len(strings) != len(lcps):
        return False
    if strings and lcps and lcps[0] != 0:
        return False
    for i in range(1, len(strings)):
        if lcps[i] != lcp(strings[i - 1], strings[i]):
            return False
    return True


def distinguishing_prefixes(strings: Sequence[bytes]) -> List[int]:
    """``DIST(s)`` for every string of the input, in input order.

    The input need not be sorted; internally the strings are sorted (keeping
    track of their original positions) and the neighbour rule
    ``DIST = max(h_i, h_{i+1}) + 1`` is applied, clipped to the string length.

    Exact duplicates have ``DIST`` equal to their full length (they can never
    be distinguished by a proper prefix; inspecting the terminating 0 — i.e.
    the entire string — is required, matching the paper's convention that the
    0 terminator is part of the string).
    """
    n = len(strings)
    if n == 0:
        return []
    if n == 1:
        s0 = strings[0]
        # a single string is distinguished by its first character (or by its
        # terminator if it is empty)
        return [min(1, len(s0)) if s0 else 0]

    if packed_enabled() or isinstance(strings, PackedStringArray):
        try:
            arr = PackedStringArray.from_strings(strings)
        except TypeError:
            arr = None
        if arr is not None:
            from .packed import packed_argsort, take

            order = packed_argsort(arr)
            sorted_arr = take(arr, order)
            d = _dist_of_sorted_packed(sorted_arr)
            out_np = np.empty(n, dtype=np.int64)
            out_np[order] = d
            return out_np.tolist()

    order = sorted(range(n), key=lambda i: strings[i])
    sorted_strings = [strings[i] for i in order]
    h = lcp_array(sorted_strings)

    dist_sorted = [0] * n
    for i in range(n):
        left = h[i] if i > 0 else 0
        right = h[i + 1] if i + 1 < n else 0
        d = max(left, right) + 1
        dist_sorted[i] = min(d, len(sorted_strings[i]))
        if len(sorted_strings[i]) == 0:
            dist_sorted[i] = 0

    out = [0] * n
    for pos, original in enumerate(order):
        out[original] = dist_sorted[pos]
    return out


def _dist_of_sorted_packed(sorted_arr: PackedStringArray) -> np.ndarray:
    """``DIST`` per string of a sorted packed array (neighbour rule)."""
    h = packed_lcp_array(sorted_arr)
    left = h  # h[0] is already 0 ("no left neighbour")
    right = np.concatenate([h[1:], np.zeros(1, dtype=np.int64)])
    lens = sorted_arr.lengths
    d = np.minimum(np.maximum(left, right) + 1, lens)
    d[lens == 0] = 0
    return d


def _sorted_packed_of(strings: Sequence[bytes]) -> Optional[PackedStringArray]:
    """A lexicographically sorted packed view of ``strings``, or ``None``.

    Containers that maintain their own cache (``StringSet``) are asked via
    the ``sorted_packed()`` hook, so repeated statistics calls from the
    bench harness reuse one sort instead of re-sorting the full input every
    time.  Plain sequences are packed and sorted on the fly when the packed
    fast paths are enabled.
    """
    if isinstance(strings, PackedStringArray):
        return packed_sort(strings)
    if not packed_enabled():
        return None
    hook = getattr(strings, "sorted_packed", None)
    if callable(hook):
        return hook()
    try:
        return packed_sort(PackedStringArray.from_strings(strings))
    except TypeError:
        return None


def _total_chars(strings: Sequence[bytes]) -> int:
    if isinstance(strings, PackedStringArray):
        return strings.num_chars
    num_chars = getattr(strings, "num_chars", None)
    if num_chars is not None:
        return int(num_chars)
    return sum(len(s) for s in strings)


def distinguishing_prefix_size(strings: Sequence[bytes]) -> int:
    """Total distinguishing prefix size ``D`` of the input.

    ``D`` is order-independent, so the cached sorted packed representation
    (when available) is used directly without tracking the permutation.
    """
    sorted_arr = _sorted_packed_of(strings)
    if sorted_arr is not None:
        if len(sorted_arr) == 0:
            return 0
        if len(sorted_arr) == 1:
            return min(1, sorted_arr.num_chars)
        return int(_dist_of_sorted_packed(sorted_arr).sum())
    return sum(distinguishing_prefixes(strings))


def dn_ratio(strings: Sequence[bytes]) -> float:
    """The ratio ``D / N`` used throughout the paper's evaluation."""
    total = _total_chars(strings)
    if total == 0:
        return 0.0
    return distinguishing_prefix_size(strings) / total


def merge_lcp_statistics(strings: Sequence[bytes]) -> Tuple[float, float]:
    """Return ``(average LCP, average LCP as a fraction of string length)``.

    These are the two statistics the paper reports for its real-world inputs
    (e.g. COMMONCRAWL: average LCP 23.9, 60 % of each line) and that the
    synthetic corpus generators are calibrated against.

    Passing a :class:`repro.strings.StringSet` reuses its cached sorted
    packed representation, so the bench harness can recompute the statistic
    as often as it likes for the price of one sort.
    """
    n = len(strings)
    if n < 2:
        return (0.0, 0.0)
    sorted_arr = _sorted_packed_of(strings)
    if sorted_arr is not None:
        h = packed_lcp_array(sorted_arr)
        mean_lcp = float(h[1:].sum()) / (n - 1)
        mean_len = sorted_arr.num_chars / n
    else:
        srt = sorted(strings)
        h = lcp_array(srt)
        mean_lcp = sum(h[1:]) / (n - 1)
        mean_len = sum(len(s) for s in strings) / n
    frac = mean_lcp / mean_len if mean_len > 0 else 0.0
    return (mean_lcp, frac)


def lcp_compress_lengths(strings: Sequence[bytes], lcps: Sequence[int]) -> int:
    """Number of characters remaining after LCP compression.

    With LCP compression (Section V, Step 3) each string transmits only its
    suffix past the LCP with the *previous* string in the same message; the
    first string of a message is always sent in full.  The return value is
    ``sum(len(s_i) - h_i)`` which the exchange step uses for byte accounting.
    """
    if len(strings) != len(lcps):
        raise ValueError("strings and lcps must have equal length")
    if isinstance(strings, PackedStringArray):
        lens = strings.lengths
        clipped = np.minimum(np.asarray(lcps, dtype=np.int64), lens)
        return int((lens - clipped).sum())
    total = 0
    for s, h in zip(strings, lcps):
        clipped = min(h, len(s))
        total += len(s) - clipped
    return total
