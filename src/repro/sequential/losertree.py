"""Atomic (non-LCP-aware) K-way loser tree for merging sorted string runs.

Section II-B describes the loser tree (tournament tree): a binary tree with
``K`` leaves, one per sorted input run.  Each leaf holds the current element
of its run; internal nodes store the *loser* of the comparison of the two
elements passed up from below and forward the *winner*.  The element at the
root is the globally smallest; outputting it advances the corresponding run
and repairs the tree along the leaf-to-root path in ``O(log K)`` comparisons.

This atomic variant compares whole strings (it is what Fischer & Kurpicz's
``FKmerge`` baseline uses, Section II-C) and therefore rescans common
prefixes over and over — which is exactly the inefficiency the LCP-aware tree
in :mod:`repro.sequential.lcp_losertree` removes.  The implementation counts
inspected characters so benchmarks can demonstrate the difference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .stats import CharStats

__all__ = ["LoserTree", "multiway_merge"]


def _compare_count(a: bytes, b: bytes, stats: Optional[CharStats]) -> int:
    """Three-way compare of two strings, counting inspected characters."""
    if stats is not None:
        limit = min(len(a), len(b))
        i = 0
        while i < limit and a[i] == b[i]:
            i += 1
        stats.add_comparison(i + (1 if i < limit else 0))
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class LoserTree:
    """K-way tournament tree over sorted runs of byte strings.

    Runs are given as lists; exhausted runs are represented by ``None``
    sentinels that compare larger than every string.  ``K`` is padded to the
    next power of two with permanently exhausted runs.
    """

    def __init__(self, runs: Sequence[Sequence[bytes]], stats: Optional[CharStats] = None):
        self.stats = stats
        k = max(1, len(runs))
        size = 1
        while size < k:
            size *= 2
        self._k = size
        self._runs: List[Sequence[bytes]] = [list(r) for r in runs] + [
            [] for _ in range(size - len(runs))
        ]
        self._pos = [0] * size
        # current[i] is the front string of run i or None when exhausted
        self._current: List[Optional[bytes]] = [
            self._runs[i][0] if self._runs[i] else None for i in range(size)
        ]
        # losers[1..size-1] store run indices; losers[0] stores the overall winner
        self._losers = [0] * size
        self._init_tree()

    # -- internal ----------------------------------------------------------------
    def _less(self, i: int, j: int) -> bool:
        """Is the current element of run ``i`` smaller than that of run ``j``?

        Ties are broken by run index, which keeps the merge stable.
        """
        a, b = self._current[i], self._current[j]
        if a is None:
            return False
        if b is None:
            return True
        c = _compare_count(a, b, self.stats)
        if c != 0:
            return c < 0
        return i < j

    def _init_tree(self) -> None:
        size = self._k
        # winner[x] for the sub-tournament rooted at internal node x
        winners = [0] * (2 * size)
        for i in range(size):
            winners[size + i] = i
        for x in range(size - 1, 0, -1):
            left, right = winners[2 * x], winners[2 * x + 1]
            if self._less(left, right):
                winners[x] = left
                self._losers[x] = right
            else:
                winners[x] = right
                self._losers[x] = left
        self._losers[0] = winners[1]

    # -- public API -----------------------------------------------------------------
    def empty(self) -> bool:
        """True when every run is exhausted."""
        return self._current[self._losers[0]] is None

    def peek(self) -> Optional[bytes]:
        """Smallest remaining string without removing it (None when empty)."""
        return self._current[self._losers[0]]

    def pop(self) -> bytes:
        """Remove and return the smallest remaining string."""
        winner = self._losers[0]
        value = self._current[winner]
        if value is None:
            raise IndexError("pop from an empty LoserTree")

        # advance the winning run
        self._pos[winner] += 1
        run = self._runs[winner]
        self._current[winner] = (
            run[self._pos[winner]] if self._pos[winner] < len(run) else None
        )

        # replay the path from the winner's leaf to the root
        node = (self._k + winner) // 2
        cand = winner
        while node >= 1:
            other = self._losers[node]
            if self._less(other, cand):
                self._losers[node] = cand
                cand = other
            node //= 2
        self._losers[0] = cand
        return value


def multiway_merge(
    runs: Sequence[Sequence[bytes]], stats: Optional[CharStats] = None
) -> List[bytes]:
    """Merge sorted runs into one sorted list using the atomic loser tree."""
    tree = LoserTree(runs, stats)
    total = sum(len(r) for r in runs)
    out: List[bytes] = []
    for _ in range(total):
        out.append(tree.pop())
    return out
