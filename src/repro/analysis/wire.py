"""Pass 2 — wire-format usage lint.

Pins two disciplines established by earlier PRs:

``wire-unverified-decode``
    PR 7 sealed the wire formats: :class:`~repro.dist.exchange.StringBlock`
    and :class:`~repro.dist.exchange.LcpCompressedBlock` carry a content
    CRC and must re-verify it before decoding, because fault rules may
    corrupt frames in flight.  Any class that defines a seal-verify method
    (``_verify_seal`` / ``verify``) *and* a decode entry point (``decode``
    / ``decode_run``) is held to that contract: the decode method must
    reach the verify method through ``self``-calls.

``wire-unverified-frame``
    :class:`~repro.net.router.RouteFrame` receivers must call
    ``frame.verify()`` before consuming ``frame.payload``.  Flagged when a
    function loads both ``X.payload`` and ``X.origin``/``X.dest`` off the
    same name (the frame-consumption signature) without an ``X.verify()``
    call.  ``self`` is exempt — a frame's own methods are the seal.

``wire-hot-materialize``
    PR 6's zero-copy discipline: the packed hot path must not fall back to
    ``to_list()`` (a full python-object materialization of the packed
    arena).  Flagged inside the known hot functions; boundary and
    diagnostic code (``__repr__``, cold fallbacks) is free to materialize.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from .commgraph import PackageIndex
from .model import Finding

__all__ = ["run_wire_pass"]

#: decode entry points held to the verify-before-decode contract
_DECODE_METHODS = frozenset({"decode", "decode_run"})

#: seal-verify method names (any one satisfies the contract)
_VERIFY_METHODS = frozenset({"_verify_seal", "verify"})

#: functions on the packed hot path where ``to_list()`` is a perf bug —
#: decode/merge/exchange inner loops pinned by PR 6's zero-copy discipline
_HOT_FUNCTIONS = frozenset(
    {
        "decode_run",
        "pop_segment",
        "lcp_multiway_merge_packed",
        "exchange_buckets",
        "exchange_buckets_async",
        "_routed_exchange_async",
        "routed_exchange",
        "routed_exchange_iter",
        "front_code",
        "front_decode",
    }
)


def run_wire_pass(index: PackageIndex) -> List[Finding]:
    """Run all three wire-format rules over the indexed tree."""
    findings: List[Finding] = []
    for module in sorted(index.modules):
        info = index.modules[module]
        for node in ast.walk(info.tree):  # type: ignore[arg-type]
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_sealed_class(info.path, node))
    findings.extend(_frame_consumption_pass(index))
    findings.extend(_hot_materialize_pass(index))
    return findings


# ---------------------------------------------------------------------------
# sealed-class decode discipline
# ---------------------------------------------------------------------------

def _check_sealed_class(path: str, cls: ast.ClassDef) -> List[Finding]:
    """Every decode entry point of a sealed class must reach its verifier."""
    methods: Dict[str, ast.AST] = {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    verifiers = _VERIFY_METHODS & set(methods)
    decoders = _DECODE_METHODS & set(methods)
    if not verifiers or not decoders:
        return []

    findings: List[Finding] = []
    for name in sorted(decoders):
        reached = _self_call_closure(methods, name)
        if not (reached & verifiers):
            node = methods[name]
            findings.append(
                Finding(
                    rule="wire-unverified-decode",
                    path=path,
                    line=getattr(node, "lineno", cls.lineno),
                    message=(
                        f"{cls.name}.{name} decodes sealed wire data without "
                        f"reaching {'/'.join(sorted(verifiers))}; fault rules "
                        "may corrupt frames in flight, so every decode path "
                        "must re-verify the content seal first"
                    ),
                    context=f"{cls.name}.{name}",
                )
            )
    return findings


def _self_call_closure(methods: Dict[str, ast.AST], start: str) -> Set[str]:
    """Method names reachable from ``start`` through ``self.m()`` calls."""
    seen: Set[str] = set()
    frontier = [start]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in methods:
            continue
        seen.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                frontier.append(node.func.attr)
    return seen


# ---------------------------------------------------------------------------
# frame consumption without verify
# ---------------------------------------------------------------------------

def _frame_consumption_pass(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(index.functions):
        summary = index.functions[key]
        node = index.nodes[key]
        findings.extend(_check_frame_consumption(summary.path, key, node))
    return findings


def _check_frame_consumption(path: str, key: str, node: ast.AST) -> List[Finding]:
    """Names whose ``.payload`` and ``.origin``/``.dest`` are both read must
    also have ``.verify()`` called on them in the same function."""
    loads: Dict[str, Dict[str, int]] = {}
    verified: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and isinstance(child.value, ast.Name):
            base = child.value.id
            if base == "self":
                continue
            if child.attr in ("payload", "origin", "dest"):
                loads.setdefault(base, {}).setdefault(child.attr, child.lineno)
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in ("verify", "_verify_seal")
            and isinstance(child.func.value, ast.Name)
        ):
            verified.add(child.func.value.id)

    findings: List[Finding] = []
    for base in sorted(loads):
        attrs = loads[base]
        if "payload" in attrs and ("origin" in attrs or "dest" in attrs):
            if base not in verified:
                findings.append(
                    Finding(
                        rule="wire-unverified-frame",
                        path=path,
                        line=attrs["payload"],
                        message=(
                            f"route frame {base!r} has its payload consumed "
                            f"without a {base}.verify() call in this function; "
                            "routed frames must be checksum-verified before "
                            "their payload is trusted"
                        ),
                        context=key,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# hot-path materialization
# ---------------------------------------------------------------------------

def _hot_materialize_pass(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(index.functions):
        summary = index.functions[key]
        short = summary.qualname.rsplit(".", 1)[-1]
        if short not in _HOT_FUNCTIONS:
            continue
        node = index.nodes[key]
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "to_list"
            ):
                findings.append(
                    Finding(
                        rule="wire-hot-materialize",
                        path=summary.path,
                        line=child.lineno,
                        message=(
                            f"to_list() inside hot function {short!r} "
                            "materializes the packed arena into python "
                            "objects; the packed hot path must stay "
                            "zero-copy (use packed slicing/segment APIs)"
                        ),
                        context=key,
                    )
                )
    return findings
