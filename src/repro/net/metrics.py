"""Per-PE communication and work accounting.

Every simulated communicator feeds a :class:`TrafficMeter`.  The meter keeps,
per PE and per named phase,

* bytes sent and received (exact wire sizes, see
  :mod:`repro.mpi.serialization`),
* number of messages,
* a log of collective operations (kind, per-PE bottleneck bytes) so the
  benchmark harness can apply the alpha-beta formulas of
  :class:`repro.net.cost_model.MachineModel`,
* character-inspection counts contributed by the local sorting/merging steps,
* routed-delivery attribution (:mod:`repro.net.router`): per-PE *forwarded*
  bytes — relay payloads plus frame headers, charged on top of the origin
  volume — and per-route-phase byte totals, so the ``log p`` volume
  inflation of multi-level delivery is measured, not assumed.

The meter is written to from many rank threads concurrently; a single lock
protects all mutation (the operations are tiny compared to the work they
account for).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .cost_model import DEFAULT_MACHINE, MachineModel

__all__ = [
    "CollectiveEvent",
    "TrafficMeter",
    "TrafficReport",
    "zero_traffic_report",
    "fold_traffic_report",
    "merge_traffic_reports",
]


@dataclass
class CollectiveEvent:
    """One collective operation as seen by the cost model.

    ``overlap_fraction`` is non-zero only for split-phase exchanges: the
    fraction of the operation's window during which the participating ranks
    computed while receives were still outstanding.  The cost model credits
    that fraction of the bandwidth term (latency cannot be hidden).
    """

    kind: str          # "bcast", "gather", "allgather", "alltoall", "reduce", "barrier", "p2p-round"
    phase: str
    max_bytes_per_pe: int
    num_pes: int
    overlap_fraction: float = 0.0


@dataclass
class TrafficReport:
    """Aggregated view of a finished run (returned by :meth:`TrafficMeter.report`)."""

    num_pes: int
    bytes_sent_per_pe: List[int]
    bytes_received_per_pe: List[int]
    messages_per_pe: List[int]
    phase_bytes: Dict[str, int]
    chars_inspected_per_pe: List[int]
    items_processed_per_pe: List[int]
    collectives: List[CollectiveEvent] = field(default_factory=list)
    # per phase: summed wall-clock seconds ranks spent computing while >= 1
    # non-blocking receive was outstanding, and the summed window durations
    overlap_seconds: Dict[str, float] = field(default_factory=dict)
    overlap_window_seconds: Dict[str, float] = field(default_factory=dict)
    # routed multi-level delivery: bytes each PE sent on behalf of *other*
    # origins (relay payloads + frame headers), and bytes per route phase
    # (e.g. "hypercube-dim0", "grid-rows"); both zero under direct delivery
    forwarded_bytes_per_pe: List[int] = field(default_factory=list)
    route_bytes: Dict[str, int] = field(default_factory=dict)
    # bytes-weighted overlap accumulators, populated only when reports are
    # merged: sum of (fraction x phase bytes) and sum of phase bytes over
    # the folded inputs (see fold_traffic_report)
    overlap_weighted: Dict[str, float] = field(default_factory=dict)
    overlap_weight: Dict[str, float] = field(default_factory=dict)
    # fault-mode counters (repro.faults): per-PE injected faults (charged to
    # the struck rank), detected faults and recovery retries (charged to the
    # detecting receiver), and retransmitted wire bytes (recovery traffic,
    # excluded from origin volume); all zero outside fault mode
    faults_injected_per_pe: List[int] = field(default_factory=list)
    faults_detected_per_pe: List[int] = field(default_factory=list)
    retries_per_pe: List[int] = field(default_factory=list)
    retransmitted_bytes_per_pe: List[int] = field(default_factory=list)
    # seconds ranks spent blocked in barrier(), per surrounding phase — its
    # own account so stragglers never inflate merge/exchange timings (the
    # phase-attribution fix; folds additively like the byte dicts)
    barrier_wait_seconds: Dict[str, float] = field(default_factory=dict)
    # bytes the execution engine's data plane *actually moved* on behalf of
    # each PE's sends (pipe frames plus shared-memory payload bytes).  Zero
    # under the thread engine, which moves object references; the processes
    # engine fills it in, and the conformance suite reconciles it against
    # the simulated wire accounting (real transport >= 0 whenever the
    # simulated counters are non-zero)
    transported_bytes_per_pe: List[int] = field(default_factory=list)
    #: whole-job re-runs a session performed after failed attempts
    #: (``Cluster.sort(..., max_retries=N)``); folds additively
    job_retries: int = 0
    #: name of the execution engine that produced this report ("" when the
    #: meter was driven outside an engine; "mixed" after folding reports
    #: from different engines)
    engine: str = ""
    #: observability attachments (:class:`repro.obs.timeline.Timeline` /
    #: :class:`repro.obs.registry.MetricsSnapshot`), populated only when the
    #: run traced (``Cluster(trace=True)`` / ``REPRO_TRACE``); ``None``
    #: otherwise so the accounting path never depends on :mod:`repro.obs`.
    #: Both obey the fold contract via their own ``merged`` methods.
    timeline: Optional[Any] = None
    metrics: Optional[Any] = None

    # -- aggregate helpers ---------------------------------------------------------
    @property
    def total_bytes_sent(self) -> int:
        """Bytes sent summed over all PEs (origin volume + routing overhead)."""
        return sum(self.bytes_sent_per_pe)

    @property
    def forwarded_bytes(self) -> int:
        """Routing overhead summed over all PEs (relay payloads + frame headers).

        Zero under direct delivery; under multi-level delivery this is the
        measured volume inflation the cost model's indirect formulas assume.
        """
        return sum(self.forwarded_bytes_per_pe)

    @property
    def origin_bytes_sent(self) -> int:
        """The paper's communication-volume metric: bytes injected at origins.

        Every bucket leaves its origin exactly once regardless of delivery
        strategy, so this equals ``total_bytes_sent`` under direct delivery
        and is **bit-identical across exchange topologies** (pinned by
        ``tests/test_exchange_topologies.py``).  Recovery traffic
        (retransmits, injected duplicates) is likewise excluded: a recovered
        chaos run reports the same origin volume as its fault-free baseline.
        """
        return (
            self.total_bytes_sent - self.forwarded_bytes - self.retransmitted_bytes
        )

    @property
    def faults_injected(self) -> int:
        """Faults injected by the active fault plan, summed over all PEs."""
        return sum(self.faults_injected_per_pe)

    @property
    def faults_detected(self) -> int:
        """Detected fault events (CRC mismatches, sequence gaps, duplicates,
        crashes), summed over all PEs."""
        return sum(self.faults_detected_per_pe)

    @property
    def retries(self) -> int:
        """Recovery attempts: per-message retransmit pulls summed over all
        PEs, plus whole-job re-runs (:attr:`job_retries`)."""
        return sum(self.retries_per_pe) + self.job_retries

    @property
    def retransmitted_bytes(self) -> int:
        """Wire bytes of recovery traffic (retransmits and duplicates).

        Counted inside :attr:`total_bytes_sent` but excluded from
        :attr:`origin_bytes_sent` — a retransmitted bucket still left its
        origin exactly once.
        """
        return sum(self.retransmitted_bytes_per_pe)

    @property
    def transported_bytes(self) -> int:
        """Bytes the engine's data plane really moved, summed over all PEs.

        The physical counterpart of the simulated :attr:`total_bytes_sent`:
        pipe frames plus shared-memory payloads for the processes engine,
        0 for the thread engine (references move for free).
        """
        return sum(self.transported_bytes_per_pe)

    @property
    def max_bytes_sent(self) -> int:
        """Bottleneck PE: the maximum bytes any single PE sent."""
        return max(self.bytes_sent_per_pe, default=0)

    def bytes_per_string(self, num_strings: int) -> float:
        """The paper's headline metric: total bytes sent / total input strings."""
        if num_strings == 0:
            return 0.0
        return self.total_bytes_sent / num_strings

    def overlap_fraction(self, phase: str = "exchange") -> float:
        """Fraction of ``phase``'s split-phase windows spent computing.

        For a single run: summed compute-while-receiving seconds over all
        ranks divided by summed window seconds.  For a *merged* report
        (:func:`merge_traffic_reports`): the bytes-weighted average of the
        constituent runs' fractions — a run that moved twice the bytes
        counts twice, and fully synchronous runs count with fraction 0 —
        so the cost-model credit of a batch stream reflects how much of
        its *traffic* was overlapped, not wall-clock accidents.  0.0 when
        the phase never ran a split-phase (asynchronous) operation, and
        0.0 for a merged report whose constituents moved no bytes in the
        phase at all (zero traffic can have no overlapped traffic — the
        leaf wall-clock fallback below never applies once the phase is
        registered in the bytes-weighted ledger).
        """
        weight = self.overlap_weight.get(phase)
        if weight is not None:
            if weight <= 0.0:
                return 0.0
            return min(1.0, self.overlap_weighted.get(phase, 0.0) / weight)
        window = self.overlap_window_seconds.get(phase, 0.0)
        if window <= 0.0:
            return 0.0
        return min(1.0, self.overlap_seconds.get(phase, 0.0) / window)

    def modeled_comm_time(self, machine: MachineModel = DEFAULT_MACHINE) -> float:
        """Alpha-beta communication time implied by the recorded collectives.

        Split-phase exchanges (``overlap_fraction > 0``) are charged the
        overlap-credited all-to-all cost: the hidden fraction of the
        bandwidth term is subtracted, the latency term never is.
        """
        total = 0.0
        for ev in self.collectives:
            if ev.kind == "bcast":
                total += machine.broadcast(ev.max_bytes_per_pe, ev.num_pes)
            elif ev.kind in ("reduce", "allreduce", "scan"):
                total += machine.reduction(ev.max_bytes_per_pe, ev.num_pes)
            elif ev.kind in ("gather", "scatter"):
                total += machine.gather(ev.max_bytes_per_pe, ev.num_pes)
            elif ev.kind == "allgather":
                total += machine.allgather(ev.max_bytes_per_pe, ev.num_pes)
            elif ev.kind == "alltoall":
                total += machine.alltoall_direct(
                    ev.max_bytes_per_pe, ev.num_pes, ev.overlap_fraction
                )
            elif ev.kind == "alltoall-hypercube":
                total += machine.alltoall_hypercube(
                    ev.max_bytes_per_pe, ev.num_pes, ev.overlap_fraction
                )
            elif ev.kind == "alltoall-grid":
                total += machine.alltoall_grid(
                    ev.max_bytes_per_pe, ev.num_pes, ev.overlap_fraction
                )
            elif ev.kind == "barrier":
                total += machine.broadcast(0, ev.num_pes)
            elif ev.kind == "p2p-round":
                total += machine.p2p(ev.max_bytes_per_pe)
            else:  # unknown kinds are charged like a direct all-to-all
                total += machine.alltoall_direct(ev.max_bytes_per_pe, ev.num_pes)
        return total

    def modeled_local_time(self, machine: MachineModel = DEFAULT_MACHINE) -> float:
        """Modelled bottleneck local-work time (max over PEs)."""
        per_pe = [
            machine.local_work(c, i)
            for c, i in zip(self.chars_inspected_per_pe, self.items_processed_per_pe)
        ]
        return max(per_pe, default=0.0)

    def modeled_total_time(self, machine: MachineModel = DEFAULT_MACHINE) -> float:
        """Modelled total running time = local work bottleneck + communication."""
        return self.modeled_local_time(machine) + self.modeled_comm_time(machine)


_PER_PE_FIELDS = (
    "bytes_sent_per_pe",
    "bytes_received_per_pe",
    "messages_per_pe",
    "chars_inspected_per_pe",
    "items_processed_per_pe",
    "forwarded_bytes_per_pe",
    "faults_injected_per_pe",
    "faults_detected_per_pe",
    "retries_per_pe",
    "retransmitted_bytes_per_pe",
    "transported_bytes_per_pe",
)

_PHASE_DICT_FIELDS = (
    "phase_bytes",
    "overlap_seconds",
    "overlap_window_seconds",
    "route_bytes",
    "barrier_wait_seconds",
)


def zero_traffic_report(num_pes: int) -> "TrafficReport":
    """An all-zero report for ``num_pes`` PEs (the merge identity)."""
    return TrafficReport(
        num_pes=num_pes,
        bytes_sent_per_pe=[0] * num_pes,
        bytes_received_per_pe=[0] * num_pes,
        messages_per_pe=[0] * num_pes,
        phase_bytes={},
        chars_inspected_per_pe=[0] * num_pes,
        items_processed_per_pe=[0] * num_pes,
        forwarded_bytes_per_pe=[0] * num_pes,
        faults_injected_per_pe=[0] * num_pes,
        faults_detected_per_pe=[0] * num_pes,
        retries_per_pe=[0] * num_pes,
        retransmitted_bytes_per_pe=[0] * num_pes,
        transported_bytes_per_pe=[0] * num_pes,
    )


def fold_traffic_report(target: "TrafficReport", report: "TrafficReport") -> None:
    """Add ``report``'s counters into ``target`` **in place**.

    The single definition of the report-merge contract: per-PE
    byte/message/work/forwarded counters and per-phase byte/route/overlap
    dicts add element-wise (exact sums), collective events concatenate (so
    the cost model charges every run's collectives), and the overlap
    *fraction* combines as a **bytes-weighted average**: each folded
    report contributes ``overlap_fraction(phase) x phase_bytes[phase]``, so
    a fully synchronous batch dilutes the merged fraction in proportion to
    the traffic it moved — it is neither dropped (which would leave
    whatever the first overlapped report carried) nor averaged by
    wall-clock windows (which would let a slow small batch outvote a fast
    large one).  Used by :func:`merge_traffic_reports` and by the streaming
    accumulator of :class:`repro.session.stream.BatchStream` (which folds
    batch by batch instead of re-merging the growing cumulative report).
    """
    if report.num_pes != target.num_pes:
        raise ValueError(
            "cannot merge traffic reports from machines of different sizes: "
            f"{sorted({target.num_pes, report.num_pes})}"
        )
    for attr in _PER_PE_FIELDS:
        totals = getattr(target, attr)
        values = getattr(report, attr)
        if len(totals) < len(values):
            # hand-built reports may omit optional per-PE lists; treat the
            # missing slots as zeros on the accumulator side
            totals.extend([0] * (len(values) - len(totals)))
        for pe, v in enumerate(values):
            totals[pe] += v
    for attr in _PHASE_DICT_FIELDS:
        totals = getattr(target, attr)
        for phase, value in getattr(report, attr).items():
            totals[phase] = totals.get(phase, 0) + value
    if report.overlap_weight:
        # already-merged input: its weighted sums fold associatively
        for phase, value in report.overlap_weighted.items():
            target.overlap_weighted[phase] = (
                target.overlap_weighted.get(phase, 0.0) + value
            )
        for phase, value in report.overlap_weight.items():
            target.overlap_weight[phase] = (
                target.overlap_weight.get(phase, 0.0) + value
            )
    else:
        # leaf (single-run) input: weight its fraction by the bytes the
        # phase moved; a phase with traffic but no split-phase window
        # contributes fraction 0 at full weight.  Phases the leaf touched
        # without moving bytes (e.g. an exchange of all-empty buckets)
        # register at zero weight, so a merged all-zero-bytes report
        # answers ``overlap_fraction`` with 0.0 instead of falling back
        # to the summed wall-clock windows of its constituents.
        for phase, nbytes in report.phase_bytes.items():
            weight = float(nbytes) if nbytes > 0 else 0.0
            fraction = report.overlap_fraction(phase) if weight else 0.0
            target.overlap_weighted[phase] = (
                target.overlap_weighted.get(phase, 0.0) + fraction * weight
            )
            target.overlap_weight[phase] = (
                target.overlap_weight.get(phase, 0.0) + weight
            )
        for phase in report.overlap_window_seconds:
            target.overlap_weighted.setdefault(phase, 0.0)
            target.overlap_weight.setdefault(phase, 0.0)
    target.collectives.extend(report.collectives)
    target.job_retries += report.job_retries
    # observability attachments fold through their own algebra: timelines
    # concatenate end-to-end (every span exactly once), metric snapshots
    # add counters/histograms and keep the later gauges.  ``report``'s
    # attachments are never mutated — a first fold aliases them into the
    # accumulator, later folds build fresh merged objects.
    if report.timeline is not None:
        target.timeline = (
            report.timeline
            if target.timeline is None
            else target.timeline.merged(report.timeline)
        )
    if report.metrics is not None:
        target.metrics = (
            report.metrics
            if target.metrics is None
            else target.metrics.merged(report.metrics)
        )
    # engine provenance: first tagged report wins; folding reports produced
    # by different engines yields the explicit marker "mixed"
    if report.engine:
        if not target.engine:
            target.engine = report.engine
        elif target.engine != report.engine:
            target.engine = "mixed"


def merge_traffic_reports(reports: List["TrafficReport"]) -> "TrafficReport":
    """Combine per-run reports into one cumulative report (exact sums).

    A fresh report built by folding every input through
    :func:`fold_traffic_report`; the inputs are never mutated.  All reports
    must describe the same machine (equal ``num_pes``).  An empty input
    merges to an all-zero single-PE report.
    """
    merged = zero_traffic_report(reports[0].num_pes if reports else 1)
    for r in reports:
        fold_traffic_report(merged, r)
    return merged


class TrafficMeter:
    """Thread-safe collector of communication/work statistics for one run."""

    def __init__(self, num_pes: int):
        self.num_pes = num_pes
        #: engine provenance stamped onto :meth:`report` snapshots; the
        #: execution engine sets this at the start of a run
        self.engine = ""
        self._lock = threading.Lock()
        self._sent = [0] * num_pes
        self._received = [0] * num_pes
        self._messages = [0] * num_pes
        self._phase_bytes: Dict[str, int] = defaultdict(int)
        self._chars = [0] * num_pes
        self._items = [0] * num_pes
        self._collectives: List[CollectiveEvent] = []
        self._phases: Dict[int, str] = {}
        self._overlap: Dict[str, float] = defaultdict(float)
        self._overlap_window: Dict[str, float] = defaultdict(float)
        self._barrier_wait: Dict[str, float] = defaultdict(float)
        self._forwarded = [0] * num_pes
        self._route_bytes: Dict[str, int] = defaultdict(int)
        self._faults_injected = [0] * num_pes
        self._faults_detected = [0] * num_pes
        self._retries = [0] * num_pes
        self._retransmitted = [0] * num_pes
        self._transported = [0] * num_pes

    # ------------------------------------------------------------------ phases
    def set_phase(self, rank: int, phase: str) -> None:
        """Label subsequent traffic of ``rank`` with ``phase``."""
        with self._lock:
            self._phases[rank] = phase

    def current_phase(self, rank: int) -> str:
        """The phase label currently attributed to ``rank``'s traffic."""
        return self._phases.get(rank, "unlabelled")

    # ------------------------------------------------------------------ recording
    def record_send(
        self, src: int, dst: int, nbytes: int, phase: Optional[str] = None
    ) -> None:
        """Record ``nbytes`` travelling from ``src`` to ``dst``.

        Messages a PE "sends to itself" inside a collective are free, exactly
        like the paper's accounting of communication volume.

        ``phase`` pins the phase label explicitly; without it the *current*
        phase of ``src`` is used, which is only deterministic when the
        recording thread is ``src`` itself.  Collectives that account edges
        on behalf of other ranks (e.g. the broadcast tree) must pass the
        initiating rank's phase, otherwise attribution races with the other
        ranks' progress.
        """
        if src == dst:
            return
        with self._lock:
            self._sent[src] += nbytes
            self._received[dst] += nbytes
            self._messages[src] += 1
            if phase is None:
                phase = self._phases.get(src, "unlabelled")
            self._phase_bytes[phase] += nbytes

    def record_local_work(self, rank: int, chars: int, items: int = 0) -> None:
        """Charge ``rank`` with ``chars`` inspected characters / ``items`` strings."""
        with self._lock:
            self._chars[rank] += chars
            self._items[rank] += items

    def record_overlap(
        self, rank: int, phase: str, overlapped: float, window: float
    ) -> None:
        """Record split-phase overlap: ``rank`` computed for ``overlapped``
        seconds of a ``window``-second asynchronous operation in ``phase``."""
        with self._lock:
            self._overlap[phase] += max(0.0, overlapped)
            self._overlap_window[phase] += max(0.0, window)

    def record_barrier_wait(self, rank: int, phase: str, seconds: float) -> None:
        """Record ``seconds`` ``rank`` spent blocked in ``barrier()`` during ``phase``.

        Kept out of the phase's implicit wall-clock account: barrier wait is
        straggler time, and charging it to whatever phase surrounds the
        barrier would inflate merge/exchange timings (the attribution fix of
        the observability layer; ``tests/test_obs_trace.py`` pins the split).
        """
        with self._lock:
            self._barrier_wait[phase] += max(0.0, seconds)

    def record_route(
        self, rank: int, route: str, nbytes: int, forwarded: int
    ) -> None:
        """Attribute one routed-delivery batch sent by ``rank``.

        ``nbytes`` is the batch's full wire size (already recorded as a
        normal send by the communicator — this call only *attributes*, it
        never double-counts), ``forwarded`` the part that is routing
        overhead: relayed payloads plus frame headers.  ``route`` labels the
        routing phase (e.g. ``"hypercube-dim1"``, ``"grid-rows"``).
        """
        with self._lock:
            self._forwarded[rank] += forwarded
            self._route_bytes[route] += nbytes

    def record_fault_injected(self, rank: int) -> None:
        """Count one injected fault against ``rank`` (the struck PE)."""
        with self._lock:
            self._faults_injected[rank] += 1

    def record_fault_detected(self, rank: int) -> None:
        """Count one detected fault event at ``rank`` (the detecting PE)."""
        with self._lock:
            self._faults_detected[rank] += 1

    def record_retry(self, rank: int) -> None:
        """Count one recovery retry (retransmit pull) initiated by ``rank``."""
        with self._lock:
            self._retries[rank] += 1

    def record_retransmit(
        self, src: int, dst: int, nbytes: int, phase: Optional[str] = None
    ) -> None:
        """Record recovery traffic of ``nbytes`` from ``src`` to ``dst``.

        Like :meth:`record_send` — the bytes enter the per-PE sent/received
        totals, message counts and phase attribution — but additionally
        tallied as retransmitted, which :attr:`TrafficReport.origin_bytes_sent`
        subtracts: recovery traffic must never inflate the paper's
        communication-volume metric.
        """
        if src == dst:
            return
        with self._lock:
            self._sent[src] += nbytes
            self._received[dst] += nbytes
            self._messages[src] += 1
            self._retransmitted[src] += nbytes
            if phase is None:
                phase = self._phases.get(src, "unlabelled")
            self._phase_bytes[phase] += nbytes

    def record_transport(self, rank: int, nbytes: int) -> None:
        """Count ``nbytes`` the engine's data plane physically moved for ``rank``.

        Orthogonal to the simulated wire accounting: :meth:`record_send`
        charges what a real MPI implementation *would* serialise, this
        counts what the engine's transport (pipes + shared memory) really
        shipped.  The thread engine never calls it.
        """
        with self._lock:
            self._transported[rank] += nbytes

    def absorb(self, report: TrafficReport) -> None:
        """Fold a finished per-worker ``report`` into this live meter.

        The processes engine gives every rank worker its own full-size
        meter (each records into explicit rank slots, exactly like the
        thread engine's shared meter) and merges the per-worker snapshots
        into the caller's meter here.  Addition is element-wise and exact,
        so the merged report is bit-identical to what one shared meter
        would have collected.
        """
        if report.num_pes != self.num_pes:
            raise ValueError(
                "cannot absorb a report from a different machine size: "
                f"meter has {self.num_pes} PEs, report {report.num_pes}"
            )
        pairs = (
            (self._sent, report.bytes_sent_per_pe),
            (self._received, report.bytes_received_per_pe),
            (self._messages, report.messages_per_pe),
            (self._chars, report.chars_inspected_per_pe),
            (self._items, report.items_processed_per_pe),
            (self._forwarded, report.forwarded_bytes_per_pe),
            (self._faults_injected, report.faults_injected_per_pe),
            (self._faults_detected, report.faults_detected_per_pe),
            (self._retries, report.retries_per_pe),
            (self._retransmitted, report.retransmitted_bytes_per_pe),
            (self._transported, report.transported_bytes_per_pe),
        )
        with self._lock:
            for totals, values in pairs:
                for pe, v in enumerate(values):
                    totals[pe] += v
            for phase, v in report.phase_bytes.items():
                self._phase_bytes[phase] += v
            for phase, v in report.overlap_seconds.items():
                self._overlap[phase] += v
            for phase, v in report.overlap_window_seconds.items():
                self._overlap_window[phase] += v
            for phase, v in report.barrier_wait_seconds.items():
                self._barrier_wait[phase] += v
            for route, v in report.route_bytes.items():
                self._route_bytes[route] += v
            self._collectives.extend(report.collectives)

    def record_collective(
        self,
        kind: str,
        max_bytes_per_pe: int,
        num_pes: int,
        phase: Optional[str] = None,
        overlap_fraction: float = 0.0,
    ) -> None:
        """Append one collective event for the cost model (see CollectiveEvent)."""
        with self._lock:
            self._collectives.append(
                CollectiveEvent(
                    kind=kind,
                    phase=phase if phase is not None else "unlabelled",
                    max_bytes_per_pe=max_bytes_per_pe,
                    num_pes=num_pes,
                    overlap_fraction=overlap_fraction,
                )
            )

    # ------------------------------------------------------------------ results
    def report(self) -> TrafficReport:
        """Snapshot all counters into an immutable :class:`TrafficReport`."""
        with self._lock:
            return TrafficReport(
                num_pes=self.num_pes,
                bytes_sent_per_pe=list(self._sent),
                bytes_received_per_pe=list(self._received),
                messages_per_pe=list(self._messages),
                phase_bytes=dict(self._phase_bytes),
                chars_inspected_per_pe=list(self._chars),
                items_processed_per_pe=list(self._items),
                collectives=list(self._collectives),
                overlap_seconds=dict(self._overlap),
                overlap_window_seconds=dict(self._overlap_window),
                barrier_wait_seconds=dict(self._barrier_wait),
                forwarded_bytes_per_pe=list(self._forwarded),
                route_bytes=dict(self._route_bytes),
                faults_injected_per_pe=list(self._faults_injected),
                faults_detected_per_pe=list(self._faults_detected),
                retries_per_pe=list(self._retries),
                retransmitted_bytes_per_pe=list(self._retransmitted),
                transported_bytes_per_pe=list(self._transported),
                engine=self.engine,
            )
