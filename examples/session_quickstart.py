#!/usr/bin/env python3
"""Tour of the session API: Cluster, SortSpec, registry, batch ingest.

Builds one reusable cluster, runs typed specs on it (including a
third-party algorithm registered on a scoped registry), and streams a
chunked corpus through ``sort_batches`` with cumulative accounting.

Run with::

    python examples/session_quickstart.py
"""

from __future__ import annotations

import pathlib
import sys
from dataclasses import dataclass

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Cluster, MSSpec, PDMSGolombSpec, SortSpec
from repro.dist.api import MSConfig, RankOutput, ms_sort
from repro.session import default_registry
from repro.strings import dn_instance


def main() -> None:
    data = dn_instance(num_strings=3000, dn=0.5, length=80, seed=7)

    # -- one machine, many sorts -------------------------------------------
    cluster = Cluster(num_pes=8)
    specs = [MSSpec(), MSSpec(sampling="character"), PDMSGolombSpec(epsilon=0.5)]
    print(f"{'config hash':<18} {'algorithm':<12} {'bytes/string':>12}")
    for spec in specs:
        result = cluster.sort(data, spec, check=True)
        print(f"{spec.config_hash():<18} {result.algorithm:<12} "
              f"{result.bytes_per_string():>12.1f}")
    print(f"machine reuses: {cluster.engine.state_reuses} "
          f"(engine state survives across sorts)")

    # -- specs serialize and hash stably -----------------------------------
    spec = PDMSGolombSpec(epsilon=0.5)
    clone = SortSpec.from_dict(spec.to_dict())
    assert clone == spec and clone.config_hash() == spec.config_hash()
    print(f"round-tripped spec: {clone.to_dict()}")

    # -- register a custom algorithm on a scoped registry ------------------
    @dataclass(frozen=True)
    class StampedSpec(MSSpec):
        """MS with a per-run protocol stamp in the extras."""

        algorithm = "ms-stamped"

    def stamped_runner(comm, local, spec):
        out, lcps = ms_sort(comm, local, MSConfig(sampling=spec.sampling))
        return RankOutput(out, lcps, extra={"stamped": True})

    registry = default_registry().copy()
    registry.register("ms-stamped", stamped_runner, StampedSpec)
    custom = Cluster(num_pes=4, registry=registry).sort(
        data[:500], StampedSpec(), check=True
    )
    print(f"custom algorithm {custom.algorithm!r} extras: {custom.extra}")

    # -- streaming batch ingest --------------------------------------------
    chunks = [data[i : i + 750] for i in range(0, len(data), 750)]
    stream = Cluster(num_pes=8, async_exchange=True).sort_batches(
        chunks, MSSpec(), check=True
    )
    for batch in stream:  # lazy: one chunk in memory at a time
        pass
    merged = stream.merged_report
    print(
        f"batch ingest: {stream.batches_done} batches, "
        f"{stream.num_strings} strings, "
        f"{merged.total_bytes_sent} total bytes "
        f"({stream.bytes_per_string():.1f} bytes/string), "
        f"overlap fraction {merged.overlap_fraction('exchange'):.2f}"
    )


if __name__ == "__main__":
    main()
