"""The chaos matrix: seeded fault plans across algorithms and topologies.

The acceptance contract of the fault subsystem: under seeded drop / corrupt
/ straggle plans, every algorithm x topology x exchange-mode combination
either completes with **bit-identical** outputs, LCP arrays and origin wire
bytes (after transparent recovery), or raises a typed fault error — never a
hang past the configured timeout, never silently wrong output.  Crash plans
recover through ``Cluster.sort(..., max_retries=...)``.

``faults_injected`` is reconciled exactly against the injector (both count
the same fired rules); ``faults_detected`` / ``retries`` are asserted as
lower bounds here because an idle receiver's backoff pull may race a slow
sender and benignly re-pull a message that was merely late (the duplicate
is discarded, outputs and origin bytes are unaffected).  The exact-count
assertions live in the controlled scenarios of
``tests/test_faults_injection.py``.

Set ``REPRO_CHAOS_SEED`` to sweep other plan seeds (the CI fault-matrix job
runs three).
"""

import os

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.session import Cluster

ALGORITHMS = ("ms", "ms-simple", "pdms", "pdms-golomb", "hquick", "fkmerge")
TOPOLOGIES = ("direct", "hypercube", "grid")
NUM_PES = 4
TIMEOUT = 30.0

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _workload():
    from repro.strings.generators import dn_instance

    return dn_instance(80, 0.5, length=40, seed=5)


def _plan(kind: str) -> FaultPlan:
    """A seeded plan striking a handful of messages of the given kind."""
    if kind == "straggle":
        return FaultPlan(
            seed=CHAOS_SEED,
            rules=(FaultRule(kind="straggle", rank=1, seconds=0.02, max_hits=2),),
        )
    # message rules: strike a few messages across two channels
    return FaultPlan(
        seed=CHAOS_SEED,
        rules=(
            FaultRule(kind=kind, src=0, max_hits=2),
            FaultRule(kind=kind, dst=2, max_hits=1),
        ),
        retry_delay=0.01,
    )


def _sort(algorithm, topology, async_exchange, plan=None, max_retries=0):
    cluster = Cluster(
        num_pes=NUM_PES,
        async_exchange=async_exchange,
        exchange_topology=topology,
        timeout=TIMEOUT,
        fault_plan=plan,
    )
    data = _workload()
    result = cluster.sort(data, "ms" if algorithm is None else algorithm,
                          check=True, max_retries=max_retries)
    return cluster, result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("async_exchange", (False, True),
                         ids=("sync", "async"))
@pytest.mark.parametrize("fault_kind", ("drop", "corrupt", "straggle"))
def test_chaos_recovery_is_bit_identical(
    algorithm, topology, async_exchange, fault_kind
):
    """Seeded chaos either recovers bit-identically or raises typed errors."""
    _, baseline = _sort(algorithm, topology, async_exchange, plan=FaultPlan())
    plan = _plan(fault_kind)
    cluster, chaotic = _sort(algorithm, topology, async_exchange, plan=plan)

    # bit-identical recovery: outputs, LCPs and origin wire volume
    assert chaotic.outputs_per_pe == baseline.outputs_per_pe
    assert chaotic.lcps_per_pe == baseline.lcps_per_pe
    assert (
        chaotic.report.origin_bytes_sent == baseline.report.origin_bytes_sent
    )

    # the report's injection counter reconciles exactly with the engine's
    # injector: every fault the plan fired is accounted for, none invented
    report = chaotic.report
    assert report.faults_injected == cluster.engine._injector.total_injected

    if fault_kind in ("drop", "corrupt"):
        # every injected message fault must have been detected and repaired
        assert report.faults_detected >= report.faults_injected
        assert report.retries >= report.faults_injected
        if report.faults_injected:
            assert report.retransmitted_bytes > 0
    else:  # straggle: slowdown only, nothing to detect or retransmit
        assert report.faults_injected >= 1


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_chaos_crash_recovers_via_session_retry(algorithm):
    """A single-shot rank crash is survived by ``max_retries`` on any algorithm."""
    _, baseline = _sort(algorithm, None, False, plan=FaultPlan())
    plan = FaultPlan(
        seed=CHAOS_SEED,
        rules=(FaultRule(kind="crash", rank=1, after=1, max_hits=1),),
    )
    _, recovered = _sort(algorithm, None, False, plan=plan, max_retries=2)
    assert recovered.outputs_per_pe == baseline.outputs_per_pe
    assert recovered.lcps_per_pe == baseline.lcps_per_pe
    assert recovered.report.faults_injected == 1
    assert recovered.report.job_retries == 1


def test_chaos_plans_replay_identically():
    """Two runs of one plan produce identical fault schedules and reports."""
    plan = _plan("drop")
    _, first = _sort("ms", "hypercube", False, plan=plan)
    _, second = _sort("ms", "hypercube", False, plan=plan)
    assert first.outputs_per_pe == second.outputs_per_pe
    assert (
        first.report.faults_injected_per_pe
        == second.report.faults_injected_per_pe
    )


class TestChaosAcrossEngines:
    """The processes engine replays the same chaos schedules as the threads.

    The injector is deterministic per channel and each channel is advanced
    by exactly one process, so under one ``REPRO_CHAOS_SEED`` both engines
    must fire the identical fault schedule and recover to bit-identical
    outputs.  Injected counts are exact per PE on both engines; detected /
    retried are compared on the processes engine's sequential arrival
    processing (exact) against the thread engine as lower bounds (a thread
    engine backoff pull may race a slow sender and benignly re-pull).
    """

    def _require_processes(self):
        from repro.mpi.procengine import process_engine_available

        ok, reason = process_engine_available()
        if not ok:
            pytest.skip(reason)

    def _sort_on(self, engine_name, fault_kind, max_retries=0):
        if fault_kind == "crash":
            plan = FaultPlan(
                seed=CHAOS_SEED,
                rules=(FaultRule(kind="crash", rank=1, after=1, max_hits=1),),
            )
        else:
            plan = _plan(fault_kind)
        # hypercube routing moves buckets as point-to-point messages, so
        # the message rules actually strike (the direct exchange of ``ms``
        # rides on collectives the plan's src/dst rules do not match)
        cluster = Cluster(
            num_pes=NUM_PES,
            engine=engine_name,
            exchange_topology="hypercube",
            timeout=TIMEOUT,
            fault_plan=plan,
        )
        with cluster:
            result = cluster.sort(
                _workload(), "ms", check=True, max_retries=max_retries
            )
        return cluster, result

    @pytest.mark.parametrize("fault_kind", ("drop", "corrupt"))
    def test_message_faults_reproduce_thread_counters(self, fault_kind):
        self._require_processes()
        tcluster, threaded = self._sort_on("threads", fault_kind)
        pcluster, processed = self._sort_on("processes", fault_kind)

        # bit-identical recovery across engines
        assert processed.outputs_per_pe == threaded.outputs_per_pe
        assert processed.lcps_per_pe == threaded.lcps_per_pe
        assert (
            processed.report.origin_bytes_sent
            == threaded.report.origin_bytes_sent
        )

        # the deterministic schedule fires identically on both engines
        assert (
            pcluster.engine._injector.injected_counts()
            == tcluster.engine._injector.injected_counts()
        )
        assert (
            processed.report.faults_injected_per_pe
            == threaded.report.faults_injected_per_pe
        )
        assert (
            processed.report.faults_injected
            == pcluster.engine._injector.total_injected
        )

        # every injected fault was detected and repaired on both engines;
        # the thread engine's counters bound the processes engine's from
        # below only up to benign backoff re-pull races, so both are held
        # to the same invariant rather than to each other bit-for-bit
        for report in (processed.report, threaded.report):
            assert report.faults_injected > 0
            assert report.faults_detected >= report.faults_injected
            assert report.retries >= report.faults_injected
            assert report.retransmitted_bytes > 0

    def test_crash_recovers_identically_via_session_retry(self):
        self._require_processes()
        _, tbase = self._sort_on("threads", "crash", max_retries=2)
        _, pbase = self._sort_on("processes", "crash", max_retries=2)
        assert pbase.outputs_per_pe == tbase.outputs_per_pe
        assert pbase.report.faults_injected == tbase.report.faults_injected == 1
        assert pbase.report.job_retries == tbase.report.job_retries == 1

    def test_straggle_fires_identically(self):
        self._require_processes()
        tcluster, threaded = self._sort_on("threads", "straggle")
        pcluster, processed = self._sort_on("processes", "straggle")
        assert processed.outputs_per_pe == threaded.outputs_per_pe
        assert (
            pcluster.engine._injector.injected_counts()
            == tcluster.engine._injector.injected_counts()
        )
