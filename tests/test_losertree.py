"""Tests for the atomic and the LCP-aware K-way loser trees."""

import itertools

import pytest

from repro.sequential import (
    CharStats,
    LcpLoserTree,
    LoserTree,
    lcp_merge,
    lcp_multiway_merge,
    multiway_merge,
)
from repro.strings.generators import duplicate_heavy, random_strings
from repro.strings.lcp import lcp_array


def _runs_from(strings, k, seed=0):
    """Deal strings into k sorted runs."""
    runs = [[] for _ in range(k)]
    for i, s in enumerate(strings):
        runs[i % k].append(s)
    return [sorted(r) for r in runs]


class TestAtomicLoserTree:
    def test_merge_two_runs(self):
        runs = [[b"a", b"c"], [b"b", b"d"]]
        assert multiway_merge(runs) == [b"a", b"b", b"c", b"d"]

    def test_merge_empty_runs(self):
        assert multiway_merge([[], [], []]) == []
        assert multiway_merge([[], [b"x"]]) == [b"x"]

    def test_merge_single_run(self):
        assert multiway_merge([[b"a", b"b"]]) == [b"a", b"b"]

    def test_merge_non_power_of_two_runs(self):
        runs = _runs_from(random_strings(100, 0, 8, seed=1), 5)
        assert multiway_merge(runs) == sorted(itertools.chain(*runs))

    def test_merge_many_runs(self):
        runs = _runs_from(random_strings(300, 0, 6, alphabet_size=3, seed=2), 17)
        assert multiway_merge(runs) == sorted(itertools.chain(*runs))

    def test_merge_with_duplicates(self):
        runs = _runs_from(duplicate_heavy(200, 8, 5, seed=3), 6)
        assert multiway_merge(runs) == sorted(itertools.chain(*runs))

    def test_pop_and_peek_interface(self):
        tree = LoserTree([[b"b"], [b"a"]])
        assert not tree.empty()
        assert tree.peek() == b"a"
        assert tree.pop() == b"a"
        assert tree.pop() == b"b"
        assert tree.empty()
        with pytest.raises(IndexError):
            tree.pop()

    def test_counts_characters(self):
        stats = CharStats()
        runs = [[b"aaaa1", b"aaaa3"], [b"aaaa2", b"aaaa4"]]
        multiway_merge(runs, stats)
        # atomic merging rescans the common prefix on every comparison
        assert stats.chars_inspected >= 10


class TestLcpLoserTree:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 16])
    def test_matches_reference(self, k):
        strings = random_strings(250, 0, 10, alphabet_size=3, seed=k)
        runs = _runs_from(strings, k)
        lcps = [lcp_array(r) for r in runs]
        merged, out_lcps = lcp_multiway_merge(runs, lcps)
        expected = sorted(strings)
        assert merged == expected
        assert out_lcps == lcp_array(expected)

    def test_computes_lcps_when_not_given(self):
        runs = [[b"aa", b"ab"], [b"aab", b"b"]]
        merged, out_lcps = lcp_multiway_merge(runs)
        assert merged == [b"aa", b"aab", b"ab", b"b"]
        assert out_lcps == [0, 2, 1, 0]

    def test_rejects_mismatched_lcp_arrays(self):
        with pytest.raises(ValueError):
            LcpLoserTree([[b"a", b"b"]], [[0]])

    def test_empty_inputs(self):
        merged, lcps = lcp_multiway_merge([[], []])
        assert merged == [] and lcps == []

    def test_heavy_duplicates(self):
        strings = duplicate_heavy(300, 5, 6, seed=9)
        runs = _runs_from(strings, 7)
        merged, out_lcps = lcp_multiway_merge(runs, [lcp_array(r) for r in runs])
        assert merged == sorted(strings)
        assert out_lcps == lcp_array(sorted(strings))

    def test_all_runs_identical(self):
        run = [b"dup"] * 10
        runs = [list(run) for _ in range(4)]
        merged, out_lcps = lcp_multiway_merge(runs, [lcp_array(r) for r in runs])
        assert merged == [b"dup"] * 40
        assert out_lcps == [0] + [3] * 39

    def test_prefix_chains_across_runs(self):
        runs = [[b"a", b"abc"], [b"ab", b"abcd"], [b"abcde"]]
        merged, out_lcps = lcp_multiway_merge(runs, [lcp_array(r) for r in runs])
        expected = sorted(itertools.chain(*runs))
        assert merged == expected
        assert out_lcps == lcp_array(expected)

    def test_pop_returns_lcp_pairs(self):
        tree = LcpLoserTree([[b"ab", b"ac"], [b"abq"]])
        values = []
        while not tree.empty():
            values.append(tree.pop())
        assert [v[0] for v in values] == [b"ab", b"abq", b"ac"]
        assert [v[1] for v in values] == [0, 2, 1]
        with pytest.raises(IndexError):
            tree.pop()

    def test_peek(self):
        tree = LcpLoserTree([[b"z"], [b"a"]])
        assert tree.peek() == b"a"


class TestLcpEfficiency:
    def test_lcp_tree_saves_character_work_on_long_prefixes(self):
        # runs whose strings share a 500-character prefix: the atomic tree
        # rescans it for every comparison, the LCP tree only once per run
        common = b"c" * 500
        strings = [common + bytes([97 + i % 26, 97 + (i // 26) % 26]) for i in range(200)]
        runs = _runs_from(strings, 8)
        lcps = [lcp_array(r) for r in runs]

        atomic_stats = CharStats()
        multiway_merge(runs, atomic_stats)
        lcp_stats = CharStats()
        merged, _ = lcp_multiway_merge(runs, lcps, lcp_stats)

        assert merged == sorted(strings)
        assert lcp_stats.chars_inspected * 10 < atomic_stats.chars_inspected


class TestBinaryLcpMerge:
    def test_binary_merge_reference(self):
        a = sorted(random_strings(80, 0, 8, seed=1))
        b = sorted(random_strings(90, 0, 8, seed=2))
        merged, lcps = lcp_merge(a, lcp_array(a), b, lcp_array(b))
        expected = sorted(a + b)
        assert merged == expected
        assert lcps == lcp_array(expected)

    def test_binary_merge_one_side_empty(self):
        a = sorted(random_strings(10, 1, 5, seed=3))
        merged, lcps = lcp_merge(a, lcp_array(a), [], [])
        assert merged == a
        assert lcps == lcp_array(a)

    def test_binary_merge_rejects_bad_lcps(self):
        with pytest.raises(ValueError):
            lcp_merge([b"a"], [], [b"b"], [0])

    def test_binary_and_kway_agree(self):
        a = sorted(random_strings(60, 0, 6, alphabet_size=2, seed=4))
        b = sorted(random_strings(60, 0, 6, alphabet_size=2, seed=5))
        m1, l1 = lcp_merge(a, lcp_array(a), b, lcp_array(b))
        m2, l2 = lcp_multiway_merge([a, b], [lcp_array(a), lcp_array(b)])
        assert m1 == m2
        assert l1 == l2
