"""The wire-checksum toggle: CRC32 seals on framed wire formats.

When enabled, the framed message classes (:class:`repro.dist.exchange.StringBlock`,
:class:`repro.dist.exchange.LcpCompressedBlock`,
:class:`repro.net.router.RouteFrame`) compute a CRC32 over their content at
construction, charge :data:`repro.mpi.serialization.CHECKSUM_WIRE_BYTES`
extra wire bytes for the seal, and verify it at decode — a mismatch raises
:class:`repro.faults.errors.CorruptFrameError` instead of producing silently
wrong output.

The toggle follows the same three spellings as the packed/async toggles:
the ``REPRO_WIRE_CHECKSUMS`` environment variable at import,
:func:`set_wire_checksums` process-wide, and the scoped
:func:`use_wire_checksums` context manager (what
``Cluster(wire_checksums=...)`` applies per sort).  It is **off by
default**: the byte accounting pinned by the tier-1 suite describes the
unsealed formats, and the +4-bytes-per-frame cost is opt-in.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..mpi.serialization import (
    CHECKSUM_WIRE_BYTES,
    block_checksum,
    payload_checksum,
)

__all__ = [
    "CHECKSUM_WIRE_BYTES",
    "block_checksum",
    "payload_checksum",
    "wire_checksums_enabled",
    "set_wire_checksums",
    "use_wire_checksums",
]

_CHECKSUMS_ENABLED = os.environ.get("REPRO_WIRE_CHECKSUMS", "0").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def wire_checksums_enabled() -> bool:
    """Whether newly built wire frames carry (and verify) a CRC32 seal.

    Defaults to the ``REPRO_WIRE_CHECKSUMS`` environment variable (off
    unless set to ``1``/``true``/``yes``/``on``).  Sealing adds exactly
    :data:`CHECKSUM_WIRE_BYTES` wire bytes per frame and never changes
    decoded contents.
    """
    return _CHECKSUMS_ENABLED


def set_wire_checksums(flag: bool) -> bool:
    """Enable/disable frame seals process-wide; returns the previous setting."""
    global _CHECKSUMS_ENABLED
    previous = _CHECKSUMS_ENABLED
    _CHECKSUMS_ENABLED = bool(flag)
    return previous


@contextmanager
def use_wire_checksums(flag: bool):
    """Context-manager form of :func:`set_wire_checksums` (tests, sessions)."""
    previous = set_wire_checksums(flag)
    try:
        yield
    finally:
        set_wire_checksums(previous)
