"""Smoke tests: every example script runs end-to-end and prints its report.

The examples are the user-facing entry points promised by the README; running
them (with reduced sizes where they accept one) guards against API drift.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "bytes/string" in out
        assert "pdms-golomb" in out
        assert "per-PE output sizes" in out
        assert "overlap fraction" in out

    def test_session_quickstart(self):
        out = _run("session_quickstart.py")
        assert "config hash" in out
        assert "machine reuses" in out
        assert "ms-stamped" in out
        assert "batch ingest" in out

    def test_dna_reads_sort(self):
        out = _run("dna_reads_sort.py", "800")
        assert "PDMS-Golomb" in out
        assert "fewer bytes than MS" in out

    def test_suffix_sorting(self):
        out = _run("suffix_sorting.py", "1200")
        assert "suffix array verified" in out

    def test_web_corpus_sort(self):
        out = _run("web_corpus_sort.py", "1500")
        assert "bytes_per_string" in out
        assert "commoncrawl" in out

    def test_trace_quickstart(self):
        out = _run("trace_quickstart.py", "1200")
        assert "legend:" in out
        assert "strings/s" in out
        assert "(valid)" in out

    def test_dn_weak_scaling(self):
        out = _run("dn_weak_scaling.py", "150")
        assert "Weak scaling" in out
        assert "modeled_time" in out
