"""Figure 5, left panel: strong scaling on the COMMONCRAWL corpus.

The paper's COMMONCRAWL instance (82 GB of web-page text, D/N = 0.68) is
replaced by the calibrated synthetic corpus of
``repro.strings.generators.commoncrawl_like`` (see DESIGN.md).

Expected shape (Section VII-D): the LCP optimisations are very effective
(algorithms with LCP compression are 2.6-3.5x faster than MS-simple at scale,
and clearly cheaper in communication volume), while prefix doubling itself
does not help much because D/N is large; FKmerge is reported to crash on this
input in the paper (many repeated strings) — our reimplementation handles it,
so its series exists here and is simply slow.
"""

from __future__ import annotations

import pytest

from conftest import print_experiment, scaled
from repro.bench.experiments import DEFAULT_ALGORITHMS
from repro.bench.harness import ExperimentResult, ExperimentRunner
from repro.dist.api import distribute_strings
from repro.strings.generators import commoncrawl_like

PE_COUNTS = (2, 4, 8, 16)
NUM_STRINGS = scaled(8000)

from repro.net import DEFAULT_MACHINE  # noqa: E402

_CORPUS = commoncrawl_like(NUM_STRINGS, seed=7)
# the real COMMONCRAWL instance is 82 GB; scale the machine model so the
# modelled-time panel reflects the paper's bandwidth-dominated regime
_DATA_SCALE = 82e9 / max(1, sum(len(s) for s in _CORPUS))
_RUNNER = ExperimentRunner(machine=DEFAULT_MACHINE.with_data_scale(_DATA_SCALE), seed=1)
_RESULT = ExperimentResult(
    name="fig5-left-commoncrawl",
    description=f"Strong scaling, COMMONCRAWL-like corpus ({NUM_STRINGS} lines)",
)


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_fig5_commoncrawl_cell(benchmark, algorithm):
    for p in PE_COUNTS[:-1]:
        blocks = distribute_strings(_CORPUS, p, by="chars")
        _RESULT.add(_RUNNER.run_cell(_RESULT.name, algorithm, p, "commoncrawl", blocks))

    p = PE_COUNTS[-1]
    blocks = distribute_strings(_CORPUS, p, by="chars")
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(_RESULT.name, algorithm, p, "commoncrawl", blocks),
        rounds=1,
        iterations=1,
    )
    _RESULT.add(cell)
    benchmark.extra_info["bytes_per_string"] = round(cell.bytes_per_string, 2)


def test_fig5_commoncrawl_render_and_shape(benchmark):
    benchmark(lambda: _RESULT.render("bytes_per_string"))
    print_experiment(_RESULT)

    p = PE_COUNTS[-1]

    def volume(alg):
        return _RESULT.filter(algorithm=alg, num_pes=p)[0].bytes_per_string

    # LCP compression is the big win on web text (long LCPs, many duplicates)
    assert volume("ms") < 0.8 * volume("ms-simple")
    # prefix doubling stays competitive but is not required to win here
    assert volume("pdms") < volume("ms-simple")
    # the atomic baseline moves the most data
    assert volume("hquick") > volume("ms")
    # strong scaling: per-string volume grows with p for every algorithm but
    # the ordering of the series is stable across the sweep
    for alg in ("ms", "pdms"):
        series = [
            _RESULT.filter(algorithm=alg, num_pes=q)[0].bytes_per_string
            for q in PE_COUNTS
        ]
        assert series == sorted(series)
