"""Gate for the static analyzer: clean tree, caught fixtures, stable output.

Three contracts pinned here:

* ``src/repro`` is lint-clean — every SPMD, wire-format and toggle rule
  reports zero findings on the shipped tree (no false positives on the
  six algorithms across all engines' code paths);
* each seeded fixture under ``tests/fixtures/lint/`` is caught by exactly
  its bug class, and the clean fixture stays clean;
* the report and the per-algorithm comm-graph artifacts are byte-stable
  across runs (deterministic ordering).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    REGISTRY,
    build_commgraph,
    detect_algorithms,
    parse_tree,
    render_json,
    run_lint,
    write_commgraphs,
)
from repro.cli import main as cli_main

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

#: every seeded fixture and the one rule class it must trip
SEEDED = {
    "divergent_collective.py": "spmd-divergent-collective",
    "orphan_recv.py": "spmd-orphan-recv",
    "self_send.py": "spmd-self-send",
    "collective_mismatch.py": "spmd-collective-mismatch",
    "unchecked_decode.py": "wire-unverified-decode",
    "unverified_frame.py": "wire-unverified-frame",
    "hot_materialize.py": "wire-hot-materialize",
    "unregistered_toggle.py": "toggle-unregistered",
}

THE_SIX = {"hquick", "ms", "ms-simple", "fkmerge", "pdms", "pdms-golomb"}


def lint_fixture(name):
    return run_lint(root=None, extra_paths=[FIXTURES / name])


# ---------------------------------------------------------------------------
# the shipped tree is clean
# ---------------------------------------------------------------------------

def test_src_repro_is_lint_clean():
    report = run_lint(SRC_ROOT)
    assert report.ok, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in report.findings
    )


def test_src_scan_covers_the_whole_package():
    report = run_lint(SRC_ROOT)
    assert report.stats["modules"] > 50
    assert report.stats["rank_programs"] > 20
    assert report.stats["env_reads"] == len(REGISTRY)


# ---------------------------------------------------------------------------
# seeded fixtures are caught, each by its own class
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,rule", sorted(SEEDED.items()))
def test_seeded_fixture_is_caught(name, rule):
    report = lint_fixture(name)
    rules = {f.rule for f in report.findings}
    assert rule in rules, f"{name}: expected {rule}, got {sorted(rules)}"


@pytest.mark.parametrize("name,rule", sorted(SEEDED.items()))
def test_seeded_fixture_trips_only_its_class(name, rule):
    report = lint_fixture(name)
    rules = {f.rule for f in report.findings}
    assert rules == {rule}, f"{name}: cross-class findings {sorted(rules)}"


def test_clean_fixture_has_no_findings():
    report = lint_fixture("clean_program.py")
    assert report.ok, [f.to_dict() for f in report.findings]


def test_suppression_comment_silences_a_finding(tmp_path):
    bugged = tmp_path / "suppressed.py"
    bugged.write_text(
        "def to_self(comm, payload):\n"
        "    comm.send(payload, comm.rank)  # lint: spmd-ok(spmd-self-send)\n"
    )
    report = run_lint(root=None, extra_paths=[bugged])
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["spmd-self-send"]


def test_wildcard_suppression(tmp_path):
    bugged = tmp_path / "suppressed.py"
    bugged.write_text(
        "def to_self(comm, payload):\n"
        "    # lint: spmd-ok(*)\n"
        "    comm.send(payload, comm.rank)\n"
    )
    report = run_lint(root=None, extra_paths=[bugged])
    assert report.ok and report.suppressed


# ---------------------------------------------------------------------------
# registry coverage and comm-graph artifacts
# ---------------------------------------------------------------------------

def test_all_registered_algorithms_are_analyzed():
    index = parse_tree(SRC_ROOT)
    algorithms = detect_algorithms(index)
    assert THE_SIX <= set(algorithms)
    # every entry resolves to a function that (transitively) communicates
    for name in THE_SIX:
        graph = build_commgraph(index, name, algorithms[name])
        assert graph["functions"], name


def test_commgraph_artifacts_are_deterministic(tmp_path):
    first = run_lint(SRC_ROOT)
    second = run_lint(SRC_ROOT)
    assert render_json(first) == render_json(second)
    dir_a, dir_b = tmp_path / "a", tmp_path / "b"
    paths_a = write_commgraphs(first, dir_a)
    paths_b = write_commgraphs(second, dir_b)
    assert [p.name for p in paths_a] == [p.name for p in paths_b]
    for pa, pb in zip(paths_a, paths_b):
        assert pa.read_bytes() == pb.read_bytes()


def test_commgraph_schema(tmp_path):
    report = run_lint(SRC_ROOT)
    (path,) = [
        p for p in write_commgraphs(report, tmp_path) if p.name == "commgraph-ms.json"
    ]
    graph = json.loads(path.read_text())
    assert graph["schema"] == "repro.analysis/commgraph/v1"
    assert graph["algorithm"] == "ms"
    assert graph["collective_sequence"], "ms must issue collectives"
    for key, fn in graph["functions"].items():
        assert ":" in key
        for event in fn["events"]:
            assert event["kind"] in ("collective", "p2p")
            assert event["line"] > 0


def test_hquick_is_pure_p2p():
    # hquick's fold/gossip/exchange phases are all point-to-point by design;
    # the analyzer must not hallucinate collectives into its sequence
    index = parse_tree(SRC_ROOT)
    algorithms = detect_algorithms(index)
    graph = build_commgraph(index, "hquick", algorithms["hquick"])
    assert graph["collective_sequence"] == []
    methods = {
        e["method"] for fn in graph["functions"].values() for e in fn["events"]
    }
    assert methods <= {"send", "recv", "sendrecv"}


# ---------------------------------------------------------------------------
# toggle registry invariants
# ---------------------------------------------------------------------------

def test_every_toggle_has_knob_and_docs_row():
    docs = (SRC_ROOT.parent.parent / "docs" / "API.md").read_text()
    from repro.session.cluster import Cluster
    import inspect

    knobs = set(inspect.signature(Cluster.__init__).parameters)
    for spec in REGISTRY:
        assert spec.name in docs, f"{spec.name} missing from docs/API.md"
        if spec.knob is None:
            assert spec.exempt_reason, spec.name
        else:
            assert spec.knob in knobs, f"{spec.name}: no Cluster knob {spec.knob!r}"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_lint_json(tmp_path, capsys):
    rc = cli_main(["lint", "--json", "--comm-graph", str(tmp_path / "cg")])
    out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert THE_SIX <= set(payload["algorithms"])
    names = sorted(p.name for p in (tmp_path / "cg").glob("commgraph-*.json"))
    assert "commgraph-hquick.json" in names
    assert len(names) == len(payload["algorithms"])


def test_cli_lint_human(capsys):
    rc = cli_main(["lint"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK: no findings" in out
