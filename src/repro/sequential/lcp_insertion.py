"""LCP-aware insertion sort — the base case of the sequential sorter stack.

Section II-A: "Our implementation, in turn, uses LCP insertion sort as a base
case for constant size inputs.  This algorithm has complexity O(D + n^2)."

All strings handed to this routine are assumed to share a common prefix of
length ``depth`` (the caller — MSD radix sort or multikey quicksort — has
already established this), so no character below ``depth`` is ever inspected.
The output is the sorted list plus its LCP array in absolute character
positions; by convention the first LCP entry is ``depth`` (the known common
prefix) so enclosing sorters can splice sub-arrays together, and 0 when the
routine is used stand-alone at ``depth == 0``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .stats import CharStats

__all__ = ["lcp_insertion_sort", "compare_from"]


def compare_from(
    a: bytes, b: bytes, start: int, stats: Optional[CharStats] = None
) -> Tuple[int, int]:
    """Compare ``a`` and ``b`` assuming their first ``start`` characters agree.

    Returns ``(cmp, lcp)`` where ``cmp`` is negative/zero/positive like a
    classic comparator and ``lcp`` is the absolute length of the longest
    common prefix of ``a`` and ``b``.  Only characters at positions
    ``>= start`` are inspected.
    """
    la, lb = len(a), len(b)
    limit = min(la, lb)
    i = start
    while i < limit and a[i] == b[i]:
        i += 1
    inspected = i - start + (1 if i < limit else 0)
    if stats is not None:
        stats.add_comparison(inspected)
    if i == limit:
        # one string is a prefix of the other (or they are equal)
        return (la - lb, i)
    return (a[i] - b[i], i)


def lcp_insertion_sort(
    strings: Sequence[bytes],
    depth: int = 0,
    stats: Optional[CharStats] = None,
) -> Tuple[List[bytes], List[int]]:
    """Sort ``strings`` by insertion using LCP-accelerated comparisons.

    The classic trick (Bingmann's thesis): while walking the new string
    leftwards through the already-sorted prefix we keep ``cur_lcp``, the LCP
    of the new string with the element it currently stands on.  Together with
    the stored LCP array of the sorted prefix most comparisons are decided
    without touching any characters; characters are only inspected when the
    two LCP values tie, which bounds the character work by ``O(D + n)``.
    """
    out: List[bytes] = []
    lcps: List[int] = []

    for s in strings:
        if not out:
            out.append(s)
            lcps.append(depth)
            continue

        j = len(out) - 1
        cmp, cur_lcp = compare_from(s, out[j], depth, stats)
        if cmp >= 0:
            out.append(s)
            lcps.append(cur_lcp)
            continue

        # Invariant of the walk: s < out[j] and cur_lcp == LCP(s, out[j]).
        left_lcp = depth
        while True:
            if j == 0:
                left_lcp = depth
                break
            prev_lcp = lcps[j]  # LCP(out[j-1], out[j])
            if prev_lcp > cur_lcp:
                # out[j-1] matches out[j] longer than s does and s < out[j],
                # hence s < out[j-1]; keep walking, LCP(s, out[j-1]) stays
                # cur_lcp because the mismatch position is unchanged.
                j -= 1
                continue
            if prev_lcp < cur_lcp:
                # out[j-1] diverges from out[j] before s does, so
                # out[j-1] < s; LCP(s, out[j-1]) equals prev_lcp.
                left_lcp = prev_lcp
                break
            # prev_lcp == cur_lcp: characters must decide.
            cmp, new_lcp = compare_from(s, out[j - 1], cur_lcp, stats)
            if cmp >= 0:
                left_lcp = new_lcp
                break
            cur_lcp = new_lcp
            j -= 1

        # Insert s at position j: its left-neighbour LCP is ``left_lcp`` and
        # the displaced element's LCP entry becomes LCP(s, out[j]) = cur_lcp.
        right_lcp = cur_lcp
        out.insert(j, s)
        lcps.insert(j, left_lcp)
        lcps[j + 1] = right_lcp

    if lcps and depth == 0:
        lcps[0] = 0
    return out, lcps
