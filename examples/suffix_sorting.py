#!/usr/bin/env python3
"""String sorting as a suffix-sorting subroutine (Section VII-E).

Suffix sorting (building a suffix array) is one of the paper's motivating
applications: the suffixes of one text are extremely long strings whose
distinguishing prefixes are tiny (D/N ~ 1e-4 for the paper's Wikipedia
instance).  Algorithms that communicate whole strings drown in data, while
PDMS only ships the few characters per suffix that matter.

The example builds the suffix instance, sorts it with MS and PDMS, verifies
that the resulting permutation is the suffix array of the text, and compares
communication volumes.

Run with::

    python examples/suffix_sorting.py [text_length]
"""

from __future__ import annotations

import pathlib
import sys

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import dsort
from repro.strings import dn_ratio, suffix_instance


def main() -> None:
    text_len = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    # cap suffix length to bound memory; far above the distinguishing prefixes
    suffixes = suffix_instance(text_len=text_len, alphabet_size=4, max_suffix_len=600, seed=5)
    total_chars = sum(len(s) for s in suffixes)
    print(
        f"suffix instance: {len(suffixes)} suffixes, {total_chars} characters, "
        f"D/N = {dn_ratio(suffixes):.4f}\n"
    )

    results = {}
    for algorithm in ("ms", "pdms", "pdms-golomb"):
        results[algorithm] = dsort(
            suffixes, algorithm=algorithm, num_pes=8, check=True, seed=9
        )

    print(f"{'algorithm':<14}{'bytes/suffix':>14}{'total MB sent':>16}{'modeled time':>16}")
    for name, res in results.items():
        print(
            f"{name:<14}{res.bytes_per_string():>14.1f}"
            f"{res.report.total_bytes_sent / 1e6:>16.3f}"
            f"{res.modeled_time():>16.2e}"
        )

    ms_bytes = results["ms"].report.total_bytes_sent
    pdms_bytes = results["pdms"].report.total_bytes_sent
    print(
        f"\nPDMS moves {ms_bytes / max(1, pdms_bytes):.0f}x less data than MS — the "
        "mechanism behind the ~30x speed-up the paper reports on its suffix instance."
    )

    # The sorted order of the suffixes *is* the suffix array of the text; the
    # MS result carries full suffixes, so we can check against a direct sort.
    flat = results["ms"].sorted_strings
    assert flat == sorted(suffixes)
    print("suffix array verified against a direct sort.")


if __name__ == "__main__":
    main()
