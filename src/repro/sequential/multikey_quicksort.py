"""Multikey Quicksort (Bentley & Sedgewick) with LCP output.

Section II-A uses Multikey Quicksort as the middle layer of the base-case
sorter: MSD radix sort recurses until the subproblem is smaller than
``sigma`` strings, then Multikey Quicksort takes over, which in turn hands
constant-size subproblems to LCP insertion sort.  The expected running time
is ``O(D + n log n)``.

The algorithm partitions the strings sharing a common prefix of length
``depth`` into three groups by comparing their character at position
``depth`` with a pivot character: ``<``, ``=`` and ``>``.  The ``=`` group is
recursed on with ``depth + 1`` (unless the pivot character is the implicit
0 terminator, i.e. the strings end at ``depth``), the other groups with the
same depth.

LCP bookkeeping: consecutive output strings coming from two *different*
groups differ exactly at position ``depth`` (they agree on the common prefix
and their ``depth``-th characters were compared against the pivot with
different outcomes), so the boundary LCP is ``depth``.  Inside a group the
recursion provides the LCPs.  Strings that are exhausted at ``depth``
(length == depth) are all equal, giving internal LCPs of ``depth``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .lcp_insertion import lcp_insertion_sort
from .stats import CharStats

__all__ = ["multikey_quicksort"]

_INSERTION_THRESHOLD = 24
_END = -1  # virtual character for "string ends here" — smaller than any byte


def _char_at(s: bytes, depth: int) -> int:
    """Character of ``s`` at ``depth`` or the end-of-string sentinel."""
    return s[depth] if depth < len(s) else _END


def _median_of_three(strings: List[bytes], depth: int) -> int:
    """Pivot character chosen as the median of first/middle/last characters."""
    a = _char_at(strings[0], depth)
    b = _char_at(strings[len(strings) // 2], depth)
    c = _char_at(strings[-1], depth)
    # median of three without branches on equality subtleties
    if a > b:
        a, b = b, a
    if b > c:
        b = c
    return max(a, b)


def multikey_quicksort(
    strings: Sequence[bytes],
    depth: int = 0,
    stats: Optional[CharStats] = None,
    insertion_threshold: int = _INSERTION_THRESHOLD,
) -> Tuple[List[bytes], List[int]]:
    """Sort ``strings`` (sharing a common prefix of ``depth``) with LCP output.

    Returns ``(sorted_strings, lcps)``.  The first LCP entry is ``depth``
    (0 for a stand-alone top-level call), matching the convention of the
    other sequential sorters so results can be spliced.
    """
    out: List[bytes] = []
    lcps: List[int] = []
    _mkqs(list(strings), depth, out, lcps, stats, insertion_threshold)
    if lcps and depth == 0:
        lcps[0] = 0
    return out, lcps


def _mkqs(
    strings: List[bytes],
    depth: int,
    out: List[bytes],
    lcps: List[int],
    stats: Optional[CharStats],
    insertion_threshold: int,
) -> None:
    """Recursive worker appending the sorted strings/LCPs of one subproblem.

    The first appended LCP entry of each subproblem is ``depth``; the caller
    (or a previous sibling group) is responsible for the true boundary value,
    which for sibling groups is exactly ``depth`` anyway.
    """
    n = len(strings)
    if n == 0:
        return
    start0 = len(out)
    if n == 1:
        out.append(strings[0])
        lcps.append(depth)
        return
    if n <= insertion_threshold:
        sub, sub_lcps = lcp_insertion_sort(strings, depth, stats)
        sub_lcps[0] = depth
        out.extend(sub)
        lcps.extend(sub_lcps)
        return

    if stats is not None:
        stats.bucket_passes += 1

    pivot = _median_of_three(strings, depth)
    lt: List[bytes] = []
    eq: List[bytes] = []
    gt: List[bytes] = []
    for s in strings:
        c = _char_at(s, depth)
        if stats is not None:
            stats.add_chars(1 if c != _END else 0)
        if c < pivot:
            lt.append(s)
        elif c == pivot:
            eq.append(s)
        else:
            gt.append(s)

    _mkqs(lt, depth, out, lcps, stats, insertion_threshold)

    if eq:
        if pivot == _END:
            # all strings in eq end at ``depth`` and are therefore equal
            out.extend(eq)
            lcps.extend([depth] * len(eq))
        else:
            _mkqs(eq, depth + 1, out, lcps, stats, insertion_threshold)
        # fix the boundary between the lt block and the eq block: both share
        # exactly ``depth`` characters (they differ at position ``depth``)
        if lt:
            lcps[len(lcps) - len(eq)] = depth

    if gt:
        start = len(out)
        _mkqs(gt, depth, out, lcps, stats, insertion_threshold)
        if lt or eq:
            lcps[start] = depth

    # Normalise the convention: the first LCP entry of every subproblem is
    # exactly ``depth``; the caller overwrites it when it knows better (it is
    # a boundary between sibling groups) and relies on it otherwise.
    lcps[start0] = depth
