"""Experiment driver for reproducing the paper's tables and figures.

The harness runs one distributed-sort configuration per *cell* of a figure
(algorithm x number of PEs x input) and collects, for each cell,

* the exact communication volume (total bytes sent, bytes sent per string —
  the lower panels of Figures 4 and 5),
* the modelled running time under the alpha-beta machine model plus modelled
  local work (the upper panels; absolute values are not comparable to the
  paper's cluster but the relative ordering and crossovers are),
* the measured wall-clock time of the simulation (reported for transparency,
  dominated by Python-level local work),
* auxiliary data (splitter imbalance, prefix-doubling rounds, D/N of the
  input) used by the ablation benchmarks.

Results render as aligned text tables whose rows mirror the series of the
paper's plots, and can be dumped as JSON for archival in EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import json
import re
import resource
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..dist.api import DSortResult
from ..dist.exchange import async_exchange_enabled, exchange_topology_name
from ..net.cost_model import DEFAULT_MACHINE, MachineModel
from ..strings.packed import packed_enabled
from ..session import Cluster, SortSpec, spec_from_options
from ..strings.lcp import dn_ratio, merge_lcp_statistics
from ..strings.stringset import StringSet

__all__ = [
    "CellResult",
    "ExperimentResult",
    "ExperimentRunner",
    "format_table",
    "peak_rss_bytes",
]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, where the value is
    simply 1024x too large — a stable unit within any one trajectory file,
    which is all the benchmark comparisons need).  A high-water mark, not a
    per-cell delta: the kernel never lowers it, so successive cells report
    monotonically non-decreasing values.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@dataclass
class CellResult:
    """One (algorithm, num_pes, input) measurement."""

    experiment: str
    algorithm: str
    num_pes: int
    input_name: str
    num_strings: int
    num_chars: int
    total_bytes_sent: int
    bytes_per_string: float
    modeled_time: float
    modeled_comm_time: float
    modeled_local_time: float
    wall_time: float
    imbalance: float
    #: stable key of the exact configuration that produced this cell
    #: (:meth:`repro.session.SortSpec.config_hash`); the resume key of the
    #: checkpointing roadmap item
    config_hash: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The cell as a flat JSON-ready dict (dataclass fields + extra)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        """Rebuild a cell from :meth:`as_dict` output (checkpoint loading).

        Unknown keys are ignored so old checkpoint files survive new
        fields; missing keys fall back to the field defaults where one
        exists and raise otherwise (a corrupt checkpoint should fail
        loudly, not resume silently wrong).
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ExperimentResult:
    """All cells of one experiment (one figure / table)."""

    name: str
    description: str
    cells: List[CellResult] = field(default_factory=list)

    def add(self, cell: CellResult) -> None:
        """Append one measured cell to the experiment."""
        self.cells.append(cell)

    def filter(self, **criteria) -> List[CellResult]:
        """Cells whose attributes equal every given keyword (e.g. ``algorithm``)."""
        out = []
        for c in self.cells:
            if all(getattr(c, k) == v for k, v in criteria.items()):
                out.append(c)
        return out

    def algorithms(self) -> List[str]:
        """Algorithm names in first-seen order (the row order of the tables)."""
        seen: List[str] = []
        for c in self.cells:
            if c.algorithm not in seen:
                seen.append(c.algorithm)
        return seen

    def pe_counts(self) -> List[int]:
        """Sorted distinct PE counts appearing in the cells."""
        return sorted({c.num_pes for c in self.cells})

    def input_names(self) -> List[str]:
        """Input names in first-seen order (one rendered table per input)."""
        seen: List[str] = []
        for c in self.cells:
            if c.input_name not in seen:
                seen.append(c.input_name)
        return seen

    def by_config(self, config_hash: str) -> List[CellResult]:
        """Cells produced by the configuration with this stable hash.

        The lookup key for incremental sweeps: a resumed run recomputes only
        the ``(config_hash, num_pes, input_name)`` combinations missing here.
        """
        return [c for c in self.cells if c.config_hash == config_hash]

    # -- rendering -------------------------------------------------------------------
    def to_json(self) -> str:
        """The full experiment (name, description, cells) as indented JSON."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "cells": [c.as_dict() for c in self.cells],
            },
            indent=2,
        )

    def render(self, metric: str = "bytes_per_string") -> str:
        """Render one metric as a table: rows = algorithms, columns = PE counts.

        One table per input, mirroring the panels of the paper's figures.
        """
        blocks: List[str] = []
        for input_name in self.input_names():
            header = [f"{self.name} [{input_name}] — {metric}"]
            pes = sorted({c.num_pes for c in self.cells if c.input_name == input_name})
            rows = []
            for alg in self.algorithms():
                row: List[str] = [alg]
                for p in pes:
                    cells = self.filter(
                        algorithm=alg, num_pes=p, input_name=input_name
                    )
                    if cells:
                        value = getattr(cells[0], metric)
                        row.append(_fmt_value(value))
                    else:
                        row.append("-")
                rows.append(row)
            table = format_table(["algorithm"] + [f"p={p}" for p in pes], rows)
            blocks.append("\n".join(header) + "\n" + table)
        return "\n\n".join(blocks)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-2 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text aligned table (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    for row in rows:
        lines.append(fmt.format(*[str(c) for c in row]))
    return "\n".join(lines)


def _imbalance(result: DSortResult) -> float:
    """Max/avg ratio of the output character counts over PEs (load balance)."""
    sizes = [sum(len(s) for s in part) for part in result.outputs_per_pe]
    nonzero = [s for s in sizes if s] or [0]
    avg = sum(sizes) / len(sizes) if sizes else 0
    if avg == 0:
        return 1.0
    return max(sizes) / avg


class ExperimentRunner:
    """Runs spec x scale sweeps over named inputs.

    Sweeps are driven by :class:`repro.session.SortSpec` lists — algorithm
    names are accepted anywhere a spec is and mean that algorithm's default
    spec (legacy ``**options`` still map through
    :func:`repro.session.spec_from_options`).  Every cell is keyed by the
    spec's stable :meth:`~repro.session.SortSpec.config_hash`.  One
    :class:`repro.session.Cluster` per PE count is built lazily and reused
    across all cells of that size, so a whole sweep shares its simulated
    machines.

    With ``cache_dir`` set, every finished cell is **checkpointed** as one
    JSON file keyed by ``(experiment, config_hash, num_pes, input_name)``
    plus a digest of the runner's own context (its input-generation
    ``seed`` and ``machine`` model); a later run with ``resume=True``
    (:meth:`run_cell` / :meth:`sweep`) loads those cells instead of
    recomputing them, so a large sweep that died halfway — or grew new
    configurations — only pays for the missing cells.  The spec's
    ``config_hash`` covers every algorithm knob and the context digest
    covers what the harness itself feeds the run, so a changed
    configuration, input seed or machine model never aliases a stale
    checkpoint.
    """

    def __init__(
        self,
        machine: MachineModel = DEFAULT_MACHINE,
        check: bool = False,
        seed: int = 0,
        cache_dir: Union[str, Path, None] = None,
    ):
        self.machine = machine
        self.check = check
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: cells served from the checkpoint cache instead of being recomputed
        self.cells_resumed = 0
        self._clusters: Dict[int, Cluster] = {}

    # ------------------------------------------------------------------ checkpoints
    def _cell_cache_path(
        self, experiment: str, config_hash: str, num_pes: int, input_name: str
    ) -> Optional[Path]:
        """The checkpoint file of one cell (None without a cache dir).

        The sanitized ``experiment--input_name`` prefix is readability only;
        the identity lives in the digest, which covers the *exact*
        (experiment, input_name) pair — sanitizing/joining cannot alias two
        distinct keys — together with everything that shapes a cell without
        appearing in the spec's ``config_hash``: the runner context
        (input-generation ``seed``, ``machine`` model) and the effective
        process-level execution toggles a spec may inherit
        (``REPRO_EXCHANGE_TOPOLOGY`` / ``REPRO_ASYNC_EXCHANGE`` /
        ``REPRO_PACKED``).  The toggle snapshot is conservative — a spec
        that pins its own ``exchange_topology`` gets invalidated with the
        globals too — which errs towards recomputing, never towards
        serving a cell measured under different settings.
        """
        if self.cache_dir is None:
            return None
        identity = json.dumps(
            {
                "experiment": experiment,
                "input_name": input_name,
                "seed": self.seed,
                "machine": asdict(self.machine),
                "context": {
                    "exchange_topology": exchange_topology_name(),
                    "async_exchange": async_exchange_enabled(),
                    "packed": packed_enabled(),
                },
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:10]
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", f"{experiment}--{input_name}")
        return self.cache_dir / f"{safe}--{config_hash}--p{num_pes}--{digest}.json"

    def _load_cached_cell(self, path: Optional[Path]) -> Optional[CellResult]:
        """A checkpointed cell, or None when absent/unreadable (recompute)."""
        if path is None or not path.is_file():
            return None
        try:
            return CellResult.from_dict(json.loads(path.read_text()))
        except (ValueError, TypeError, json.JSONDecodeError):
            return None  # corrupt checkpoint: recompute and overwrite

    def _store_cached_cell(self, path: Optional[Path], cell: CellResult) -> None:
        """Persist one finished cell (no-op without a cache dir)."""
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(cell.as_dict(), indent=2) + "\n")

    def cluster_for(self, num_pes: int) -> Cluster:
        """The reusable cluster simulating ``num_pes`` PEs (built lazily)."""
        if num_pes not in self._clusters:
            self._clusters[num_pes] = Cluster(num_pes=num_pes, machine=self.machine)
        return self._clusters[num_pes]

    def _resolve_spec(
        self, algorithm: Union[str, SortSpec], options: Dict[str, object]
    ) -> SortSpec:
        if isinstance(algorithm, SortSpec):
            if options:
                raise ValueError(
                    "pass tuning options inside the SortSpec, not alongside it"
                )
            return algorithm
        return spec_from_options(algorithm, options, seed=self.seed)

    def run_cell(
        self,
        experiment: str,
        algorithm: Union[str, SortSpec],
        num_pes: int,
        input_name: str,
        blocks: Sequence[Sequence[bytes]],
        resume: bool = False,
        **options,
    ) -> CellResult:
        """Run one configuration on one pre-distributed input.

        ``algorithm`` is a :class:`~repro.session.SortSpec` or an algorithm
        name (the latter optionally refined by legacy keyword ``options``).
        With ``resume=True`` and a configured ``cache_dir``, a cell already
        checkpointed under the same ``(experiment, config_hash, num_pes,
        input_name)`` key is loaded and returned without running the sort.
        """
        spec = self._resolve_spec(algorithm, options)
        cache_path = self._cell_cache_path(
            experiment, spec.config_hash(), num_pes, input_name
        )
        if resume:
            cached = self._load_cached_cell(cache_path)
            if cached is not None:
                self.cells_resumed += 1
                return cached
        cluster = self.cluster_for(num_pes)  # built outside the timed window
        t0 = time.perf_counter()
        result = cluster.sort(
            blocks, spec, check=self.check, pre_distributed=True
        )
        wall = time.perf_counter() - t0
        report = result.report
        num_strings = result.num_strings
        cell = CellResult(
            experiment=experiment,
            algorithm=result.algorithm,
            num_pes=num_pes,
            input_name=input_name,
            num_strings=num_strings,
            num_chars=result.num_chars,
            total_bytes_sent=report.total_bytes_sent,
            bytes_per_string=report.bytes_per_string(num_strings),
            modeled_time=report.modeled_total_time(self.machine),
            modeled_comm_time=report.modeled_comm_time(self.machine),
            modeled_local_time=report.modeled_local_time(self.machine),
            wall_time=wall,
            imbalance=_imbalance(result),
            config_hash=spec.config_hash(),
            extra=dict(result.extra),
        )
        cell.extra["spec"] = spec.to_dict()
        cell.extra["phase_bytes"] = dict(report.phase_bytes)
        # memory high-water mark at the time the cell finished (bytes); the
        # packed-path PRs track this next to strings/sec in the BENCH_* files
        cell.extra["peak_rss_bytes"] = peak_rss_bytes()
        overlap = report.overlap_fraction("exchange")
        if overlap > 0.0:
            # split-phase exchange runs (REPRO_ASYNC_EXCHANGE=1) record how
            # much of the delivery window was hidden behind merge preparation
            cell.extra["overlap_fraction"] = round(overlap, 4)
        if report.forwarded_bytes > 0:
            # multi-level routed delivery: expose the measured inflation
            cell.extra["forwarded_bytes"] = report.forwarded_bytes
            cell.extra["origin_bytes_sent"] = report.origin_bytes_sent
        if report.barrier_wait_seconds:
            # barrier waits metered separately so stage timings stay
            # straggler-free (see docs/OBSERVABILITY.md)
            cell.extra["barrier_wait_seconds"] = {
                stage: round(secs, 6)
                for stage, secs in sorted(report.barrier_wait_seconds.items())
            }
        if report.timeline is not None:
            # traced runs (Cluster(trace=True) / REPRO_TRACE=1) carry the
            # per-stage time series into the BENCH_* trajectory files
            stage_secs = report.timeline.stage_seconds(exclusive=True)
            cell.extra["stage_seconds"] = {
                stage: round(secs, 6) for stage, secs in stage_secs.items()
            }
            cell.extra["stage_strings_per_second"] = {
                stage: round(num_strings / secs, 1)
                for stage, secs in stage_secs.items()
                if secs > 0.0
            }
            cell.extra["stage_peak_rss_bytes"] = (
                report.timeline.peak_rss_per_stage()
            )
            if report.timeline.dropped_events:
                cell.extra["trace_dropped_events"] = (
                    report.timeline.dropped_events
                )
        self._store_cached_cell(cache_path, cell)
        return cell

    def sweep(
        self,
        experiment: str,
        description: str,
        algorithms: Sequence[Union[str, SortSpec]],
        pe_counts: Sequence[int],
        input_factory: Callable[[int, int], Sequence[Sequence[bytes]]],
        input_name: str = "input",
        input_stats: bool = False,
        resume: bool = False,
        **options,
    ) -> ExperimentResult:
        """Run ``specs x pe_counts``; the input may depend on ``num_pes``.

        ``algorithms`` is a list of :class:`~repro.session.SortSpec` objects
        and/or algorithm names.  ``input_factory(num_pes, seed)`` returns the
        per-PE blocks (so weak scaling can grow the input with the machine
        while strong scaling returns slices of a fixed corpus).

        With ``resume=True`` (and a runner ``cache_dir``) already
        checkpointed cells are loaded instead of recomputed, so an
        interrupted or extended sweep resumes incrementally; when *every*
        cell of a PE count is cached, its input is not even generated.
        """
        out = ExperimentResult(name=experiment, description=description)
        specs = [self._resolve_spec(a, dict(options)) for a in algorithms]
        for p in pe_counts:
            # probe the checkpoint cache once per cell; the probed cells are
            # reused below, never re-read
            cached = [
                self._load_cached_cell(
                    self._cell_cache_path(experiment, s.config_hash(), p, input_name)
                )
                if resume
                else None
                for s in specs
            ]
            if resume and not input_stats and all(c is not None for c in cached):
                # every cell of this PE count is checkpointed: skip even the
                # input generation
                self.cells_resumed += len(cached)
                for cell in cached:
                    out.add(cell)
                continue
            blocks = input_factory(p, self.seed)
            stats_extra: Dict[str, object] = {}
            if input_stats:
                # StringSet caches one sorted packed copy of the corpus, so
                # D/N and the LCP statistics share a single sort instead of
                # each re-sorting the full input
                corpus = StringSet([s for b in blocks for s in b])
                stats_extra["dn_ratio"] = round(dn_ratio(corpus), 4)
                mean_lcp, lcp_frac = merge_lcp_statistics(corpus)
                stats_extra["mean_lcp"] = round(mean_lcp, 2)
                stats_extra["lcp_fraction"] = round(lcp_frac, 4)
            for spec, cell in zip(specs, cached):
                if cell is not None:
                    self.cells_resumed += 1
                else:
                    cell = self.run_cell(experiment, spec, p, input_name, blocks)
                cell.extra.update(stats_extra)
                out.add(cell)
        return out
