"""Hypercube topology helpers used by ``hQuick`` (Section IV).

``hQuick`` logically arranges ``2^d`` PEs (with ``d = floor(log2 p)``) as a
``d``-dimensional hypercube and works on shrinking subcubes.  The helpers
here are pure functions on rank numbers so they can be unit-tested without a
running communicator.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "hypercube_dimension",
    "hypercube_size",
    "partner",
    "subcube_members",
    "subcube_root",
    "in_upper_half",
]


def hypercube_dimension(num_pes: int) -> int:
    """``d = floor(log2(num_pes))`` — the dimension hQuick actually uses."""
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    d = 0
    while (1 << (d + 1)) <= num_pes:
        d += 1
    return d


def hypercube_size(num_pes: int) -> int:
    """``2^d`` — number of PEs that participate in hQuick."""
    return 1 << hypercube_dimension(num_pes)


def partner(rank: int, dim: int) -> int:
    """Rank of the neighbour across hypercube dimension ``dim``."""
    return rank ^ (1 << dim)


def in_upper_half(rank: int, dim: int) -> bool:
    """True if ``rank`` lies in the upper half of dimension ``dim``."""
    return bool(rank & (1 << dim))


def subcube_members(rank: int, dim: int) -> List[int]:
    """All ranks in the ``dim``-dimensional subcube containing ``rank``.

    The subcube is defined by fixing the high bits of ``rank`` above ``dim``
    and letting the low ``dim`` bits vary.
    """
    base = rank & ~((1 << dim) - 1)
    return [base | low for low in range(1 << dim)]


def subcube_root(rank: int, dim: int) -> int:
    """Smallest rank of the ``dim``-dimensional subcube containing ``rank``."""
    return rank & ~((1 << dim) - 1)
