"""The routed multi-level all-to-all: path algebra, delivery, accounting.

Three layers are covered:

* **path algebra** (pure, property-based): for every ``(src, dst, topology,
  p)`` the path starts at ``src``, ends at ``dst``, uses only round-peer
  edges (checked inside :meth:`ExchangeTopology.path` itself), and its hop
  count matches the topology's promise — Hamming distance bounded by ``d``
  for a power-of-two hypercube, at most 2 for the grid, exactly 1 for
  direct delivery and the non-power-of-two hypercube fallback;
* **routed delivery on the simulated machine**: every payload arrives at
  exactly one destination exactly once, with origin bytes equal to direct
  delivery's total, forwarded bytes covering the inflation, and per-PE
  startup counts reduced from ``p - 1`` to the topology's round structure;
* **cost-model consistency**: the measured routed volume stays within the
  inflation the closed-form ``alltoall_hypercube`` / ``alltoall_grid``
  formulas assume, and the recorded collective kinds drive those formulas.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.mpi.engine import run_spmd
from repro.mpi.serialization import wire_size
from repro.net.cost_model import MachineModel
from repro.net.router import (
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    batch_wire_bytes,
    exchange_topology_name,
    resolve_topology,
    routed_exchange,
    set_exchange_topology,
    use_exchange_topology,
)
from repro.net.topology import grid_dims, hypercube_dimension, is_power_of_two

# ---------------------------------------------------------------------------
# path algebra (pure property tests)
# ---------------------------------------------------------------------------


def _popcount(x: int) -> int:
    return bin(x).count("1")


@settings(max_examples=200, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=33),
    name=st.sampled_from(sorted(TOPOLOGY_NAMES)),
    data=st.data(),
)
def test_every_pair_routes_to_exactly_one_delivery(p, name, data):
    """path(src, dst) is well formed for every pair on every topology."""
    topology = TOPOLOGIES[name]
    src = data.draw(st.integers(min_value=0, max_value=p - 1))
    dst = data.draw(st.integers(min_value=0, max_value=p - 1))
    path = topology.path(src, dst, p)
    assert path[0] == src and path[-1] == dst
    assert len(path) - 1 <= topology.max_hops(p)
    # no rank is visited twice (store-and-forward never cycles)
    assert len(set(path)) == len(path)
    if src == dst:
        assert path == [src]


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_hypercube_hop_counts_are_hamming_distances(p):
    d = hypercube_dimension(p)
    topology = TOPOLOGIES["hypercube"]
    assert topology.max_hops(p) == d
    for src in range(p):
        for dst in range(p):
            path = topology.path(src, dst, p)
            assert len(path) - 1 == _popcount(src ^ dst)
            # every hop flips exactly one bit, in ascending dimension order
            for a, b in zip(path, path[1:]):
                assert _popcount(a ^ b) == 1


@pytest.mark.parametrize("p", [3, 5, 6, 7, 12, 24])
def test_hypercube_falls_back_to_direct_off_powers_of_two(p):
    """Non-power-of-two p has no hypercube: one direct round, 1-hop paths."""
    topology = TOPOLOGIES["hypercube"]
    assert not is_power_of_two(p)
    assert topology.num_rounds(p) == 1
    assert topology.max_hops(p) == 1
    assert topology.collective_kind(p) == "alltoall"
    for src in range(p):
        for dst in range(p):
            path = topology.path(src, dst, p)
            assert path == ([src] if src == dst else [src, dst])


@pytest.mark.parametrize("p", [2, 3, 4, 6, 8, 9, 12, 16, 25, 30])
def test_grid_hop_counts_row_then_column(p):
    rows, cols = grid_dims(p)
    assert rows * cols == p and rows <= cols
    topology = TOPOLOGIES["grid"]
    for src in range(p):
        for dst in range(p):
            path = topology.path(src, dst, p)
            assert len(path) - 1 <= 2
            if src != dst:
                expected = 1 if (src % cols == dst % cols or src // cols == dst // cols) else 2
                assert len(path) - 1 == expected
            if len(path) == 3:
                mid = path[1]
                # row phase first (stay in src's row), then the column hop
                assert mid // cols == src // cols
                assert mid % cols == dst % cols


@pytest.mark.parametrize("p", [3, 5, 7, 13])
def test_grid_degenerates_to_direct_for_prime_p(p):
    rows, cols = grid_dims(p)
    assert (rows, cols) == (1, p)
    topology = TOPOLOGIES["grid"]
    for src in range(p):
        for dst in range(p):
            assert len(topology.path(src, dst, p)) - 1 == (0 if src == dst else 1)
    # the column phase has no peers anywhere: no deadlock, no messages
    for rank in range(p):
        assert topology.round_peers(rank, p, 1) == []


@settings(max_examples=60, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=17),
    name=st.sampled_from(sorted(TOPOLOGY_NAMES)),
    k_rank=st.data(),
)
def test_round_peer_relation_is_symmetric(p, name, k_rank):
    """Asymmetric peer sets would deadlock the per-round batch exchange."""
    topology = TOPOLOGIES[name]
    for k in range(topology.num_rounds(p)):
        for rank in range(p):
            for peer in topology.round_peers(rank, p, k):
                assert rank in topology.round_peers(peer, p, k)
                assert peer != rank


# ---------------------------------------------------------------------------
# routed delivery on the simulated machine
# ---------------------------------------------------------------------------


def _exchange_program(comm, name):
    messages = [f"from {comm.rank} to {dst}" for dst in range(comm.size)]
    sizes = [wire_size(m) for m in messages]
    received = routed_exchange(comm, TOPOLOGIES[name], messages, sizes)
    return received


@pytest.mark.parametrize("name", sorted(TOPOLOGY_NAMES))
@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_routed_exchange_delivers_every_payload_once(name, p):
    results, report = run_spmd(p, _exchange_program, common_args=(name,))
    for rank, received in enumerate(results):
        assert received == [f"from {src} to {rank}" for src in range(p)]
    # each payload leaves its origin exactly once: origin volume matches
    # what direct delivery would charge
    direct_total = sum(
        wire_size(f"from {src} to {dst}")
        for src in range(p)
        for dst in range(p)
        if src != dst
    )
    assert report.origin_bytes_sent == direct_total
    assert report.forwarded_bytes == report.total_bytes_sent - direct_total
    # every byte this program moved went through a routed batch
    assert sum(report.route_bytes.values()) == report.total_bytes_sent


def test_hypercube_startup_count_is_log_p():
    p = 8
    _, report = run_spmd(p, _exchange_program, common_args=("hypercube",))
    assert report.messages_per_pe == [hypercube_dimension(p)] * p
    _, direct = run_spmd(p, _exchange_program, common_args=("direct",))
    assert direct.messages_per_pe == [p - 1] * p


def test_grid_startup_count_is_rows_plus_cols():
    p = 8
    rows, cols = grid_dims(p)
    _, report = run_spmd(p, _exchange_program, common_args=("grid",))
    assert report.messages_per_pe == [(rows - 1) + (cols - 1)] * p


def test_route_bytes_cover_all_routed_traffic():
    p = 8
    _, report = run_spmd(p, _exchange_program, common_args=("hypercube",))
    assert set(report.route_bytes) == {f"hypercube-dim{k}" for k in range(3)}
    assert sum(report.route_bytes.values()) == report.total_bytes_sent


# ---------------------------------------------------------------------------
# cost-model consistency (model vs measured)
# ---------------------------------------------------------------------------


def _payload_program(comm, name, payload_bytes):
    # uniform, headers-dwarfing payloads so the inflation ratio is crisp
    messages = [b"x" * payload_bytes for _ in range(comm.size)]
    sizes = [payload_bytes] * comm.size
    routed_exchange(comm, TOPOLOGIES[name], messages, sizes)
    return None


@pytest.mark.parametrize("p", [4, 8, 16])
def test_measured_hypercube_volume_within_modelled_inflation(p):
    """The log2(p) factor of alltoall_hypercube is an upper envelope."""
    payload = 2000
    _, report = run_spmd(p, _payload_program, common_args=("hypercube", payload))
    d = hypercube_dimension(p)
    h = payload * (p - 1)  # per-PE origin bottleneck
    assert max(report.bytes_sent_per_pe) <= h * d
    assert report.total_bytes_sent <= p * h * d
    # and routing genuinely inflates: some frame needs more than one hop
    assert report.total_bytes_sent > report.origin_bytes_sent == p * h
    # the recorded collective carries the *origin* bottleneck, so the model
    # formula (which applies its own log factor) stays an upper bound on
    # the measured routed bottleneck's bandwidth term
    machine = MachineModel(alpha=0.0, beta=1.0)
    (event,) = [e for e in report.collectives if e.kind == "alltoall-hypercube"]
    assert event.max_bytes_per_pe == h
    assert machine.alltoall_hypercube(event.max_bytes_per_pe, p) >= max(
        report.bytes_sent_per_pe
    )
    # while the latency term drops from p-1 startups to log2 p
    latency = MachineModel(alpha=1.0, beta=0.0)
    assert latency.alltoall_hypercube(h, p) == pytest.approx(d)
    assert latency.alltoall_direct(h, p) == pytest.approx(p)


@pytest.mark.parametrize("p", [4, 6, 8, 9, 12])
def test_measured_grid_volume_within_modelled_inflation(p):
    payload = 2000
    _, report = run_spmd(p, _payload_program, common_args=("grid", payload))
    rows, cols = grid_dims(p)
    phases = (1 if rows > 1 else 0) + (1 if cols > 1 else 0)
    h = payload * (p - 1)
    assert max(report.bytes_sent_per_pe) <= h * phases
    machine = MachineModel(alpha=0.0, beta=1.0)
    (event,) = [e for e in report.collectives if e.kind == "alltoall-grid"]
    assert event.max_bytes_per_pe == h
    assert machine.alltoall_grid(event.max_bytes_per_pe, p) >= max(
        report.bytes_sent_per_pe
    )
    latency = MachineModel(alpha=1.0, beta=0.0)
    assert latency.alltoall_grid(h, p) == pytest.approx((rows - 1) + (cols - 1))


def test_modeled_comm_time_dispatches_grid_kind():
    from repro.net.metrics import TrafficMeter

    meter = TrafficMeter(6)
    meter.record_collective("alltoall-grid", 1000, 6)
    machine = MachineModel(alpha=1.0, beta=1.0)
    assert meter.report().modeled_comm_time(machine) == pytest.approx(
        machine.alltoall_grid(1000, 6)
    )


# ---------------------------------------------------------------------------
# toggles and resolution
# ---------------------------------------------------------------------------


def test_resolve_topology_spellings():
    assert resolve_topology("grid") is TOPOLOGIES["grid"]
    assert resolve_topology(TOPOLOGIES["hypercube"]) is TOPOLOGIES["hypercube"]
    assert resolve_topology(None).name == exchange_topology_name()
    with pytest.raises(ValueError, match="unknown exchange topology"):
        resolve_topology("torus")


def test_topology_toggle_roundtrip():
    before = exchange_topology_name()
    try:
        assert set_exchange_topology("hypercube") == before
        assert exchange_topology_name() == "hypercube"
        with use_exchange_topology("grid"):
            assert exchange_topology_name() == "grid"
            assert resolve_topology(None).name == "grid"
        assert exchange_topology_name() == "hypercube"
        with pytest.raises(ValueError, match="unknown exchange topology"):
            set_exchange_topology("mesh")
    finally:
        set_exchange_topology(before)


def test_batch_framing_overhead_is_explicit():
    from repro.net.router import RouteFrame, frame_wire_bytes

    frame = RouteFrame(origin=3, dest=200, payload=b"irrelevant", nbytes=1000)
    # varint(3)=1, varint(200)=2, varint(1000)=2, plus the payload itself
    assert frame_wire_bytes(frame) == 1 + 2 + 2 + 1000
    assert batch_wire_bytes([frame, frame]) == 1 + 2 * (1 + 2 + 2 + 1000)
    assert batch_wire_bytes([]) == 1
