"""The per-rank event recorder: a bounded ring buffer of trace events.

One :class:`Recorder` belongs to one rank of one SPMD run.  Every event is
a plain tuple ``(kind, t, name, data)`` — ``t`` from :func:`time.monotonic`,
which on Linux is the boot-relative ``CLOCK_MONOTONIC`` shared by every
thread *and* every forked worker process, so per-rank streams from both
execution engines align on a common clock (the timeline builder still
re-bases to the earliest event; see
:meth:`repro.obs.timeline.Timeline.from_exports`).

Design constraints, in order:

* **Zero cost when off.**  The recorder is never consulted behind a flag;
  instrumentation sites hold an ``Optional[Recorder]`` and skip on
  ``None``.  With tracing off the entire subsystem is one attribute load
  and one ``is None`` test per site.
* **Bounded when on.**  The buffer is a ring of ``capacity`` events;
  overflow overwrites the oldest event and counts :attr:`dropped`, so a
  pathological run degrades its trace instead of its memory.
* **Cheap appends.**  An event append is a method call, one
  ``time.monotonic()``, and a list store — no locks (one recorder per
  rank, written only by that rank) and no allocation beyond the tuple.
  ``benchmarks/test_obs_overhead.py`` pins the events/sec throughput.

RSS is sampled only at phase transitions (``resource.getrusage``, one
cheap syscall), giving a per-stage peak-memory series without a sampler
thread.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TRACE_ENV",
    "DEFAULT_CAPACITY",
    "trace_enabled",
    "resolve_trace",
    "Recorder",
]

#: the environment toggle that arms tracing process-wide (see the central
#: registry in :mod:`repro.analysis.toggles`); the per-cluster knob is
#: ``Cluster(trace=...)``
TRACE_ENV = "REPRO_TRACE"

#: default ring capacity, per rank; at ~100 ns and ~100 bytes per event
#: this bounds a rank's trace at a few MB and far outlasts a typical run
DEFAULT_CAPACITY = 65536

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def trace_enabled() -> bool:
    """Whether the ``REPRO_TRACE`` environment toggle arms tracing."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


def resolve_trace(flag: Optional[bool] = None) -> bool:
    """Resolve a tracing request: explicit flag > ``REPRO_TRACE`` env > off.

    The single resolution rule every entry point shares — the engines,
    :class:`repro.session.Cluster` and the CLI's ``--trace`` flag all pass
    their (possibly ``None``) trace argument through here, mirroring
    :func:`repro.mpi.engine.resolve_engine_name`.
    """
    if flag is not None:
        return bool(flag)
    return trace_enabled()


def _rss_bytes() -> int:
    """This process's peak resident set size in bytes (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class Recorder:
    """Ring buffer of trace events for one rank (single-writer, lock-free).

    Event kinds (the complete taxonomy; see ``docs/OBSERVABILITY.md``):

    ``("phase", t, name, rss_bytes)``
        The rank entered accounting phase ``name``; closes the previous
        phase span.  ``rss_bytes`` is the peak RSS sampled at the boundary.
    ``("begin", t, name, None)`` / ``("end", t, name, None)``
        A nested sub-span — currently only ``"barrier"`` wait, recorded
        inside the surrounding phase so the timeline can report *exclusive*
        phase time (satellite fix: stragglers no longer inflate merge or
        exchange timings).
    ``("comm", t, kind, (peer, nbytes))``
        One point-to-point wire event (``kind`` is ``"send"``).
    ``("instant", t, name, data)``
        A point event: fault injections (``"fault-crash"``,
        ``"fault-straggle"``) and recovery pulls (``"retransmit"``).
    ``("finish", t, None, rss_bytes)``
        The rank program returned; closes the final phase span.
    """

    __slots__ = ("rank", "capacity", "dropped", "events_recorded", "_buf", "_next")

    def __init__(self, rank: int, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.rank = rank
        self.capacity = capacity
        #: events overwritten by ring wrap-around (oldest-first)
        self.dropped = 0
        #: total events ever pushed (kept and dropped)
        self.events_recorded = 0
        self._buf: List[Tuple[str, float, Optional[str], Any]] = []
        self._next = 0

    # ------------------------------------------------------------------ hot path
    def _push(self, event: Tuple[str, float, Optional[str], Any]) -> None:
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1
        self.events_recorded += 1

    def phase(self, name: str) -> None:
        """Record a phase transition (samples RSS at the boundary)."""
        self._push(("phase", time.monotonic(), name, _rss_bytes()))

    def begin(self, name: str) -> None:
        """Open a nested sub-span (e.g. ``"barrier"``) inside the current phase."""
        self._push(("begin", time.monotonic(), name, None))

    def end(self, name: str) -> None:
        """Close the innermost open sub-span named ``name``."""
        self._push(("end", time.monotonic(), name, None))

    def comm(self, kind: str, peer: int, nbytes: int) -> None:
        """Record one point-to-point wire event (``kind`` e.g. ``"send"``)."""
        self._push(("comm", time.monotonic(), kind, (peer, nbytes)))

    def instant(self, name: str, data: Any = None) -> None:
        """Record a point event (fault injections, retransmit pulls, markers)."""
        self._push(("instant", time.monotonic(), name, data))

    def finish(self) -> None:
        """Mark the end of the rank program (closes the final phase span)."""
        self._push(("finish", time.monotonic(), None, _rss_bytes()))

    # ------------------------------------------------------------------ results
    def events(self) -> List[Tuple[str, float, Optional[str], Any]]:
        """The retained events in chronological order (ring unrolled)."""
        if len(self._buf) < self.capacity:
            return list(self._buf)
        return self._buf[self._next:] + self._buf[: self._next]

    def export(self) -> Dict[str, Any]:
        """A picklable snapshot: shipped over the processes engine's report pipe.

        Plain lists/tuples/ints only, so the payload crosses the worker
        result pipe with no custom reducers and feeds
        :meth:`repro.obs.timeline.Timeline.from_exports` on the parent side.
        """
        return {
            "rank": self.rank,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events_recorded": self.events_recorded,
            "events": self.events(),
        }
