"""Packed string arrays: the vectorized data layout of the hot path.

A :class:`PackedStringArray` stores a string array as **one contiguous
``numpy.uint8`` character buffer plus an ``int64`` offsets array** (``n + 1``
entries, string ``i`` occupying ``buffer[offsets[i]:offsets[i+1]]``).  This is
the layout every fast string sorter uses in C/C++ land — bucket writes and
prefix scans become bulk memory operations instead of per-object work — and
in Python it additionally removes the per-``bytes``-object interpreter
overhead that dominates the simulator's hot loops.

The module provides the packed container plus the vectorized kernels the
distributed exchange path is built from:

* :func:`packed_lcp_array` — LCP array of adjacent strings via broadcasted
  block comparison over offset-aligned views (no per-character Python work);
* :func:`front_code` / :func:`front_decode` — batched LCP front coding
  (Section V, Step 3) operating directly on the byte buffer;
* :func:`packed_bucket_boundaries` — splitter partition of a sorted run via
  ``np.searchsorted`` over a fixed-width key view;
* :func:`packed_argsort` / :func:`packed_sort` — whole-array sorting through
  numpy's fixed-width byte dtype where safe;
* :func:`truncate` — vectorized per-string prefix truncation (PDMS builds
  its approximate distinguishing prefixes with this).

Slicing a :class:`PackedStringArray` is **zero-copy**: views share the
character buffer and merely narrow the offsets window, so cutting a sorted
run into ``p`` destination buckets allocates no string data at all.

Every kernel is bit-exact with its scalar counterpart in
:mod:`repro.strings.lcp` / :mod:`repro.dist.exchange`; the property tests in
``tests/test_packed.py`` pin that equivalence on adversarial inputs and the
``benchmarks/test_packed_hotpath.py`` micro-benchmark tracks the speedup.

The module-level switch :func:`set_packed_enabled` (or the ``REPRO_PACKED=0``
environment variable) turns the packed fast paths off globally; the
simulator then runs the original scalar code, which the benchmark uses as
its baseline and tests use to assert identical results.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "PackedStringArray",
    "as_packed",
    "packed_enabled",
    "set_packed_enabled",
    "use_packed",
    "packed_lcp_array",
    "front_code",
    "front_decode",
    "fixed_width_keys",
    "packed_bucket_boundaries",
    "packed_argsort",
    "packed_sort",
    "take",
    "truncate",
]

# Guard rails for the fixed-width (padded ``|S``) fast paths: beyond these the
# padded matrix would cost more memory traffic than the O(log n) scalar
# fallback saves.
_MAX_FIXED_WIDTH = 4096
_MAX_FIXED_BYTES = 1 << 27  # 128 MiB of padded key material

_ENABLED = os.environ.get("REPRO_PACKED", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def packed_enabled() -> bool:
    """Whether the vectorized packed-array fast paths are globally enabled."""
    return _ENABLED


def set_packed_enabled(flag: bool) -> bool:
    """Enable/disable the packed fast paths; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def use_packed(flag: bool):
    """Context manager form of :func:`set_packed_enabled` (for tests/benchmarks)."""
    previous = set_packed_enabled(flag)
    try:
        yield
    finally:
        set_packed_enabled(previous)


class PackedStringArray:
    """A string array as one contiguous byte buffer plus an offsets array.

    Parameters
    ----------
    buffer:
        ``uint8`` character data.  Views created by slicing share this array.
    offsets:
        ``int64`` array of ``n + 1`` non-decreasing absolute offsets into
        ``buffer``; string ``i`` is ``buffer[offsets[i]:offsets[i+1]]``.

    The container implements the read-only sequence protocol over ``bytes``
    values, so it can stand in for ``list[bytes]`` anywhere on the hot path
    (sampling, bisection, iteration) while the vectorized kernels operate on
    the raw buffer directly.
    """

    __slots__ = ("buffer", "offsets", "_lengths", "_has_zero")

    def __init__(self, buffer: np.ndarray, offsets: np.ndarray):
        self.buffer = buffer
        self.offsets = offsets
        self._lengths: Optional[np.ndarray] = None
        self._has_zero: Optional[bool] = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_strings(
        cls, strings: Union["PackedStringArray", Sequence[bytes]]
    ) -> "PackedStringArray":
        """Pack a sequence of ``bytes`` (no copy if already packed)."""
        if isinstance(strings, cls):
            return strings
        strings = list(strings)
        joined = b"".join(strings)
        buffer = np.frombuffer(joined, dtype=np.uint8)
        offsets = np.zeros(len(strings) + 1, dtype=np.int64)
        if strings:
            np.cumsum(
                np.fromiter(map(len, strings), dtype=np.int64, count=len(strings)),
                out=offsets[1:],
            )
        return cls(buffer, offsets)

    @classmethod
    def empty(cls) -> "PackedStringArray":
        """A packed array holding zero strings."""
        return cls(np.zeros(0, dtype=np.uint8), np.zeros(1, dtype=np.int64))

    # -- sequence protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            lo, hi, step = idx.indices(len(self))
            if step != 1:
                raise ValueError("PackedStringArray slices must be contiguous")
            return PackedStringArray(self.buffer, self.offsets[lo : hi + 1])
        if idx < 0:
            idx += len(self)
        if not 0 <= idx < len(self):
            raise IndexError("string index out of range")
        return self.buffer[self.offsets[idx] : self.offsets[idx + 1]].tobytes()

    def __iter__(self) -> Iterator[bytes]:
        base = int(self.offsets[0])
        data = self.buffer[base : int(self.offsets[-1])].tobytes()
        off = (self.offsets - base).tolist()  # plain ints: fast slice indices
        for a, b in zip(off, off[1:]):
            yield data[a:b]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedStringArray):
            return len(self) == len(other) and self.to_list() == other.to_list()
        if isinstance(other, list):
            return self.to_list() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(s) for s in self.to_list()[:4])
        more = "" if len(self) <= 4 else f", ... ({len(self)} strings)"
        return f"PackedStringArray([{preview}{more}])"

    # -- conversions -----------------------------------------------------------
    def to_list(self) -> List[bytes]:
        """Materialise as ``list[bytes]`` (one bulk copy plus n small slices)."""
        base = int(self.offsets[0])
        data = self.buffer[base : int(self.offsets[-1])].tobytes()
        off = (self.offsets - base).tolist()  # plain ints: fast slice indices
        return [data[a:b] for a, b in zip(off, off[1:])]

    # -- statistics ------------------------------------------------------------
    @property
    def lengths(self) -> np.ndarray:
        """Per-string lengths (``int64``), cached."""
        if self._lengths is None:
            self._lengths = np.diff(self.offsets)
        return self._lengths

    @property
    def num_chars(self) -> int:
        """Total characters ``N``."""
        return int(self.offsets[-1] - self.offsets[0])

    @property
    def max_len(self) -> int:
        """Length of the longest string (0 for an empty array)."""
        if len(self) == 0:
            return 0
        return int(self.lengths.max())

    def has_zero_byte(self) -> bool:
        """Whether any string contains a 0 byte (disables ``|S`` fast paths)."""
        if self._has_zero is None:
            region = self.buffer[int(self.offsets[0]) : int(self.offsets[-1])]
            self._has_zero = bool((region == 0).any())
        return self._has_zero

    def is_sorted(self) -> bool:
        """``True`` iff the strings are in non-decreasing lexicographic order."""
        n = len(self)
        if n < 2:
            return True
        h = packed_lcp_array(self)[1:]
        left_len, right_len = self.lengths[:-1], self.lengths[1:]
        # pair i is ordered iff the LCP exhausts the left string, or the
        # first differing character increases
        exhausted = h == left_len
        diverging = ~exhausted & (h < right_len)
        if not (exhausted | diverging).all():
            return False  # left string extends past the right one at the LCP
        idx = np.nonzero(diverging)[0]
        lc = self.buffer[self.offsets[:-1][idx] + h[idx]]
        rc = self.buffer[self.offsets[1:][idx] + h[idx]]
        return bool((lc < rc).all())


def as_packed(strings: Sequence[bytes]) -> PackedStringArray:
    """Coerce to :class:`PackedStringArray` (alias of ``from_strings``)."""
    return PackedStringArray.from_strings(strings)


# ---------------------------------------------------------------------------
# vectorized LCP of adjacent strings
# ---------------------------------------------------------------------------

_LCP_BLOCK = 64


def packed_lcp_array(arr: PackedStringArray) -> np.ndarray:
    """LCP array of adjacent strings (``out[0] == 0``), fully vectorized.

    The bulk of the work is one broadcasted comparison: a sliding-window
    view lifts the first ``W`` bytes of every string into an ``(n, W)``
    matrix (row-contiguous copies, no per-byte index arithmetic) and the
    first mismatch of each adjacent row pair is an ``argmax``.  Bytes read
    past a string's end belong to *later* strings in the buffer — any
    accidental match there is clipped away by the true pair limit
    ``min(len_i, len_{i+1})``, so no masking is needed.  The few pairs whose
    common prefix exceeds ``W`` continue in ``W``-byte gather blocks.
    Values are identical to :func:`repro.strings.lcp.lcp_array`.
    """
    n = len(arr)
    out = np.zeros(n, dtype=np.int64)
    if n < 2:
        return out
    off, buf, lens = arr.offsets, arr.buffer, arr.lengths
    m = np.minimum(lens[:-1], lens[1:])  # pair i compares strings i and i+1
    mmax = int(m.max())
    if buf.size == 0 or mmax == 0:
        return out
    words = (min(_LCP_BLOCK, mmax) + 7) // 8
    w = words * 8
    base = int(off[0])
    padded = np.concatenate(
        [buf[base : int(off[-1])], np.zeros(w, dtype=np.uint8)]
    )
    windows = np.lib.stride_tricks.sliding_window_view(padded, w)
    mat = windows[off[:-1] - base]  # (n, w): first w bytes of every string
    first = _first_mismatch(mat, words, w)
    k = np.minimum(first, m)

    # long-prefix tail: pairs that matched the whole window and may go on
    active = np.nonzero((first >= w) & (m > w))[0]
    cols = np.arange(w, dtype=np.int64)
    cap = buf.size - 1
    while active.size:
        ka = k[active]
        c = np.minimum(m[active] - ka, w)
        li = (off[active] + ka)[:, None] + cols[None, :]
        ri = (off[active + 1] + ka)[:, None] + cols[None, :]
        # positions past a pair's limit are masked invalid; clipping keeps the
        # gather in-bounds without affecting masked lanes
        invalid = cols[None, :] >= c[:, None]
        blk_neq = (buf[np.minimum(li, cap)] != buf[np.minimum(ri, cap)]) | invalid
        first_bad = np.where(blk_neq.any(axis=1), blk_neq.argmax(axis=1), w)
        matched = np.minimum(first_bad, c)
        new_k = ka + matched
        k[active] = new_k
        active = active[(matched == c) & (new_k < m[active])]
    out[1:] = k
    return out


def _first_mismatch(mat: np.ndarray, words: int, w: int) -> np.ndarray:
    """Per adjacent row pair of ``mat`` (an ``(n, w)`` C-contiguous ``uint8``
    matrix): index of the first differing byte, or ``w`` if the rows agree
    on the whole window.

    Rows are compared eight bytes per lane through a ``uint64`` view; the
    differing byte inside the first differing word falls out of the lowest
    set bit of the XOR (little-endian: lowest address = least significant
    byte).  Big-endian hosts take the plain byte-wise path.
    """
    n = mat.shape[0]
    if n < 2:
        return np.zeros(0, dtype=np.int64)
    if _LITTLE_ENDIAN:
        flat = np.ascontiguousarray(mat).view(np.uint64).reshape(n, words)
        neq = flat[:-1] != flat[1:]
        word = neq.argmax(axis=1)
        rows = np.arange(n - 1, dtype=np.int64)
        lanes = flat.reshape(-1)
        x = lanes[rows * words + word] ^ lanes[(rows + 1) * words + word]
        # lowest set bit isolates the first differing byte; its log2 is exact
        # in float64 because it is a power of two
        lsb = x & (np.uint64(0) - x)
        bit = np.log2(np.maximum(lsb, np.uint64(1)).astype(np.float64)).astype(np.int64)
        first = word.astype(np.int64) * 8 + bit // 8
        first[x == 0] = w  # no differing word: full-window match
        return first
    neq_bytes = mat[:-1] != mat[1:]
    first = neq_bytes.argmax(axis=1).astype(np.int64)
    first[~neq_bytes[np.arange(n - 1), first]] = w
    return first


_LITTLE_ENDIAN = sys.byteorder == "little"


# ---------------------------------------------------------------------------
# batched LCP front coding (Section V, Step 3)
# ---------------------------------------------------------------------------

def front_code(
    arr: PackedStringArray, lcps: Sequence[int]
) -> Tuple[np.ndarray, PackedStringArray]:
    """Front-code a sorted run: ``(clipped LCPs, suffix array)``.

    Mirrors :meth:`LcpCompressedBlock.encode`: the first string travels in
    full (LCP forced to 0) and every LCP is clipped to both neighbouring
    lengths.  The suffixes land in a fresh packed array whose buffer is
    exactly the characters that go on the wire.
    """
    n = len(arr)
    h = np.asarray(lcps, dtype=np.int64)
    if len(h) != n:
        raise ValueError("strings and lcps must have equal length")
    lens = arr.lengths
    if n:
        h = h.copy()
        h[0] = 0
        np.minimum(h[1:], np.minimum(lens[1:], lens[:-1]), out=h[1:])
    suf_lens = lens - h
    suf_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(suf_lens, out=suf_off[1:])
    total = int(suf_off[-1])
    starts = arr.offsets[:-1] + h
    idx = np.repeat(starts - suf_off[:-1], suf_lens) + np.arange(total, dtype=np.int64)
    return h, PackedStringArray(arr.buffer[idx], suf_off)


def _front_decode_scalar(
    h: np.ndarray, suffixes: PackedStringArray
) -> PackedStringArray:
    """Reference decoder (the original per-string loop); kept as the oracle
    the property tests pin :func:`front_decode` against."""
    strings: List[bytes] = []
    prev = b""
    for hi, suffix in zip(h.tolist(), suffixes):
        s = prev[:hi] + suffix
        strings.append(s)
        prev = s
    return PackedStringArray.from_strings(strings)


def _prev_smaller(h: np.ndarray) -> np.ndarray:
    """For each ``i``: the largest ``d < i`` with ``h[d] < h[i]`` (-1 if none).

    Vectorized pointer jumping: every row starts with candidate ``i - 1``;
    while a candidate is not strictly smaller it jumps to the candidate's own
    candidate.  The invariant "all rows strictly between ``cand(i)`` and ``i``
    have ``h >= h[i]``" is preserved by each jump, so the first candidate with
    ``h < h[i]`` is the *nearest* previous smaller value.  Converges in
    ``O(log n)`` rounds.
    """
    n = len(h)
    psv = np.arange(-1, n - 1, dtype=np.int64)
    big = np.concatenate([h, np.array([-1], dtype=np.int64)])  # big[-1] sentinel
    while True:
        active = np.nonzero(big[psv] >= h)[0]
        if not active.size:
            return psv
        psv[active] = psv[psv[active]]


def front_decode(lcps: Sequence[int], suffixes: PackedStringArray) -> PackedStringArray:
    """Reconstruct the full strings of a front-coded run, fully vectorized.

    The transmitted suffix characters are scattered into the output buffer
    by one cumulative-offset gather.  The copied prefixes are resolved over
    the contiguous buffer without any per-string Python work: the byte at
    column ``c`` of string ``i`` was last *transmitted* by the nearest
    earlier string ``d`` whose LCP satisfies ``h[d] <= c`` — and for fixed
    ``i`` those donors are exactly ``i``'s previous-smaller-value chain over
    the LCP array.  Row ``i`` therefore copies the column range
    ``[h[psv(i)], h[i])`` from ``psv(i)``'s suffix, the range
    ``[h[psv²(i)], h[psv(i)])`` from ``psv²(i)``'s suffix, and so on down to
    column 0; the chains for *all* rows are emitted together, one vectorized
    gather/scatter per chain level (``max`` chain depth rounds, 1 for
    all-equal runs).  Every output byte is written exactly once and all
    source ranges lie in the transmitted suffix data, so no ordering or
    clipping is needed.  Bit-identical to :func:`_front_decode_scalar`.
    """
    n = len(suffixes)
    h = np.asarray(lcps, dtype=np.int64)
    if len(h) != n:
        raise ValueError("lcps and suffixes must have equal length")
    suf_lens = suffixes.lengths
    out_lens = h + suf_lens
    if n:
        if h[0] > 0 or (n > 1 and bool((h[1:] > out_lens[:-1]).any())):
            bad = 0 if h[0] > 0 else int(np.nonzero(h[1:] > out_lens[:-1])[0][0]) + 1
            raise ValueError(
                f"corrupt LCP-compressed block: LCP {int(h[bad])} exceeds the "
                f"previous string's length {int(out_lens[bad - 1]) if bad else 0}"
            )

    out_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_lens, out=out_off[1:])
    out_buf = np.empty(int(out_off[-1]), dtype=np.uint8)

    # 1) scatter every transmitted suffix byte to its final position
    soff = suffixes.offsets
    sdata = suffixes.buffer[int(soff[0]) : int(soff[-1])]
    sstart = (soff[:-1] - soff[0]).astype(np.int64)
    if sdata.size:
        dst = np.repeat(out_off[:-1] + h - sstart, suf_lens)
        out_buf[dst + np.arange(sdata.size, dtype=np.int64)] = sdata

    # 2) resolve the copied prefixes along the previous-smaller-value chains
    if n and h.size and int(h.max()) > 0:
        psv = _prev_smaller(h)
        rows_acc: List[np.ndarray] = []
        donor_acc: List[np.ndarray] = []
        lo_acc: List[np.ndarray] = []
        hi_acc: List[np.ndarray] = []
        active = np.nonzero(h > 0)[0]
        cur = psv[active]
        hi = h[active]
        while active.size:
            lo = h[cur]
            rows_acc.append(active)
            donor_acc.append(cur)
            lo_acc.append(lo)
            hi_acc.append(hi)
            keep = lo > 0
            active = active[keep]
            cur = psv[cur[keep]]
            hi = lo[keep]
        rows = np.concatenate(rows_acc)
        donor = np.concatenate(donor_acc)
        lo = np.concatenate(lo_acc)
        hi = np.concatenate(hi_acc)
        seg = hi - lo
        total = int(seg.sum())
        within = np.arange(total, dtype=np.int64)
        starts = np.zeros(len(seg), dtype=np.int64)
        np.cumsum(seg[:-1], out=starts[1:])
        within -= np.repeat(starts, seg)
        # donor d transmitted columns [h[d], out_lens[d]); the chain structure
        # guarantees [lo, hi) lies inside that range, so the source bytes are
        # already present in the transmitted suffix data
        out_buf[np.repeat(out_off[rows] + lo, seg) + within] = sdata[
            np.repeat(sstart[donor] + lo - h[donor], seg) + within
        ]
    return PackedStringArray(out_buf, out_off)


# ---------------------------------------------------------------------------
# fixed-width key views, partition, sorting
# ---------------------------------------------------------------------------

def fixed_width_keys(arr: PackedStringArray, width: int) -> np.ndarray:
    """``|S{width}`` key array: every string truncated to ``width`` bytes and
    NUL-padded.  With a NUL-free input this ordering equals ``bytes`` order
    on the truncated strings (padding NULs compare below every character)."""
    if width <= 0:
        raise ValueError("width must be positive")
    n = len(arr)
    off = arr.offsets
    base = int(off[0])
    padded = np.concatenate(
        [arr.buffer[base : int(off[-1])], np.zeros(width, dtype=np.uint8)]
    )
    windows = np.lib.stride_tricks.sliding_window_view(padded, width)
    mat = windows[off[:-1] - base].copy()  # (n, width) row-contiguous copies
    # NUL-pad past each string's end (the window read runs into the
    # following strings' bytes, which would corrupt the ordering)
    mask = np.arange(width, dtype=np.int64)[None, :] >= arr.lengths[:, None]
    mat[mask] = 0
    return mat.reshape(-1).view(f"S{width}")


def _fixed_width_ok(arr: PackedStringArray, width: int) -> bool:
    return (
        0 < width <= _MAX_FIXED_WIDTH
        and len(arr) * width <= _MAX_FIXED_BYTES
        and not arr.has_zero_byte()
    )


def packed_bucket_boundaries(
    arr: PackedStringArray, splitters: Sequence[bytes]
) -> List[int]:
    """Cumulative bucket boundaries of a *sorted* packed run.

    Identical to :func:`repro.dist.partition.bucket_boundaries` (ties with a
    splitter go to the lower bucket).  With many splitters the boundaries
    come out of one ``np.searchsorted`` over a fixed-width key view —
    truncating every string to ``max splitter length + 1`` bytes is exact: a
    string beats a splitter either within the splitter's length or by being
    longer, and one extra column preserves the "longer" case.  With only a
    handful of splitters (or NUL bytes in play) building the key matrix
    costs more than ``p log n`` bisections, so the bisect path runs instead.
    """
    for i in range(1, len(splitters)):
        if splitters[i - 1] > splitters[i]:
            raise ValueError("splitters must be sorted")
    n = len(arr)
    if not splitters:
        return [0, n]
    width = max(len(f) for f in splitters) + 1
    if (
        n
        and len(splitters) * 64 >= n  # key matrix amortised over many probes
        and _fixed_width_ok(arr, width)
        and not any(b"\x00" in f for f in splitters)
    ):
        keys = fixed_width_keys(arr, width)
        fs = np.array(list(splitters), dtype=f"S{width}")
        bounds = np.searchsorted(keys, fs, side="right")
        return [0] + bounds.tolist() + [n]
    # scalar fallback (NUL bytes or oversized keys): bisect over the view
    from bisect import bisect_right

    bounds = [0]
    for f in splitters:
        bounds.append(bisect_right(arr, f, lo=bounds[-1]))
    bounds.append(n)
    return bounds


def packed_argsort(arr: PackedStringArray) -> np.ndarray:
    """Stable argsort in lexicographic ``bytes`` order."""
    n = len(arr)
    if n < 2:
        return np.arange(n, dtype=np.int64)
    width = arr.max_len
    if width == 0:
        return np.arange(n, dtype=np.int64)
    if _fixed_width_ok(arr, width):
        return np.argsort(fixed_width_keys(arr, width), kind="stable").astype(np.int64)
    data = arr.to_list()
    return np.asarray(sorted(range(n), key=data.__getitem__), dtype=np.int64)


def take(arr: PackedStringArray, order: np.ndarray) -> PackedStringArray:
    """New packed array with strings reordered by ``order`` (a gather)."""
    order = np.asarray(order, dtype=np.int64)
    lens = arr.lengths[order]
    off = np.zeros(len(order) + 1, dtype=np.int64)
    np.cumsum(lens, out=off[1:])
    total = int(off[-1])
    idx = np.repeat(arr.offsets[:-1][order] - off[:-1], lens) + np.arange(
        total, dtype=np.int64
    )
    return PackedStringArray(arr.buffer[idx], off)


def packed_sort(arr: PackedStringArray) -> PackedStringArray:
    """Lexicographically sorted copy of ``arr``."""
    return take(arr, packed_argsort(arr))


def truncate(arr: PackedStringArray, max_lens: Sequence[int]) -> PackedStringArray:
    """Per-string prefix truncation: string ``i`` becomes ``s_i[:max_lens[i]]``.

    PDMS uses this to build its approximate distinguishing prefixes without
    materialising ``n`` sliced ``bytes`` objects.
    """
    limits = np.asarray(max_lens, dtype=np.int64)
    if len(limits) != len(arr):
        raise ValueError("max_lens must have one entry per string")
    t = np.minimum(arr.lengths, np.maximum(limits, 0))
    toff = np.zeros(len(arr) + 1, dtype=np.int64)
    np.cumsum(t, out=toff[1:])
    total = int(toff[-1])
    idx = np.repeat(arr.offsets[:-1] - toff[:-1], t) + np.arange(total, dtype=np.int64)
    return PackedStringArray(arr.buffer[idx], toff)
