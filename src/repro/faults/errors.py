"""Typed fault errors raised by the detection and recovery layers.

Every error the fault subsystem can surface derives from :class:`FaultError`,
so callers can catch the whole family with one ``except`` while tests pin
the exact failure mode.  When a fault aborts an SPMD run, the engine wraps
the typed error in :class:`repro.mpi.engine.SpmdError` exactly like any
other rank failure — the typed original rides along as ``__cause__``.
"""

from __future__ import annotations

__all__ = ["FaultError", "CorruptFrameError", "LostMessageError", "RankCrashError"]


class FaultError(RuntimeError):
    """Base class of every typed fault raised by detection or recovery."""


class CorruptFrameError(FaultError):
    """A frame failed its CRC32 verification (at decode or at delivery).

    Raised by the sealed wire formats (:class:`repro.dist.exchange.StringBlock`,
    :class:`repro.dist.exchange.LcpCompressedBlock`,
    :class:`repro.net.router.RouteFrame`) when a checksum mismatch is found,
    and by the point-to-point recovery layer when a message stayed corrupt
    after the retransmit budget was exhausted.
    """


class LostMessageError(FaultError):
    """A message could not be recovered within the retransmit budget.

    Raised by the point-to-point recovery layer when a sequence-number gap
    persists after the bounded backoff-and-retransmit protocol gave up.
    """


class RankCrashError(FaultError):
    """A simulated PE crashed (a ``crash`` rule of a fault plan fired)."""
