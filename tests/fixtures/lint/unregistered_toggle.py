"""Seeded bug: a ``REPRO_*`` environment read with no registry entry.

``REPRO_TURBO`` is read here but declared nowhere in
``repro.analysis.toggles.REGISTRY``.  Expected finding:
``toggle-unregistered``.
"""

import os

_TURBO = os.environ.get("REPRO_TURBO", "0").strip() == "1"


def turbo_enabled():
    return _TURBO
