"""Tests for the distinguishing-prefix approximation (Step 1+epsilon, Theorem 6)."""

import pytest

from repro.dist.prefix_doubling import approximate_dist_prefixes
from repro.mpi import run_spmd
from repro.strings.generators import dn_instance, duplicate_heavy, random_strings, suffix_instance
from repro.strings.lcp import distinguishing_prefixes


def _run(blocks, **kwargs):
    def prog(comm, strings):
        return approximate_dist_prefixes(comm, strings, **kwargs)

    results, report = run_spmd(len(blocks), prog, args_per_rank=[(b,) for b in blocks])
    return results, report


def _blocks(strings, p):
    n = len(strings)
    return [strings[r * n // p : (r + 1) * n // p] for r in range(p)]


class TestCorrectness:
    """The central safety property: approx >= true DIST for every string."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_never_underestimates_random(self, p):
        strings = random_strings(400, 1, 20, alphabet_size=4, seed=p)
        blocks = _blocks(strings, p)
        results, _ = _run(blocks)
        flat_lengths = [x for r in results for x in r.lengths]
        true = distinguishing_prefixes(strings)
        for approx, exact in zip(flat_lengths, true):
            assert approx >= exact

    def test_never_underestimates_dn_instance(self):
        strings = dn_instance(300, 0.5, length=60, seed=1)
        blocks = _blocks(strings, 4)
        results, _ = _run(blocks)
        flat = [x for r in results for x in r.lengths]
        true = distinguishing_prefixes(strings)
        assert all(a >= t for a, t in zip(flat, true))

    def test_never_underestimates_duplicates(self):
        strings = duplicate_heavy(300, 12, 10, seed=2)
        blocks = _blocks(strings, 3)
        results, _ = _run(blocks)
        flat = [x for r in results for x in r.lengths]
        true = distinguishing_prefixes(strings)
        assert all(a >= t for a, t in zip(flat, true))

    def test_exact_duplicates_get_full_length(self):
        strings = [b"clone"] * 20 + [b"unique-string"]
        blocks = _blocks(strings, 2)
        results, _ = _run(blocks)
        flat = [x for r in results for x in r.lengths]
        for s, d in zip([s for b in blocks for s in b], flat):
            if s == b"clone":
                assert d == len(b"clone")

    def test_lengths_never_exceed_string_length(self):
        strings = random_strings(200, 0, 15, seed=3)
        blocks = _blocks(strings, 4)
        results, _ = _run(blocks)
        for block, res in zip(blocks, results):
            for s, d in zip(block, res.lengths):
                assert d <= len(s)

    def test_empty_strings(self):
        strings = [b"", b"", b"a"]
        results, _ = _run(_blocks(strings, 2))
        flat = [x for r in results for x in r.lengths]
        assert flat[:2] == [0, 0]


class TestApproximationQuality:
    def test_overestimate_bounded_by_growth_factor(self):
        """With doubling, the result is < 2x the true DIST (plus the start guess)."""
        strings = dn_instance(400, 0.3, length=80, seed=4)
        blocks = _blocks(strings, 4)
        results, _ = _run(blocks, epsilon=1.0)
        flat = [x for r in results for x in r.lengths]
        true = distinguishing_prefixes(strings)
        for approx, exact, s in zip(flat, true, [s for b in blocks for s in b]):
            assert approx <= min(len(s), max(2 * exact, 16))

    def test_smaller_epsilon_tightens_the_estimate(self):
        strings = suffix_instance(text_len=600, alphabet_size=3, max_suffix_len=300, seed=5)
        blocks = _blocks(strings, 4)
        coarse, _ = _run(blocks, epsilon=3.0)
        fine, _ = _run(blocks, epsilon=0.25)
        total_coarse = sum(x for r in coarse for x in r.lengths)
        total_fine = sum(x for r in fine for x in r.lengths)
        assert total_fine <= total_coarse

    def test_epsilon_must_be_positive(self):
        from repro.mpi import SpmdError

        with pytest.raises(SpmdError):
            _run(_blocks([b"a", b"b"], 2), epsilon=0.0)


class TestProtocolBehaviour:
    def test_round_counts_grow_logarithmically(self):
        strings = dn_instance(200, 0.8, length=128, seed=6)
        blocks = _blocks(strings, 4)
        results, _ = _run(blocks, initial_length=2, epsilon=1.0)
        # distinguishing prefixes are ~100 chars; doubling from 2 needs ~6-7
        # rounds, far below the 64-round safety bound
        assert 3 <= results[0].rounds <= 12
        assert all(r.rounds == results[0].rounds for r in results)

    def test_round_active_counts_decrease(self):
        strings = random_strings(500, 5, 30, alphabet_size=4, seed=7)
        blocks = _blocks(strings, 4)
        results, _ = _run(blocks)
        counts = results[0].round_active_counts
        assert counts == sorted(counts, reverse=True)

    def test_golomb_flag_reduces_traffic(self):
        strings = random_strings(1500, 10, 40, alphabet_size=4, seed=8)
        blocks = _blocks(strings, 4)
        _, plain = _run(blocks, golomb=False)
        _, packed = _run(blocks, golomb=True)
        assert packed.total_bytes_sent < plain.total_bytes_sent

    def test_fingerprints_sent_counted(self):
        strings = random_strings(100, 5, 10, seed=9)
        blocks = _blocks(strings, 2)
        results, _ = _run(blocks)
        assert all(r.fingerprints_sent >= len(b) for r, b in zip(results, blocks))

    def test_single_pe_degenerates_gracefully(self):
        strings = random_strings(100, 1, 10, seed=10)
        results, report = _run([strings])
        assert len(results[0].lengths) == 100
        true = distinguishing_prefixes(strings)
        assert all(a >= t for a, t in zip(results[0].lengths, true))
