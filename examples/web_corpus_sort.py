#!/usr/bin/env python3
"""Sorting a web-crawl-like corpus (the COMMONCRAWL scenario of Figure 5, left).

The paper's motivating workload: lines of web-page text dumps with long
shared prefixes and many exact duplicates (boiler-plate/markup).  This
example

1. generates a COMMONCRAWL-like corpus and reports its D/N statistics,
2. runs the strong-scaling sweep of Figure 5 (left) at a reduced scale,
3. prints the two panels of the figure — modelled running time and bytes
   sent per string — as text tables.

Run with::

    python examples/web_corpus_sort.py [num_strings]
"""

from __future__ import annotations

import pathlib
import sys

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import ExperimentRunner, strong_scaling_commoncrawl
from repro.net import DEFAULT_MACHINE
from repro.strings import commoncrawl_like, dn_ratio, merge_lcp_statistics


def main() -> None:
    num_strings = int(sys.argv[1]) if len(sys.argv) > 1 else 6000

    corpus = commoncrawl_like(num_strings, seed=7)
    mean_lcp, lcp_frac = merge_lcp_statistics(corpus)
    print(
        f"corpus: {len(corpus)} lines, {sum(len(s) for s in corpus)} characters, "
        f"D/N = {dn_ratio(corpus):.2f}, mean LCP = {mean_lcp:.1f} "
        f"({100 * lcp_frac:.0f}% of a line)"
    )
    print("paper's COMMONCRAWL: D/N = 0.68, mean LCP = 23.9 (60% of a line)\n")

    # Every simulated string stands for many real ones; scale the machine
    # model accordingly so the time panel sits in the paper's
    # bandwidth-dominated regime (see EXPERIMENTS.md).
    scale = 82e9 / max(1, sum(len(s) for s in corpus))
    machine = DEFAULT_MACHINE.with_data_scale(scale)
    runner = ExperimentRunner(machine=machine, check=False, seed=7)

    result = strong_scaling_commoncrawl(
        num_strings=num_strings, pe_counts=(2, 4, 8, 16), runner=runner, seed=7
    )

    print(result.render("bytes_per_string"))
    print()
    print(result.render("modeled_time"))
    print()
    print(result.render("imbalance"))


if __name__ == "__main__":
    main()
