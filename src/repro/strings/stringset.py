"""String containers used throughout the library.

The paper (Section II) models the input as an array ``S = [s0, ..., s_{n-1}]``
of ``n`` strings with total length ``N``.  Strings are sequences of characters
over an alphabet of size ``sigma`` terminated by a character 0 that is outside
the alphabet.  String arrays are represented as arrays of pointers so that
entire strings can be moved in constant time; in Python we get the same
property for free because a list of ``bytes`` objects only moves references.

:class:`StringSet` wraps a list of ``bytes`` and caches the aggregate
statistics from Table I of the paper (``n``, ``N``, ``sigma``, ``l_hat`` ...),
which the partitioning code and the benchmark harness need repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from .packed import PackedStringArray, packed_sort

__all__ = [
    "StringSet",
    "concat_size",
    "effective_alphabet",
    "max_length",
    "validate_strings",
]


def concat_size(strings: Sequence[bytes]) -> int:
    """Total number of characters ``N`` of a string array (excluding terminators)."""
    return sum(len(s) for s in strings)


def max_length(strings: Sequence[bytes]) -> int:
    """Length ``l_hat`` of the longest string, 0 for an empty set."""
    return max((len(s) for s in strings), default=0)


def effective_alphabet(strings: Sequence[bytes]) -> int:
    """Number of distinct byte values appearing in the input (``sigma``)."""
    seen = set()
    for s in strings:
        seen.update(s)
    return len(seen)


def validate_strings(strings: Iterable[object]) -> List[bytes]:
    """Coerce an iterable of ``str``/``bytes`` into a list of ``bytes``.

    ``str`` values are encoded as UTF-8.  Any other type raises ``TypeError``
    so that errors surface at the API boundary instead of deep inside a
    sorting routine.
    """
    out: List[bytes] = []
    for s in strings:
        if isinstance(s, bytes):
            out.append(s)
        elif isinstance(s, bytearray):
            out.append(bytes(s))
        elif isinstance(s, str):
            out.append(s.encode("utf-8"))
        else:
            raise TypeError(
                f"strings must be bytes or str, got {type(s).__name__!r}"
            )
    return out


@dataclass
class StringSet:
    """A set (array) of strings together with cached Table-I statistics.

    Parameters
    ----------
    strings:
        The underlying list of byte strings.  The list is *not* copied; the
        caller hands over ownership.

    Notes
    -----
    The container is deliberately thin: the distributed algorithms work on
    plain ``list[bytes]`` per PE for speed, and use :class:`StringSet` at API
    boundaries and in the benchmark harness where the cached statistics
    (``num_chars``, ``max_len`` ...) are needed.
    """

    strings: List[bytes]

    def __post_init__(self) -> None:
        packed: Optional[PackedStringArray] = None
        if isinstance(self.strings, PackedStringArray):
            # packed boundary: adopt the buffer for the vectorized paths and
            # materialise the list view once for the list-level APIs
            packed = self.strings
            self.strings = packed.to_list()
        else:
            self.strings = validate_strings(self.strings)
        self._num_chars: int | None = None
        self._max_len: int | None = None
        self._alphabet: int | None = None
        self._packed: Optional[PackedStringArray] = packed
        self._sorted_packed: Optional[PackedStringArray] = None

    # -- basic container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.strings)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.strings)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return StringSet(self.strings[idx])
        return self.strings[idx]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StringSet):
            return self.strings == other.strings
        if isinstance(other, list):
            return self.strings == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(s) for s in self.strings[:4])
        more = "" if len(self) <= 4 else f", ... ({len(self)} strings)"
        return f"StringSet([{preview}{more}])"

    # -- statistics from Table I --------------------------------------------------
    @property
    def num_strings(self) -> int:
        """``n`` — number of strings."""
        return len(self.strings)

    @property
    def num_chars(self) -> int:
        """``N`` — total number of characters."""
        if self._num_chars is None:
            if self._packed is not None:
                self._num_chars = self._packed.num_chars
            else:
                self._num_chars = concat_size(self.strings)
        return self._num_chars

    @property
    def max_len(self) -> int:
        """``l_hat`` — length of the longest string."""
        if self._max_len is None:
            if self._packed is not None:
                self._max_len = self._packed.max_len
            else:
                self._max_len = max_length(self.strings)
        return self._max_len

    @property
    def alphabet_size(self) -> int:
        """``sigma`` — number of distinct characters present in the input."""
        if self._alphabet is None:
            self._alphabet = effective_alphabet(self.strings)
        return self._alphabet

    @property
    def average_length(self) -> float:
        """Average string length ``N / n`` (0 for an empty set)."""
        if not self.strings:
            return 0.0
        return self.num_chars / len(self.strings)

    # -- packed representation ------------------------------------------------------
    def packed(self) -> PackedStringArray:
        """The packed (contiguous buffer + offsets) view of this set, cached."""
        if self._packed is None:
            self._packed = PackedStringArray.from_strings(self.strings)
        return self._packed

    def sorted_packed(self) -> PackedStringArray:
        """Lexicographically sorted packed copy, computed once and cached.

        :func:`repro.strings.lcp.merge_lcp_statistics` and
        :func:`repro.strings.lcp.distinguishing_prefix_size` use this hook so
        that the bench harness can ask for input statistics repeatedly
        without re-sorting the full corpus on every call.
        """
        if self._sorted_packed is None:
            self._sorted_packed = packed_sort(self.packed())
        return self._sorted_packed

    # -- operations ----------------------------------------------------------------
    def sorted(self) -> "StringSet":
        """Return a new, lexicographically sorted :class:`StringSet`."""
        return StringSet(sorted(self.strings))

    def is_sorted(self) -> bool:
        """``True`` iff the strings are in non-decreasing lexicographic order."""
        ss = self.strings
        return all(ss[i - 1] <= ss[i] for i in range(1, len(ss)))

    def split_round_robin(self, parts: int) -> List["StringSet"]:
        """Deal strings round-robin into ``parts`` sets (used by tests)."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        buckets: List[List[bytes]] = [[] for _ in range(parts)]
        for i, s in enumerate(self.strings):
            buckets[i % parts].append(s)
        return [StringSet(b) for b in buckets]

    def split_blocks(self, parts: int) -> List["StringSet"]:
        """Split into ``parts`` contiguous blocks of (nearly) equal string count."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        n = len(self.strings)
        out: List[StringSet] = []
        for i in range(parts):
            lo = i * n // parts
            hi = (i + 1) * n // parts
            out.append(StringSet(self.strings[lo:hi]))
        return out

    def split_by_chars(self, parts: int) -> List["StringSet"]:
        """Split into ``parts`` contiguous blocks balancing *characters*.

        This mirrors how the paper distributes the COMMONCRAWL and DNAREADS
        inputs over PEs ("split such that each PE gets about the same number
        of characters", Section VII-A).
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        total = self.num_chars
        target = total / parts if parts else 0
        out: List[List[bytes]] = [[] for _ in range(parts)]
        acc = 0
        part = 0
        for s in self.strings:
            # move to the next part once the running total passes the boundary,
            # but never beyond the last part
            while part < parts - 1 and acc >= (part + 1) * target:
                part += 1
            out[part].append(s)
            acc += len(s)
        return [StringSet(b) for b in out]

    def concat(self, other: "StringSet") -> "StringSet":
        """Concatenation of two string sets."""
        return StringSet(self.strings + other.strings)
