"""Seeded bug: a sealed wire block decoded without verifying its seal.

The class carries a content CRC and a ``_verify_seal`` method, but its
``decode`` never calls it — corrupt frames decode silently when fault
rules flip bytes in flight.  Expected finding: ``wire-unverified-decode``.
"""

import zlib


class SealedBlock:
    def __init__(self, blob, crc):
        self.blob = blob
        self.content_crc = crc

    def _verify_seal(self):
        if zlib.crc32(self.blob) != self.content_crc:
            raise ValueError("seal mismatch")

    def decode(self):
        return self.blob.split(b"\x00")
