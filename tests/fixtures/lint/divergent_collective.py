"""Seeded bug: collective sequence diverges across a rank-dependent branch.

The root rank issues ``gather`` + ``bcast`` while every other rank only
issues ``gather`` — the non-root ranks never enter the broadcast and the
program deadlocks.  Expected finding: ``spmd-divergent-collective``.
"""


def divergent_reduce(comm, local):
    total = comm.allreduce(len(local))
    if comm.rank == 0:
        gathered = comm.gather(local, root=0)
        comm.bcast(len(gathered), root=0)
    else:
        comm.gather(local, root=0)
    return total
