"""The ``Communicator`` interface of the simulated distributed machine.

The interface is a deliberately small subset of MPI, modelled on mpi4py's
lower-case (pickle-based) API because the distributed string sorting
algorithms only need

* point-to-point ``send`` / ``recv`` / ``sendrecv``,
* ``barrier``,
* rooted collectives ``bcast``, ``gather``, ``scatter``, ``reduce``,
* symmetric collectives ``allgather``, ``allreduce``, ``alltoall`` (the
  personalised, "v" flavour: one Python object per destination).

Algorithms are written as ordinary per-rank functions receiving a
``Communicator`` — the same SPMD style an mpi4py program would use — so a
future port to real MPI only has to swap the communicator implementation.

Every operation takes the actual payload *and* reports wire sizes to the
:class:`repro.net.metrics.TrafficMeter`, which is how the benchmark harness
obtains the exact "bytes sent per string" numbers of Figures 4 and 5.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["Communicator", "ReduceOp", "Request", "waitall", "waitany"]


class Request:
    """Handle for a non-blocking operation (:meth:`Communicator.isend`/``irecv``).

    Mirrors MPI's request objects: :meth:`test` polls for completion without
    blocking, :meth:`wait` blocks until the operation finishes and returns the
    received object (``None`` for sends).  Use :func:`waitall` / :func:`waitany`
    to drive several outstanding requests, e.g. a split-phase exchange that
    consumes buckets in arrival order.
    """

    def test(self) -> bool:
        """Poll for completion; ``True`` once the operation has finished."""
        raise NotImplementedError

    def wait(self) -> Any:
        """Block until completion; returns the payload (``None`` for sends)."""
        raise NotImplementedError

    @property
    def done(self) -> bool:
        """Whether the operation has already completed (never blocks)."""
        return self.test()


def waitall(requests: Sequence[Request]) -> List[Any]:
    """Wait for every request; returns their payloads in request order."""
    return [r.wait() for r in requests]


def waitany(requests: Sequence[Request], poll_interval: float = 0.0005) -> int:
    """Block until at least one request completes; returns its index.

    Completed requests are reported before any polling sleep happens, so a
    caller repeatedly removing finished requests drains them in arrival
    order.  Raises ``ValueError`` on an empty sequence (nothing can ever
    complete).  Backend-specific failure detection lives in ``test`` — the
    thread engine's requests raise :class:`repro.mpi.engine.SpmdError` from
    there when the run is aborted or the deadlock timeout expires.
    """
    if not requests:
        raise ValueError("waitany needs at least one request")
    while True:
        for i, r in enumerate(requests):
            if r.test():
                return i
        time.sleep(poll_interval)


class ReduceOp:
    """Named reduction operators for :meth:`Communicator.reduce`/``allreduce``."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"

    _FUNCS = {
        "sum": lambda xs: sum(xs),
        "min": lambda xs: min(xs),
        "max": lambda xs: max(xs),
    }

    @classmethod
    def apply(cls, op: str, values: Sequence[Any]) -> Any:
        """Reduce ``values`` with named op ``op`` (or a custom callable)."""
        if callable(op):
            # custom associative reduction function over the list of values
            return op(values)
        try:
            return cls._FUNCS[op](values)
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None


class Communicator:
    """Abstract SPMD communicator; see the module docstring for the contract.

    Subclasses must implement the ``_impl``-suffixed primitives; the public
    methods add argument validation and traffic accounting hooks shared by
    all backends.
    """

    # subclasses set these in __init__
    rank: int
    size: int

    # ------------------------------------------------------------------ identity
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} rank={self.rank} size={self.size}>"

    # ------------------------------------------------------------------ phases & work
    @contextmanager
    def phase(self, name: str):
        """Label all traffic issued inside the ``with`` block with ``name``."""
        previous = self.get_phase()
        self.set_phase(name)
        try:
            yield
        finally:
            self.set_phase(previous)

    def set_phase(self, name: str) -> None:  # pragma: no cover - trivial default
        """Set the current accounting phase (optional for backends)."""

    def get_phase(self) -> str:  # pragma: no cover - trivial default
        """The current accounting phase label."""
        return "unlabelled"

    def record_local_work(self, chars: int, items: int = 0) -> None:
        """Report local character/string work for the modelled running time."""

    def record_overlap(self, overlapped: float, window: float) -> None:
        """Report communication/computation overlap for the current phase.

        ``overlapped`` is the wall-clock time this rank spent computing while
        at least one non-blocking receive was outstanding; ``window`` is the
        duration of the whole split-phase operation.  Backends without a
        meter may ignore the call.
        """

    def record_exchange_collective(
        self,
        nbytes: int,
        overlap_fraction: float = 0.0,
        hypercube: bool = False,
        kind: Optional[str] = None,
    ) -> None:
        """Record a split-phase all-to-all as one collective cost-model event.

        Every rank passes the total bytes it sent to *other* ranks (the
        **origin** volume — routed deliveries account their forwarding
        overhead separately, see :meth:`record_route`); the backend agrees
        on the bottleneck volume (and the mean overlap fraction) and records
        a single event, exactly mirroring what the blocking
        :meth:`alltoall` records — so the modelled time of a split-phase
        exchange differs from the blocking one only by the overlap credit.
        ``kind`` names the event explicitly (``"alltoall-hypercube"``,
        ``"alltoall-grid"``, ...); without it the legacy ``hypercube`` flag
        picks between the two historical kinds.  Must be called by all
        ranks at the same program point (it may synchronise internally).
        """

    def record_route(self, route: str, nbytes: int, forwarded: int) -> None:
        """Attribute one routed-delivery batch this rank sent.

        ``nbytes`` is the batch's full wire size (the send itself is
        recorded separately — this is attribution, not double counting) and
        ``forwarded`` the routing-overhead part: relayed payloads plus
        frame headers.  ``route`` labels the routing phase.  Backends
        without a meter may ignore the call.
        """

    # ------------------------------------------------------------------ point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> None:
        """Send ``obj`` to rank ``dest``.

        ``nbytes`` overrides the wire-size estimate (used when the payload is
        an already-accounted composite).
        """
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next message from ``source`` with matching ``tag``."""
        raise NotImplementedError

    def sendrecv(
        self,
        obj: Any,
        peer: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Any:
        """Exchange messages with ``peer`` (both sides must call this)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ non-blocking
    def isend(
        self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None
    ) -> Request:
        """Non-blocking send; returns a :class:`Request`.

        Wire bytes are accounted immediately (the paper's volume metric does
        not depend on when the transfer completes).  The message is only
        guaranteed delivered once the request's :meth:`Request.wait` (or a
        matching ``waitall``) has returned.
        """
        raise NotImplementedError

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; ``Request.wait()`` yields the payload.

        Multiple outstanding receives from the same source are matched in
        posting order, as MPI requires, regardless of the order their
        ``test``/``wait`` methods are driven in.
        """
        raise NotImplementedError

    @staticmethod
    def waitall(requests: Sequence[Request]) -> List[Any]:
        """Convenience alias for :func:`waitall` (request-order payloads)."""
        return waitall(requests)

    @staticmethod
    def waitany(requests: Sequence[Request]) -> int:
        """Convenience alias for :func:`waitany` (index of a finished request)."""
        return waitany(requests)

    # ------------------------------------------------------------------ collectives
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Any:
        """Broadcast ``root``'s object to all ranks; returns it everywhere."""
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (rank order); None elsewhere."""
        raise NotImplementedError

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Deal ``root``'s per-rank objects out; returns this rank's share."""
        raise NotImplementedError

    def allgather(self, obj: Any, nbytes: Optional[int] = None) -> List[Any]:
        """Gather one object per rank at *every* rank (rank order)."""
        raise NotImplementedError

    def alltoall(
        self, objs: Sequence[Any], nbytes: Optional[Sequence[int]] = None,
        hypercube: bool = False,
    ) -> List[Any]:
        """Personalised all-to-all: ``objs[d]`` goes to rank ``d``.

        ``hypercube=True`` only changes the *cost accounting* (latency
        ``alpha log p`` at the price of a ``log p`` volume factor, see
        Theorem 6's discussion); delivery semantics are identical.
        """
        raise NotImplementedError

    def reduce(self, value: Any, op: str = ReduceOp.SUM, root: int = 0) -> Any:
        """Reduce per-rank values with ``op`` at ``root``; None elsewhere."""
        raise NotImplementedError

    def allreduce(self, value: Any, op: str = ReduceOp.SUM) -> Any:
        """Reduce per-rank values with ``op``; every rank gets the result."""
        raise NotImplementedError

    # ------------------------------------------------------------------ conveniences
    def is_root(self, root: int = 0) -> bool:
        """Whether this rank is ``root``."""
        return self.rank == root

    def other_ranks(self) -> List[int]:
        """Every rank except this one, in rank order."""
        return [r for r in range(self.size) if r != self.rank]


RankFunction = Callable[..., Any]
