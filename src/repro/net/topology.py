"""Hypercube and grid topology helpers (Sections II and IV).

``hQuick`` logically arranges ``2^d`` PEs (with ``d = floor(log2 p)``) as a
``d``-dimensional hypercube and works on shrinking subcubes; the routed
multi-level all-to-all of :mod:`repro.net.router` reuses the same rank
arithmetic and adds a two-level ``r x c`` grid factorisation.  The helpers
here are pure functions on rank numbers so they can be unit-tested without a
running communicator.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "hypercube_dimension",
    "hypercube_size",
    "partner",
    "subcube_members",
    "subcube_root",
    "in_upper_half",
    "is_power_of_two",
    "grid_dims",
]


def hypercube_dimension(num_pes: int) -> int:
    """``d = floor(log2(num_pes))`` — the dimension hQuick actually uses."""
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    d = 0
    while (1 << (d + 1)) <= num_pes:
        d += 1
    return d


def hypercube_size(num_pes: int) -> int:
    """``2^d`` — number of PEs that participate in hQuick."""
    return 1 << hypercube_dimension(num_pes)


def partner(rank: int, dim: int) -> int:
    """Rank of the neighbour across hypercube dimension ``dim``."""
    return rank ^ (1 << dim)


def in_upper_half(rank: int, dim: int) -> bool:
    """True if ``rank`` lies in the upper half of dimension ``dim``."""
    return bool(rank & (1 << dim))


def subcube_members(rank: int, dim: int) -> List[int]:
    """All ranks in the ``dim``-dimensional subcube containing ``rank``.

    The subcube is defined by fixing the high bits of ``rank`` above ``dim``
    and letting the low ``dim`` bits vary.
    """
    base = rank & ~((1 << dim) - 1)
    return [base | low for low in range(1 << dim)]


def subcube_root(rank: int, dim: int) -> int:
    """Smallest rank of the ``dim``-dimensional subcube containing ``rank``."""
    return rank & ~((1 << dim) - 1)


def is_power_of_two(num_pes: int) -> bool:
    """Whether ``num_pes`` is an exact power of two (hypercube routing needs it)."""
    return num_pes > 0 and num_pes & (num_pes - 1) == 0


def grid_dims(num_pes: int) -> Tuple[int, int]:
    """The ``(rows, cols)`` factorisation used by the two-level grid all-to-all.

    ``rows`` is the largest divisor of ``num_pes`` not exceeding
    ``sqrt(num_pes)``, so the grid is as square as the factorisation allows
    and ``rows <= cols`` always holds.  Prime ``num_pes`` degenerates to a
    ``1 x p`` grid, whose row phase *is* direct delivery (the documented
    fallback of :class:`repro.net.router.GridTopology`).
    """
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    rows = int(num_pes ** 0.5)
    while rows > 1 and num_pes % rows:
        rows -= 1
    return rows, num_pes // rows
