"""Simulated MPI: communicator interface, wire-size accounting, SPMD engines."""

from .comm import Communicator, ReduceOp, Request, waitall, waitany
from .engine import (
    SpmdError,
    ThreadComm,
    ThreadEngine,
    get_engine,
    register_engine,
    resolve_engine_name,
    run_spmd,
)
from .procengine import ProcessEngine, process_engine_available
from .serialization import wire_size, varint_size, WireSized

# the multiprocessing backend registers itself here (procengine imports
# engine, never the other way around, so the registry stays cycle-free)
register_engine("processes", ProcessEngine)

__all__ = [
    "Communicator",
    "ReduceOp",
    "Request",
    "waitall",
    "waitany",
    "ThreadComm",
    "ThreadEngine",
    "ProcessEngine",
    "process_engine_available",
    "SpmdError",
    "run_spmd",
    "register_engine",
    "get_engine",
    "resolve_engine_name",
    "wire_size",
    "varint_size",
    "WireSized",
]
