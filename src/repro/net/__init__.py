"""Machine model: alpha-beta costs, traffic metering, hypercube topology."""

from .cost_model import MachineModel, DEFAULT_MACHINE
from .metrics import CollectiveEvent, TrafficMeter, TrafficReport
from .topology import (
    hypercube_dimension,
    hypercube_size,
    partner,
    subcube_members,
    subcube_root,
    in_upper_half,
)

__all__ = [
    "MachineModel",
    "DEFAULT_MACHINE",
    "CollectiveEvent",
    "TrafficMeter",
    "TrafficReport",
    "hypercube_dimension",
    "hypercube_size",
    "partner",
    "subcube_members",
    "subcube_root",
    "in_upper_half",
]
