"""Session-based sorting API: :class:`Cluster` + typed :class:`SortSpec`.

This package is the public face of the distributed sorters since the API
redesign:

* :class:`Cluster` — a reusable simulated machine with per-cluster settings
  (engine backend, packed hot path, split-phase exchange), replacing the
  process-global environment toggles;
* the :class:`SortSpec` hierarchy — one frozen, validated, serializable
  configuration dataclass per algorithm (``to_dict`` / ``from_dict`` /
  stable ``config_hash()``), replacing ``dsort(**options)``;
* :class:`AlgorithmRegistry` / :func:`register_algorithm` — the pluggable
  name -> (rank runner, spec class) mapping through which third-party SPMD
  rank programs join ``Cluster.sort`` without editing ``repro.dist.api``;
* :class:`BatchStream` — streaming batch ingest
  (:meth:`Cluster.sort_batches`) with a cumulative merged traffic report.

The legacy one-shot :func:`repro.dsort` facade remains as a deprecating
shim over a throwaway :class:`Cluster`.
"""

from .cluster import Cluster
from .registry import (
    AlgorithmEntry,
    AlgorithmRegistry,
    default_registry,
    register_algorithm,
)
from .specs import (
    AutoSpec,
    FKMergeSpec,
    HQuickSpec,
    MSSimpleSpec,
    MSSpec,
    PDMSGolombSpec,
    PDMSSpec,
    SampledSpec,
    SortSpec,
    spec_from_options,
)
from .stream import BatchStream

__all__ = [
    "Cluster",
    "BatchStream",
    "AlgorithmEntry",
    "AlgorithmRegistry",
    "default_registry",
    "register_algorithm",
    "SortSpec",
    "HQuickSpec",
    "FKMergeSpec",
    "SampledSpec",
    "MSSpec",
    "MSSimpleSpec",
    "PDMSSpec",
    "PDMSGolombSpec",
    "AutoSpec",
    "spec_from_options",
]
