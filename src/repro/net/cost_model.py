"""The alpha-beta communication cost model of Section II.

"Sending a message of m bits from one PE to another PE takes time
``alpha + beta * m``".  Collective operations have the well-known costs (also
quoted in Section II):

* broadcast / reduction / all-gather ("gossiping"): ``O(alpha log p + beta h)``
  where ``h`` is the maximum amount of data sent or received at any PE,
* personalised all-to-all: either ``O(alpha p + beta h)`` (direct delivery,
  volume optimal) or ``O(alpha log p + beta h log p)`` (hypercube/indirect
  delivery, latency optimal).

The model is used in two places:

1. the benchmark harness converts the *exact* per-PE byte counts recorded by
   the simulated communicator into a modelled communication time, so the
   "running time" panels of the paper's figures can be reproduced in shape
   even though a Python simulation cannot reproduce absolute cluster timings;
2. the theory-bound benchmarks compare measured communication volumes against
   the bounds of Theorems 1, 4 and 5.

Default constants are in the ballpark of the paper's hardware (ForHLR I,
InfiniBand 4X FDR: a few microseconds latency, ~6-7 GB/s per-node
bandwidth).  They can be overridden for sensitivity studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .topology import grid_dims

__all__ = ["MachineModel", "DEFAULT_MACHINE"]


@dataclass(frozen=True)
class MachineModel:
    """Alpha-beta machine description.

    Parameters
    ----------
    alpha:
        Message startup latency in seconds.
    beta:
        Time per *byte* of communicated data in seconds (the paper states
        the model per bit to make statements about characters precise; we
        keep bytes because all our wire-size accounting is in bytes).
    char_time:
        Modelled time per character of local string-sorting work in seconds.
        Used to convert character-inspection counts into a local-work time
        so the modelled total time has both components, as in the paper's
        analysis.  The default corresponds to a few ns per character, the
        right order of magnitude for tuned C++ string sorters on the paper's
        2.5 GHz Xeons.
    item_time:
        Modelled time per per-string bookkeeping operation (loser-tree
        updates, pointer moves).
    """

    alpha: float = 5.0e-6
    beta: float = 1.6e-10  # ~6.25 GB/s
    char_time: float = 2.0e-9
    item_time: float = 2.0e-8

    def with_data_scale(self, scale: float) -> "MachineModel":
        """Model for a run whose input was shrunk by ``scale`` relative to the paper.

        Every simulated string stands for ``scale`` real strings: bandwidth
        and local-work terms are multiplied by ``scale`` while the per-message
        latency ``alpha`` stays fixed, preserving the latency/bandwidth
        balance of the full-size experiment.  The figure-reproduction
        benchmarks use this to recover the paper's bandwidth-dominated regime
        from the necessarily smaller simulated inputs (see EXPERIMENTS.md).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return MachineModel(
            alpha=self.alpha,
            beta=self.beta * scale,
            char_time=self.char_time * scale,
            item_time=self.item_time * scale,
        )

    # ------------------------------------------------------------------ point to point
    def p2p(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes`` bytes."""
        return self.alpha + self.beta * nbytes

    # ------------------------------------------------------------------ collectives
    def broadcast(self, nbytes: int, p: int) -> float:
        """Broadcast of ``nbytes`` from one PE to all ``p`` PEs."""
        if p <= 1:
            return 0.0
        return self.alpha * math.log2(p) + self.beta * nbytes

    def reduction(self, nbytes: int, p: int) -> float:
        """Reduction (or all-reduce) of ``nbytes`` contributions."""
        if p <= 1:
            return 0.0
        return self.alpha * math.log2(p) + self.beta * nbytes

    def allgather(self, nbytes_per_pe: int, p: int) -> float:
        """All-gather (gossiping); ``h`` is what every PE ends up receiving."""
        if p <= 1:
            return 0.0
        h = nbytes_per_pe * p
        return self.alpha * math.log2(p) + self.beta * h

    def gather(self, nbytes_per_pe: int, p: int) -> float:
        """Gather to a single root; the root receives ``p * nbytes_per_pe``."""
        if p <= 1:
            return 0.0
        return self.alpha * math.log2(p) + self.beta * nbytes_per_pe * p

    def alltoall_direct(
        self, max_bytes_per_pe: int, p: int, overlap_fraction: float = 0.0
    ) -> float:
        """Personalised all-to-all with direct delivery: ``O(alpha p + beta h)``.

        ``max_bytes_per_pe`` is the bottleneck ``h``: the maximum over PEs of
        the total bytes sent (or received) by that PE in this exchange.
        ``overlap_fraction`` applies the split-phase overlap credit, see
        :meth:`overlap_credit`.
        """
        if p <= 1:
            return 0.0
        return (
            self.alpha * p
            + self.beta * max_bytes_per_pe
            - self.overlap_credit(max_bytes_per_pe, overlap_fraction)
        )

    def alltoall_hypercube(
        self, max_bytes_per_pe: int, p: int, overlap_fraction: float = 0.0
    ) -> float:
        """Personalised all-to-all routed through a hypercube.

        Latency drops to ``O(alpha log p)`` while the volume is inflated by a
        ``log p`` factor (every item travels through up to ``log p`` hops).
        ``overlap_fraction`` credits the inflated bandwidth term, see
        :meth:`overlap_credit`.
        """
        if p <= 1:
            return 0.0
        lg = math.log2(p)
        return (
            self.alpha * lg
            + self.beta * max_bytes_per_pe * lg
            - self.overlap_credit(max_bytes_per_pe * lg, overlap_fraction)
        )

    def alltoall_grid(
        self, max_bytes_per_pe: int, p: int, overlap_fraction: float = 0.0
    ) -> float:
        """Personalised all-to-all routed over the two-level ``r x c`` grid.

        Each existing phase (rows with ``c > 1``, columns with ``r > 1``) is
        a direct all-to-all within its group, so latency drops from
        ``alpha p`` to ``alpha ((r - 1) + (c - 1))`` — minimised near
        ``2 sqrt(p)`` — while every item travels once per phase, inflating
        the bandwidth term accordingly.  The measured inflation of the
        routed implementation (:mod:`repro.net.router`) is validated
        against this formula by ``benchmarks/test_multilevel_exchange.py``.
        ``overlap_fraction`` credits the inflated bandwidth term, see
        :meth:`overlap_credit`.
        """
        if p <= 1:
            return 0.0
        rows, cols = grid_dims(p)
        phases = (1 if rows > 1 else 0) + (1 if cols > 1 else 0)
        volume = max_bytes_per_pe * phases
        return (
            self.alpha * ((rows - 1) + (cols - 1))
            + self.beta * volume
            - self.overlap_credit(volume, overlap_fraction)
        )

    def overlap_credit(self, nbytes: int, overlap_fraction: float) -> float:
        """Bandwidth time hidden behind overlapped computation.

        A split-phase exchange that keeps the receiver computing for a
        fraction ``f`` of its delivery window hides that fraction of the
        ``beta`` (bandwidth) term; the per-message latency ``alpha`` cannot
        be hidden — posting still pays it — so the credit never touches it.
        The fraction is clamped to ``[0, 1]``: overlapping more compute than
        the window holds cannot make communication cheaper than free.
        """
        f = min(1.0, max(0.0, overlap_fraction))
        return self.beta * nbytes * f

    # ------------------------------------------------------------------ local work
    def local_work(self, chars: int, items: int = 0) -> float:
        """Modelled local-computation time for ``chars`` character inspections."""
        return chars * self.char_time + items * self.item_time


DEFAULT_MACHINE = MachineModel()
