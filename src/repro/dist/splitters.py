"""Global splitter determination (Section V, Step 2).

Every PE contributes ``v`` regular samples of its locally sorted array; the
global sample is sorted and ``p - 1`` equidistant elements of it become the
splitters that all PEs share.  Two ways of sorting the (small) global
sample are provided:

* ``central`` — gather the samples on PE 0, sort there, broadcast the
  splitters.  This is also exactly the structure of FKmerge's splitter
  phase, whose centralised bottleneck the paper criticises; for the sample
  sizes MS uses it is perfectly fine.
* ``hquick`` — sort the sample with hypercube quicksort and all-gather the
  sorted runs, the fully distributed variant of Section V-A.

All traffic is accounted under the ``splitter-determination`` phase.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..mpi.comm import Communicator
from .hquick import hquick_sort
from .partition import (
    character_based_samples,
    select_splitters,
    string_based_samples,
)

__all__ = ["determine_splitters", "DEFAULT_OVERSAMPLING"]

# v: samples contributed per PE.  The paper's implementations tie the
# oversampling factor to the imbalance bound of Theorem 2 (n/v extra
# strings per bucket); 16 keeps buckets within ~6% of perfect balance.
DEFAULT_OVERSAMPLING = 16

_SCHEMES = ("string", "character")
_SAMPLE_SORTS = ("central", "hquick")


def determine_splitters(
    comm: Communicator,
    local_sorted: Sequence[bytes],
    scheme: str = "string",
    sample_sort: str = "central",
    oversampling: Optional[int] = None,
    weights: Optional[Sequence[int]] = None,
) -> List[bytes]:
    """Agree on ``comm.size - 1`` global splitters; identical on every rank.

    ``scheme`` selects string- or character-based regular sampling (the
    latter optionally with explicit ``weights``); ``sample_sort`` selects
    how the global sample is sorted.  When the whole machine holds no data
    the splitters degenerate to empty strings so that downstream bucket
    counts stay well-formed.
    """
    if scheme not in _SCHEMES:
        raise ValueError(f"unknown sampling scheme {scheme!r}; use one of {_SCHEMES}")
    if sample_sort not in _SAMPLE_SORTS:
        raise ValueError(
            f"unknown sample sorter {sample_sort!r}; use one of {_SAMPLE_SORTS}"
        )
    v = DEFAULT_OVERSAMPLING if oversampling is None else int(oversampling)
    if v <= 0:
        raise ValueError("oversampling must be positive")

    with comm.phase("splitter-determination"):
        if scheme == "character":
            samples = character_based_samples(local_sorted, v, weights)
        else:
            samples = string_based_samples(local_sorted, v)

        if sample_sort == "central":
            gathered = comm.gather(samples, root=0)
            if comm.is_root():
                merged = sorted(s for part in gathered for s in part)
                splitters = _splitters_from_sample(merged, comm.size)
            else:
                splitters = None
            splitters = comm.bcast(splitters, root=0)
        else:
            sorted_run, _ = hquick_sort(comm, samples)
            runs = comm.allgather(sorted_run)
            merged = [s for run in runs for s in run]
            splitters = _splitters_from_sample(merged, comm.size)
    return splitters


def _splitters_from_sample(merged_sample: List[bytes], p: int) -> List[bytes]:
    if not merged_sample:
        # no data anywhere: empty-string splitters keep p buckets well-formed
        return [b""] * (p - 1)
    return select_splitters(merged_sample, p)
