"""The legacy ``dsort`` facade is a faithful shim over the session API.

Three contracts are pinned here:

* every documented ``dsort(**options)`` spelling maps onto the equivalent
  typed :class:`~repro.session.SortSpec` and emits a
  :class:`DeprecationWarning`;
* the shim's results are **bit-identical** to ``Cluster.sort`` with the
  equivalent spec — sorted outputs, per-PE slices, LCP arrays, origin
  labels and exact wire bytes — across all six algorithms (a hypothesis
  equivalence suite drives adversarial inputs through both paths);
* the non-deprecated ``dsort`` arguments (``algorithm``, ``num_pes``,
  ``check``, ``seed``, ``distribute_by``, ``pre_distributed``) keep working
  without warnings.
"""

import warnings

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import dsort
from repro.dist.api import ALGORITHMS
from repro.session import Cluster, SortSpec, spec_from_options

# every documented option, exercised on every algorithm it applies to
DOCUMENTED_SPELLINGS = [
    ("hquick", {"local_sorter": "timsort"}),
    ("fkmerge", {"oversampling": 4}),
    ("ms-simple", {"sampling": "character"}),
    ("ms", {"sampling": "character", "sample_sort": "hquick"}),
    ("ms", {"oversampling": 8, "local_sorter": "multikey_quicksort"}),
    ("pdms", {"epsilon": 0.5, "initial_length": 8}),
    ("pdms-golomb", {"epsilon": 3.0, "sampling": "character"}),
    ("auto", {"epsilon": 0.5}),
]


def _assert_bit_identical(legacy, modern):
    assert legacy.outputs_per_pe == modern.outputs_per_pe
    assert legacy.lcps_per_pe == modern.lcps_per_pe
    assert legacy.origins_per_pe == modern.origins_per_pe
    assert legacy.report.total_bytes_sent == modern.report.total_bytes_sent
    assert legacy.report.bytes_sent_per_pe == modern.report.bytes_sent_per_pe
    assert dict(legacy.report.phase_bytes) == dict(modern.report.phase_bytes)
    assert (
        legacy.report.chars_inspected_per_pe
        == modern.report.chars_inspected_per_pe
    )


class TestDocumentedSpellings:
    @pytest.mark.parametrize("algorithm,options", DOCUMENTED_SPELLINGS)
    def test_options_map_to_spec_warn_and_match(self, algorithm, options):
        data = [b"banana", b"apple", b"app", b"", b"apple", b"cherry"] * 20
        with pytest.warns(DeprecationWarning, match="SortSpec"):
            legacy = dsort(data, algorithm=algorithm, num_pes=3, seed=5, **options)
        spec = spec_from_options(algorithm, options, seed=5)
        modern = Cluster(num_pes=3).sort(data, spec)
        assert legacy.algorithm == modern.algorithm
        _assert_bit_identical(legacy, modern)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_no_options_no_warning(self, algorithm):
        data = [b"pear", b"fig", b"plum", b"fig"] * 10
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = dsort(data, algorithm=algorithm, num_pes=2, seed=1, check=True)
        assert res.num_strings == len(data)

    def test_distribute_by_is_not_deprecated_and_matches(self):
        data = [b"x" * 50] * 4 + [b"y"] * 120
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            legacy = dsort(data, algorithm="ms", num_pes=4, distribute_by="chars")
        spec = SortSpec.from_dict({"algorithm": "ms", "distribute_by": "chars"})
        modern = Cluster(num_pes=4).sort(data, spec)
        _assert_bit_identical(legacy, modern)
        sizes = [sum(len(s) for s in b) for b in legacy.inputs_per_pe]
        assert max(sizes) < 0.6 * sum(sizes)

    def test_unknown_option_still_raises(self):
        with pytest.raises(ValueError, match="oversampling"):
            dsort([b"a"], algorithm="ms", num_pes=2, oversampliing=3)

    def test_unknown_algorithm_still_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            dsort([b"a"], algorithm="bogosort", num_pes=2)

    def test_embedded_rank_runners_ignore_unknown_options(self):
        # ALGORITHMS is kept for callers embedding rank programs in their
        # own SPMD runs; those historically ignored unrecognised keys
        from repro.mpi.engine import run_spmd

        def program(comm, local):
            return ALGORITHMS["ms"](comm, local, 0, {"my_knob": 1}).strings

        results, _ = run_spmd(
            2, program, args_per_rank=[([b"b", b"d"],), ([b"a", b"c"],)]
        )
        assert sorted(s for part in results for s in part) == [b"a", b"b", b"c", b"d"]


# ---------------------------------------------------------------------------
# hypothesis equivalence: legacy facade vs session API, adversarial inputs
# ---------------------------------------------------------------------------

# tiny alphabet -> shared prefixes and duplicates; empties and more PEs than
# strings are reachable through the size bounds
adversarial_strings = st.lists(
    st.binary(max_size=10).map(lambda b: bytes(97 + (c % 3) for c in b)),
    max_size=60,
)

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**_SETTINGS)
@given(
    strings=adversarial_strings,
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    p=st.integers(min_value=1, max_value=4),
)
def test_cluster_sort_matches_legacy_dsort(strings, algorithm, p):
    legacy = dsort(strings, algorithm=algorithm, num_pes=p, seed=3)
    spec = spec_from_options(algorithm, {}, seed=3)
    modern = Cluster(num_pes=p).sort(strings, spec)
    assert modern.sorted_strings == sorted(strings)
    _assert_bit_identical(legacy, modern)
