"""Seeded, replayable fault plans: which faults strike, where, and when.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries plus a seed and
the recovery budget.  Installed into a :class:`repro.mpi.engine.ThreadEngine`
(via its ``fault_plan=`` seam or ``Cluster(fault_plan=...)``), the plan is
compiled into a :class:`repro.faults.inject.FaultInjector` whose decisions
are a pure function of ``(seed, rule index, channel, event count)`` — the
same plan against the same program replays the exact same chaos schedule,
which is what lets the chaos suite assert bit-identical recovery.

Plans round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`), the format the CLI's ``--fault-plan @plan.json``
flag loads.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultRule", "FaultPlan", "FAULT_KINDS"]

#: the fault taxonomy (see docs/FAULTS.md)
FAULT_KINDS: Tuple[str, ...] = (
    "drop",
    "duplicate",
    "delay",
    "corrupt",
    "crash",
    "straggle",
)

#: rule kinds that strike point-to-point messages (vs. rank lifecycle events)
MESSAGE_KINDS: Tuple[str, ...] = ("drop", "duplicate", "delay", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One kind of fault plus its targeting and firing schedule.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.  ``drop``/``duplicate``/``delay``/
        ``corrupt`` strike point-to-point messages; ``crash``/``straggle``
        strike a rank when it enters an accounting phase.
    src / dst:
        Restrict a message rule to a sender / receiver rank (``None`` = any).
    rank:
        Restrict a phase rule (``crash``/``straggle``) to one rank
        (``None`` = any).
    phase:
        Restrict the rule to events labelled with this accounting phase
        (``None`` = any phase).
    probability:
        Chance an eligible event fires the rule, drawn from the rule's own
        seeded stream (1.0 = every eligible event).
    after:
        Number of eligible events to let pass untouched before the rule may
        fire (0 = from the first event).
    max_hits:
        Number of times this rule may fire **per channel** — per matching
        ``(src, dst)`` pair for message rules, per matching rank for phase
        rules (``None`` = unbounded).  The budget is per channel rather
        than global so the schedule never depends on which rank thread
        happens to send first; a plan therefore replays identically on
        every run.  Defaults to 1: a single-shot rule pinned to one channel
        injects exactly one fault.
    delay_messages:
        For ``delay``: how many subsequent messages on the channel overtake
        the held one before it is released.
    seconds:
        For ``straggle``: how long the struck rank sleeps.
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    rank: Optional[int] = None
    phase: Optional[str] = None
    probability: float = 1.0
    after: int = 0
    max_hits: Optional[int] = 1
    delay_messages: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.max_hits is not None and self.max_hits < 1:
            raise ValueError(f"max_hits must be >= 1 or None, got {self.max_hits}")
        if self.delay_messages < 1:
            raise ValueError(
                f"delay_messages must be >= 1, got {self.delay_messages}"
            )
        if self.seconds < 0.0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    @property
    def is_message_rule(self) -> bool:
        """Whether this rule strikes point-to-point messages (vs. phases)."""
        return self.kind in MESSAGE_KINDS

    def matches_channel(self, src: int, dst: int, phase: str) -> bool:
        """Whether a message ``src -> dst`` sent under ``phase`` is eligible."""
        if not self.is_message_rule:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return self.phase is None or self.phase == phase

    def matches_phase(self, rank: int, phase: str) -> bool:
        """Whether ``rank`` entering ``phase`` is eligible (crash/straggle)."""
        if self.is_message_rule:
            return False
        if self.rank is not None and self.rank != rank:
            return False
        return self.phase is None or self.phase == phase


@dataclass(frozen=True)
class FaultPlan:
    """A replayable chaos schedule: seeded rules plus the recovery budget.

    Parameters
    ----------
    seed:
        Seeds every rule's per-channel random stream; two runs of the same
        plan against the same program inject identically.
    rules:
        The :class:`FaultRule` entries; every matching rule's schedule
        advances per event, and the first rule that *fires* wins (faults
        never stack on one message).
    max_retransmits:
        Per-message retransmit budget of the recovery layer; exhausting it
        raises :class:`~repro.faults.errors.LostMessageError` /
        :class:`~repro.faults.errors.CorruptFrameError`.
    retry_delay:
        Base of the receiver's exponential backoff (seconds) before pulling
        a retransmit of a message that never arrived.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    max_retransmits: int = 4
    retry_delay: float = 0.02

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if self.max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )
        if self.retry_delay <= 0.0:
            raise ValueError(f"retry_delay must be > 0, got {self.retry_delay}")

    @property
    def wants_checksums(self) -> bool:
        """Whether the plan injects corruption (any ``corrupt`` rule).

        The envelope CRC already detects injected corruption on its own;
        this flag is for callers who want the belt-and-braces content
        seals too: ``Cluster(wire_checksums=plan.wants_checksums)``.
        """
        return any(rule.kind == "corrupt" for rule in self.rules)

    # ------------------------------------------------------------------ (de)serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-compatible; inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "max_retransmits": self.max_retransmits,
            "retry_delay": self.retry_delay,
            "rules": [asdict(rule) for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (unknown keys rejected)."""
        known = {"seed", "max_retransmits", "retry_delay", "rules"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        rules: List[FaultRule] = [FaultRule(**r) for r in raw.get("rules", [])]
        return cls(
            seed=int(raw.get("seed", 0)),
            rules=tuple(rules),
            max_retransmits=int(raw.get("max_retransmits", 4)),
            retry_delay=float(raw.get("retry_delay", 0.02)),
        )

    def to_json(self) -> str:
        """The plan as a JSON document (what ``--fault-plan`` files hold)."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON form (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))
