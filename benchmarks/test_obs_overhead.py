"""Tracing overhead on full sorts — perf-smoke gate (PR 10).

``repro.obs`` promises two bounds (``docs/OBSERVABILITY.md``): tracing
off costs nothing (every site is one ``is None`` attribute check), and
tracing on stays cheap enough that leaving ``REPRO_TRACE=1`` armed on a
production-style run is a non-decision.  This module measures both.

The gated measurement is a whole distributed sort (``Cluster.sort``,
multiway mergesort, threads engine) wall-clocked untraced and then
traced, best of a few attempts each — wall-clock gates flake under
noisy-neighbour CPU contention, so like the PR 7 checksum gate this one
takes the *minimum* observed overhead across attempts before asserting
it is **< 5%**.  Identity is asserted alongside: traced and untraced
sorts produce the same output and the same wire-byte accounting.

The JSON additionally records trajectory data (not gated): per-stage
barrier-exclusive seconds from the traced run's timeline, raw
``Recorder`` throughput (events/second into the ring buffer — the
microbenchmark bound on any per-event cost), and ring-overflow behaviour
at a deliberately tiny capacity.  Results land in ``BENCH_PR10.json``;
the CI perf-smoke job runs this module and archives the JSON next to the
earlier trajectories.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import scaled
from repro.bench.harness import peak_rss_bytes
from repro.obs import Recorder
from repro.session import Cluster, MSSpec
from repro.strings.generators import commoncrawl_like

NUM_STRINGS = scaled(20_000, minimum=4_000)
NUM_PES = 4
OVERHEAD_GATE = 0.05  # traced sort: at most 5% over untraced
ATTEMPTS = 4
RECORDER_EVENTS = 200_000

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


@pytest.fixture(scope="module")
def corpus():
    return commoncrawl_like(NUM_STRINGS, seed=23)


def _sort_once(data, trace):
    """One full sort on a fresh cluster; returns (seconds, result)."""
    with Cluster(num_pes=NUM_PES, trace=trace) as cluster:
        t0 = time.perf_counter()
        result = cluster.sort(data, MSSpec())
        elapsed = time.perf_counter() - t0
    return elapsed, result


def test_trace_overhead_under_gate(corpus):
    best = None
    for _ in range(ATTEMPTS):
        t_off, res_off = _sort_once(corpus, trace=False)
        t_on, res_on = _sort_once(corpus, trace=True)

        # identity: tracing observes the run, it never changes it
        assert res_on.sorted_strings == res_off.sorted_strings
        assert (
            res_on.report.bytes_sent_per_pe == res_off.report.bytes_sent_per_pe
        )
        assert dict(res_on.report.phase_bytes) == dict(
            res_off.report.phase_bytes
        )
        assert res_off.report.timeline is None
        assert res_on.report.timeline is not None

        overhead = t_on / t_off - 1.0
        if best is None or overhead < best[0]:
            best = (overhead, t_off, t_on, res_on)
        if best[0] < OVERHEAD_GATE * 0.4:
            break
    overhead, t_off, t_on, traced = best

    timeline = traced.report.timeline
    stage_seconds = {
        stage: round(secs, 6)
        for stage, secs in timeline.stage_seconds(exclusive=True).items()
    }

    # recorder microbenchmark: the upper bound on per-event cost
    rec = Recorder(rank=0, capacity=RECORDER_EVENTS)
    t0 = time.perf_counter()
    for i in range(RECORDER_EVENTS):
        rec.comm("send", peer=1, nbytes=i)
    rec_elapsed = time.perf_counter() - t0
    events_per_second = RECORDER_EVENTS / rec_elapsed

    # ring overflow: a tiny buffer drops oldest events, never grows or fails
    small = Recorder(rank=0, capacity=256)
    for i in range(1024):
        small.instant("x")
    assert small.dropped == 1024 - 256
    assert len(small.events()) == 256

    payload = {
        "benchmark": "timeline tracing overhead (full sort, threads engine)",
        "num_strings": len(corpus),
        "num_pes": NUM_PES,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "sort": {
            "untraced_seconds": round(t_off, 6),
            "traced_seconds": round(t_on, 6),
            "overhead": round(overhead, 4),
            "gate": OVERHEAD_GATE,
        },
        "traced_run": {
            "spans": len(timeline.spans),
            "instants": len(timeline.instants),
            "dropped_events": timeline.dropped_events,
            "stage_seconds_exclusive": stage_seconds,
            "barrier_seconds": round(timeline.barrier_seconds(), 6),
        },
        "recorder": {
            "events": RECORDER_EVENTS,
            "seconds": round(rec_elapsed, 6),
            "events_per_second": round(events_per_second),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead < OVERHEAD_GATE, (
        f"tracing cost {overhead * 100:.1f}% on a full sort "
        f"(gate {OVERHEAD_GATE * 100:.0f}%; "
        f"untraced {t_off:.3f}s, traced {t_on:.3f}s)"
    )
    # the recorder must sustain well beyond any realistic event rate
    assert events_per_second > 1e5
