"""LCP-aware K-way loser tree (Section II-B).

The LCP loser tree generalises binary LCP-merging (Ng & Kakehi) to ``K``
ways: every sorted input run carries its LCP array, internal nodes store the
loser run *and* the LCP of the loser's current string with the winner string
that passed the node.  With these cached values most comparisons are decided
without inspecting characters; characters are only read when two cached LCP
values tie, and then only from that position onward.  The paper cites the
bound of ``m log K + Delta L`` character comparisons for merging ``m``
strings, which embedded into mergesort yields ``O(D + n log n)`` total work.

Key invariant (which makes the cached values comparable): whenever the path
from run ``w``'s leaf to the root is replayed (because ``w`` just produced
the global minimum), every node on this path stored its loser's LCP relative
to that very global minimum — the element that passed the node on its way to
the root.  The replacement string from run ``w`` knows its LCP to the same
reference from ``w``'s own input LCP array.  Hence all LCP values on the
path refer to the last output string and the standard LCP-compare rules
apply:

* larger cached LCP  →  smaller string (no characters inspected),
* equal cached LCPs  →  compare characters starting at that offset.

The merge also produces the LCP array of the output sequence for free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..strings.packed import PackedStringArray
from .stats import CharStats

__all__ = ["LcpLoserTree", "lcp_multiway_merge", "lcp_multiway_merge_packed"]


class LcpLoserTree:
    """LCP-aware tournament tree over sorted runs with LCP arrays."""

    def __init__(
        self,
        runs: Sequence[Sequence[bytes]],
        lcps: Optional[Sequence[Sequence[int]]] = None,
        stats: Optional[CharStats] = None,
    ):
        """Build the tree.

        Parameters
        ----------
        runs:
            Sorted runs of byte strings.
        lcps:
            Matching LCP arrays (``lcps[i][j] = LCP(runs[i][j-1], runs[i][j])``,
            first entry ignored).  When omitted they are computed here, which
            costs extra character scans but keeps the API convenient for
            tests.
        stats:
            Optional character/comparison counter.
        """
        self.stats = stats
        k = max(1, len(runs))
        size = 1
        while size < k:
            size *= 2
        self._k = size
        # packed runs stay packed (the batched emit slices their buffers
        # directly); list runs keep the original list-of-bytes layout
        self._runs: List[Union[List[bytes], PackedStringArray]] = [
            r if isinstance(r, PackedStringArray) else list(r) for r in runs
        ] + [[] for _ in range(size - len(runs))]
        if lcps is None:
            self._run_lcps = [self._compute_lcps(r) for r in self._runs]
        else:
            self._run_lcps = [
                h if isinstance(h, np.ndarray) else list(h) for h in lcps
            ] + [[] for _ in range(size - len(lcps))]
            for i, r in enumerate(self._runs):
                if len(self._run_lcps[i]) != len(r):
                    raise ValueError(
                        f"run {i}: LCP array length {len(self._run_lcps[i])} "
                        f"!= run length {len(r)}"
                    )

        self._pos = [0] * size
        self._current: List[Optional[bytes]] = [
            self._runs[i][0] if self._runs[i] else None for i in range(size)
        ]
        # LCP of each run's current string w.r.t. the last output string;
        # only meaningful for runs on the most recently replayed path, which
        # is exactly when the value is read.
        self._cur_lcp = [0] * size
        # node i >= 1: loser run index and LCP(loser, winner that passed)
        self._loser = [0] * size
        self._loser_lcp = [0] * size
        self._winner = 0
        self._winner_lcp = 0
        self._init_tree()

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _compute_lcps(run: Sequence[bytes]) -> List[int]:
        out = [0] * len(run)
        for j in range(1, len(run)):
            a, b = run[j - 1], run[j]
            limit = min(len(a), len(b))
            i = 0
            while i < limit and a[i] == b[i]:
                i += 1
            out[j] = i
        return out

    def _char_compare(self, a: bytes, b: bytes, start: int) -> Tuple[int, int]:
        """Three-way compare from offset ``start``; returns ``(cmp, lcp)``."""
        limit = min(len(a), len(b))
        i = start
        while i < limit and a[i] == b[i]:
            i += 1
        if self.stats is not None:
            self.stats.add_comparison(i - start + (1 if i < limit else 0))
        if i == limit:
            return (len(a) - len(b), i)
        return (a[i] - b[i], i)

    def _play(self, x: int, y: int) -> Tuple[int, int, int]:
        """Play runs ``x`` against ``y`` using their ``_cur_lcp`` values.

        Returns ``(winner, loser, lcp_between_them)``.  Both ``_cur_lcp``
        values must refer to the same reference string (the last output, or
        the empty string during initialisation).
        """
        a, b = self._current[x], self._current[y]
        if a is None:
            return (y, x, 0)
        if b is None:
            return (x, y, 0)
        hx, hy = self._cur_lcp[x], self._cur_lcp[y]
        if hx > hy:
            # x matches the reference longer, so x < y; they diverge at hy
            return (x, y, hy)
        if hy > hx:
            return (y, x, hx)
        cmp, h = self._char_compare(a, b, hx)
        if cmp < 0 or (cmp == 0 and x < y):
            return (x, y, h)
        return (y, x, h)

    def _init_tree(self) -> None:
        """Bottom-up initialisation with real comparisons (reference = '')."""
        size = self._k
        for i in range(size):
            self._cur_lcp[i] = 0
        winners = [0] * (2 * size)
        winner_lcps = [0] * (2 * size)
        for i in range(size):
            winners[size + i] = i
            winner_lcps[size + i] = 0
        for node in range(size - 1, 0, -1):
            left, right = winners[2 * node], winners[2 * node + 1]
            w, loser, h = self._play(left, right)
            winners[node] = w
            self._loser[node] = loser
            self._loser_lcp[node] = h
            # the loser's cached LCP must refer to the winner that passed it,
            # which is the reference string the next replay of this node uses
            self._cur_lcp[loser] = h
            winner_lcps[node] = self._cur_lcp[w]
        self._winner = winners[1] if size > 1 else 0
        self._winner_lcp = 0

    # ------------------------------------------------------------------ public API
    def empty(self) -> bool:
        """True when every run is exhausted."""
        return self._current[self._winner] is None

    def peek(self) -> Optional[bytes]:
        """Smallest remaining string (None when the tree is empty)."""
        return self._current[self._winner]

    def pop(self) -> Tuple[bytes, int]:
        """Remove the smallest string; returns ``(string, lcp_to_previous_output)``."""
        w = self._winner
        value = self._current[w]
        if value is None:
            raise IndexError("pop from an empty LcpLoserTree")
        out_lcp = self._winner_lcp

        # Advance run w.  The new front's LCP w.r.t. the last output (which
        # is the string we just removed, from the same run) is the run's own
        # LCP array entry.
        self._pos[w] += 1
        run = self._runs[w]
        if self._pos[w] < len(run):
            self._current[w] = run[self._pos[w]]
            self._cur_lcp[w] = self._run_lcps[w][self._pos[w]]
        else:
            self._current[w] = None
            self._cur_lcp[w] = 0

        # Replay the leaf-to-root path.  Candidate and every stored loser on
        # this path hold LCP values relative to the string just output.
        cand = w
        node = (self._k + w) // 2
        while node >= 1:
            opp = self._loser[node]
            winner, loser, h = self._play(cand, opp)
            self._loser[node] = loser
            self._loser_lcp[node] = h
            # the loser's cached lcp (vs last output) stays what it was; the
            # node additionally remembers LCP(loser, winner) = h for the next
            # time this node is replayed with this winner as the reference
            self._cur_lcp_store(loser, h)
            cand = winner
            node //= 2
        self._winner = cand
        self._winner_lcp = self._cur_lcp[cand] if self._current[cand] is not None else 0
        return value, out_lcp

    def pop_segment(self) -> Tuple[int, int, int, int]:
        """Remove the winner *and* every following string of the same run
        that wins its next tournament without any comparison.

        Returns ``(run, start, stop, first_lcp)``: the strings removed are
        ``runs[run][start:stop]`` and their output LCPs are ``first_lcp``
        followed by the run's own LCP entries ``start+1 .. stop-1``.

        Why this is exactly the scalar pop sequence: when the winner ``V``
        from run ``w`` is popped, every live loser ``l`` on ``w``'s
        leaf-to-root path caches ``LCP(l, V)`` (the key invariant — ``V``
        passed each of those nodes on its way to the root), and those losers
        are the minima of their subtrees, i.e. the only contenders the next
        candidate must beat.  Let ``M`` be the largest of those cached
        values.  A following string of run ``w`` whose run-LCP exceeds ``M``
        wins every path comparison on the cached values alone (strictly
        larger LCP ⇒ smaller string, no characters inspected) and leaves
        every cached value unchanged — ``LCP(l, new) = LCP(l, prev)``
        because ``LCP(prev, new) > LCP(l, prev)``.  The scalar replays it
        skips are therefore state no-ops with zero character reads, so
        outputs, LCPs *and* the comparison statistics stay bit-identical.
        """
        w = self._winner
        if self._current[w] is None:
            raise IndexError("pop from an empty LcpLoserTree")
        first_lcp = int(self._winner_lcp)
        start = self._pos[w]
        run = self._runs[w]
        run_lcps = self._run_lcps[w]

        ceiling = -1  # largest cached LCP of a live contender on w's path
        node = (self._k + w) // 2
        while node >= 1:
            loser = self._loser[node]
            if self._current[loser] is not None and self._loser_lcp[node] > ceiling:
                ceiling = self._loser_lcp[node]
            node //= 2

        stop = start + 1
        if stop < len(run):
            blockers = np.nonzero(np.asarray(run_lcps[stop:]) <= ceiling)[0]
            stop = stop + int(blockers[0]) if blockers.size else len(run)

        self._pos[w] = stop
        if stop < len(run):
            self._current[w] = run[stop]
            self._cur_lcp[w] = run_lcps[stop]
        else:
            self._current[w] = None
            self._cur_lcp[w] = 0

        # one replay for the whole segment (= the scalar sequence's last one)
        cand = w
        node = (self._k + w) // 2
        while node >= 1:
            opp = self._loser[node]
            winner, loser, h = self._play(cand, opp)
            self._loser[node] = loser
            self._loser_lcp[node] = h
            self._cur_lcp_store(loser, h)
            cand = winner
            node //= 2
        self._winner = cand
        self._winner_lcp = self._cur_lcp[cand] if self._current[cand] is not None else 0
        return w, start, stop, first_lcp

    def _cur_lcp_store(self, run: int, lcp_vs_winner: int) -> None:
        """Record the loser's LCP relative to the winner that just passed it.

        The next time the loser participates in a comparison is when the
        winner's path is replayed — at that moment the winner is the last
        output string, so ``lcp_vs_winner`` is exactly the "LCP w.r.t. last
        output" the comparison rules need.
        """
        self._cur_lcp[run] = lcp_vs_winner


def lcp_multiway_merge(
    runs: Sequence[Sequence[bytes]],
    lcps: Optional[Sequence[Sequence[int]]] = None,
    stats: Optional[CharStats] = None,
) -> Tuple[List[bytes], List[int]]:
    """Merge sorted runs (with LCP arrays) into one sorted run + LCP array."""
    tree = LcpLoserTree(runs, lcps, stats)
    total = sum(len(r) for r in runs)
    out: List[bytes] = []
    out_lcps: List[int] = []
    for _ in range(total):
        s, h = tree.pop()
        out.append(s)
        out_lcps.append(h)
    if out_lcps:
        out_lcps[0] = 0
    return out, out_lcps


def lcp_multiway_merge_packed(
    runs: Sequence[PackedStringArray],
    lcps: Sequence[np.ndarray],
    stats: Optional[CharStats] = None,
) -> Tuple[PackedStringArray, np.ndarray]:
    """Merge packed sorted runs into one packed run + ``int64`` LCP array.

    The batched-emit twin of :func:`lcp_multiway_merge`: winner segments
    come out of :meth:`LcpLoserTree.pop_segment` and are appended as bulk
    buffer slices — no per-string ``bytes`` objects, no list appends.
    Output strings, LCP values and comparison statistics are bit-identical
    to the scalar merge of the same runs.
    """
    tree = LcpLoserTree(runs, lcps, stats)
    total = sum(len(r) for r in runs)
    buf_parts: List[np.ndarray] = []
    len_parts: List[np.ndarray] = []
    lcp_parts: List[np.ndarray] = []
    done = 0
    while done < total:
        w, start, stop, first_lcp = tree.pop_segment()
        run = tree._runs[w]
        off = run.offsets
        buf_parts.append(run.buffer[int(off[start]) : int(off[stop])])
        len_parts.append(run.lengths[start:stop])
        seg_lcps = np.empty(stop - start, dtype=np.int64)
        seg_lcps[0] = first_lcp
        seg_lcps[1:] = tree._run_lcps[w][start + 1 : stop]
        lcp_parts.append(seg_lcps)
        done += stop - start
    if not buf_parts:
        return PackedStringArray.empty(), np.zeros(0, dtype=np.int64)
    out_buf = np.concatenate(buf_parts)
    lens = np.concatenate(len_parts)
    out_off = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(lens, out=out_off[1:])
    out_lcps = np.concatenate(lcp_parts)
    out_lcps[0] = 0
    return PackedStringArray(out_buf, out_off), out_lcps
