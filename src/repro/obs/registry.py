"""A typed time-series metrics registry with Prometheus-style exposition.

Three metric kinds, all with labeled series (a metric is a *family*; each
distinct label combination is one series):

* **counter** — monotonically increasing totals (bytes sent, faults
  injected); merge adds, delta subtracts.
* **gauge** — point-in-time readings (strings/sec, peak RSS); merge keeps
  the later value, delta keeps the current reading.
* **histogram** — bucketed distributions (span durations); merge adds
  bucket counts, delta subtracts them.

A :class:`MetricsRegistry` is the mutable collector; a
:class:`MetricsSnapshot` is the immutable, picklable view that attaches to
:class:`repro.net.metrics.TrafficReport` and obeys its fold contract
(:meth:`MetricsSnapshot.merged`: counters/histograms additive, gauges
last-write-wins — pinned by ``tests/test_sort_batches.py``).  Snapshots
render to Prometheus text exposition (:meth:`MetricsSnapshot.render_prometheus`)
and plain-JSON documents (:meth:`MetricsSnapshot.to_json`), the two formats
the ``repro metrics`` CLI emits.

Label names follow a fixed vocabulary (``algorithm``, ``engine``,
``topology``, ``pe``, ``stage``); see ``docs/OBSERVABILITY.md`` for the
metric naming scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "MetricsSnapshot",
]

#: default histogram buckets, in seconds (span durations / waits)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, float("inf")
)

_KINDS = ("counter", "gauge", "histogram")

#: a label set in canonical form: sorted ``(name, value)`` pairs
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonicalise a label dict (values stringified, keys sorted)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """One metric family: a name, a kind, and its labeled series."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; expected one of {_KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets)
        # counter/gauge: key -> float; histogram: key -> [counts..., sum, count]
        self._series: Dict[LabelKey, Any] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to a counter series (counters only, value >= 0)."""
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def set(self, value: float, **labels: Any) -> None:
        """Set a gauge series to ``value`` (gauges only)."""
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self._series[_label_key(labels)] = float(value)

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into a histogram series (histograms only)."""
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = [0] * len(self.buckets) + [0.0, 0]
        for i, le in enumerate(self.buckets):
            if value <= le:
                state[i] += 1
        state[-2] += value
        state[-1] += 1

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        """All series as ``(labels, value)`` pairs (histograms: state dict)."""
        out: List[Tuple[Dict[str, str], Any]] = []
        for key, value in sorted(self._series.items()):
            labels = dict(key)
            if self.kind == "histogram":
                out.append(
                    (
                        labels,
                        {
                            "buckets": {
                                str(le): value[i] for i, le in enumerate(self.buckets)
                            },
                            "sum": value[-2],
                            "count": value[-1],
                        },
                    )
                )
            else:
                out.append((labels, value))
        return out


class MetricsRegistry:
    """Mutable collector of metric families; snapshot for the immutable view."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str, help: str, **kwargs: Any) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Metric(name, kind, help, **kwargs)
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"not a {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Metric:
        """Get or create the counter family ``name``."""
        return self._get(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Metric:
        """Get or create the gauge family ``name``."""
        return self._get(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "", buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Metric:
        """Get or create the histogram family ``name``."""
        return self._get(name, "histogram", help, buckets=buckets)

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the current state into an immutable, picklable snapshot."""
        families: Dict[str, Dict[str, Any]] = {}
        for name, metric in sorted(self._metrics.items()):
            families[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            }
        return MetricsSnapshot(families=families)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        return self.snapshot().render_prometheus()


@dataclass
class MetricsSnapshot:
    """Immutable view of a registry: the ``TrafficReport.metrics`` attachment.

    ``families`` maps the metric name to ``{"kind", "help", "samples"}``
    with ``samples`` a list of ``(labels, value)`` pairs — plain dicts,
    lists and scalars throughout, so a snapshot pickles across the
    processes engine's pipes and serialises to JSON verbatim.
    """

    families: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------ queries
    def names(self) -> List[str]:
        """The metric family names in this snapshot, sorted."""
        return sorted(self.families)

    def value(self, name: str, **labels: Any) -> Optional[Any]:
        """The value of the first series matching ``labels`` (``None`` if absent).

        Matching is by label *subset*, like a Prometheus instant-vector
        selector: the requested labels must all be present and equal, and
        labels not asked about (e.g. the stamped ``algorithm`` / ``engine``
        / ``topology`` run labels) are ignored.
        """
        family = self.families.get(name)
        if family is None:
            return None
        want = {k: str(v) for k, v in labels.items()}
        for sample_labels, value in family["samples"]:
            if all(sample_labels.get(k) == v for k, v in want.items()):
                return value
        return None

    def series(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """All ``(labels, value)`` samples of family ``name`` ([] when absent)."""
        family = self.families.get(name)
        return list(family["samples"]) if family else []

    # ------------------------------------------------------------------ algebra
    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into a new snapshot (inputs unmutated).

        The fold contract of :func:`repro.net.metrics.fold_traffic_report`
        for the metrics attachment: counter and histogram series add
        element-wise (exact sums, so batch/retry folds stay additive),
        gauge series take the *later* snapshot's reading.
        """
        families = _copy_families(self.families)
        for name, family in other.families.items():
            mine = families.get(name)
            if mine is None:
                families[name] = _copy_family(family)
                continue
            if mine["kind"] != family["kind"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: kind "
                    f"{mine['kind']} vs {family['kind']}"
                )
            _fold_samples(mine, family)
        return MetricsSnapshot(families=families)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``earlier``: counters/histograms subtract,
        gauges keep this snapshot's reading."""
        families: Dict[str, Dict[str, Any]] = {}
        for name, family in self.families.items():
            out = _copy_family(family)
            before = earlier.families.get(name)
            if before is not None and family["kind"] != "gauge":
                prior = {
                    _label_key(labels): value for labels, value in before["samples"]
                }
                samples = []
                for labels, value in out["samples"]:
                    prev = prior.get(_label_key(labels))
                    samples.append((labels, _subtract(value, prev)))
                out["samples"] = samples
            families[name] = out
        return MetricsSnapshot(families=families)

    # ------------------------------------------------------------------ exposition
    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            family = self.families[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for labels, value in family["samples"]:
                if family["kind"] == "histogram":
                    for le, count in value["buckets"].items():
                        lines.append(
                            f"{name}_bucket{_render_labels({**labels, 'le': le})} {count}"
                        )
                    lines.append(f"{name}_sum{_render_labels(labels)} {value['sum']}")
                    lines.append(f"{name}_count{_render_labels(labels)} {value['count']}")
                else:
                    lines.append(f"{name}{_render_labels(labels)} {_render_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON document: ``{"metrics": {name: family}}``."""
        return {
            "metrics": {
                name: {
                    "kind": family["kind"],
                    "help": family["help"],
                    "samples": [
                        {"labels": labels, "value": value}
                        for labels, value in family["samples"]
                    ],
                }
                for name, family in sorted(self.families.items())
            }
        }


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _copy_family(family: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "kind": family["kind"],
        "help": family["help"],
        "samples": [
            (dict(labels), _copy_value(value)) for labels, value in family["samples"]
        ],
    }


def _copy_families(families: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return {name: _copy_family(family) for name, family in families.items()}


def _copy_value(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            "buckets": dict(value["buckets"]),
            "sum": value["sum"],
            "count": value["count"],
        }
    return value


def _fold_samples(mine: Dict[str, Any], theirs: Dict[str, Any]) -> None:
    """Fold ``theirs['samples']`` into ``mine['samples']`` per-kind, in place."""
    gauge = mine["kind"] == "gauge"
    index = {_label_key(labels): i for i, (labels, _) in enumerate(mine["samples"])}
    for labels, value in theirs["samples"]:
        key = _label_key(labels)
        i = index.get(key)
        if i is None:
            mine["samples"].append((dict(labels), _copy_value(value)))
            index[key] = len(mine["samples"]) - 1
        elif gauge:
            mine["samples"][i] = (dict(labels), _copy_value(value))
        else:
            mine["samples"][i] = (dict(labels), _add(mine["samples"][i][1], value))


def _add(a: Any, b: Any) -> Any:
    if isinstance(a, dict):
        return {
            "buckets": {
                le: a["buckets"].get(le, 0) + b["buckets"].get(le, 0)
                for le in {*a["buckets"], *b["buckets"]}
            },
            "sum": a["sum"] + b["sum"],
            "count": a["count"] + b["count"],
        }
    return a + b


def _subtract(a: Any, b: Optional[Any]) -> Any:
    if b is None:
        return _copy_value(a)
    if isinstance(a, dict):
        return {
            "buckets": {
                le: a["buckets"].get(le, 0) - b["buckets"].get(le, 0)
                for le in {*a["buckets"], *b["buckets"]}
            },
            "sum": a["sum"] - b["sum"],
            "count": a["count"] - b["count"],
        }
    return a - b
