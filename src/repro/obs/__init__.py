"""Observability: per-rank phase tracing, metrics, and exportable timelines.

The package instruments *where time goes* the way :mod:`repro.net.metrics`
instruments where bytes go.  Four layers, each usable on its own:

* :mod:`repro.obs.recorder` — a per-rank ring-buffer :class:`Recorder` of
  monotonic-timestamped events (phase changes, barrier begin/end, comm
  events, fault/retransmit instants).  The hot-path contract is *zero cost
  when off*: every instrumentation site is a ``recorder is None`` check.
* :mod:`repro.obs.timeline` — per-rank :class:`Span` reconstruction from
  the raw event streams, rank-offset alignment, exclusive phase seconds
  (barrier wait subtracted), and batch-wise merging.
* :mod:`repro.obs.registry` — a typed metrics registry (counters, gauges,
  histograms with labeled series), immutable snapshots with delta/merge
  algebra, Prometheus text exposition and JSON export.
* :mod:`repro.obs.exporters` — Chrome-trace/Perfetto JSON, a schema
  validator for CI, and a terminal phase-waterfall renderer.

:mod:`repro.obs.derive` bridges the layers: it turns a finished
:class:`~repro.net.metrics.TrafficReport` plus a :class:`Timeline` into a
labeled :class:`MetricsSnapshot` (strings/sec and peak RSS per stage,
fault counters as series).

Tracing is enabled by ``Cluster(trace=True)``, the ``REPRO_TRACE``
environment toggle, or the CLI's ``--trace`` flag; see
``docs/OBSERVABILITY.md`` for the span taxonomy and overhead bounds.
"""

from .derive import run_metrics
from .exporters import (
    chrome_trace,
    render_waterfall,
    validate_chrome_trace,
    write_chrome_trace,
)
from .recorder import DEFAULT_CAPACITY, TRACE_ENV, Recorder, resolve_trace, trace_enabled
from .registry import MetricsRegistry, MetricsSnapshot
from .timeline import Instant, Span, Timeline

__all__ = [
    "DEFAULT_CAPACITY",
    "TRACE_ENV",
    "Recorder",
    "resolve_trace",
    "trace_enabled",
    "Span",
    "Instant",
    "Timeline",
    "MetricsRegistry",
    "MetricsSnapshot",
    "run_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_waterfall",
]
