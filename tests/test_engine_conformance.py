"""The cross-engine conformance matrix: every backend vs the thread engine.

Drives ``tests/engine_conformance.py`` over the full contract surface —
all six algorithms x three exchange topologies x sync/async exchange — and
asserts each cell's fingerprint (sorted outputs, LCP arrays, PDMS origins,
config hash, origin/total/per-PE wire bytes, decoded local work) is
bit-identical between the candidate engine and the ``threads`` reference.
Cells for engines the platform cannot run are skipped with the platform's
reason, never errored.

Reference fingerprints are computed once per (algorithm, topology, mode)
cell and cached for the whole module, so adding a backend to the axis costs
only that backend's runs.
"""

from __future__ import annotations

import pytest

from engine_conformance import (
    ALGORITHMS,
    EXCHANGE_MODES,
    REFERENCE_ENGINE,
    TOPOLOGIES,
    all_engines,
    assert_engines_agree,
    engine_available,
    engine_params,
    sort_fingerprint,
)

_reference_cache = {}


def _reference(algorithm, topology, async_exchange):
    key = (algorithm, topology, async_exchange)
    if key not in _reference_cache:
        _reference_cache[key] = sort_fingerprint(
            REFERENCE_ENGINE, algorithm, topology, async_exchange
        )
    return _reference_cache[key]


@pytest.fixture(params=engine_params())
def candidate_engine(request):
    """Every registered engine, including the reference (self-conformance)."""
    return request.param


class TestConformanceMatrix:
    @pytest.mark.parametrize("async_exchange", EXCHANGE_MODES, ids=("sync", "async"))
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cell_matches_reference(
        self, candidate_engine, algorithm, topology, async_exchange
    ):
        """One matrix cell: candidate fingerprint == reference fingerprint."""
        reference = _reference(algorithm, topology, async_exchange)
        if candidate_engine == REFERENCE_ENGINE:
            # self-conformance: a second run must reproduce the first
            fp = sort_fingerprint(
                REFERENCE_ENGINE, algorithm, topology, async_exchange
            )
        else:
            fp = sort_fingerprint(
                candidate_engine, algorithm, topology, async_exchange
            )
        assert_engines_agree(
            fp,
            reference,
            label=f"{candidate_engine}/{algorithm}/{topology}/"
            f"{'async' if async_exchange else 'sync'}",
        )
        assert fp["engine_tag"] == candidate_engine


class TestEngineAxis:
    def test_reference_engine_is_registered(self):
        assert REFERENCE_ENGINE in all_engines()

    def test_processes_engine_is_registered(self):
        assert "processes" in all_engines()

    def test_engine_availability_reports_reasons(self):
        for name in all_engines():
            ok, reason = engine_available(name)
            assert ok or reason

    def test_unregistered_engine_is_unavailable(self):
        ok, reason = engine_available("definitely-not-an-engine")
        assert not ok and "not registered" in reason


class TestRealTransport:
    def test_processes_engine_reports_transported_bytes(self):
        ok, reason = engine_available("processes")
        if not ok:
            pytest.skip(reason)
        fp = sort_fingerprint("processes", "ms")
        # real pipe frames + shm payloads: at least the simulated volume
        # actually had to move between address spaces
        assert fp["transported_bytes"] > 0

    def test_thread_engine_moves_no_real_bytes(self):
        fp = sort_fingerprint(REFERENCE_ENGINE, "ms")
        assert fp["transported_bytes"] == 0
