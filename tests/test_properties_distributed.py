"""Property-based tests (hypothesis) of the distributed layer.

These drive the full SPMD stack with arbitrary inputs and PE counts, checking
the output contracts of Sections V/VI.  Example counts are kept moderate —
every example spins up a simulated machine — but the strategies are chosen to
hit the painful corners: tiny alphabets, duplicates, empty strings, empty
ranks, more PEs than strings.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.dist import dsort
from repro.dist.partition import (
    bucket_boundaries,
    select_splitters,
    string_based_samples,
)
from repro.strings.checker import check_distributed_sort, check_prefix_permutation

# small alphabet -> many shared prefixes and exact duplicates
tiny_strings = st.binary(max_size=8).map(lambda b: bytes(97 + (c % 2) for c in b))
string_lists = st.lists(tiny_strings, max_size=80)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**_SETTINGS)
@given(strings=string_lists, p=st.integers(min_value=1, max_value=5))
def test_ms_sorts_arbitrary_inputs(strings, p):
    res = dsort(strings, algorithm="ms", num_pes=p)
    check_distributed_sort(res.inputs_per_pe, res.outputs_per_pe, res.lcps_per_pe)
    assert res.sorted_strings == sorted(strings)


@settings(**_SETTINGS)
@given(strings=string_lists, p=st.integers(min_value=1, max_value=5))
def test_ms_simple_sorts_arbitrary_inputs(strings, p):
    res = dsort(strings, algorithm="ms-simple", num_pes=p)
    assert res.sorted_strings == sorted(strings)


@settings(**_SETTINGS)
@given(strings=string_lists, p=st.integers(min_value=1, max_value=4))
def test_hquick_sorts_arbitrary_inputs(strings, p):
    res = dsort(strings, algorithm="hquick", num_pes=p)
    check_distributed_sort(res.inputs_per_pe, res.outputs_per_pe)
    assert res.sorted_strings == sorted(strings)


@settings(**_SETTINGS)
@given(strings=string_lists, p=st.integers(min_value=1, max_value=4))
def test_fkmerge_sorts_arbitrary_inputs(strings, p):
    res = dsort(strings, algorithm="fkmerge", num_pes=p)
    assert res.sorted_strings == sorted(strings)


@settings(**_SETTINGS)
@given(strings=string_lists, p=st.integers(min_value=1, max_value=4))
def test_pdms_prefix_contract_on_arbitrary_inputs(strings, p):
    res = dsort(strings, algorithm="pdms", num_pes=p)
    check_prefix_permutation(res.inputs_per_pe, res.outputs_per_pe)


@settings(max_examples=60, deadline=None)
@given(
    strings=st.lists(tiny_strings, min_size=1, max_size=120),
    v=st.integers(min_value=1, max_value=12),
    parts=st.integers(min_value=1, max_value=8),
)
def test_sampling_and_bucketing_invariants(strings, v, parts):
    """Splitters from regular samples always yield a valid partition."""
    local = sorted(strings)
    samples = string_based_samples(local, v)
    assert len(samples) == (v if local else 0)
    splitters = select_splitters(sorted(samples), parts)
    bounds = bucket_boundaries(local, splitters)
    assert bounds[0] == 0 and bounds[-1] == len(local)
    assert all(a <= b for a, b in zip(bounds, bounds[1:]))
    # membership: every string of bucket j obeys the splitter fences
    for j in range(len(bounds) - 1):
        for s in local[bounds[j] : bounds[j + 1]]:
            if j > 0:
                assert s > splitters[j - 1]
            if j < len(splitters):
                assert s <= splitters[j]
