"""Sequential string sorting algorithms and LCP-aware mergers (Section II)."""

from .stats import CharStats
from .lcp_insertion import lcp_insertion_sort, compare_from
from .multikey_quicksort import multikey_quicksort
from .msd_radix import msd_radix_sort
from .losertree import LoserTree, multiway_merge
from .lcp_losertree import LcpLoserTree, lcp_multiway_merge
from .lcp_mergesort import lcp_merge, lcp_mergesort
from .api import SEQUENTIAL_SORTERS, sort_strings, sort_strings_with_lcp

__all__ = [
    "CharStats",
    "lcp_insertion_sort",
    "compare_from",
    "multikey_quicksort",
    "msd_radix_sort",
    "LoserTree",
    "multiway_merge",
    "LcpLoserTree",
    "lcp_multiway_merge",
    "lcp_merge",
    "lcp_mergesort",
    "SEQUENTIAL_SORTERS",
    "sort_strings",
    "sort_strings_with_lcp",
]
