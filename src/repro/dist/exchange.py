"""The all-to-all string exchange (Section V, Step 3).

Each PE cuts its locally sorted array into ``p`` buckets and delivers bucket
``j`` to PE ``j`` in one personalised all-to-all.  Two message formats are
available:

* :class:`StringBlock` — strings verbatim, each with a varint length header
  (MS-simple; an LCP array may optionally ride along);
* :class:`LcpCompressedBlock` — LCP front coding: the first string travels
  in full, every following string only as its suffix past the LCP with its
  predecessor (MS, PDMS).  The receiver reconstructs the full strings from
  the previous string and the LCP value, so the LCP array rides along for
  free *and* pays for itself.

Both classes implement ``wire_bytes`` so the traffic meter charges exactly
what a real implementation would put on the wire; the Python objects
themselves move by reference inside the simulated machine.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..mpi.comm import Communicator
from ..mpi.serialization import WireSized, varint_size
from ..strings.lcp import lcp_array

__all__ = ["StringBlock", "LcpCompressedBlock", "exchange_buckets"]


class StringBlock(WireSized):
    """One bucket sent verbatim, optionally together with its LCP array."""

    def __init__(
        self, strings: Sequence[bytes], lcps: Optional[Sequence[int]] = None
    ):
        if lcps is not None and len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        self.strings = list(strings)
        self.lcps = list(lcps) if lcps is not None else None

    def decode(self) -> Tuple[List[bytes], List[int]]:
        """``(strings, lcps)``; the LCP array is recomputed when not shipped."""
        strings = list(self.strings)
        lcps = list(self.lcps) if self.lcps is not None else lcp_array(strings)
        return strings, lcps

    def wire_bytes(self) -> int:
        total = varint_size(len(self.strings))
        for s in self.strings:
            total += varint_size(len(s)) + len(s)
        if self.lcps is not None:
            total += sum(varint_size(h) for h in self.lcps)
        return total


class LcpCompressedBlock(WireSized):
    """One bucket with LCP front coding: ``(lcp, suffix-past-lcp)`` per string."""

    def __init__(self, entries: Sequence[Tuple[int, bytes]]):
        self.entries = list(entries)

    @classmethod
    def encode(
        cls, strings: Sequence[bytes], lcps: Sequence[int]
    ) -> "LcpCompressedBlock":
        """Front-code a sorted run with its LCP array.

        The first string always travels in full; LCP values are clipped
        defensively (an LCP can never exceed either neighbour).
        """
        if len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        entries: List[Tuple[int, bytes]] = []
        prev_len = 0
        for i, (s, h) in enumerate(zip(strings, lcps)):
            h = 0 if i == 0 else min(h, len(s), prev_len)
            entries.append((h, s[h:]))
            prev_len = len(s)
        return cls(entries)

    @property
    def chars_sent(self) -> int:
        """Characters on the wire after front coding (suffixes only)."""
        return sum(len(suffix) for _, suffix in self.entries)

    def decode(self) -> Tuple[List[bytes], List[int]]:
        strings: List[bytes] = []
        lcps: List[int] = []
        prev = b""
        for h, suffix in self.entries:
            if h > len(prev):
                raise ValueError(
                    f"corrupt LCP-compressed block: LCP {h} exceeds the "
                    f"previous string's length {len(prev)}"
                )
            s = prev[:h] + suffix
            strings.append(s)
            lcps.append(h)
            prev = s
        return strings, lcps

    def wire_bytes(self) -> int:
        total = varint_size(len(self.entries))
        for h, suffix in self.entries:
            total += varint_size(h) + varint_size(len(suffix)) + len(suffix)
        return total


def exchange_buckets(
    comm: Communicator,
    buckets: Sequence[Tuple[Sequence[bytes], Sequence[int]]],
    lcp_compression: bool = False,
    payloads: Optional[Sequence[Any]] = None,
):
    """Deliver bucket ``j`` to PE ``j``; return the received runs.

    ``buckets`` must contain exactly ``comm.size`` ``(strings, lcps)`` pairs.
    The return value has one entry per *source* PE: ``(strings, lcps)``
    tuples, or ``(strings, lcps, payload)`` when ``payloads`` supplies one
    extra (wire-accounted) object per destination — PDMS uses this to ship
    each bucket's origin offset alongside the prefixes.
    """
    if len(buckets) != comm.size:
        raise ValueError(
            f"need one bucket per PE ({comm.size}), got {len(buckets)}"
        )
    if payloads is not None and len(payloads) != comm.size:
        raise ValueError("payloads must have one entry per PE")

    with comm.phase("exchange"):
        if lcp_compression:
            blocks = [
                LcpCompressedBlock.encode(strings, lcps)
                for strings, lcps in buckets
            ]
        else:
            blocks = [StringBlock(strings) for strings, _ in buckets]
        if payloads is None:
            received = comm.alltoall(blocks)
        else:
            received = comm.alltoall(
                [(blk, pay) for blk, pay in zip(blocks, payloads)]
            )

        out = []
        decoded_chars = 0
        for message in received:
            if payloads is None:
                block, payload = message, None
            else:
                block, payload = message
            strings, lcps = block.decode()
            decoded_chars += sum(len(s) for s in strings)
            out.append(
                (strings, lcps) if payloads is None else (strings, lcps, payload)
            )
        comm.record_local_work(decoded_chars, sum(len(r[0]) for r in out))
    return out
