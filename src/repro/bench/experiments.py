"""Canned experiment definitions — one per table / figure of the paper.

Each function returns an :class:`repro.bench.harness.ExperimentResult` whose
series mirror the corresponding figure:

* :func:`weak_scaling_dn`          — Figure 4 (weak scaling over the D/N inputs),
* :func:`strong_scaling_commoncrawl` — Figure 5, left panel,
* :func:`strong_scaling_dnareads`  — Figure 5, right panel,
* :func:`suffix_instance_experiment` — Section VII-E suffix-sorting instance,
* :func:`skewed_sampling_experiment` — Section VII-E skewed D/N instance
  (string- vs character-based sampling),
* :func:`ablation_lcp_golomb`      — the MS / PDMS feature ablations discussed
  throughout Section VII-D.

The paper runs 500 000 strings x 500 characters per PE on 20..1280 cores; a
pure-Python simulation reproduces the *shape* of those plots at a reduced
scale, controlled by the ``strings_per_pe`` / ``pe_counts`` arguments whose
defaults are sized for minutes-not-hours runtimes.  EXPERIMENTS.md records a
paper-vs-measured comparison produced with these defaults.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dist.api import distribute_strings
from ..session import MSSimpleSpec, MSSpec, PDMSGolombSpec, PDMSSpec
from ..strings import generators
from .harness import ExperimentResult, ExperimentRunner

__all__ = [
    "DEFAULT_ALGORITHMS",
    "weak_scaling_dn",
    "strong_scaling_commoncrawl",
    "strong_scaling_dnareads",
    "strong_scaling_corpus",
    "suffix_instance_experiment",
    "skewed_sampling_experiment",
    "ablation_lcp_golomb",
]

# the six series of Figures 4 and 5
DEFAULT_ALGORITHMS = ("fkmerge", "hquick", "ms-simple", "ms", "pdms-golomb", "pdms")


def weak_scaling_dn(
    dn_values: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    pe_counts: Sequence[int] = (2, 4, 8, 16),
    strings_per_pe: int = 1500,
    string_length: int = 200,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> List[ExperimentResult]:
    """Figure 4: weak scaling on the synthetic D/N instances.

    The paper uses strings of length 500 and 500 000 strings per PE on
    20..1280 PEs; the defaults here shrink both so the experiment completes
    in a simulation, while keeping enough strings per PE for the sampling
    and duplicate-detection machinery to behave realistically.

    Returns one :class:`ExperimentResult` per D/N value (matching the five
    columns of Figure 4).
    """
    runner = runner or ExperimentRunner(seed=seed)
    results: List[ExperimentResult] = []
    for dn in dn_values:
        def factory(num_pes: int, seed_: int, dn=dn) -> List[List[bytes]]:
            return generators.dn_instance_for_pes(
                num_pes, strings_per_pe, dn, length=string_length, seed=seed_
            )

        res = runner.sweep(
            experiment=f"fig4-weak-dn-{dn:g}",
            description=(
                f"Weak scaling, D/N={dn:g}, {strings_per_pe} strings of length "
                f"{string_length} per PE (paper: Fig. 4, column D/N={dn:g})"
            ),
            algorithms=algorithms,
            pe_counts=pe_counts,
            input_factory=factory,
            input_name=f"dn={dn:g}",
        )
        results.append(res)
    return results


def strong_scaling_corpus(
    corpus: Sequence[bytes],
    name: str,
    experiment: str,
    pe_counts: Sequence[int] = (2, 4, 8, 16),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: Optional[ExperimentRunner] = None,
    distribute_by: str = "chars",
) -> ExperimentResult:
    """Strong scaling on a fixed corpus (the pattern of both Figure 5 panels)."""
    runner = runner or ExperimentRunner()
    corpus = list(corpus)

    def factory(num_pes: int, _seed: int) -> List[List[bytes]]:
        return distribute_strings(corpus, num_pes, by=distribute_by)

    return runner.sweep(
        experiment=experiment,
        description=f"Strong scaling on the {name} corpus ({len(corpus)} strings)",
        algorithms=algorithms,
        pe_counts=pe_counts,
        input_factory=factory,
        input_name=name,
        input_stats=True,
    )


def strong_scaling_commoncrawl(
    num_strings: int = 12_000,
    pe_counts: Sequence[int] = (2, 4, 8, 16),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5, left panel: strong scaling on the COMMONCRAWL-like corpus."""
    corpus = generators.commoncrawl_like(num_strings, seed=seed)
    return strong_scaling_corpus(
        corpus,
        name="commoncrawl",
        experiment="fig5-left-commoncrawl",
        pe_counts=pe_counts,
        algorithms=algorithms,
        runner=runner,
    )


def strong_scaling_dnareads(
    num_strings: int = 8_000,
    pe_counts: Sequence[int] = (2, 4, 8, 16),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5, right panel: strong scaling on the DNAREADS-like corpus."""
    corpus = generators.dna_reads(num_strings, seed=seed)
    return strong_scaling_corpus(
        corpus,
        name="dnareads",
        experiment="fig5-right-dnareads",
        pe_counts=pe_counts,
        algorithms=algorithms,
        runner=runner,
    )


def suffix_instance_experiment(
    text_len: int = 6_000,
    max_suffix_len: int = 400,
    pe_counts: Sequence[int] = (4, 8),
    algorithms: Sequence[str] = ("ms", "pdms", "pdms-golomb", "fkmerge"),
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Section VII-E suffix instance: all suffixes of a text, D/N << 1.

    The paper reports PDMS about 30x faster than every other algorithm on
    p=160 because only the tiny distinguishing prefixes are communicated; the
    reproduction checks that PDMS's communication volume is a small fraction
    of MS's.
    """
    corpus = generators.suffix_instance(
        text_len=text_len, max_suffix_len=max_suffix_len, seed=seed
    )
    return strong_scaling_corpus(
        corpus,
        name="wiki-suffixes",
        experiment="sec7e-suffix",
        pe_counts=pe_counts,
        algorithms=algorithms,
        runner=runner,
        distribute_by="strings",
    )


def skewed_sampling_experiment(
    num_strings: int = 8_000,
    dn: float = 0.5,
    length: int = 120,
    pe_counts: Sequence[int] = (4, 8),
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Section VII-E skewed instance: string- vs character-based sampling.

    The 20 % smallest strings are padded to 4x length without contributing to
    the distinguishing prefix, so string-based sampling mis-balances the
    output character counts while character-based sampling keeps them even —
    measured by the ``imbalance`` column of the result cells.
    """
    runner = runner or ExperimentRunner(seed=seed)
    corpus = generators.skewed_dn_instance(num_strings, dn, length=length, seed=seed)

    def factory(num_pes: int, _seed: int) -> List[List[bytes]]:
        return distribute_strings(corpus, num_pes, by="strings")

    out = ExperimentResult(
        name="sec7e-skewed-sampling",
        description="Skewed D/N instance; MS with string- vs character-based sampling",
    )
    for p in pe_counts:
        blocks = factory(p, seed)
        for scheme in ("string", "character"):
            cell = runner.run_cell(
                "sec7e-skewed-sampling",
                MSSpec(sampling=scheme, seed=seed),
                p,
                f"skewed-{scheme}",
                blocks,
            )
            cell.extra["sampling"] = scheme
            out.add(cell)
    return out


def ablation_lcp_golomb(
    num_strings: int = 8_000,
    pe_counts: Sequence[int] = (8,),
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Feature ablations: LCP compression, LCP merging, Golomb coding, sampling.

    Quantifies each design choice in isolation on the COMMONCRAWL-like
    corpus, the workload where Section VII-D reports the LCP optimisations to
    matter most.
    """
    runner = runner or ExperimentRunner(seed=seed)
    corpus = generators.commoncrawl_like(num_strings, seed=seed)

    out = ExperimentResult(
        name="ablations",
        description="MS/PDMS design-choice ablations on the COMMONCRAWL-like corpus",
    )
    # one typed spec per ablation arm; labels name the varied knob
    variants = [
        ("ms-simple", MSSimpleSpec(seed=seed)),
        ("ms", MSSpec(seed=seed)),
        ("ms-char-sampling", MSSpec(sampling="character", seed=seed)),
        ("ms-hquick-sample-sort", MSSpec(sample_sort="hquick", seed=seed)),
        ("pdms", PDMSSpec(seed=seed)),
        ("pdms-golomb", PDMSGolombSpec(seed=seed)),
        ("pdms-eps-0.5", PDMSSpec(epsilon=0.5, seed=seed)),
        ("pdms-eps-3", PDMSSpec(epsilon=3.0, seed=seed)),
    ]
    for p in pe_counts:
        blocks = distribute_strings(corpus, p, by="chars")
        for label, spec in variants:
            cell = runner.run_cell("ablations", spec, p, label, blocks)
            cell.extra["variant"] = label
            out.add(cell)
    return out
