"""Seeded bug: rooted collectives of one phase disagreeing on the root.

The gather collects on rank 0 but the broadcast fans out from rank 1 —
one of the two call sites was edited and its twin forgotten.  Expected
finding: ``spmd-collective-mismatch``.
"""


def mismatched_roots(comm, counts):
    with comm.phase("splitters"):
        sample = comm.gather(counts, root=0)
        return comm.bcast(sample, root=1)
