"""The deterministic fault injector compiled from a :class:`FaultPlan`.

One :class:`FaultInjector` is owned by the engine that a plan is installed
into and consulted from three hook points:

* :meth:`FaultInjector.on_send` — every point-to-point message, deciding
  drop / duplicate / delay / corrupt;
* :meth:`FaultInjector.on_retransmit` — every recovery retransmit (only
  ``corrupt`` rules re-strike retransmits, so a lossy channel cannot drop
  the very retransmission that repairs it into a livelock);
* :meth:`FaultInjector.on_phase` — every phase entry, deciding crash /
  straggle.

Determinism: each rule keeps an independent random stream, event counter
and hit budget **per channel** (per ``(src, dst)`` pair, or per rank for
phase rules), seeded from ``(plan.seed, rule index, channel)`` with
integer-only material — no ``hash()`` of strings, so decisions replay
across processes.  Message order per channel is deterministic in an SPMD
program (each channel has a single sender thread) and no state is shared
*between* channels, hence the full injection schedule replays identically
no matter how the rank threads interleave.  ``max_hits`` is consequently a
**per-channel** budget: a wildcard drop rule with ``max_hits=1`` drops the
first message on every channel it matches, not a races-decide single one.

The injector outlives individual engine runs on purpose: a ``crash`` rule
with ``max_hits=1`` consumes its hit on the first attempt, so a session-level
retry (``Cluster.sort(..., max_retries=N)``) deterministically succeeds.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .plan import FaultPlan, FaultRule

__all__ = ["FaultAction", "FaultInjector"]


@dataclass(frozen=True)
class FaultAction:
    """What the injector decided for one event (one fired rule)."""

    kind: str
    rule_index: int
    #: corrupt: non-zero XOR mask applied to the envelope's CRC32
    mask: int = 0
    #: straggle: seconds the struck rank sleeps
    seconds: float = 0.0
    #: delay: messages that overtake the held one before release
    delay_messages: int = 1


class FaultInjector:
    """Replays a :class:`FaultPlan` as deterministic per-event decisions.

    Thread-safe: rank threads consult it concurrently; one lock serialises
    the tiny decision bookkeeping.  ``injected_counts`` and
    :attr:`total_injected` expose exactly how many faults fired per kind,
    which the chaos suite reconciles against the
    :class:`~repro.net.metrics.TrafficReport` counters.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        # per (rule index, channel key): eligible-event count, rng stream and
        # hit budget.  Keeping ALL schedule state per channel is what makes
        # the injection schedule independent of thread interleaving; the
        # state persists across engine runs — that is what makes
        # crash-once-then-retry deterministic.
        self._counts: Dict[Tuple[int, ...], int] = {}
        self._streams: Dict[Tuple[int, ...], random.Random] = {}
        self._hits: Dict[Tuple[int, ...], int] = {}
        self._injected: Dict[str, int] = {}

    # ------------------------------------------------------------------ bookkeeping
    def _stream(self, idx: int, key: Tuple[int, ...]) -> random.Random:
        stream = self._streams.get((idx,) + key)
        if stream is None:
            # fold the integer-only material into one seed (no str hashing,
            # so decisions replay across processes and PYTHONHASHSEED values)
            material = 0
            for part in (self.plan.seed, idx) + key:
                material = (material * 1000003 + part + 1) & 0xFFFFFFFFFFFFFFFF
            stream = random.Random(material)
            self._streams[(idx,) + key] = stream
        return stream

    def _advance(self, idx: int, rule: FaultRule, key: Tuple[int, ...]) -> bool:
        """Advance the rule's per-channel schedule; True when it would fire.

        Advancing never consumes the hit budget — a rule that would fire but
        loses to an earlier rule on the same event (faults never stack on
        one message) keeps its budget and tries again on the next event.
        Only :meth:`_commit` — called for the single winning rule — burns a
        hit and counts an injection, so the injected counters equal exactly
        the faults the engine actually applied.
        """
        count_key = (idx,) + key
        count = self._counts.get(count_key, 0)
        self._counts[count_key] = count + 1
        if count < rule.after:
            return False
        if rule.max_hits is not None and self._hits.get(count_key, 0) >= rule.max_hits:
            return False
        if rule.probability < 1.0:
            if self._stream(idx, key).random() >= rule.probability:
                return False
        return True

    def _commit(self, idx: int, rule: FaultRule, key: Tuple[int, ...]) -> None:
        """Burn one hit of the winning rule's per-channel budget."""
        count_key = (idx,) + key
        self._hits[count_key] = self._hits.get(count_key, 0) + 1
        self._injected[rule.kind] = self._injected.get(rule.kind, 0) + 1

    def _action(self, idx: int, rule: FaultRule, key: Tuple[int, ...]) -> FaultAction:
        mask = 0
        if rule.kind == "corrupt":
            # non-zero mask: the tampered CRC always differs from the clean one
            mask = self._stream(idx, key).randrange(1, 1 << 32)
        return FaultAction(
            kind=rule.kind,
            rule_index=idx,
            mask=mask,
            seconds=rule.seconds,
            delay_messages=rule.delay_messages,
        )

    # ------------------------------------------------------------------ hook points
    def on_send(self, src: int, dst: int, phase: str) -> Optional[FaultAction]:
        """Decide the fate of one fresh message ``src -> dst`` under ``phase``.

        Every matching rule's schedule advances; the first rule that would
        fire wins and burns a hit (faults never stack on one message, and a
        losing rule keeps its budget for the next message).  ``None`` =
        deliver clean.
        """
        key = (0, src, dst)
        with self._lock:
            fired: Optional[FaultAction] = None
            for idx, rule in enumerate(self.plan.rules):
                if not rule.matches_channel(src, dst, phase):
                    continue
                if self._advance(idx, rule, key) and fired is None:
                    self._commit(idx, rule, key)
                    fired = self._action(idx, rule, key)
            return fired

    def on_retransmit(self, src: int, dst: int, phase: str) -> Optional[FaultAction]:
        """Decide whether a recovery retransmit ``src -> dst`` is re-corrupted.

        Only ``corrupt`` rules participate: retransmits travel the recovery
        path, which drop/duplicate/delay rules by design cannot reach (the
        repair of a lossy channel must not itself be droppable, or a single
        rule could livelock recovery).
        """
        key = (0, src, dst)
        with self._lock:
            fired: Optional[FaultAction] = None
            for idx, rule in enumerate(self.plan.rules):
                if rule.kind != "corrupt":
                    continue
                if not rule.matches_channel(src, dst, phase):
                    continue
                if self._advance(idx, rule, key) and fired is None:
                    self._commit(idx, rule, key)
                    fired = self._action(idx, rule, key)
            return fired

    def on_phase(self, rank: int, phase: str) -> Optional[FaultAction]:
        """Decide crash/straggle when ``rank`` enters accounting ``phase``."""
        key = (1, rank)
        with self._lock:
            fired: Optional[FaultAction] = None
            for idx, rule in enumerate(self.plan.rules):
                if not rule.matches_phase(rank, phase):
                    continue
                if self._advance(idx, rule, key) and fired is None:
                    self._commit(idx, rule, key)
                    fired = self._action(idx, rule, key)
            return fired

    # ------------------------------------------------------------------ cross-process state
    def export_state(self) -> Dict[str, Any]:
        """Snapshot the whole schedule state for cross-process transport.

        Everything is plain picklable data: per-channel event counts, hit
        budgets and ``random.Random`` states keyed by ``(rule index,
        channel)``.  The processes engine forks workers that inherit a copy
        of the injector; each worker only ever advances the channels it
        *owns* (message channels are decided at the receiving rank, phase
        channels at the struck rank), exports its state on exit, and the
        parent folds the copies back with :meth:`merge_state`.
        """
        with self._lock:
            return {
                "counts": dict(self._counts),
                "hits": dict(self._hits),
                "streams": {k: s.getstate() for k, s in self._streams.items()},
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold one worker's :meth:`export_state` snapshot into this injector.

        Per-channel schedule state is monotonic (counts and hits only grow)
        and every channel is advanced by exactly one worker, so the merge
        rule is simple and exact: a channel whose exported event count is
        ahead of ours replaces our copy wholesale (count, hits, rng state).
        The per-kind injected totals are rebuilt from the merged hit
        ledger — valid because :meth:`_commit` is the only mutation point
        and burns exactly one hit per injection.
        """
        with self._lock:
            for key, count in state["counts"].items():
                if count <= self._counts.get(key, 0):
                    continue
                self._counts[key] = count
                hits = state["hits"].get(key)
                if hits is not None:
                    self._hits[key] = hits
                stream_state = state["streams"].get(key)
                if stream_state is not None:
                    stream = self._streams.get(key)
                    if stream is None:
                        stream = random.Random()
                        self._streams[key] = stream
                    stream.setstate(stream_state)
            injected: Dict[str, int] = {}
            for count_key, hits in self._hits.items():
                kind = self.plan.rules[count_key[0]].kind
                injected[kind] = injected.get(kind, 0) + hits
            self._injected = injected

    # ------------------------------------------------------------------ observability
    def injected_counts(self) -> Dict[str, int]:
        """Faults fired so far, per kind (a snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    @property
    def total_injected(self) -> int:
        """Total faults fired so far across all kinds."""
        with self._lock:
            return sum(self._injected.values())
