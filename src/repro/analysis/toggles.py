"""Pass 3 — central ``REPRO_*`` toggle registry and toggle-hygiene lint.

Every process-global toggle the package reads from the environment is
declared here, once, with its documentation string and its per-cluster
knob (the :class:`repro.session.cluster.Cluster` constructor argument that
scopes the same behaviour to one cluster instead of the whole process).
The lint pass then enforces four invariants over the scanned tree:

``toggle-unregistered``
    An ``os.environ`` / ``os.getenv`` read of a ``REPRO_*`` name that has
    no :data:`REGISTRY` entry.  New toggles must be declared centrally.

``toggle-undocumented``
    A registered toggle not mentioned in ``docs/API.md``.

``toggle-knob-missing``
    A registered toggle whose declared ``Cluster`` knob is not actually a
    ``Cluster.__init__`` parameter (or that declares neither a knob nor an
    explicit exemption reason).

``toggle-stale``
    A registered toggle with no environment read anywhere in the scanned
    tree — a registry entry that outlived its code.  Only checked on full
    package scans (fixture scans would trivially trip it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .commgraph import PackageIndex
from .model import Finding

__all__ = ["ToggleSpec", "REGISTRY", "run_toggle_pass", "find_env_reads"]


@dataclass(frozen=True)
class ToggleSpec:
    """One declared process-global environment toggle."""

    #: the ``REPRO_*`` environment variable name
    name: str
    #: one-line description (mirrored by the docs/API.md row)
    description: str
    #: the ``Cluster.__init__`` keyword that scopes the same behaviour to a
    #: single cluster; ``None`` only together with ``exempt_reason``
    knob: Optional[str] = None
    #: why no per-cluster knob exists, when ``knob`` is ``None``
    exempt_reason: Optional[str] = None


#: the central registry: every ``REPRO_*`` environment read in the package
#: must correspond to exactly one entry here.
REGISTRY: Tuple[ToggleSpec, ...] = (
    ToggleSpec(
        name="REPRO_PACKED",
        description=(
            "Packed (arena-backed) string representation on the hot path; "
            "'0' falls back to python-object string lists."
        ),
        knob="packed",
    ),
    ToggleSpec(
        name="REPRO_ASYNC_EXCHANGE",
        description=(
            "Split-phase isend/irecv bucket exchange instead of the "
            "synchronous alltoall; '1' opts in."
        ),
        knob="async_exchange",
    ),
    ToggleSpec(
        name="REPRO_EXCHANGE_TOPOLOGY",
        description=(
            "Exchange routing topology: 'direct' (default), 'hypercube', "
            "or 'grid'."
        ),
        knob="exchange_topology",
    ),
    ToggleSpec(
        name="REPRO_WIRE_CHECKSUMS",
        description=(
            "CRC32 content seals on wire frames (StringBlock / "
            "LcpCompressedBlock / RouteFrame); '1' opts in."
        ),
        knob="wire_checksums",
    ),
    ToggleSpec(
        name="REPRO_SPMD_TIMEOUT",
        description=(
            "SPMD rank-program watchdog timeout in seconds (default 600); "
            "read at every engine launch."
        ),
        knob="timeout",
    ),
    ToggleSpec(
        name="REPRO_ENGINE",
        description=(
            "Default execution engine when none is requested explicitly: "
            "'threads' (default) or 'processes'."
        ),
        knob="engine",
    ),
    ToggleSpec(
        name="REPRO_TRACE",
        description=(
            "Per-rank phase/comm timeline tracing (repro.obs); '1' arms the "
            "ring-buffer recorders and attaches a Timeline to the report."
        ),
        knob="trace",
    ),
)

_BY_NAME: Dict[str, ToggleSpec] = {spec.name: spec for spec in REGISTRY}


def find_env_reads(index: PackageIndex) -> List[Tuple[str, str, int]]:
    """All literal ``REPRO_*`` environment reads: (name, path, line).

    Recognises ``os.environ.get(...)``, ``os.environ[...]``,
    ``os.getenv(...)`` and the same spellings on a bare ``environ`` /
    ``getenv`` import.  Non-literal names are invisible to this pass (and
    to every other static consumer, which is why the convention bans
    them).
    """
    reads: List[Tuple[str, str, int]] = []
    for module in sorted(index.modules):
        info = index.modules[module]
        for node in ast.walk(info.tree):  # type: ignore[arg-type]
            name = _env_read_name(node)
            if name is not None and name.startswith("REPRO_"):
                reads.append((name, info.path, node.lineno))  # type: ignore[attr-defined]
    return reads


def _env_read_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "get" and _is_environ(func.value):
                return _literal_str(node.args[0]) if node.args else None
            if func.attr == "getenv" and _is_os(func.value):
                return _literal_str(node.args[0]) if node.args else None
        elif isinstance(func, ast.Name) and func.id == "getenv":
            return _literal_str(node.args[0]) if node.args else None
        return None
    if isinstance(node, ast.Subscript) and _is_environ(node.value):
        return _literal_str(node.slice)
    return None


def _is_environ(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Attribute):
        return expr.attr == "environ" and _is_os(expr.value)
    return isinstance(expr, ast.Name) and expr.id == "environ"


def _is_os(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "os"


def _literal_str(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _cluster_knobs(index: PackageIndex) -> Optional[List[str]]:
    """``Cluster.__init__`` parameter names, if the class is in the tree."""
    key = None
    for candidate in index.functions:
        if candidate.endswith(":Cluster.__init__"):
            key = candidate
            break
    if key is None:
        return None
    node = index.nodes[key]
    args = getattr(node, "args", None)
    if args is None:
        return None
    names = [a.arg for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]
    return [n for n in names if n != "self"]


def run_toggle_pass(
    index: PackageIndex,
    docs_text: Optional[str] = None,
    full_tree: bool = True,
) -> List[Finding]:
    """Enforce the four toggle-hygiene invariants over the indexed tree.

    ``docs_text`` is the content of ``docs/API.md`` (``None`` skips the
    documentation rule, e.g. for installed trees without docs).
    ``full_tree`` gates the stale-entry rule to whole-package scans.
    """
    findings: List[Finding] = []
    reads = find_env_reads(index)

    for name, path, line in reads:
        if name not in _BY_NAME:
            findings.append(
                Finding(
                    rule="toggle-unregistered",
                    path=path,
                    line=line,
                    message=(
                        f"environment read of {name} has no entry in the "
                        "central toggle registry "
                        "(repro.analysis.toggles.REGISTRY); declare it with "
                        "a description and Cluster knob mapping (or explicit "
                        "exemption)"
                    ),
                    context=name,
                )
            )

    knobs = _cluster_knobs(index)
    registry_path = "repro.analysis.toggles.REGISTRY"
    for spec in REGISTRY:
        if docs_text is not None and spec.name not in docs_text:
            findings.append(
                Finding(
                    rule="toggle-undocumented",
                    path="docs/API.md",
                    line=1,
                    message=(
                        f"registered toggle {spec.name} is not mentioned in "
                        "docs/API.md; every toggle needs a documentation row"
                    ),
                    context=spec.name,
                )
            )
        if spec.knob is None:
            if not spec.exempt_reason:
                findings.append(
                    Finding(
                        rule="toggle-knob-missing",
                        path=registry_path,
                        line=1,
                        message=(
                            f"toggle {spec.name} declares neither a Cluster "
                            "knob nor an exemption reason"
                        ),
                        context=spec.name,
                    )
                )
        elif knobs is not None and spec.knob not in knobs:
            findings.append(
                Finding(
                    rule="toggle-knob-missing",
                    path=registry_path,
                    line=1,
                    message=(
                        f"toggle {spec.name} declares Cluster knob "
                        f"{spec.knob!r}, but Cluster.__init__ has no such "
                        "parameter"
                    ),
                    context=spec.name,
                )
            )
        if full_tree and spec.name not in {name for name, _, _ in reads}:
            findings.append(
                Finding(
                    rule="toggle-stale",
                    path=registry_path,
                    line=1,
                    message=(
                        f"registered toggle {spec.name} has no environment "
                        "read anywhere in the scanned tree; remove the stale "
                        "registry entry"
                    ),
                    context=spec.name,
                )
            )
    return findings
