"""Real parallelism of the multiprocessing engine — perf-smoke gate (PR 8).

The thread engine time-slices every PE through one GIL, so a p-PE job runs
its CPU-bound local phases (radix sort, LCP computation, merge) serially
no matter how many cores the machine has.  The ``processes`` engine exists
to remove exactly that ceiling: the same rank programs as real OS
processes, buckets crossing address spaces through shared memory.  This
module measures the end-to-end payoff on the packed (default) distributed
pipeline at p=4 and gates on it.

The gate — **>= 2x end-to-end speedup over the thread engine at p=4** — is
enforced only when the machine actually has >= 4 CPUs; on smaller boxes
(CI containers are often single-core, where real processes can only add
fork/IPC overhead) the measurement is recorded as trajectory data and the
gate is waived.  Bit-identical outputs, LCP arrays and simulated wire
volume across the two engines are asserted unconditionally — the speedup
must never come at the price of the conformance contract.

Results land in ``BENCH_PR8.json`` (with ``cpu_count`` and
``gate_enforced`` so archived numbers are interpretable); the CI
perf-smoke job runs this module and archives the JSON next to the PR 7
trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import scaled
from repro.bench.harness import peak_rss_bytes
from repro.mpi.procengine import process_engine_available
from repro.session import Cluster
from repro.strings.generators import dn_instance

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

NUM_PES = 4
SPEEDUP_GATE = 2.0
ATTEMPTS = 3

pytestmark = pytest.mark.skipif(
    not process_engine_available()[0],
    reason=process_engine_available()[1],
)


@pytest.fixture(scope="module")
def workload():
    """A D/N=0.6 instance big enough that local phases dominate wall clock."""
    return dn_instance(scaled(6000, minimum=800), 0.6, length=64, seed=41)


def _timed_sort(engine_name, data):
    with Cluster(num_pes=NUM_PES, engine=engine_name, timeout=120.0) as cluster:
        start = time.perf_counter()
        result = cluster.sort(data, "ms")
        elapsed = time.perf_counter() - start
    return elapsed, result


def test_processes_engine_speedup_at_p4(workload):
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= NUM_PES

    best_threads = None
    best_processes = None
    reference = None
    for _ in range(ATTEMPTS):
        t_threads, threaded = _timed_sort("threads", workload)
        t_processes, processed = _timed_sort("processes", workload)

        # conformance is unconditional: the engines must agree bit for bit
        # on every attempt, fast or slow
        assert processed.outputs_per_pe == threaded.outputs_per_pe
        assert processed.lcps_per_pe == threaded.lcps_per_pe
        assert (
            processed.report.total_bytes_sent == threaded.report.total_bytes_sent
        )
        assert (
            processed.report.bytes_sent_per_pe
            == threaded.report.bytes_sent_per_pe
        )
        assert processed.report.transported_bytes > 0
        assert threaded.report.transported_bytes == 0

        best_threads = min(t_threads, best_threads or t_threads)
        best_processes = min(t_processes, best_processes or t_processes)
        reference = (threaded, processed)
        if gate_enforced and best_threads / best_processes >= SPEEDUP_GATE * 1.25:
            break  # comfortably past the gate; save CI minutes

    threaded, processed = reference
    speedup = best_threads / best_processes

    payload = {
        "benchmark": "processes vs threads engine, packed pipeline, p=4",
        "algorithm": "ms",
        "num_pes": NUM_PES,
        "num_strings": len(workload),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "cpu_count": cpu_count,
        "gate": SPEEDUP_GATE,
        "gate_enforced": gate_enforced,
        "threads_seconds": round(best_threads, 6),
        "processes_seconds": round(best_processes, 6),
        "speedup": round(speedup, 4),
        "simulated_bytes": threaded.report.total_bytes_sent,
        "transported_bytes": processed.report.transported_bytes,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if gate_enforced:
        assert speedup >= SPEEDUP_GATE, (
            f"processes engine achieved only {speedup:.2f}x over threads at "
            f"p={NUM_PES} on {cpu_count} CPUs (gate {SPEEDUP_GATE}x); "
            f"threads={best_threads:.3f}s processes={best_processes:.3f}s"
        )


def test_bench_json_is_readable():
    """The archived JSON parses and carries the interpretability fields."""
    if not _RESULTS_PATH.exists():
        pytest.skip("speedup benchmark has not run yet")
    payload = json.loads(_RESULTS_PATH.read_text())
    for key in ("cpu_count", "gate_enforced", "speedup", "transported_bytes"):
        assert key in payload
