"""Tests for traffic metering and the hypercube topology helpers."""

import pytest

from repro.net.cost_model import MachineModel
from repro.net.metrics import TrafficMeter
from repro.net.topology import (
    hypercube_dimension,
    hypercube_size,
    in_upper_half,
    partner,
    subcube_members,
    subcube_root,
)


class TestTrafficMeter:
    def test_record_send_updates_both_sides(self):
        meter = TrafficMeter(3)
        meter.record_send(0, 2, 100)
        rep = meter.report()
        assert rep.bytes_sent_per_pe == [100, 0, 0]
        assert rep.bytes_received_per_pe == [0, 0, 100]
        assert rep.messages_per_pe == [1, 0, 0]

    def test_self_messages_are_free(self):
        meter = TrafficMeter(2)
        meter.record_send(1, 1, 999)
        rep = meter.report()
        assert rep.total_bytes_sent == 0

    def test_phases_label_traffic(self):
        meter = TrafficMeter(2)
        meter.set_phase(0, "exchange")
        meter.record_send(0, 1, 10)
        meter.set_phase(0, "merge")
        meter.record_send(0, 1, 5)
        rep = meter.report()
        assert rep.phase_bytes == {"exchange": 10, "merge": 5}

    def test_local_work_accumulates(self):
        meter = TrafficMeter(2)
        meter.record_local_work(1, 100, 7)
        meter.record_local_work(1, 50, 3)
        rep = meter.report()
        assert rep.chars_inspected_per_pe == [0, 150]
        assert rep.items_processed_per_pe == [0, 10]

    def test_bytes_per_string_metric(self):
        meter = TrafficMeter(2)
        meter.record_send(0, 1, 500)
        rep = meter.report()
        assert rep.bytes_per_string(100) == pytest.approx(5.0)
        assert rep.bytes_per_string(0) == 0.0

    def test_modeled_comm_time_uses_collectives(self):
        meter = TrafficMeter(4)
        meter.record_collective("alltoall", 1000, 4)
        meter.record_collective("bcast", 10, 4)
        rep = meter.report()
        machine = MachineModel(alpha=1.0, beta=1.0)
        expected = machine.alltoall_direct(1000, 4) + machine.broadcast(10, 4)
        assert rep.modeled_comm_time(machine) == pytest.approx(expected)

    def test_modeled_local_time_is_bottleneck(self):
        meter = TrafficMeter(2)
        meter.record_local_work(0, 10)
        meter.record_local_work(1, 1000)
        machine = MachineModel(char_time=1.0, item_time=0.0)
        rep = meter.report()
        assert rep.modeled_local_time(machine) == pytest.approx(1000)
        assert rep.modeled_total_time(machine) == pytest.approx(1000)

    def test_unknown_collective_kind_still_counts(self):
        meter = TrafficMeter(2)
        meter.record_collective("exotic", 100, 2)
        assert meter.report().modeled_comm_time(MachineModel(alpha=1, beta=1)) > 0

    def test_report_is_a_snapshot(self):
        meter = TrafficMeter(2)
        meter.record_send(0, 1, 10)
        rep = meter.report()
        meter.record_send(0, 1, 10)
        assert rep.total_bytes_sent == 10


class TestTopology:
    def test_dimension(self):
        assert hypercube_dimension(1) == 0
        assert hypercube_dimension(2) == 1
        assert hypercube_dimension(3) == 1
        assert hypercube_dimension(4) == 2
        assert hypercube_dimension(1280) == 10

    def test_dimension_invalid(self):
        with pytest.raises(ValueError):
            hypercube_dimension(0)

    def test_size_is_power_of_two_leq_p(self):
        for p in range(1, 70):
            s = hypercube_size(p)
            assert s <= p < 2 * s
            assert s & (s - 1) == 0

    def test_partner_is_involution(self):
        for rank in range(16):
            for dim in range(4):
                assert partner(partner(rank, dim), dim) == rank
                assert partner(rank, dim) != rank

    def test_upper_half(self):
        assert not in_upper_half(0, 2)
        assert in_upper_half(4, 2)
        assert in_upper_half(5, 0)

    def test_subcube_members(self):
        assert subcube_members(5, 0) == [5]
        assert subcube_members(5, 1) == [4, 5]
        assert subcube_members(5, 2) == [4, 5, 6, 7]
        assert subcube_members(5, 3) == list(range(8))

    def test_subcube_root(self):
        assert subcube_root(7, 2) == 4
        assert subcube_root(7, 0) == 7
        assert subcube_root(9, 3) == 8

    def test_partner_stays_in_subcube(self):
        for rank in range(8):
            for dim in range(3):
                assert partner(rank, dim) in subcube_members(rank, dim + 1)
