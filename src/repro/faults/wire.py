"""The fault-mode point-to-point framing: sequence numbers plus a CRC32.

When a fault plan is installed, every point-to-point message travels inside
an :class:`Envelope` carrying a per-channel sequence number and a CRC32 of
the payload.  The receiver uses the sequence number to detect drops, swallow
duplicates and re-order delayed deliveries, and the CRC to detect injected
corruption; both checks feed the recovery protocol in
:mod:`repro.mpi.engine` (see ``docs/FAULTS.md`` for the state machine).

Without a fault plan no envelope exists and the wire accounting is exactly
the baseline's; with one, every message is charged
``varint(seq) + 4`` extra bytes — uniformly, so an empty plan is the
byte-exact baseline of any chaos run under the same plan settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mpi.serialization import CHECKSUM_WIRE_BYTES, varint_size

__all__ = ["Envelope", "envelope_overhead"]


@dataclass
class Envelope:
    """One framed point-to-point message of a fault-mode run.

    ``seq`` numbers the channel's messages from 0 in send order; ``crc`` is
    the :func:`repro.mpi.serialization.payload_checksum` of ``payload`` as
    computed by the *sender* (the field an injected corruption tampers
    with, since the simulated machine moves payloads by shared reference).
    """

    seq: int
    tag: int
    crc: int
    payload: Any

    def header_bytes(self) -> int:
        """Wire overhead of this envelope's framing (seq varint + CRC32)."""
        return envelope_overhead(self.seq)


def envelope_overhead(seq: int) -> int:
    """Extra wire bytes of framing a message as sequence number ``seq``."""
    return varint_size(seq) + CHECKSUM_WIRE_BYTES
