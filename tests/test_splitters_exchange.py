"""Tests for global splitter determination and the all-to-all string exchange."""

import pytest

from repro.dist.exchange import exchange_buckets
from repro.dist.partition import split_into_buckets
from repro.dist.splitters import determine_splitters
from repro.mpi import SpmdError, run_spmd
from repro.sequential import sort_strings_with_lcp
from repro.strings.generators import dn_instance, random_strings
from repro.strings.lcp import lcp_array


def _blocks(strings, p):
    n = len(strings)
    return [strings[r * n // p : (r + 1) * n // p] for r in range(p)]


class TestDetermineSplitters:
    @pytest.mark.parametrize("sample_sort", ["central", "hquick"])
    @pytest.mark.parametrize("scheme", ["string", "character"])
    def test_splitters_sorted_and_correct_count(self, sample_sort, scheme):
        strings = random_strings(800, 1, 15, seed=1)
        blocks = _blocks(strings, 4)

        def prog(comm, local):
            local_sorted, _ = sort_strings_with_lcp(local)
            return determine_splitters(
                comm, local_sorted, scheme=scheme, sample_sort=sample_sort
            )

        results, _ = run_spmd(4, prog, args_per_rank=[(b,) for b in blocks])
        # every rank receives the same splitters
        assert all(r == results[0] for r in results)
        splitters = results[0]
        assert len(splitters) == 3
        assert splitters == sorted(splitters)

    def test_splitters_balance_buckets(self):
        strings = dn_instance(1200, 0.3, length=40, seed=2)
        blocks = _blocks(strings, 4)

        def prog(comm, local):
            local_sorted, lcps = sort_strings_with_lcp(local)
            splitters = determine_splitters(comm, local_sorted, oversampling=16)
            buckets = split_into_buckets(local_sorted, lcps, splitters)
            return [len(b[0]) for b in buckets]

        results, _ = run_spmd(4, prog, args_per_rank=[(b,) for b in blocks])
        bucket_totals = [sum(r[j] for r in results) for j in range(4)]
        assert sum(bucket_totals) == 1200
        # Theorem 2 with v=16: each bucket <= n/p + n/v = 300 + 75
        assert max(bucket_totals) <= 300 + 75 + 4

    def test_invalid_scheme_and_sorter(self):
        def prog_scheme(comm, local):
            return determine_splitters(comm, local, scheme="bogus")

        def prog_sorter(comm, local):
            return determine_splitters(comm, local, sample_sort="bogus")

        with pytest.raises(SpmdError):
            run_spmd(2, prog_scheme, args_per_rank=[([b"a"],), ([b"b"],)])
        with pytest.raises(SpmdError):
            run_spmd(2, prog_sorter, args_per_rank=[([b"a"],), ([b"b"],)])

    def test_empty_local_input_on_some_ranks(self):
        blocks = [[b"m", b"n"], [], [b"a", b"z"], []]

        def prog(comm, local):
            local_sorted, _ = sort_strings_with_lcp(local)
            return determine_splitters(comm, local_sorted)

        results, _ = run_spmd(4, prog, args_per_rank=[(b,) for b in blocks])
        assert all(r == results[0] for r in results)


class TestExchangeBuckets:
    @pytest.mark.parametrize("compression", [False, True])
    def test_exchange_is_a_global_transpose(self, compression):
        strings = random_strings(600, 1, 12, seed=3)
        blocks = _blocks(strings, 3)

        def prog(comm, local):
            local_sorted, lcps = sort_strings_with_lcp(local)
            splitters = determine_splitters(comm, local_sorted)
            buckets = split_into_buckets(local_sorted, lcps, splitters)
            received = exchange_buckets(comm, buckets, lcp_compression=compression)
            # every received run must be sorted and carry a correct LCP array
            for run, run_lcps in received:
                assert run == sorted(run)
                assert run_lcps[1:] == lcp_array(run)[1:]
            return [s for run, _ in received for s in run]

        results, _ = run_spmd(3, prog, args_per_rank=[(b,) for b in blocks])
        # nothing lost, nothing duplicated
        flat = sorted(s for r in results for s in r)
        assert flat == sorted(strings)

    def test_compression_saves_bytes_on_shared_prefixes(self):
        strings = dn_instance(900, 0.9, length=60, seed=4)
        blocks = _blocks(strings, 3)

        def prog(comm, local, compress):
            local_sorted, lcps = sort_strings_with_lcp(local)
            splitters = determine_splitters(comm, local_sorted)
            buckets = split_into_buckets(local_sorted, lcps, splitters)
            exchange_buckets(comm, buckets, lcp_compression=compress)

        _, plain = run_spmd(3, prog, args_per_rank=[(b, False) for b in blocks])
        _, packed = run_spmd(3, prog, args_per_rank=[(b, True) for b in blocks])
        assert packed.total_bytes_sent < 0.7 * plain.total_bytes_sent

    def test_wrong_bucket_count_rejected(self):
        def prog(comm, local):
            return exchange_buckets(comm, [(local, [0] * len(local))])

        with pytest.raises(SpmdError):
            run_spmd(2, prog, args_per_rank=[([b"a"],), ([b"b"],)])

    def test_uncompressed_exchange_ships_caller_lcps(self):
        """With ship_lcps (default) the caller's LCP arrays ride along as
        varints instead of being dropped and recomputed at the receiver;
        opting out restores the bare paper-faithful message format."""
        strings = dn_instance(600, 0.8, length=40, seed=9)
        blocks = _blocks(strings, 3)

        def prog(comm, local, ship):
            local_sorted, lcps = sort_strings_with_lcp(local)
            splitters = determine_splitters(comm, local_sorted)
            buckets = split_into_buckets(local_sorted, lcps, splitters)
            received = exchange_buckets(
                comm, buckets, lcp_compression=False, ship_lcps=ship
            )
            # shipped or recomputed, the LCP arrays must be correct
            for run, run_lcps in received:
                assert run_lcps[1:] == lcp_array(run)[1:]

        _, shipped = run_spmd(3, prog, args_per_rank=[(b, True) for b in blocks])
        _, bare = run_spmd(3, prog, args_per_rank=[(b, False) for b in blocks])
        # the LCP varints cost wire bytes — they are not a free lunch
        assert shipped.total_bytes_sent > bare.total_bytes_sent
