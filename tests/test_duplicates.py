"""Tests for distributed duplicate detection and the Golomb fingerprint coding."""

import pytest

from repro.dist.duplicates import (
    BitVector,
    FingerprintBlock,
    find_unique_fingerprints,
    prefix_fingerprint,
)
from repro.dist.golomb import GolombCodedSet, decode_sorted, encode_sorted, golomb_parameter
from repro.mpi import run_spmd


class TestPrefixFingerprint:
    def test_deterministic(self):
        assert prefix_fingerprint(b"abc") == prefix_fingerprint(b"abc")

    def test_salt_changes_value(self):
        assert prefix_fingerprint(b"abc", salt=1) != prefix_fingerprint(b"abc", salt=2)

    def test_different_prefixes_differ(self):
        assert prefix_fingerprint(b"abc") != prefix_fingerprint(b"abd")

    def test_bit_width_respected(self):
        for bits in (24, 32, 48, 64):
            fp = prefix_fingerprint(b"some prefix", bits=bits)
            assert 0 <= fp < (1 << bits)

    def test_empty_prefix_ok(self):
        assert isinstance(prefix_fingerprint(b""), int)


class TestGolombCoding:
    def test_parameter_positive(self):
        assert golomb_parameter(1 << 30, 0) == 1
        assert golomb_parameter(1 << 30, 100) >= 1

    def test_roundtrip_simple(self):
        values = [0, 1, 5, 5, 100, 2**20]
        payload, m = encode_sorted(values, universe=2**24)
        assert decode_sorted(payload, m, len(values)) == values

    def test_empty(self):
        payload, m = encode_sorted([], universe=100)
        assert decode_sorted(payload, m, 0) == []

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            encode_sorted([5, 1], universe=100)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_sorted([-1, 2], universe=100)

    def test_coded_set_object(self):
        gs = GolombCodedSet([9, 2, 5], universe=1 << 16)
        assert gs.values == [2, 5, 9]
        assert gs.decode() == [2, 5, 9]
        assert len(gs) == 3
        assert list(gs) == [2, 5, 9]

    def test_compression_beats_fixed_width_for_dense_sets(self):
        # 1000 values in a 2^24 universe: ~14 bits each fixed vs ~ log2(gap)+2
        values = sorted(range(0, 1 << 20, 1 << 10))
        gs = GolombCodedSet(values, universe=1 << 24)
        assert gs.wire_bytes() < len(values) * 3


class TestMessageTypes:
    def test_fingerprint_block_iteration(self):
        blk = FingerprintBlock([3, 1], bits=32)
        assert list(blk) == [3, 1]
        assert len(blk) == 2

    def test_bitvector_roundtrip(self):
        bv = BitVector([True, False, True])
        assert list(bv) == [True, False, True]


def _run_detection(per_pe_fingerprints, golomb=False, bits=32):
    """Helper: run find_unique_fingerprints on the SPMD engine."""
    def prog(comm, fps):
        return find_unique_fingerprints(comm, fps, bits=bits, golomb=golomb)

    results, report = run_spmd(
        len(per_pe_fingerprints),
        prog,
        args_per_rank=[(fps,) for fps in per_pe_fingerprints],
    )
    return results, report


class TestFindUniqueFingerprints:
    @pytest.mark.parametrize("golomb", [False, True])
    def test_basic_detection(self, golomb):
        # value 7 appears on PEs 0 and 2; 1, 2, 3 are unique
        per_pe = [[7, 1], [2], [7, 3]]
        results, _ = _run_detection(per_pe, golomb=golomb)
        assert results[0] == [False, True]
        assert results[1] == [True]
        assert results[2] == [False, True]

    def test_duplicates_within_one_pe(self):
        per_pe = [[5, 5, 8], [9]]
        results, _ = _run_detection(per_pe)
        assert results[0] == [False, False, True]
        assert results[1] == [True]

    def test_all_unique(self):
        per_pe = [[1, 2], [3, 4], [5]]
        results, _ = _run_detection(per_pe)
        assert all(all(r) for r in results)

    def test_all_duplicated(self):
        per_pe = [[42], [42], [42]]
        results, _ = _run_detection(per_pe)
        assert all(r == [False] for r in results)

    def test_empty_pes_are_fine(self):
        per_pe = [[], [11], []]
        results, _ = _run_detection(per_pe)
        assert results == [[], [True], []]

    def test_never_declares_true_duplicate_unique(self):
        # safety property: identical values can never come back "unique"
        import random

        rng = random.Random(3)
        per_pe = [[rng.randrange(100) for _ in range(50)] for _ in range(4)]
        results, _ = _run_detection(per_pe)
        from collections import Counter

        counts = Counter(v for fps in per_pe for v in fps)
        for fps, verdicts in zip(per_pe, results):
            for v, unique in zip(fps, verdicts):
                if counts[v] > 1:
                    assert not unique
                else:
                    assert unique

    def test_out_of_range_fingerprint_rejected(self):
        from repro.mpi import SpmdError

        with pytest.raises(SpmdError):
            _run_detection([[2**40], [1]], bits=32)

    def test_golomb_reduces_traffic(self):
        import random

        rng = random.Random(1)
        per_pe = [[rng.randrange(1 << 32) for _ in range(400)] for _ in range(4)]
        _, plain_report = _run_detection(per_pe, golomb=False, bits=32)
        _, golomb_report = _run_detection(per_pe, golomb=True, bits=32)
        assert golomb_report.total_bytes_sent < plain_report.total_bytes_sent

    def test_verdicts_come_back_in_input_order(self):
        # fingerprints deliberately unsorted per destination
        per_pe = [[90, 10, 50, 10], [70]]
        results, _ = _run_detection(per_pe)
        assert results[0] == [True, False, True, False]
