"""Docs gate: the public API surface must stay docstring-covered.

A dependency-free twin of ``interrogate`` (which CI's docs-lint job also
runs): walks every module under ``src/repro`` with ``ast`` and counts
docstrings on modules, public classes, public functions and public methods.
Two assertions keep documentation from regressing:

* the named public entry points (the ones README and the docs promise) must
  each be documented, individually;
* overall public-surface coverage must stay at or above the floor.

The floor is set at the coverage this PR established; raise it if you push
coverage higher, never lower it.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterator, List, Tuple

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# Coverage achieved by PR 3; regressions below this fail the suite.
COVERAGE_FLOOR = 0.95

# The promised public API surface: every one of these must be documented.
REQUIRED = {
    "repro/dist/api.py": ["dsort", "DSortResult", "RankOutput", "distribute_strings"],
    "repro/session/cluster.py": ["Cluster", "Cluster.sort", "Cluster.sort_batches"],
    "repro/session/specs.py": [
        "SortSpec",
        "SortSpec.to_dict",
        "SortSpec.from_dict",
        "SortSpec.config_hash",
        "spec_from_options",
    ],
    "repro/session/registry.py": [
        "AlgorithmRegistry",
        "AlgorithmEntry",
        "register_algorithm",
        "default_registry",
    ],
    "repro/session/stream.py": ["BatchStream"],
    "repro/dist/exchange.py": [
        "exchange_buckets",
        "exchange_buckets_async",
        "StringBlock",
        "LcpCompressedBlock",
    ],
    "repro/mpi/engine.py": [
        "run_spmd",
        "ThreadComm",
        "ThreadEngine",
        "ThreadEngine.run",
        "get_engine",
        "register_engine",
    ],
    "repro/mpi/comm.py": ["Communicator", "Request", "waitall", "waitany"],
    "repro/strings/stringset.py": ["StringSet"],
    "repro/strings/packed.py": ["PackedStringArray"],
    "repro/net/metrics.py": [
        "TrafficReport",
        "TrafficMeter",
        "merge_traffic_reports",
    ],
    "repro/net/cost_model.py": ["MachineModel"],
}


def _public_nodes(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualified name, node)`` for the module's public surface."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and not sub.name.startswith("_"):
                        yield f"{node.name}.{sub.name}", sub


def _coverage() -> Tuple[int, int, List[str]]:
    total = documented = 0
    missing: List[str] = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        rel = path.relative_to(SRC.parent).as_posix()
        for name, node in _public_nodes(tree):
            total += 1
            if ast.get_docstring(node):
                documented += 1
            else:
                missing.append(f"{rel}:{getattr(node, 'lineno', 0)} {name}")
    return total, documented, missing


def test_required_api_is_documented():
    for rel, names in REQUIRED.items():
        tree = ast.parse((SRC.parent / rel).read_text())
        public = {name: node for name, node in _public_nodes(tree)}
        for name in names:
            assert name in public, f"{rel}: promised API {name!r} disappeared"
            assert ast.get_docstring(public[name]), (
                f"{rel}: public API {name!r} has no docstring"
            )


def test_public_surface_coverage_floor():
    total, documented, missing = _coverage()
    assert total > 200, "docstring walker found suspiciously few definitions"
    coverage = documented / total
    assert coverage >= COVERAGE_FLOOR, (
        f"public docstring coverage {coverage:.1%} fell below the "
        f"{COVERAGE_FLOOR:.0%} floor; undocumented:\n  " + "\n  ".join(missing)
    )
