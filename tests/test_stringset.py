"""Unit tests for repro.strings.stringset."""

import pytest

from repro.strings.stringset import (
    StringSet,
    concat_size,
    effective_alphabet,
    max_length,
    validate_strings,
)


class TestValidateStrings:
    def test_bytes_pass_through(self):
        assert validate_strings([b"ab", b"c"]) == [b"ab", b"c"]

    def test_str_encoded_utf8(self):
        assert validate_strings(["ab", "ü"]) == [b"ab", "ü".encode("utf-8")]

    def test_bytearray_converted(self):
        assert validate_strings([bytearray(b"xy")]) == [b"xy"]

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            validate_strings([123])

    def test_empty_iterable(self):
        assert validate_strings([]) == []


class TestModuleHelpers:
    def test_concat_size(self):
        assert concat_size([b"ab", b"", b"cde"]) == 5

    def test_concat_size_empty(self):
        assert concat_size([]) == 0

    def test_max_length(self):
        assert max_length([b"ab", b"abcd", b""]) == 4

    def test_max_length_empty(self):
        assert max_length([]) == 0

    def test_effective_alphabet(self):
        assert effective_alphabet([b"aab", b"ba"]) == 2
        assert effective_alphabet([b"abc", b"d"]) == 4

    def test_effective_alphabet_empty(self):
        assert effective_alphabet([]) == 0


class TestStringSetBasics:
    def test_len_iter_getitem(self):
        ss = StringSet([b"b", b"a", b"c"])
        assert len(ss) == 3
        assert list(ss) == [b"b", b"a", b"c"]
        assert ss[1] == b"a"

    def test_slice_returns_stringset(self):
        ss = StringSet([b"b", b"a", b"c"])
        sub = ss[1:]
        assert isinstance(sub, StringSet)
        assert list(sub) == [b"a", b"c"]

    def test_equality_with_list_and_stringset(self):
        assert StringSet([b"a"]) == [b"a"]
        assert StringSet([b"a"]) == StringSet([b"a"])
        assert StringSet([b"a"]) != StringSet([b"b"])

    def test_str_inputs_are_encoded(self):
        ss = StringSet(["abc"])
        assert ss[0] == b"abc"


class TestStringSetStatistics:
    def test_table1_quantities(self):
        ss = StringSet([b"alpha", b"beta", b"gamma!"])
        assert ss.num_strings == 3
        assert ss.num_chars == 5 + 4 + 6
        assert ss.max_len == 6
        assert ss.average_length == pytest.approx(5.0)

    def test_alphabet_size(self):
        ss = StringSet([b"aa", b"ab"])
        assert ss.alphabet_size == 2

    def test_empty_set(self):
        ss = StringSet([])
        assert ss.num_strings == 0
        assert ss.num_chars == 0
        assert ss.max_len == 0
        assert ss.average_length == 0.0

    def test_statistics_are_cached(self):
        ss = StringSet([b"abc"])
        assert ss.num_chars == 3
        # mutating the underlying list after the first access does not change
        # the cached value; callers hand over ownership
        ss.strings.append(b"zzzz")
        assert ss.num_chars == 3


class TestStringSetOperations:
    def test_sorted_and_is_sorted(self):
        ss = StringSet([b"b", b"a"])
        assert not ss.is_sorted()
        assert ss.sorted().is_sorted()
        assert list(ss.sorted()) == [b"a", b"b"]

    def test_is_sorted_with_duplicates(self):
        assert StringSet([b"a", b"a", b"b"]).is_sorted()

    def test_split_round_robin(self):
        ss = StringSet([b"0", b"1", b"2", b"3", b"4"])
        parts = ss.split_round_robin(2)
        assert [list(p) for p in parts] == [[b"0", b"2", b"4"], [b"1", b"3"]]

    def test_split_blocks_covers_everything(self):
        ss = StringSet([bytes([c]) for c in range(97, 97 + 10)])
        parts = ss.split_blocks(3)
        assert sum(len(p) for p in parts) == 10
        assert [s for p in parts for s in p] == list(ss)

    def test_split_by_chars_balances_characters(self):
        ss = StringSet([b"x" * 10] * 4 + [b"y"] * 4)
        parts = ss.split_by_chars(2)
        sizes = [sum(len(s) for s in p) for p in parts]
        assert sum(sizes) == ss.num_chars
        # the heavy strings should not all end up on one side
        assert max(sizes) <= ss.num_chars * 0.75

    def test_split_invalid_parts(self):
        ss = StringSet([b"a"])
        with pytest.raises(ValueError):
            ss.split_blocks(0)
        with pytest.raises(ValueError):
            ss.split_round_robin(-1)
        with pytest.raises(ValueError):
            ss.split_by_chars(0)

    def test_concat(self):
        a = StringSet([b"a"])
        b = StringSet([b"b"])
        assert list(a.concat(b)) == [b"a", b"b"]
