"""Cross-algorithm agreement: every sorter, one truth.

All full-string algorithms must produce byte-identical global outputs (the
sorted input), and the two PDMS variants must produce byte-identical prefix
permutations, on the paper's three stress regimes: tunable D/N, skewed
lengths, and heavy duplication.  Everything is verified through
``repro.strings.checker`` *and* against ``sorted()`` ground truth.
"""

import pytest

from repro.dist import ALGORITHMS, dsort
from repro.strings.checker import check_distributed_sort, check_prefix_permutation
from repro.strings.generators import (
    dn_instance,
    duplicate_heavy,
    skewed_dn_instance,
)

FULL_STRING_ALGORITHMS = ("ms", "ms-simple", "hquick", "fkmerge")
PREFIX_ALGORITHMS = ("pdms", "pdms-golomb")

INSTANCES = {
    "dn40": lambda: dn_instance(600, 0.4, length=50, seed=101),
    "skewed": lambda: skewed_dn_instance(500, 0.5, length=40, seed=102),
    "duplicates": lambda: duplicate_heavy(700, 15, 12, seed=103),
}


def test_registry_covers_all_paper_algorithms():
    assert set(ALGORITHMS) == set(FULL_STRING_ALGORITHMS) | set(PREFIX_ALGORITHMS)


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_full_string_algorithms_agree(name):
    data = INSTANCES[name]()
    truth = sorted(data)
    flat_outputs = {}
    for algorithm in FULL_STRING_ALGORITHMS:
        res = dsort(data, algorithm=algorithm, num_pes=4, seed=7)
        check_distributed_sort(res.inputs_per_pe, res.outputs_per_pe)
        flat_outputs[algorithm] = res.sorted_strings
    for algorithm, flat in flat_outputs.items():
        assert flat == truth, f"{algorithm} disagrees with ground truth on {name}"


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_prefix_algorithms_agree(name):
    data = INSTANCES[name]()
    truth = sorted(data)
    outputs = {}
    for algorithm in PREFIX_ALGORITHMS:
        res = dsort(data, algorithm=algorithm, num_pes=4, seed=7)
        check_prefix_permutation(res.inputs_per_pe, res.outputs_per_pe)
        outputs[algorithm] = res.sorted_strings
    # Golomb coding changes the wire format only, never the detection
    # outcome, so the two variants emit identical prefix streams
    assert outputs["pdms"] == outputs["pdms-golomb"]
    # the sorted prefix stream aligns with the sorted full strings: position
    # by position, the ground-truth string extends the emitted prefix
    prefixes = outputs["pdms"]
    assert len(prefixes) == len(truth)
    for full, prefix in zip(truth, prefixes):
        assert full.startswith(prefix)


class TestDegenerateConfigurations:
    """Regression tests: pathological knobs must degrade safely, not silently."""

    def test_doubling_round_exhaustion_keeps_prefixes_valid(self):
        # epsilon so small the candidate length grows by +1 per round: the
        # 64-round safety net triggers with strings still active, which must
        # retire them at full length (a valid DIST bound), not at zero
        data = [b"x" * 100 + bytes([65 + i]) for i in range(8)]
        res = dsort(
            data, algorithm="pdms", num_pes=2, check=True,
            epsilon=0.01, initial_length=1,
        )
        assert sorted(res.sorted_strings) == sorted(data)

    def test_char_distribution_of_all_empty_strings_stays_balanced(self):
        from repro.dist import distribute_strings

        blocks = distribute_strings([b""] * 10, 4, by="chars")
        assert sum(len(b) for b in blocks) == 10
        assert max(len(b) for b in blocks) - min(len(b) for b in blocks) <= 1


@pytest.mark.parametrize("p", [1, 3, 4])
def test_agreement_across_pe_counts(p):
    data = dn_instance(400, 0.6, length=40, seed=104)
    truth = sorted(data)
    for algorithm in FULL_STRING_ALGORITHMS:
        res = dsort(data, algorithm=algorithm, num_pes=p, check=True, seed=p)
        assert res.sorted_strings == truth
