"""Micro-benchmark of the packed (vectorized) exchange hot path — PR 2.

Measures, stage by stage, the 100k-strings/PE exchange that the ROADMAP
called unreachable with the scalar ``list[bytes]`` code:

* ``lcp``        — LCP array of the locally sorted run (packing included);
* ``partition``  — cutting the run into per-destination buckets;
* ``encode``     — LCP front coding of every bucket;
* ``wire``       — varint/payload wire-byte accounting of every block;
* ``decode``     — reconstructing the received runs.

Each stage runs twice: once over ``list[bytes]`` with the scalar code
(``use_packed(False)``) and once over :class:`PackedStringArray` with the
vectorized kernels.  The acceptance gate asserts the aggregate pipeline is
**≥ 5× faster** and — crucially — that wire bytes and decoded strings are
bit-identical.  A second test pins byte-identical sorted output and traffic
across all six ``dsort`` algorithms with the packed path on and off.

Results are written to ``BENCH_PR2.json`` (strings/second per stage) so
future PRs have a trajectory to regress against; the CI perf-smoke job runs
exactly this module.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import scaled
from repro.dist.api import ALGORITHMS, dsort
from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.dist.partition import split_into_buckets, string_based_samples, select_splitters
from repro.sequential import sort_strings_with_lcp
from repro.strings.generators import commoncrawl_like, dn_instance
from repro.strings.lcp import lcp
from repro.strings.packed import (
    PackedStringArray,
    packed_lcp_array,
    use_packed,
)

# the ROADMAP's target scale: one PE's share of a large exchange
NUM_STRINGS = scaled(100_000, minimum=20_000)
NUM_DESTINATIONS = 8
SPEEDUP_GATE = 5.0

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def _scalar_lcp_array(strings):
    out = [0] * len(strings)
    for i in range(1, len(strings)):
        out[i] = lcp(strings[i - 1], strings[i])
    return out


def _timed(fn, reps=4):
    """Best-of-``reps`` wall time (first runs pay page-fault warmup)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def local_run():
    """One PE's locally sorted run plus the splitters it would receive."""
    corpus = commoncrawl_like(NUM_STRINGS, seed=11)
    srt, lcps = sort_strings_with_lcp(corpus)
    samples = string_based_samples(srt, 16 * NUM_DESTINATIONS)
    splitters = select_splitters(sorted(samples), NUM_DESTINATIONS)
    return srt, lcps, splitters


def _measure_pipelines(srt, splitters):
    """One measurement pass: per-stage best-of-reps times for both paths."""
    # -- scalar pipeline (the pre-PR2 code path) ------------------------------
    with use_packed(False):
        t_lcp_s, h_s = _timed(lambda: _scalar_lcp_array(srt))
        t_part_s, buckets_s = _timed(lambda: split_into_buckets(srt, h_s, splitters))
        t_enc_s, blocks_s = _timed(
            lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets_s]
        )
        t_wire_s, wires_s = _timed(lambda: [b.wire_bytes() for b in blocks_s])
        t_dec_s, decoded_s = _timed(lambda: [b.decode() for b in blocks_s])

    # -- packed pipeline (packing cost charged to the lcp stage) --------------
    def packed_lcp():
        arr = PackedStringArray.from_strings(srt)
        return arr, packed_lcp_array(arr)

    t_lcp_p, (arr, h_p) = _timed(packed_lcp)
    t_part_p, buckets_p = _timed(lambda: split_into_buckets(arr, h_p, splitters))
    t_enc_p, blocks_p = _timed(
        lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets_p]
    )
    t_wire_p, wires_p = _timed(lambda: [b.wire_bytes() for b in blocks_p])
    t_dec_p, decoded_p = _timed(lambda: [b.decode() for b in blocks_p])

    # -- identity: the packed path must change nothing but the speed ----------
    assert h_p.tolist() == h_s
    assert wires_p == wires_s
    assert [s for run, _ in decoded_p for s in run] == [
        s for run, _ in decoded_s for s in run
    ]
    assert [h for _, hs in decoded_p for h in hs] == [
        h for _, hs in decoded_s for h in hs
    ]

    scalar_times = {
        "lcp": t_lcp_s,
        "partition": t_part_s,
        "encode": t_enc_s,
        "wire": t_wire_s,
        "decode": t_dec_s,
    }
    packed_times = {
        "lcp": t_lcp_p,
        "partition": t_part_p,
        "encode": t_enc_p,
        "wire": t_wire_p,
        "decode": t_dec_p,
    }
    return scalar_times, packed_times


def test_packed_exchange_hotpath_speedup(local_run):
    srt, lcps, splitters = local_run
    n = len(srt)
    stages = {}

    # wall-clock gates flake under noisy-neighbour CPU contention; keep the
    # best of a few attempts (each stage is already best-of-reps inside)
    best = None
    for attempt in range(3):
        scalar_times, packed_times = _measure_pipelines(srt, splitters)
        ratio = sum(scalar_times.values()) / sum(packed_times.values())
        if best is None or ratio > best[0]:
            best = (ratio, scalar_times, packed_times)
        if best[0] >= SPEEDUP_GATE * 1.1:
            break
    _, scalar_times, packed_times = best
    for stage in scalar_times:
        s, p = scalar_times[stage], packed_times[stage]
        stages[stage] = {
            "scalar_seconds": round(s, 6),
            "packed_seconds": round(p, 6),
            "scalar_strings_per_sec": round(n / s) if s > 0 else None,
            "packed_strings_per_sec": round(n / p) if p > 0 else None,
            "speedup": round(s / p, 2) if p > 0 else None,
        }

    total_s = sum(scalar_times.values())
    total_p = sum(packed_times.values())
    speedup = total_s / total_p
    payload = {
        "benchmark": "packed exchange hot path (one PE, LCP-compressed)",
        "num_strings": n,
        "num_destinations": NUM_DESTINATIONS,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "stages": stages,
        "aggregate": {
            "scalar_seconds": round(total_s, 6),
            "packed_seconds": round(total_p, 6),
            "scalar_strings_per_sec": round(n / total_s),
            "packed_strings_per_sec": round(n / total_p),
            "speedup": round(speedup, 2),
            "gate": SPEEDUP_GATE,
        },
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= SPEEDUP_GATE, (
        f"packed exchange path only {speedup:.1f}x faster than scalar "
        f"(gate {SPEEDUP_GATE}x); stages: "
        + ", ".join(f"{k}={v['speedup']}x" for k, v in stages.items())
    )


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_all_algorithms_byte_identical(algorithm):
    """Packed vs scalar path: identical sorted output and wire accounting."""
    corpus = dn_instance(scaled(600, minimum=200), 0.7, length=48, seed=13)
    with use_packed(True):
        fast = dsort(corpus, algorithm=algorithm, num_pes=4, check=True, seed=5)
    with use_packed(False):
        slow = dsort(corpus, algorithm=algorithm, num_pes=4, check=True, seed=5)
    assert fast.sorted_strings == slow.sorted_strings
    assert fast.outputs_per_pe == slow.outputs_per_pe
    assert fast.report.total_bytes_sent == slow.report.total_bytes_sent
    assert dict(fast.report.phase_bytes) == dict(slow.report.phase_bytes)
    assert fast.report.bytes_sent_per_pe == slow.report.bytes_sent_per_pe
