"""Wire-checksum overhead on the exchange pipeline — perf-smoke gate (PR 7).

The fault subsystem seals every exchange block (:class:`StringBlock`,
:class:`LcpCompressedBlock`) with a CRC32 over its wire content, verified
at decode.  Sealing is opt-in (``use_wire_checksums`` / a fault plan with
corrupt rules), so the clean path pays nothing — but once armed, the seal
must stay cheap enough that turning detection on in production-style runs
is a non-decision.  This module measures exactly that price.

The gated measurement is one PE's share of a large distributed sort run
end-to-end through the packed (default) pipeline — local ``sort``,
``lcp``, ``partition``, ``encode``, ``wire``, ``decode``, ``merge`` — with
wire checksums off and then on.  Each bucket is sealed exactly once (the
LCP-front-coded block, the paper's exchange format): the seal is computed
at ``encode``, charged at ``wire`` and verified at ``decode``, while the
sort/partition/merge stages are identical shared work, exactly as in a
real job.  The acceptance gate asserts the sealed pipeline is **< 5%
slower** end to end (best of a few attempts; wall-clock gates flake under
noisy-neighbour CPU contention).

The JSON additionally records framing-only micro numbers — the seal cost
concentrated on just encode/wire/decode with nothing to amortise against —
for both the packed and the legacy scalar representation.  Those are
trajectory data, not gates: the packed framing stages are zero-copy
(microseconds for ~10⁵ strings), so *any* per-byte integrity check is a
large multiple of them, and the scalar representation is itself ~5× off
the production path.

Decoded runs and merged output must be bit-identical sealed vs unsealed,
and the sealed wire volume must exceed the unsealed by exactly
``CHECKSUM_WIRE_BYTES`` per block.  Results land in ``BENCH_PR7.json``;
the CI perf-smoke job runs this module and archives the JSON next to the
PR 6 trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import scaled
from repro.bench.harness import peak_rss_bytes
from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.dist.partition import (
    select_splitters,
    split_into_buckets,
    string_based_samples,
)
from repro.faults import CHECKSUM_WIRE_BYTES, use_wire_checksums
from repro.sequential.lcp_losertree import lcp_multiway_merge_packed
from repro.sequential.msd_radix import msd_radix_sort
from repro.strings.generators import commoncrawl_like
from repro.strings.packed import (
    PackedStringArray,
    packed_lcp_array,
)

NUM_STRINGS = scaled(60_000, minimum=10_000)
NUM_DESTINATIONS = 8
OVERHEAD_GATE = 0.05  # sealed pipeline: at most 5% over unsealed

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"


def _timed(fn, reps=4):
    """Best-of-``reps`` wall time (first runs pay page-fault warmup)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def workload():
    """One PE's unsorted block, its sorted run, and splitters (packed)."""
    corpus = commoncrawl_like(NUM_STRINGS, seed=11)
    packed = PackedStringArray.from_strings(corpus)
    srt, _ = msd_radix_sort(packed)
    samples = string_based_samples(srt.to_list(), 16 * NUM_DESTINATIONS)
    splitters = select_splitters(sorted(samples), NUM_DESTINATIONS)
    return packed, splitters


def _pipeline(packed, splitters, sealed):
    """One PE end to end: sort .. merge; per-stage best-of-reps times."""
    with use_wire_checksums(sealed):
        t_sort, (srt, _) = _timed(lambda: msd_radix_sort(packed))
        t_lcp, lcps = _timed(lambda: packed_lcp_array(srt))
        t_part, buckets = _timed(lambda: split_into_buckets(srt, lcps, splitters))
        t_enc, blocks = _timed(
            lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets]
        )
        t_wire, wires = _timed(lambda: [b.wire_bytes() for b in blocks])
        t_dec, decoded = _timed(lambda: [b.decode_run() for b in blocks])
        runs = [run for run, _ in decoded]
        run_lcps = [np.asarray(h, dtype=np.int64) for _, h in decoded]
        t_mrg, (merged, merged_lcps) = _timed(
            lambda: lcp_multiway_merge_packed(runs, run_lcps)
        )
    times = {
        "sort": t_sort,
        "lcp": t_lcp,
        "partition": t_part,
        "encode": t_enc,
        "wire": t_wire,
        "decode": t_dec,
        "merge": t_mrg,
    }
    return times, wires, merged, merged_lcps


def _framing_only(buckets, sealed, compressed):
    """Seal cost with nothing to amortise: just encode -> wire -> decode."""
    with use_wire_checksums(sealed):
        if compressed:
            t_enc, blocks = _timed(
                lambda: [LcpCompressedBlock.encode(s, h) for s, h in buckets]
            )
        else:
            t_enc, blocks = _timed(
                lambda: [StringBlock(s, h) for s, h in buckets]
            )
        t_wire, _ = _timed(lambda: [b.wire_bytes() for b in blocks])
        t_dec, _ = _timed(lambda: [b.decode_run() for b in blocks])
    return t_enc + t_wire + t_dec


def _stage_table(off_times, on_times):
    return {
        stage: {
            "unsealed_seconds": round(off_times[stage], 6),
            "sealed_seconds": round(on_times[stage], 6),
            "overhead": round(on_times[stage] / off_times[stage] - 1.0, 4)
            if off_times[stage] > 0
            else None,
        }
        for stage in off_times
    }


def test_wire_checksum_overhead_under_gate(workload):
    packed, splitters = workload
    n = len(packed)

    best = None
    for attempt in range(3):
        off_times, off_wires, off_merged, off_mlcps = _pipeline(
            packed, splitters, sealed=False
        )
        on_times, on_wires, on_merged, on_mlcps = _pipeline(
            packed, splitters, sealed=True
        )

        # identity: the seal changes wire volume by exactly its 4 bytes per
        # block and nothing else
        assert on_wires == [w + CHECKSUM_WIRE_BYTES for w in off_wires]
        assert on_merged.to_list() == off_merged.to_list()
        assert on_mlcps.tolist() == off_mlcps.tolist()

        overhead = sum(on_times.values()) / sum(off_times.values()) - 1.0
        if best is None or overhead < best[0]:
            best = (overhead, off_times, on_times)
        if best[0] < OVERHEAD_GATE * 0.6:
            break
    overhead, off_times, on_times = best

    # framing-only micro numbers (trajectory, not gated): seal arithmetic
    # against zero-copy framing, packed and scalar representations
    srt, _ = msd_radix_sort(packed)
    lcps = packed_lcp_array(srt)
    packed_buckets = split_into_buckets(srt, lcps, splitters)
    scalar_buckets = split_into_buckets(srt.to_list(), lcps.tolist(), splitters)
    framing = {}
    for label, buckets in (("packed", packed_buckets), ("scalar", scalar_buckets)):
        for compressed in (True, False):
            off = _framing_only(buckets, False, compressed)
            on = _framing_only(buckets, True, compressed)
            key = f"{label}_{'lcp_block' if compressed else 'string_block'}"
            framing[key] = {
                "unsealed_seconds": round(off, 6),
                "sealed_seconds": round(on, 6),
                "overhead": round(on / off - 1.0, 4),
            }

    payload = {
        "benchmark": "wire-checksum seal overhead (one PE end to end)",
        "num_strings": n,
        "num_blocks": len(packed_buckets),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "pipeline": {
            "stages": _stage_table(off_times, on_times),
            "unsealed_seconds": round(sum(off_times.values()), 6),
            "sealed_seconds": round(sum(on_times.values()), 6),
            "overhead": round(overhead, 4),
            "gate": OVERHEAD_GATE,
        },
        "framing_only": framing,
        "seal_bytes_per_block": CHECKSUM_WIRE_BYTES,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead < OVERHEAD_GATE, (
        f"wire checksums cost {overhead * 100:.1f}% on the one-PE pipeline "
        f"(gate {OVERHEAD_GATE * 100:.0f}%); stages: "
        + ", ".join(
            f"{k}={v['overhead']}"
            for k, v in _stage_table(off_times, on_times).items()
        )
    )


def test_sealed_contents_identical_across_representations(workload):
    """Packed- and scalar-backed sealed blocks agree on content seals."""
    packed, splitters = workload
    srt, _ = msd_radix_sort(packed)
    lcps = packed_lcp_array(srt)
    packed_buckets = split_into_buckets(srt, lcps, splitters)
    scalar_buckets = split_into_buckets(srt.to_list(), lcps.tolist(), splitters)
    with use_wire_checksums(True):
        for (ps, ph), (ss, sh) in zip(packed_buckets, scalar_buckets):
            pb = LcpCompressedBlock.encode(ps, ph)
            sb = LcpCompressedBlock.encode(ss, list(sh))
            assert pb.content_crc() == sb.content_crc()
            pr = StringBlock(ps, ph)
            sr = StringBlock(list(ss), list(sh))
            assert pr.content_crc() == sr.content_crc()
