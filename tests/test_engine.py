"""Tests for the SPMD thread engine and its simulated communicator."""

import time

import pytest

from repro.mpi import ReduceOp, SpmdError, run_spmd
from repro.net.metrics import TrafficMeter


class TestRunSpmd:
    def test_single_rank(self):
        results, report = run_spmd(1, lambda comm: comm.rank)
        assert results == [0]
        assert report.total_bytes_sent == 0

    def test_results_in_rank_order(self):
        results, _ = run_spmd(6, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30, 40, 50]

    def test_per_rank_and_common_args(self):
        def prog(comm, mine, shared):
            return (mine, shared)

        results, _ = run_spmd(
            3, prog, args_per_rank=[(i,) for i in "abc"], common_args=("x",)
        )
        assert results == [("a", "x"), ("b", "x"), ("c", "x")]

    def test_invalid_num_pes(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_args_per_rank_length_mismatch(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm, x: x, args_per_rank=[(1,)])

    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(SpmdError, match="boom"):
            run_spmd(4, prog)

    def test_external_meter_is_used(self):
        meter = TrafficMeter(2)
        run_spmd(2, lambda comm: comm.send(b"x", 1 - comm.rank), meter=meter)
        assert meter.report().total_bytes_sent > 0


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"k": 1}, dest=1)
                return None
            return comm.recv(source=0)

        results, report = run_spmd(2, prog)
        assert results[1] == {"k": 1}
        assert report.bytes_sent_per_pe[0] > 0

    def test_ring_sendrecv(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, right)
            return comm.recv(left)

        results, _ = run_spmd(5, prog)
        assert results == [4, 0, 1, 2, 3]

    def test_pairwise_sendrecv(self):
        def prog(comm):
            peer = comm.rank ^ 1
            return comm.sendrecv(comm.rank * 2, peer)

        results, _ = run_spmd(4, prog)
        assert results == [2, 0, 6, 4]

    def test_message_order_is_preserved(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1)
                return None
            return [comm.recv(0) for _ in range(10)]

        results, _ = run_spmd(2, prog)
        assert results[1] == list(range(10))

    def test_explicit_nbytes_overrides_accounting(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"xxxx", 1, nbytes=1000)
            else:
                comm.recv(0)

        _, report = run_spmd(2, prog)
        assert report.bytes_sent_per_pe[0] == 1000

    def test_invalid_destination(self):
        def prog(comm):
            comm.send(1, 99)

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestCollectives:
    def test_barrier(self):
        results, _ = run_spmd(4, lambda comm: comm.barrier() or comm.rank)
        assert results == [0, 1, 2, 3]

    def test_bcast_from_each_root(self):
        def prog(comm, root):
            value = f"payload-{comm.rank}" if comm.rank == root else None
            return comm.bcast(value, root=root)

        for root in range(3):
            results, _ = run_spmd(3, prog, common_args=(root,))
            assert results == [f"payload-{root}"] * 3

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank ** 2, root=1)

        results, _ = run_spmd(4, prog)
        assert results[1] == [0, 1, 4, 9]
        assert results[0] is None and results[2] is None

    def test_scatter(self):
        def prog(comm):
            data = [f"part{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        results, _ = run_spmd(4, prog)
        assert results == ["part0", "part1", "part2", "part3"]

    def test_scatter_requires_one_object_per_rank(self):
        def prog(comm):
            data = [1] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        with pytest.raises(SpmdError):
            run_spmd(3, prog)

    def test_allgather(self):
        results, _ = run_spmd(5, lambda comm: comm.allgather(comm.rank))
        assert all(r == [0, 1, 2, 3, 4] for r in results)

    def test_alltoall_transpose(self):
        def prog(comm):
            return comm.alltoall([(comm.rank, d) for d in range(comm.size)])

        results, _ = run_spmd(4, prog)
        for r, received in enumerate(results):
            assert received == [(src, r) for src in range(4)]

    def test_alltoall_requires_one_object_per_rank(self):
        def prog(comm):
            return comm.alltoall([1, 2])

        with pytest.raises(SpmdError):
            run_spmd(3, prog)

    def test_reduce_and_allreduce(self):
        def prog(comm):
            total = comm.allreduce(comm.rank + 1, ReduceOp.SUM)
            largest = comm.allreduce(comm.rank, ReduceOp.MAX)
            smallest = comm.allreduce(comm.rank, ReduceOp.MIN)
            rooted = comm.reduce(comm.rank + 1, ReduceOp.SUM, root=2)
            return (total, largest, smallest, rooted)

        results, _ = run_spmd(4, prog)
        assert all(r[0] == 10 and r[1] == 3 and r[2] == 0 for r in results)
        assert results[2][3] == 10
        assert results[0][3] is None

    def test_reduce_with_custom_callable(self):
        def prog(comm):
            return comm.allreduce([comm.rank], op=lambda parts: sum(parts, []))

        results, _ = run_spmd(3, prog)
        assert all(r == [0, 1, 2] for r in results)

    def test_unknown_reduce_op(self):
        def prog(comm):
            return comm.allreduce(1, op="median")

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestAccounting:
    def test_alltoall_records_pairwise_bytes(self):
        def prog(comm):
            msgs = [b"x" * (10 * (d + 1)) for d in range(comm.size)]
            comm.alltoall(msgs)

        _, report = run_spmd(3, prog)
        # each rank sends 10+20+30 bytes of payload to others minus its own slot
        for rank in range(3):
            own = 10 * (rank + 1)
            assert report.bytes_sent_per_pe[rank] >= 60 - own

    def test_collective_events_are_recorded(self):
        def prog(comm):
            comm.bcast(b"z" * 100 if comm.rank == 0 else None, root=0)
            comm.alltoall([b"" for _ in range(comm.size)])

        _, report = run_spmd(4, prog)
        kinds = [c.kind for c in report.collectives]
        assert "bcast" in kinds and "alltoall" in kinds

    def test_phase_labels_flow_into_report(self):
        def prog(comm):
            with comm.phase("stage-a"):
                comm.send(b"abc", (comm.rank + 1) % comm.size)
                comm.recv((comm.rank - 1) % comm.size)

        _, report = run_spmd(2, prog)
        assert "stage-a" in report.phase_bytes

    def test_record_local_work(self):
        def prog(comm):
            comm.record_local_work(1000, 10)

        _, report = run_spmd(2, prog)
        assert report.chars_inspected_per_pe == [1000, 1000]
        assert report.items_processed_per_pe == [10, 10]

    def test_bcast_total_volume_is_p_minus_one_copies(self):
        def prog(comm):
            comm.bcast(b"y" * 50 if comm.rank == 1 else None, root=1)

        _, report = run_spmd(5, prog)
        assert report.total_bytes_sent == 4 * (50 + 1)


class TestRecvDeadlockClock:
    """The recv deadlock timeout counts from *posting*, not the first poll.

    A rank that posts an ``irecv`` and then computes for longer than the
    timeout before ever polling used to restart the clock at its first
    ``test()`` call, doubling the time to detect a dead peer.
    """

    def test_timeout_counts_from_post_not_first_poll(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1)
                # compute past the whole timeout before the first poll; the
                # deadlock clock must already have been running since irecv
                time.sleep(0.7)
                req.wait()  # raises: rank 1 never sends
            else:
                time.sleep(0.2)

        start = time.monotonic()
        # the thread engine reports the late peer as a recv timeout; the
        # processes engine may detect the peer's death even earlier via the
        # closed pipe — both must fire at the first poll, not a reset clock
        with pytest.raises(SpmdError, match="timed out|timeout|lost the connection"):
            run_spmd(2, prog, timeout=0.5)
        elapsed = time.monotonic() - start
        # fixed clock: abort fires at the first poll (~0.7 s in).  The old
        # first-poll clock would not fire before ~1.2 s.
        assert elapsed < 1.1, f"deadlock detection took {elapsed:.2f}s"

    def test_posted_then_polled_within_timeout_still_completes(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1)
                time.sleep(0.1)
                return req.wait()
            comm.send(b"payload", 0)
            return None

        results, _ = run_spmd(2, prog, timeout=5.0)
        assert results[0] == b"payload"


class TestEngineStateReuse:
    """Machine reuse vs. transparent rebuild of poisoned shared state.

    A :class:`ThreadEngine` keeps its barrier/queues across clean runs
    (``state_reuses`` counts those), but a failed run can leave the barrier
    broken or messages stranded in a queue — the next run must rebuild the
    state transparently, and the rebuild must NOT count as a reuse.
    """

    @staticmethod
    def _engine(num_pes=2, timeout=5.0):
        from repro.mpi.engine import ThreadEngine

        return ThreadEngine(num_pes, timeout=timeout)

    def test_clean_runs_reuse_state(self):
        eng = self._engine()
        for _ in range(3):
            eng.run(lambda comm: comm.sendrecv(comm.rank, 1 - comm.rank))
        assert eng.runs_completed == 3
        assert eng.state_reuses == 2  # first run builds, the next two reuse

    def test_rank_exception_poisons_state(self):
        eng = self._engine()

        def boom(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(SpmdError, match="boom"):
            eng.run(boom)
        # the next run rebuilds (broken barrier), succeeds, and the rebuild
        # is not counted as a reuse
        results, _ = eng.run(lambda comm: comm.rank)
        assert results == [0, 1]
        assert eng.state_reuses == 0
        # ... and the rebuilt state is reusable again afterwards
        eng.run(lambda comm: comm.rank)
        assert eng.state_reuses == 1

    def test_stray_queued_message_prevents_reuse(self):
        eng = self._engine()

        def leaky(comm):
            # rank 0 sends a message nobody ever receives
            if comm.rank == 0:
                comm.send(b"stray", 1)
            comm.barrier()

        eng.run(leaky)
        # queue (0, 1) still holds the stray message: state is not clean
        results, _ = eng.run(lambda comm: comm.rank)
        assert results == [0, 1]
        assert eng.state_reuses == 0

    def test_failed_then_clean_runs_keep_results_correct(self):
        eng = self._engine()

        def flaky(comm, fail):
            if fail and comm.rank == 1:
                raise ValueError("injected")
            return comm.sendrecv(comm.rank * 10, 1 - comm.rank)

        with pytest.raises(SpmdError):
            eng.run(flaky, common_args=(True,))
        results, report = eng.run(flaky, common_args=(False,))
        assert results == [10, 0]
        # per-run meters: the failed attempt's bytes must not leak in
        _, clean_report = self._engine().run(flaky, common_args=(False,))
        assert report.total_bytes_sent == clean_report.total_bytes_sent
