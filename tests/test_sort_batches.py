"""Streaming batch ingest: laziness, per-batch results, exact merged totals."""

import pytest

from repro.net.metrics import TrafficReport, merge_traffic_reports
from repro.session import BatchStream, Cluster, MSSpec, PDMSGolombSpec
from repro.strings.generators import dn_instance, random_strings


def _chunks(n_chunks, per_chunk, seed=1):
    data = random_strings(n_chunks * per_chunk, 1, 12, seed=seed)
    return [data[i * per_chunk : (i + 1) * per_chunk] for i in range(n_chunks)]


class TestSortBatches:
    def test_each_batch_is_a_full_sort(self):
        cluster = Cluster(num_pes=3)
        chunks = _chunks(4, 90)
        results = list(cluster.sort_batches(chunks, MSSpec(), check=True))
        assert len(results) == 4
        for chunk, res in zip(chunks, results):
            assert res.sorted_strings == sorted(chunk)
            assert res.num_strings == len(chunk)

    def test_merged_report_equals_sum_of_batches(self):
        cluster = Cluster(num_pes=4)
        chunks = _chunks(5, 120, seed=2)
        stream = cluster.sort_batches(chunks, MSSpec())
        per_batch = list(stream)
        merged = stream.merged_report

        assert merged.total_bytes_sent == sum(
            r.report.total_bytes_sent for r in per_batch
        )
        for pe in range(4):
            assert merged.bytes_sent_per_pe[pe] == sum(
                r.report.bytes_sent_per_pe[pe] for r in per_batch
            )
            assert merged.messages_per_pe[pe] == sum(
                r.report.messages_per_pe[pe] for r in per_batch
            )
            assert merged.chars_inspected_per_pe[pe] == sum(
                r.report.chars_inspected_per_pe[pe] for r in per_batch
            )
        for phase in {p for r in per_batch for p in r.report.phase_bytes}:
            assert merged.phase_bytes[phase] == sum(
                r.report.phase_bytes.get(phase, 0) for r in per_batch
            )
        assert len(merged.collectives) == sum(
            len(r.report.collectives) for r in per_batch
        )
        assert stream.num_strings == sum(r.num_strings for r in per_batch)
        assert stream.num_chars == sum(r.num_chars for r in per_batch)
        assert stream.batches_done == 5
        assert stream.bytes_per_string() > 0

    def test_ingest_is_lazy(self):
        pulled = []

        def source():
            for i, chunk in enumerate(_chunks(3, 50, seed=3)):
                pulled.append(i)
                yield chunk

        cluster = Cluster(num_pes=2)
        stream = cluster.sort_batches(source(), MSSpec())
        assert pulled == []  # nothing consumed before iteration
        next(stream)
        assert pulled == [0]  # exactly one chunk in memory at a time
        next(stream)
        assert pulled == [0, 1]
        stream.run()
        assert pulled == [0, 1, 2]
        assert stream.batches_done == 3

    def test_run_drains_and_returns_stream(self):
        cluster = Cluster(num_pes=2)
        stream = cluster.sort_batches(_chunks(3, 40, seed=4), "pdms-golomb")
        assert stream.run() is stream
        assert stream.batches_done == 3
        assert stream.merged_report.total_bytes_sent > 0
        assert isinstance(stream, BatchStream)
        assert isinstance(stream.spec, PDMSGolombSpec)

    def test_empty_source(self):
        stream = Cluster(num_pes=3).sort_batches([], MSSpec())
        assert list(stream) == []
        assert stream.batches_done == 0
        assert stream.merged_report.total_bytes_sent == 0
        assert stream.bytes_per_string() == 0.0

    def test_batches_reuse_the_machine(self):
        cluster = Cluster(num_pes=3)
        cluster.sort_batches(_chunks(4, 30, seed=5), MSSpec()).run()
        assert cluster.engine.state_reuses >= 3

    def test_overlapping_cluster_settings_apply_per_batch(self):
        chunks = [
            dn_instance(num_strings=200, dn=0.5, length=30, seed=6)
            for _ in range(2)
        ]
        sync = Cluster(num_pes=3, async_exchange=False)
        overlapped = Cluster(num_pes=3, async_exchange=True)
        a = sync.sort_batches(chunks, MSSpec()).run()
        b = overlapped.sort_batches(chunks, MSSpec()).run()
        assert a.merged_report.total_bytes_sent == b.merged_report.total_bytes_sent
        assert b.merged_report.overlap_fraction("exchange") > 0.0


class TestMergeTrafficReports:
    def test_empty_merge_is_zero(self):
        merged = merge_traffic_reports([])
        assert merged.total_bytes_sent == 0
        assert merged.phase_bytes == {}

    def test_single_report_is_identity(self):
        res = Cluster(num_pes=2).sort(random_strings(60, 1, 8, seed=7), MSSpec())
        merged = merge_traffic_reports([res.report])
        assert merged.bytes_sent_per_pe == res.report.bytes_sent_per_pe
        assert merged.phase_bytes == res.report.phase_bytes

    def test_overlap_fraction_merges_bytes_weighted(self):
        """Regression: the merged overlap fraction is the bytes-weighted
        average of the inputs' fractions — not whatever the first report
        carried, and not a wall-clock-window average."""

        def leaf(nbytes, overlap_s, window_s):
            report = TrafficReport(
                num_pes=2,
                bytes_sent_per_pe=[nbytes, 0],
                bytes_received_per_pe=[0, nbytes],
                messages_per_pe=[1, 0],
                phase_bytes={"exchange": nbytes},
                chars_inspected_per_pe=[0, 0],
                items_processed_per_pe=[0, 0],
                forwarded_bytes_per_pe=[0, 0],
            )
            report.overlap_seconds = {"exchange": overlap_s}
            report.overlap_window_seconds = {"exchange": window_s}
            return report

        # fractions 0.8 (tiny run, huge slow window) and 0.1 (big fast run):
        # a window-weighted average would give ~0.73, first-report carry 0.8
        a = leaf(nbytes=100, overlap_s=8.0, window_s=10.0)
        b = leaf(nbytes=900, overlap_s=0.01, window_s=0.1)
        assert a.overlap_fraction("exchange") == pytest.approx(0.8)
        assert b.overlap_fraction("exchange") == pytest.approx(0.1)

        merged = merge_traffic_reports([a, b])
        expected = (0.8 * 100 + 0.1 * 900) / (100 + 900)
        assert merged.overlap_fraction("exchange") == pytest.approx(expected)
        # order independence (weighted averages commute)
        assert merge_traffic_reports([b, a]).overlap_fraction(
            "exchange"
        ) == pytest.approx(expected)
        # associativity: folding a merged report preserves the weighting
        c = leaf(nbytes=1000, overlap_s=0.0, window_s=0.5)
        nested = merge_traffic_reports([merged, c])
        flat = merge_traffic_reports([a, b, c])
        assert nested.overlap_fraction("exchange") == pytest.approx(
            flat.overlap_fraction("exchange")
        )
        assert flat.overlap_fraction("exchange") == pytest.approx(
            (0.8 * 100 + 0.1 * 900 + 0.0 * 1000) / 2000
        )

    def test_zero_byte_batches_merge_to_zero_overlap(self):
        """Regression: merging batches that moved no bytes reads 0.0.

        The leaf fold used to skip zero-byte phases entirely, leaving the
        merged report's bytes-weighted ledger empty so ``overlap_fraction``
        fell back to the constituents' summed wall-clock windows — a batch
        that moved nothing could report a large overlap fraction.
        """

        def leaf(nbytes, overlap_s, window_s):
            report = TrafficReport(
                num_pes=2,
                bytes_sent_per_pe=[nbytes, 0],
                bytes_received_per_pe=[0, nbytes],
                messages_per_pe=[1, 0],
                phase_bytes={"exchange": nbytes},
                chars_inspected_per_pe=[0, 0],
                items_processed_per_pe=[0, 0],
                forwarded_bytes_per_pe=[0, 0],
            )
            report.overlap_seconds = {"exchange": overlap_s}
            report.overlap_window_seconds = {"exchange": window_s}
            return report

        idle = leaf(nbytes=0, overlap_s=8.0, window_s=10.0)
        # a *leaf* report still answers from its wall-clock window ...
        assert idle.overlap_fraction("exchange") == pytest.approx(0.8)
        # ... but merging registers the phase at zero weight: no traffic
        # means no overlapped traffic, whatever the clocks measured
        merged = merge_traffic_reports([idle, leaf(0, 1.0, 2.0)])
        assert merged.overlap_weight["exchange"] == 0.0
        assert merged.overlap_fraction("exchange") == 0.0
        # zero-byte constituents neither dilute nor boost real traffic
        busy = leaf(nbytes=500, overlap_s=3.0, window_s=10.0)
        both = merge_traffic_reports([idle, busy])
        assert both.overlap_fraction("exchange") == pytest.approx(0.3)

    def test_empty_batch_stream_overlap_is_bytes_weighted(self):
        """Empty batches through ``sort_batches`` answer from the bytes
        ledger (the few envelope bytes they move), never the wall-clock
        window fallback of a leaf report."""
        stream = Cluster(num_pes=3, async_exchange=True).sort_batches(
            [[], [], []], MSSpec()
        )
        results = list(stream)
        merged = stream.merged_report
        assert "exchange" in merged.overlap_weight
        per = [r.report for r in results]
        weight = sum(r.phase_bytes.get("exchange", 0) for r in per)
        expected = (
            sum(
                r.overlap_fraction("exchange") * r.phase_bytes.get("exchange", 0)
                for r in per
            )
            / weight
            if weight
            else 0.0
        )
        assert merged.overlap_fraction("exchange") == pytest.approx(expected)

    def test_forwarded_bytes_merge_additively(self):
        """New routed-delivery counters fold like every other counter."""
        res = [
            Cluster(num_pes=2, exchange_topology="hypercube").sort(
                random_strings(60, 1, 8, seed=s), MSSpec()
            )
            for s in (1, 2)
        ]
        merged = merge_traffic_reports([r.report for r in res])
        assert merged.forwarded_bytes == sum(
            r.report.forwarded_bytes for r in res
        )
        for pe in range(2):
            assert merged.forwarded_bytes_per_pe[pe] == sum(
                r.report.forwarded_bytes_per_pe[pe] for r in res
            )
        for route in merged.route_bytes:
            assert merged.route_bytes[route] == sum(
                r.report.route_bytes.get(route, 0) for r in res
            )
        assert merged.origin_bytes_sent == sum(
            r.report.origin_bytes_sent for r in res
        )

    def test_timeline_and_metrics_attachments_fold(self):
        """Traced batch reports merge their observability attachments.

        Timelines concatenate (every span exactly once, dropped counts
        add); metrics snapshots fold additively for counters and
        histograms with later-wins gauges; the inputs stay unmutated.
        The same ``fold_traffic_report`` path also runs on fault-retry
        folds, so this pins the no-lost/no-double-counted-span contract
        for retries too.
        """
        res = [
            Cluster(num_pes=2, trace=True).sort(
                random_strings(60, 1, 8, seed=s), MSSpec()
            )
            for s in (1, 2)
        ]
        reports = [r.report for r in res]
        span_counts = [len(r.timeline.spans) for r in reports]
        sent_before = [
            r.metrics.value("repro_bytes_sent_total", pe=0) for r in reports
        ]

        merged = merge_traffic_reports(reports)
        # spans concatenate: none lost, none double-counted
        assert len(merged.timeline.spans) == sum(span_counts)
        assert merged.timeline.dropped_events == sum(
            r.timeline.dropped_events for r in reports
        )
        assert merged.timeline.meta["merged_runs"] == 2
        # the second run is shifted past the first — spans never interleave
        assert min(
            s.start for s in merged.timeline.spans[span_counts[0]:]
        ) >= reports[0].timeline.duration
        # counter series add exactly
        assert merged.metrics.value(
            "repro_bytes_sent_total", pe=0
        ) == pytest.approx(sum(sent_before))
        # the fold never mutates its inputs (batch reports stay reusable)
        assert [len(r.timeline.spans) for r in reports] == span_counts
        assert [
            r.metrics.value("repro_bytes_sent_total", pe=0) for r in reports
        ] == sent_before

    def test_untraced_reports_fold_without_attachments(self):
        res = [
            Cluster(num_pes=2).sort(random_strings(50, 1, 8, seed=s), MSSpec())
            for s in (3, 4)
        ]
        merged = merge_traffic_reports([r.report for r in res])
        assert merged.timeline is None
        assert merged.metrics is None

    def test_mixed_traced_and_untraced_fold_keeps_the_timeline(self):
        traced = Cluster(num_pes=2, trace=True).sort(
            random_strings(50, 1, 8, seed=5), MSSpec()
        )
        plain = Cluster(num_pes=2).sort(
            random_strings(50, 1, 8, seed=6), MSSpec()
        )
        merged = merge_traffic_reports([plain.report, traced.report])
        assert merged.timeline is not None
        assert len(merged.timeline.spans) == len(traced.report.timeline.spans)

    def test_barrier_wait_seconds_fold_additively(self):
        def leaf(seconds):
            report = TrafficReport(
                num_pes=2,
                bytes_sent_per_pe=[0, 0],
                bytes_received_per_pe=[0, 0],
                messages_per_pe=[0, 0],
                phase_bytes={},
                chars_inspected_per_pe=[0, 0],
                items_processed_per_pe=[0, 0],
            )
            report.barrier_wait_seconds = {"merge": seconds}
            return report

        merged = merge_traffic_reports([leaf(0.25), leaf(0.5)])
        assert merged.barrier_wait_seconds["merge"] == pytest.approx(0.75)

    def test_mismatched_sizes_rejected(self):
        a = TrafficReport(
            num_pes=1,
            bytes_sent_per_pe=[0],
            bytes_received_per_pe=[0],
            messages_per_pe=[0],
            phase_bytes={},
            chars_inspected_per_pe=[0],
            items_processed_per_pe=[0],
        )
        b = TrafficReport(
            num_pes=2,
            bytes_sent_per_pe=[0, 0],
            bytes_received_per_pe=[0, 0],
            messages_per_pe=[0, 0],
            phase_bytes={},
            chars_inspected_per_pe=[0, 0],
            items_processed_per_pe=[0, 0],
        )
        with pytest.raises(ValueError, match="different sizes"):
            merge_traffic_reports([a, b])
