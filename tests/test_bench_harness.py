"""Tests for the benchmark harness and the canned experiment definitions."""

import json

import pytest

from repro.bench.experiments import (
    ablation_lcp_golomb,
    skewed_sampling_experiment,
    strong_scaling_corpus,
    suffix_instance_experiment,
    weak_scaling_dn,
)
from repro.bench.harness import CellResult, ExperimentResult, ExperimentRunner, format_table
from repro.net.cost_model import MachineModel
from repro.strings.generators import random_strings


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]
        assert "333" in lines[3]


class TestExperimentRunner:
    def test_run_cell_produces_metrics(self):
        runner = ExperimentRunner(check=True)
        data = random_strings(300, 1, 10, seed=1)
        blocks = [data[:150], data[150:]]
        cell = runner.run_cell("unit", "ms", 2, "random", blocks)
        assert cell.algorithm == "ms"
        assert cell.num_strings == 300
        assert cell.bytes_per_string > 0
        assert cell.modeled_time >= cell.modeled_comm_time
        assert cell.wall_time > 0
        assert cell.imbalance >= 1.0

    def test_sweep_covers_grid(self):
        runner = ExperimentRunner()

        def factory(p, seed):
            data = random_strings(40 * p, 1, 8, seed=seed)
            return [data[r * 40 : (r + 1) * 40] for r in range(p)]

        res = runner.sweep(
            "unit-sweep", "desc", ["ms", "hquick"], [2, 3], factory, input_name="rand"
        )
        assert len(res.cells) == 4
        assert res.algorithms() == ["ms", "hquick"]
        assert res.pe_counts() == [2, 3]

    def test_custom_machine_model_changes_modeled_time(self):
        data = random_strings(200, 1, 10, seed=2)
        blocks = [data[:100], data[100:]]
        slow = ExperimentRunner(machine=MachineModel(alpha=1.0, beta=1.0))
        fast = ExperimentRunner(machine=MachineModel(alpha=1e-9, beta=1e-12))
        slow_cell = slow.run_cell("m", "ms", 2, "r", blocks)
        fast_cell = fast.run_cell("m", "ms", 2, "r", blocks)
        assert slow_cell.modeled_time > fast_cell.modeled_time


class TestSpecDrivenSweeps:
    def test_run_cell_accepts_a_spec_and_keys_by_config_hash(self):
        from repro.session import MSSpec

        runner = ExperimentRunner()
        data = random_strings(200, 1, 10, seed=11)
        blocks = [data[:100], data[100:]]
        spec = MSSpec(sampling="character")
        cell = runner.run_cell("unit", spec, 2, "rand", blocks)
        assert cell.algorithm == "ms"
        assert cell.config_hash == spec.config_hash()
        assert cell.extra["spec"] == spec.to_dict()
        assert cell.as_dict()["config_hash"] == spec.config_hash()

    def test_spec_with_extra_options_rejected(self):
        from repro.session import MSSpec

        runner = ExperimentRunner()
        with pytest.raises(ValueError, match="inside the SortSpec"):
            runner.run_cell("unit", MSSpec(), 2, "rand", [[b"a"], [b"b"]], sampling="string")

    def test_sweep_over_spec_list(self):
        from repro.session import MSSpec, PDMSSpec

        runner = ExperimentRunner()

        def factory(p, seed):
            data = random_strings(40 * p, 1, 8, seed=seed)
            return [data[r * 40 : (r + 1) * 40] for r in range(p)]

        specs = [MSSpec(), MSSpec(sampling="character"), PDMSSpec(epsilon=0.5)]
        res = runner.sweep("unit-specs", "d", specs, [2], factory)
        assert len(res.cells) == 3
        hashes = [c.config_hash for c in res.cells]
        assert len(set(hashes)) == 3
        for spec, h in zip(specs, hashes):
            assert res.by_config(h)[0].extra["spec"] == spec.to_dict()

    def test_runner_reuses_clusters_per_pe_count(self):
        runner = ExperimentRunner()
        data = random_strings(120, 1, 8, seed=12)
        blocks = [data[:60], data[60:]]
        runner.run_cell("unit", "ms", 2, "rand", blocks)
        runner.run_cell("unit", "pdms", 2, "rand", blocks)
        assert runner.cluster_for(2).engine.state_reuses >= 1

    def test_name_cells_also_carry_config_hash(self):
        runner = ExperimentRunner()
        data = random_strings(100, 1, 8, seed=13)
        cell = runner.run_cell("unit", "ms", 2, "rand", [data[:50], data[50:]])
        from repro.session import spec_from_options

        assert cell.config_hash == spec_from_options("ms", {}).config_hash()


class TestCheckpointedCells:
    """Checkpoint/resume: cells persist as JSON keyed by config_hash."""

    def _factory(self, p, seed):
        data = random_strings(40 * p, 1, 8, seed=seed)
        return [data[r * 40 : (r + 1) * 40] for r in range(p)]

    def test_cell_round_trips_through_from_dict(self):
        runner = ExperimentRunner()
        data = random_strings(120, 1, 8, seed=21)
        cell = runner.run_cell("unit", "ms", 2, "rand", [data[:60], data[60:]])
        clone = CellResult.from_dict(json.loads(json.dumps(cell.as_dict())))
        assert clone == cell
        # unknown keys from future formats are ignored, not fatal
        extended = dict(cell.as_dict(), future_field=123)
        assert CellResult.from_dict(extended) == cell

    def test_run_cell_resume_skips_recomputation(self, tmp_path, monkeypatch):
        from repro.session import Cluster, MSSpec

        runner = ExperimentRunner(cache_dir=tmp_path)
        data = random_strings(160, 1, 8, seed=22)
        blocks = [data[:80], data[80:]]
        first = runner.run_cell("unit", MSSpec(), 2, "rand", blocks)
        assert list(tmp_path.glob("*.json")), "cell checkpoint not written"

        def boom(*args, **kwargs):  # resumed cells must never sort again
            raise AssertionError("resume recomputed a cached cell")

        monkeypatch.setattr(Cluster, "sort", boom)
        resumed = ExperimentRunner(cache_dir=tmp_path)
        cell = resumed.run_cell("unit", MSSpec(), 2, "rand", blocks, resume=True)
        assert cell == first
        assert resumed.cells_resumed == 1

    def test_resume_keys_on_config_hash_pe_and_input(self, tmp_path):
        from repro.session import MSSpec

        runner = ExperimentRunner(cache_dir=tmp_path)
        data = random_strings(160, 1, 8, seed=23)
        blocks = [data[:80], data[80:]]
        runner.run_cell("unit", MSSpec(), 2, "rand", blocks)
        # a different spec, PE count or input name misses the cache
        assert runner.run_cell(
            "unit", MSSpec(sampling="character"), 2, "rand", blocks, resume=True
        ).config_hash != MSSpec().config_hash()
        runner.run_cell("unit", MSSpec(), 2, "other", blocks, resume=True)
        assert runner.cells_resumed == 0

    def test_sweep_resume_is_incremental(self, tmp_path):
        from repro.session import MSSpec, PDMSSpec

        runner = ExperimentRunner(cache_dir=tmp_path)
        specs = [MSSpec(), PDMSSpec(epsilon=0.5)]
        first = runner.sweep("sweep", "d", specs, [2, 3], self._factory)
        assert runner.cells_resumed == 0

        resumed = ExperimentRunner(cache_dir=tmp_path)
        second = resumed.sweep(
            "sweep", "d", specs, [2, 3], self._factory, resume=True
        )
        assert resumed.cells_resumed == len(first.cells) == 4
        assert [c.as_dict() for c in second.cells] == [
            c.as_dict() for c in first.cells
        ]
        # growing the sweep only pays for the new cells
        grown = ExperimentRunner(cache_dir=tmp_path)
        res = grown.sweep(
            "sweep", "d", specs + ["hquick"], [2, 3], self._factory, resume=True
        )
        assert grown.cells_resumed == 4
        assert len(res.cells) == 6

    def test_resume_keys_on_runner_context(self, tmp_path):
        """Regression: a different input-generation seed (or machine model)
        must miss the cache — the runner seed shapes the input but is not
        part of the spec's config_hash."""
        from repro.session import MSSpec

        first = ExperimentRunner(cache_dir=tmp_path, seed=0)
        a = first.sweep("demo", "d", [MSSpec()], [2], self._factory)

        other_seed = ExperimentRunner(cache_dir=tmp_path, seed=999)
        b = other_seed.sweep("demo", "d", [MSSpec()], [2], self._factory, resume=True)
        assert other_seed.cells_resumed == 0
        assert b.cells[0].total_bytes_sent != a.cells[0].total_bytes_sent or (
            b.cells[0].extra != a.cells[0].extra
        )

        slow = ExperimentRunner(
            cache_dir=tmp_path, seed=0, machine=MachineModel(alpha=1.0, beta=1.0)
        )
        slow.sweep("demo", "d", [MSSpec()], [2], self._factory, resume=True)
        assert slow.cells_resumed == 0
        # the original context still resumes
        again = ExperimentRunner(cache_dir=tmp_path, seed=0)
        again.sweep("demo", "d", [MSSpec()], [2], self._factory, resume=True)
        assert again.cells_resumed == 1

    def test_resume_keys_on_effective_execution_toggles(self, tmp_path):
        """Regression: cells measured under an inherited routed topology (or
        async/packed toggle) must not resume as direct-delivery data."""
        from repro.dist.exchange import use_exchange_topology
        from repro.session import MSSpec

        with use_exchange_topology("hypercube"):
            routed = ExperimentRunner(cache_dir=tmp_path)
            res = routed.sweep("demo", "d", [MSSpec()], [2], self._factory)
            assert res.cells[0].extra["forwarded_bytes"] > 0

        direct = ExperimentRunner(cache_dir=tmp_path)
        res2 = direct.sweep("demo", "d", [MSSpec()], [2], self._factory, resume=True)
        assert direct.cells_resumed == 0
        assert "forwarded_bytes" not in res2.cells[0].extra

        # under the same toggle the routed cell resumes
        with use_exchange_topology("hypercube"):
            again = ExperimentRunner(cache_dir=tmp_path)
            again.sweep("demo", "d", [MSSpec()], [2], self._factory, resume=True)
            assert again.cells_resumed == 1

    def test_cache_key_never_aliases_experiment_and_input_name(self, tmp_path):
        """Regression: the '--' separator and the filename sanitizer must not
        let distinct (experiment, input_name) pairs share a checkpoint."""
        runner = ExperimentRunner(cache_dir=tmp_path)
        pairs = [("a", "b--c"), ("a--b", "c"), ("w", "web 1"), ("w", "web/1")]
        paths = {runner._cell_cache_path(e, "deadbeef", 2, i) for e, i in pairs}
        assert len(paths) == len(pairs)

    def test_corrupt_checkpoint_recomputes(self, tmp_path):
        from repro.session import MSSpec

        runner = ExperimentRunner(cache_dir=tmp_path)
        data = random_strings(120, 1, 8, seed=24)
        blocks = [data[:60], data[60:]]
        runner.run_cell("unit", MSSpec(), 2, "rand", blocks)
        (path,) = tmp_path.glob("*.json")
        path.write_text("{not json")
        again = ExperimentRunner(cache_dir=tmp_path)
        cell = again.run_cell("unit", MSSpec(), 2, "rand", blocks, resume=True)
        assert again.cells_resumed == 0
        assert cell.num_strings == 120
        # the overwritten checkpoint is valid again
        assert CellResult.from_dict(json.loads(path.read_text())) == cell

    def test_no_cache_dir_means_no_files(self, tmp_path):
        runner = ExperimentRunner()
        data = random_strings(100, 1, 8, seed=25)
        runner.run_cell("unit", "ms", 2, "rand", [data[:50], data[50:]])
        assert runner._cell_cache_path("unit", "abc", 2, "rand") is None


class TestExperimentResult:
    def _tiny_result(self):
        runner = ExperimentRunner()
        data = random_strings(120, 1, 8, seed=3)
        blocks = [data[:60], data[60:]]
        res = ExperimentResult("unit", "desc")
        for alg in ("ms", "pdms"):
            res.add(runner.run_cell("unit", alg, 2, "rand", blocks))
        return res

    def test_filter(self):
        res = self._tiny_result()
        assert len(res.filter(algorithm="ms")) == 1
        assert res.filter(algorithm="nope") == []

    def test_render_contains_all_series(self):
        res = self._tiny_result()
        text = res.render("bytes_per_string")
        assert "ms" in text and "pdms" in text and "p=2" in text

    def test_json_roundtrip(self):
        res = self._tiny_result()
        payload = json.loads(res.to_json())
        assert payload["name"] == "unit"
        assert len(payload["cells"]) == 2
        assert all("bytes_per_string" in c for c in payload["cells"])

    def test_cell_as_dict(self):
        res = self._tiny_result()
        d = res.cells[0].as_dict()
        assert isinstance(d, dict) and d["experiment"] == "unit"


class TestCannedExperimentsSmall:
    """Smoke-run each canned experiment at miniature scale."""

    def test_weak_scaling_dn_structure(self):
        results = weak_scaling_dn(
            dn_values=(0.0, 1.0),
            pe_counts=(2,),
            strings_per_pe=80,
            string_length=40,
            algorithms=("ms", "pdms"),
        )
        assert len(results) == 2
        for res in results:
            assert {c.algorithm for c in res.cells} == {"ms", "pdms"}

    def test_strong_scaling_corpus(self):
        corpus = random_strings(200, 5, 25, seed=4)
        res = strong_scaling_corpus(
            corpus, "rand", "unit-strong", pe_counts=(2, 4), algorithms=("ms",)
        )
        assert len(res.cells) == 2
        # strong scaling keeps the global input fixed
        assert len({c.num_strings for c in res.cells}) == 1

    def test_suffix_experiment(self):
        res = suffix_instance_experiment(
            text_len=300, max_suffix_len=60, pe_counts=(2,), algorithms=("ms", "pdms")
        )
        ms = res.filter(algorithm="ms")[0]
        pdms = res.filter(algorithm="pdms")[0]
        assert pdms.total_bytes_sent < ms.total_bytes_sent

    def test_skewed_sampling_experiment(self):
        res = skewed_sampling_experiment(num_strings=300, pe_counts=(2,))
        schemes = {c.extra["sampling"] for c in res.cells}
        assert schemes == {"string", "character"}

    def test_ablation_experiment(self):
        res = ablation_lcp_golomb(num_strings=300, pe_counts=(2,))
        variants = {c.extra["variant"] for c in res.cells}
        assert "ms-simple" in variants and "pdms-golomb" in variants
