"""Timeline exporters: Chrome-trace JSON, schema validation, terminal views.

The Chrome-trace document (the ``chrome://tracing`` / Perfetto "JSON Object
Format") maps the repo's model onto trace concepts as:

* one *process* (``pid`` 0) per run — the simulated machine;
* one *thread* per rank (``tid`` = rank, named ``"rank N"``);
* phase and barrier spans as complete events (``"ph": "X"``, microsecond
  ``ts``/``dur``);
* comm/fault instants as thread-scoped instant events (``"ph": "i"``).

:func:`validate_chrome_trace` is the schema check CI runs against every
archived ``trace.json``; :func:`render_waterfall` is the quick-look
terminal view (`repro trace` prints it) that shows straggle and overlap
without leaving the shell.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .timeline import Timeline

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_waterfall",
]

_US = 1e6  # trace-event timestamps are microseconds


def chrome_trace(
    timeline: Timeline, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The timeline as a Chrome-trace/Perfetto JSON object (one process, rank threads)."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro run"},
        }
    ]
    ranks = sorted({s.rank for s in timeline.spans} | {i.rank for i in timeline.instants})
    for rank in ranks:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_sort_index",
                "args": {"sort_index": rank},
            }
        )
    for span in timeline.spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": span.rank,
                "name": span.name,
                "cat": span.cat,
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": dict(span.args),
            }
        )
    for instant in timeline.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": instant.rank,
                "name": instant.name,
                "cat": instant.cat,
                "ts": instant.ts * _US,
                "args": dict(instant.args),
            }
        )
    other: Dict[str, Any] = {
        "num_pes": timeline.num_pes,
        "dropped_events": timeline.dropped_events,
    }
    other.update(timeline.meta)
    if meta:
        other.update(meta)
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def write_chrome_trace(
    timeline: Timeline, path: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Serialise :func:`chrome_trace` to ``path`` (UTF-8 JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(timeline, meta), fh, indent=1)


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a Chrome-trace document; the list of violations ([] = valid).

    Covers the invariants the viewers actually rely on: a ``traceEvents``
    list of dicts, a known ``ph`` per event, numeric non-negative ``ts``
    (and ``dur`` for complete events), integer ``pid``/``tid``, and a
    string ``name`` wherever one is required.  CI runs this against every
    archived ``trace.json``.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            errors.append(f"{where}: unknown or missing ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if ph in ("X", "i", "B", "E"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: name must be a non-empty string")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope s must be one of t/p/g")
    return errors


def render_waterfall(timeline: Timeline, width: int = 72) -> str:
    """A terminal phase waterfall: one row per rank, one glyph per phase.

    Each rank's row is the aligned run clock scaled to ``width`` columns;
    phase spans paint their glyph, barrier waits overpaint ``'·'`` so
    straggle is visible at a glance.  A legend and the per-stage exclusive
    second totals follow.
    """
    duration = timeline.duration
    if duration <= 0.0 or not timeline.spans:
        return "(empty timeline)"
    glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    phases = timeline.phase_names()
    glyph_of = {name: glyphs[i % len(glyphs)] for i, name in enumerate(phases)}
    scale = width / duration
    ranks = sorted({s.rank for s in timeline.spans})
    lines: List[str] = [
        f"phase waterfall — {timeline.num_pes} PEs, {duration * 1e3:.1f} ms"
    ]
    for rank in ranks:
        row = [" "] * width
        for span in timeline.iter_spans(cat="phase", rank=rank):
            _paint(row, span.start, span.end, glyph_of[span.name], scale, width)
        for span in timeline.iter_spans(cat="barrier", rank=rank):
            _paint(row, span.start, span.end, "·", scale, width)
        lines.append(f"pe {rank:>3} |{''.join(row)}|")
    lines.append("legend: " + "  ".join(f"{glyph_of[n]}={n}" for n in phases) + "  ·=barrier")
    stage_seconds = timeline.stage_seconds(exclusive=True)
    for name in phases:
        lines.append(f"  {name:<24} {stage_seconds[name] * 1e3:9.2f} ms (excl. barrier)")
    barrier = timeline.barrier_seconds()
    if barrier:
        lines.append(f"  {'barrier wait':<24} {barrier * 1e3:9.2f} ms")
    return "\n".join(lines)


def _paint(
    row: List[str], start: float, end: float, glyph: str, scale: float, width: int
) -> None:
    lo = max(0, min(width - 1, int(start * scale)))
    hi = max(lo, min(width - 1, int(end * scale)))
    for col in range(lo, hi + 1):
        row[col] = glyph
