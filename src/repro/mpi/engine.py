"""Thread-per-rank SPMD execution engine with a simulated communicator.

This is the substrate that stands in for the paper's MPI cluster.  Each
simulated PE runs the algorithm's per-rank function in its own Python thread
and communicates through :class:`ThreadComm`, which implements the
:class:`repro.mpi.comm.Communicator` interface on top of

* a shared "board" (one slot per rank) plus a reusable barrier for
  collectives — the classic write / barrier / read / barrier pattern, valid
  because SPMD programs issue collectives in the same order on every rank,
* per-ordered-pair message queues for point-to-point traffic, both blocking
  (``send``/``recv``) and non-blocking (``isend``/``irecv`` returning
  :class:`repro.mpi.comm.Request` handles matched in posting order).

The engine does not try to be fast (the GIL serialises the local work
anyway, which the benchmark methodology accounts for — see
``docs/ARCHITECTURE.md``); it is meant to be *correct*, deadlock-diagnosing
and to deliver exact communication volume accounting via
:class:`repro.net.metrics.TrafficMeter`.

Typical use::

    def my_rank_program(comm, local_strings):
        ...

    results, report = run_spmd(8, my_rank_program, args_per_rank=[(s,) for s in blocks])
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..faults.errors import (
    CorruptFrameError,
    FaultError,
    LostMessageError,
    RankCrashError,
)
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.wire import Envelope, envelope_overhead
from ..net.metrics import TrafficMeter, TrafficReport
from ..obs.recorder import DEFAULT_CAPACITY, Recorder, resolve_trace
from ..obs.timeline import Timeline
from .comm import Communicator, ReduceOp, Request
from .serialization import payload_checksum, wire_size

__all__ = [
    "MeteredComm",
    "ThreadComm",
    "ThreadEngine",
    "SpmdError",
    "run_spmd",
    "default_timeout",
    "ENGINES",
    "get_engine",
    "register_engine",
    "resolve_engine_name",
]

# Default ceiling on how long a rank may wait inside a collective or recv
# before the run is declared deadlocked.  Generous because local sorting of
# large simulated inputs can legitimately take a while on one thread while
# the others already sit in the next barrier.
_DEFAULT_TIMEOUT = 600.0


def default_timeout() -> float:
    """The process-wide default deadlock timeout, in seconds.

    Reads the ``REPRO_SPMD_TIMEOUT`` environment variable at every call (so
    tests and deployments can adjust it without touching code); falls back
    to 600 s.  Every layer that accepts ``timeout=None`` —
    :class:`ThreadEngine`, :func:`run_spmd`, :class:`repro.session.Cluster`,
    :func:`repro.dist.api.dsort`, the CLI — resolves ``None`` through here.
    """
    raw = os.environ.get("REPRO_SPMD_TIMEOUT", "").strip()
    if not raw:
        return _DEFAULT_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SPMD_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"REPRO_SPMD_TIMEOUT must be positive, got {raw!r}")
    return value


class SpmdError(RuntimeError):
    """Raised when a simulated SPMD run fails (rank exception or deadlock)."""


class _FaultChannel:
    """Fault-mode sender-side state of one ordered ``(src, dst)`` pair.

    ``next_seq`` numbers the channel's messages in send order; ``unacked``
    is the retransmit buffer (clean envelopes, removed when the receiver
    delivers them in order — a piggybacked ack); ``delayed`` pens envelopes
    a ``delay`` rule held back, each with a countdown of messages that must
    overtake it before release.
    """

    __slots__ = ("lock", "next_seq", "unacked", "delayed")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.next_seq = 0
        # seq -> (clean envelope, accounted wire bytes incl. framing)
        self.unacked: Dict[int, Tuple[Envelope, int]] = {}
        # [remaining messages to overtake, held envelope]
        self.delayed: List[List[Any]] = []


@dataclass
class _SharedState:
    """Objects shared by all rank threads of one SPMD run."""

    num_pes: int
    meter: TrafficMeter
    timeout: float
    injector: Optional[FaultInjector] = None
    #: per-rank trace recorders of the *current* run (``None`` = tracing
    #: off); re-armed by the engine before every run, never reused across
    #: runs (a recorder's ring belongs to exactly one run's timeline)
    recorders: Optional[List[Recorder]] = None

    def __post_init__(self) -> None:
        self.barrier = threading.Barrier(self.num_pes)
        self.board: List[Any] = [None] * self.num_pes
        self.queues: Dict[Tuple[int, int], "queue.SimpleQueue[Tuple[int, Any]]"] = {
            (s, d): queue.SimpleQueue()
            for s in range(self.num_pes)
            for d in range(self.num_pes)
        }
        self.error_event = threading.Event()
        self.errors: List[BaseException] = []
        self.error_lock = threading.Lock()
        # fault-mode per-channel sender state, created lazily per pair
        self.channels: Dict[Tuple[int, int], _FaultChannel] = {}
        self._channels_lock = threading.Lock()

    def channel(self, src: int, dst: int) -> _FaultChannel:
        """The fault-mode channel state of the ordered pair ``(src, dst)``."""
        ch = self.channels.get((src, dst))
        if ch is None:
            with self._channels_lock:
                ch = self.channels.setdefault((src, dst), _FaultChannel())
        return ch

    def fail(self, exc: BaseException) -> None:
        """Record ``exc`` and abort the run (wakes every blocked rank)."""
        with self.error_lock:
            self.errors.append(exc)
        self.error_event.set()
        self.barrier.abort()

    def reset(self, meter: TrafficMeter, timeout: float) -> None:
        """Re-arm a clean state for the next run on the same machine.

        Only valid after a successful run: the barrier is intact (a broken
        barrier is never reusable) and the message queues have been drained
        by the ranks themselves.  Fault-mode channel state (sequence
        numbers, retransmit buffers, delay pens) starts fresh per run.
        """
        self.meter = meter
        self.timeout = timeout
        self.board = [None] * self.num_pes
        self.error_event = threading.Event()
        self.errors = []
        self.channels = {}
        self.recorders = None

    def is_clean(self) -> bool:
        """Whether this state can be reused (no errors, no stray messages)."""
        return (
            not self.errors
            and not self.barrier.broken
            and all(q.empty() for q in self.queues.values())
        )


class _SendRequest(Request):
    """Request handle of an :meth:`ThreadComm.isend`.

    The simulated network has unbounded buffering (per-pair ``SimpleQueue``),
    so a non-blocking send completes eagerly: the payload is enqueued and the
    wire bytes accounted at post time, and the handle is born completed.
    """

    __slots__ = ()

    def test(self) -> bool:
        """Always complete (see class docstring)."""
        return True

    def wait(self) -> None:
        """Sends carry no payload; returns ``None`` immediately."""
        return None


class _RecvRequest(Request):
    """Request handle of an :meth:`ThreadComm.irecv`.

    Outstanding receives from the same source are matched to incoming
    messages in *posting* order (the MPI non-overtaking rule): whichever
    request is polled, the communicator first drains the source's queue into
    the pending-request FIFO, so driving requests out of order cannot steal
    a message destined for an earlier request.
    """

    __slots__ = ("_comm", "source", "tag", "_done", "_value", "_posted")

    def __init__(self, comm: "ThreadComm", source: int, tag: int):
        self._comm = comm
        self.source = source
        self.tag = tag
        self._done = False
        self._value: Any = None
        # the deadlock clock starts when the receive is *posted*, not at the
        # first poll: a rank that posts an irecv and then computes for longer
        # than the timeout before polling must still abort promptly if the
        # peer is gone.
        self._posted = time.monotonic()

    def _complete(self, got_tag: int, obj: Any) -> None:
        if got_tag != self.tag:
            raise SpmdError(
                f"rank {self._comm.rank}: tag mismatch receiving from "
                f"{self.source}: expected {self.tag}, got {got_tag} "
                "(SPMD ordering violated)"
            )
        self._value = obj
        self._done = True

    def test(self) -> bool:
        """Poll: drain the source queue, then report completion or timeout."""
        if self._done:
            return True
        comm = self._comm
        if comm._state.error_event.is_set():
            raise SpmdError(
                f"rank {comm.rank}: SPMD run aborted while waiting for "
                f"a message from rank {self.source}"
            )
        comm._match_pending_recvs(self.source)
        if self._done:
            return True
        if comm._fault:
            # nothing arrived: after a backoff, pull a retransmit of the
            # expected message from the sender's buffer (drop recovery)
            comm._maybe_backoff_pull(self.source)
            comm._match_pending_recvs(self.source)
            if self._done:
                return True
        if time.monotonic() - self._posted > comm._state.timeout:
            message = (
                f"rank {comm.rank}: timed out waiting for a message "
                f"from rank {self.source} (tag {self.tag})"
            )
            # in fault mode the typed error names the failure class the
            # chaos suite asserts on; the engine wraps it in SpmdError
            exc: BaseException = (
                LostMessageError(message) if comm._fault else SpmdError(message)
            )
            comm._state.fail(exc)
            raise SpmdError(
                f"rank {comm.rank}: recv timeout from rank {self.source}"
            )
        return False

    def wait(self) -> Any:
        """Block until the message arrives; returns the payload.

        When this request is the oldest outstanding receive for its source
        (the common case — and always the case for blocking ``recv``), the
        wait blocks in ``queue.get`` like the engine always has, so idle
        ranks sleep in the OS instead of spinning the GIL; ``test()`` still
        runs every timeout slice for abort/deadlock detection.  Requests
        behind an older sibling fall back to polling until they reach the
        head of the FIFO.
        """
        comm = self._comm
        if comm._fault:
            # every arrival must pass the sequencing/verification layer, so
            # the blocking fast path below (which bypasses it) is disabled;
            # test() pumps, verifies and recovers on every poll
            while not self.test():
                time.sleep(0.0005)
            return self._value
        q = comm._state.queues[(self.source, comm.rank)]
        while not self.test():
            pending = comm._pending_recvs.get(self.source)
            if pending and pending[0] is self:
                try:
                    got_tag, obj = q.get(timeout=0.05)
                except queue.Empty:
                    continue
                pending.popleft()._complete(got_tag, obj)  # completes self
            else:
                time.sleep(0.0005)
        return self._value


class MeteredComm(Communicator):
    """Engine-independent core of a metered SPMD communicator.

    Everything that must be **bit-identical across execution engines** lives
    here: the accounting hooks, the collective algebra (which edges each
    collective charges to the meter), the blocking ``recv``/``sendrecv``
    conveniences, and the fault-mode receive pipeline (sequencing, CRC
    verification, gap detection, pull-based recovery with exponential
    backoff).  Concrete engines subclass it and provide only the
    *transport*: how payloads physically move between ranks.

    Subclasses must implement the hook surface:

    * :attr:`_meter` / :attr:`_injector` — the run's shared
      :class:`~repro.net.metrics.TrafficMeter` and optional
      :class:`~repro.faults.inject.FaultInjector`;
    * :meth:`_barrier_wait` / :meth:`_board_exchange` — the low-level
      synchronisation primitives the collectives are built on;
    * :meth:`_fail` — abort the whole run with an exception;
    * :meth:`_recovery_channel` — per-source :class:`_FaultChannel` holding
      the retransmit buffer the recovery path pulls from;
    * ``send`` / ``isend`` / ``irecv`` — the point-to-point transport.

    The thread engine (:class:`ThreadComm`) and the multiprocessing engine
    (:class:`repro.mpi.procengine.ProcComm`) are the two in-tree
    implementations; the conformance suite in ``tests/engine_conformance.py``
    is the executable contract for third-party ones.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        fault: bool,
        recorder: Optional[Recorder] = None,
    ):
        self.rank = rank
        self.size = size
        self._phase = "unlabelled"
        #: this rank's trace recorder, or ``None`` with tracing off — every
        #: instrumentation site is a single ``is None`` test, so the traced
        #: path costs nothing when disarmed (pinned by BENCH_PR10)
        self._recorder = recorder
        self._pending_recvs: Dict[int, Deque[Any]] = {}
        #: whether a fault plan is installed (adds envelope framing + recovery)
        self._fault = fault
        if fault:
            # receiver-side sequencing state, per source rank
            self._expected: Dict[int, int] = {}
            self._ooo: Dict[int, Dict[int, Envelope]] = {}
            self._inbox: Dict[int, Deque[Tuple[int, Any]]] = {}
            # [deadline, armed] exponential-backoff state of the drop detector
            self._pull_backoff: Dict[int, List[float]] = {}

    # ------------------------------------------------------------------ engine hooks
    @property
    def _meter(self) -> TrafficMeter:
        """The run's shared traffic meter (engine hook)."""
        raise NotImplementedError

    @property
    def _injector(self) -> Optional[FaultInjector]:
        """The installed fault injector, or ``None`` (engine hook)."""
        raise NotImplementedError

    def _fail(self, exc: BaseException) -> None:
        """Record ``exc`` and abort the whole run (engine hook)."""
        raise NotImplementedError

    def _recovery_channel(self, source: int) -> "_FaultChannel":
        """Fault-channel state of ``source -> self.rank`` (engine hook)."""
        raise NotImplementedError

    def _barrier_wait(self) -> None:
        """Block until every rank reaches the same point (engine hook)."""
        raise NotImplementedError

    def _board_exchange(self, contribution: Any) -> List[Any]:
        """All ranks contribute one object; everyone observes all of them."""
        raise NotImplementedError

    # ------------------------------------------------------------------ accounting
    def set_phase(self, name: str) -> None:
        """Label this rank's subsequent traffic with ``name``.

        With a fault plan installed this is also the rank-lifecycle hook:
        ``crash`` rules raise :class:`~repro.faults.errors.RankCrashError`
        here and ``straggle`` rules put the rank to sleep.
        """
        self._phase = name
        meter = self._meter
        meter.set_phase(self.rank, name)
        rec = self._recorder
        if rec is not None:
            rec.phase(name)
        injector = self._injector
        if injector is not None:
            action = injector.on_phase(self.rank, name)
            if action is not None:
                if action.kind == "crash":
                    meter.record_fault_injected(self.rank)
                    # a crash is trivially "detected": the run aborts loudly
                    meter.record_fault_detected(self.rank)
                    if rec is not None:
                        rec.instant("fault-crash", {"phase": name})
                    raise RankCrashError(
                        f"rank {self.rank} crashed entering phase {name!r} "
                        "(fault plan)"
                    )
                if action.kind == "straggle":
                    meter.record_fault_injected(self.rank)
                    if rec is not None:
                        rec.instant(
                            "fault-straggle",
                            {"phase": name, "seconds": action.seconds},
                        )
                    time.sleep(action.seconds)

    def get_phase(self) -> str:
        """The current accounting phase label of this rank."""
        return self._phase

    def record_local_work(self, chars: int, items: int = 0) -> None:
        """Charge local character/string work to this rank's meter slot."""
        self._meter.record_local_work(self.rank, chars, items)

    def record_overlap(self, overlapped: float, window: float) -> None:
        """Report split-phase overlap seconds under this rank's current phase."""
        self._meter.record_overlap(self.rank, self._phase, overlapped, window)

    def record_exchange_collective(
        self,
        nbytes: int,
        overlap_fraction: float = 0.0,
        hypercube: bool = False,
        kind: Optional[str] = None,
    ) -> None:
        """Agree on and record one all-to-all event for a split-phase exchange."""
        # agree on the bottleneck volume exactly like the blocking alltoall
        # does (a board exchange moves no accounted bytes), then let rank 0
        # record the one collective event the cost model sees
        stats = self._board_exchange((int(nbytes), float(overlap_fraction)))
        if self.rank == 0:
            if kind is None:
                kind = "alltoall-hypercube" if hypercube else "alltoall"
            self._meter.record_collective(
                kind,
                max(b for b, _ in stats),
                self.size,
                self._phase,
                overlap_fraction=sum(f for _, f in stats) / len(stats),
            )

    def record_route(self, route: str, nbytes: int, forwarded: int) -> None:
        """Attribute one routed batch (full wire size + forwarded share)."""
        self._meter.record_route(self.rank, route, nbytes, forwarded)

    # ------------------------------------------------------------------ blocking p2p
    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive: post an ``irecv`` and wait for it."""
        return self.irecv(source, tag).wait()

    def sendrecv(self, obj: Any, peer: int, tag: int = 0, nbytes: Optional[int] = None) -> Any:
        """Symmetric exchange with ``peer`` (both sides must call this)."""
        self.send(obj, peer, tag, nbytes)
        return self.recv(peer, tag)

    # ------------------------------------------------------------------ fault-mode receive path
    def _accept(self, source: int, env: Envelope) -> None:
        """Sequence one arrived envelope: discard stale, stash early, drain."""
        expected = self._expected.get(source, 0)
        if env.seq < expected:
            # duplicate of an already-delivered message: detected and dropped
            self._meter.record_fault_detected(self.rank)
            return
        # stash (in-sequence or early) and let _drain deliver/recover; an
        # early arrival with a missing predecessor is the gap _drain spots
        self._ooo.setdefault(source, {})[env.seq] = env
        self._drain(source)

    def _drain(self, source: int) -> None:
        """Deliver in-sequence envelopes; recover gaps and corruption.

        A *gap* (the expected message absent while a successor is stashed)
        is proof of a drop — by the store-before-enqueue invariant the
        sender's buffer holds the missing envelope, so it is pulled
        immediately.  A CRC mismatch likewise triggers an immediate pull.
        """
        meter = self._meter
        stash = self._ooo.setdefault(source, {})
        while True:
            expected = self._expected.get(source, 0)
            env = stash.pop(expected, None)
            if env is not None:
                if payload_checksum(env.payload) == env.crc:
                    self._deliver(source, env)
                    continue
                # corruption detected: the clean copy sits in the buffer
                meter.record_fault_detected(self.rank)
                self._pull(source, expected, lost=False)
                continue
            if stash:
                # a successor arrived but the expected message did not:
                # evidence of a drop — pull a retransmit right away
                meter.record_fault_detected(self.rank)
                self._pull(source, expected, lost=True)
                continue
            return

    def _deliver(self, source: int, env: Envelope) -> None:
        """Hand one verified, in-sequence envelope to the inbox (and ack it)."""
        self._expected[source] = env.seq + 1
        ch = self._recovery_channel(source)
        with ch.lock:
            # piggybacked ack: the sender's retransmit buffer frees the slot
            ch.unacked.pop(env.seq, None)
        self._inbox.setdefault(source, deque()).append((env.tag, env.payload))
        self._pull_backoff.pop(source, None)

    def _pull(self, source: int, seq: int, lost: bool) -> None:
        """Pull retransmits of message ``seq`` until one verifies.

        Bounded by the plan's ``max_retransmits`` budget; exhausting it
        raises the typed error (:class:`LostMessageError` for drops,
        :class:`CorruptFrameError` for corruption) through :meth:`_fail`
        so every rank aborts promptly.  Only ``corrupt`` rules may strike a
        retransmit, so the loop terminates for every other fault kind.
        """
        meter = self._meter
        injector = self._injector
        ch = self._recovery_channel(source)
        budget = injector.plan.max_retransmits
        attempts = 0
        while attempts < budget:
            attempts += 1
            with ch.lock:
                entry = ch.unacked.get(seq)
            if entry is None:
                # ack raced us (a late duplicate delivered it); nothing to do
                return
            env, env_bytes = entry
            meter.record_retry(self.rank)
            # a retransmit repeats the envelope's wire cost without being
            # origin volume — accounted like forwarded traffic
            meter.record_retransmit(source, self.rank, env_bytes, phase=self._phase)
            rec = self._recorder
            if rec is not None:
                rec.instant(
                    "retransmit",
                    {"source": source, "seq": seq, "bytes": env_bytes},
                )
            action = injector.on_retransmit(source, self.rank, self._phase)
            if action is not None and action.kind == "corrupt":
                # the retransmit was struck too (one more injected fault on
                # the sender's wire); detected, try again
                meter.record_fault_injected(source)
                meter.record_fault_detected(self.rank)
                continue
            self._deliver(source, env)
            return
        kind = "lost" if lost else "corrupt"
        message = (
            f"rank {self.rank}: message seq {seq} from rank {source} still "
            f"{kind} after {budget} retransmits (fault-plan budget exhausted)"
        )
        exc: FaultError = (
            LostMessageError(message) if lost else CorruptFrameError(message)
        )
        self._fail(exc)
        raise exc

    def _maybe_backoff_pull(self, source: int) -> None:
        """Drop detector of last resort: pull after an exponential backoff.

        A dropped *final* message on a channel leaves no successor to prove
        the gap, so an idle receiver arms a deadline; if the expected
        sequence number is still sitting unacked in the sender's buffer when
        it expires, the receiver pulls a retransmit.  Each miss doubles the
        wait so a merely-slow sender is not flooded with pulls.
        """
        expected = self._expected.get(source, 0)
        ch = self._recovery_channel(source)
        with ch.lock:
            pending = expected in ch.unacked
        if not pending:
            # nothing outstanding at this seq: sender never sent it (or the
            # ack landed); disarm so a future gap restarts the clock
            self._pull_backoff.pop(source, None)
            return
        now = time.monotonic()
        armed = self._pull_backoff.get(source)
        delay = self._injector.plan.retry_delay
        if armed is None:
            self._pull_backoff[source] = [now + delay, delay]
            return
        if now < armed[0]:
            return
        # deadline passed and the envelope is still unacked: treat as dropped
        armed[1] *= 2.0
        armed[0] = now + armed[1]
        self._meter.record_fault_detected(self.rank)
        self._pull(source, expected, lost=True)
        self._drain(source)

    # ------------------------------------------------------------------ collectives
    def barrier(self) -> None:
        """Synchronise all ranks (recorded as one zero-byte collective).

        The wait itself is metered as its **own** account
        (:meth:`TrafficMeter.record_barrier_wait`, plus a ``barrier`` trace
        span when tracing): blocked-on-straggler time must not inflate the
        surrounding phase's timings.
        """
        if self.rank == 0:
            self._meter.record_collective("barrier", 0, self.size, self._phase)
        rec = self._recorder
        if rec is not None:
            rec.begin("barrier")
        t0 = time.monotonic()
        self._barrier_wait()
        self._meter.record_barrier_wait(
            self.rank, self._phase, time.monotonic() - t0
        )
        if rec is not None:
            rec.end("barrier")

    def bcast(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Any:
        """Broadcast from ``root``; accounted as a binomial tree."""
        snapshot = self._board_exchange(obj if self.rank == root else None)
        value = snapshot[root]
        if self.rank == root:
            size = wire_size(value) if nbytes is None else nbytes
            # account a binomial-tree broadcast: p-1 copies travel in total,
            # staged over log p rounds; attribute the copies to tree edges,
            # all labelled with the root's phase (reading the edge source's
            # current phase would race with that rank's progress)
            for src, dst in _binomial_tree_edges(root, self.size):
                self._meter.record_send(src, dst, size, phase=self._phase)
            self._meter.record_collective("bcast", size, self.size, self._phase)
        return value

    def gather(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Optional[List[Any]]:
        """Gather at ``root`` (rank order); every other rank sends once."""
        snapshot = self._board_exchange(obj)
        size = wire_size(obj) if nbytes is None else nbytes
        if self.rank != root:
            self._meter.record_send(self.rank, root, size)
        else:
            sizes = [
                wire_size(x) if nbytes is None else nbytes for x in snapshot
            ]
            self._meter.record_collective(
                "gather", max(sizes, default=0), self.size, self._phase
            )
        return list(snapshot) if self.rank == root else None

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Deal ``root``'s per-rank objects; each rank receives its slot."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter root must supply one object per rank")
            contribution = list(objs)
        else:
            contribution = None
        snapshot = self._board_exchange(contribution)
        parts = snapshot[root]
        if self.rank == root:
            sizes = [wire_size(x) for x in parts]
            for dst in range(self.size):
                self._meter.record_send(root, dst, sizes[dst])
            self._meter.record_collective(
                "scatter", max(sizes, default=0), self.size, self._phase
            )
        return parts[self.rank]

    def allgather(self, obj: Any, nbytes: Optional[int] = None) -> List[Any]:
        """All ranks observe all contributions; ring/gossip accounting."""
        snapshot = self._board_exchange(obj)
        size = wire_size(obj) if nbytes is None else nbytes
        # ring/gossip accounting: every PE forwards everything except its own
        # contribution once, hence sends (and receives) total - own bytes
        sizes = [wire_size(x) for x in snapshot] if nbytes is None else None
        if sizes is not None:
            total = sum(sizes)
            own = sizes[self.rank]
        else:
            total = size * self.size
            own = size
        next_rank = (self.rank + 1) % self.size
        if self.size > 1:
            self._meter.record_send(self.rank, next_rank, total - own)
        if self.rank == 0:
            self._meter.record_collective(
                "allgather", max(sizes) if sizes else size, self.size, self._phase
            )
        return list(snapshot)

    def alltoall(
        self,
        objs: Sequence[Any],
        nbytes: Optional[Sequence[int]] = None,
        hypercube: bool = False,
    ) -> List[Any]:
        """Personalised all-to-all; returns received objects in source order."""
        if len(objs) != self.size:
            raise ValueError(
                f"alltoall needs exactly one object per rank "
                f"({self.size}), got {len(objs)}"
            )
        sizes = [
            wire_size(o) if nbytes is None else nbytes[d]
            for d, o in enumerate(objs)
        ]
        for dst in range(self.size):
            self._meter.record_send(self.rank, dst, sizes[dst])
        my_total = sum(sz for d, sz in enumerate(sizes) if d != self.rank)

        snapshot = self._board_exchange(list(objs))
        received = [snapshot[src][self.rank] for src in range(self.size)]

        # one rank records the collective event with the bottleneck volume
        totals = self._board_exchange(my_total)
        if self.rank == 0:
            kind = "alltoall-hypercube" if hypercube else "alltoall"
            self._meter.record_collective(
                kind, max(totals, default=0), self.size, self._phase
            )
        return received

    def reduce(self, value: Any, op: str = ReduceOp.SUM, root: int = 0) -> Any:
        """Reduce per-rank values at ``root``; ``None`` elsewhere."""
        snapshot = self._board_exchange(value)
        size = wire_size(value)
        if self.rank != root:
            # each rank contributes its *own* value's wire size (values may
            # differ per rank — e.g. variable-length payloads)
            self._meter.record_send(self.rank, root, size)
        result = ReduceOp.apply(op, snapshot)
        if self.rank == root:
            # the collective event carries the bottleneck (largest) value,
            # computed from the board snapshot rather than root's own value
            event_size = max((wire_size(v) for v in snapshot), default=0)
            self._meter.record_collective(
                "reduce", event_size, self.size, self._phase
            )
            return result
        return None

    def allreduce(self, value: Any, op: str = ReduceOp.SUM) -> Any:
        """Reduce per-rank values; every rank receives the result."""
        snapshot = self._board_exchange(value)
        size = wire_size(value)
        if self.size > 1:
            # ring accounting: each rank ships its *own* value's wire size
            # to its successor (per-rank sizes may differ)
            next_rank = (self.rank + 1) % self.size
            self._meter.record_send(self.rank, next_rank, size)
        if self.rank == 0:
            # collective event volume = bottleneck value across the board
            event_size = max((wire_size(v) for v in snapshot), default=0)
            self._meter.record_collective(
                "allreduce", event_size, self.size, self._phase
            )
        return ReduceOp.apply(op, snapshot)


class ThreadComm(MeteredComm):
    """Communicator backed by the thread engine's shared state."""

    def __init__(self, rank: int, state: _SharedState):
        super().__init__(
            rank,
            state.num_pes,
            fault=state.injector is not None,
            recorder=state.recorders[rank] if state.recorders else None,
        )
        self._state = state

    # ------------------------------------------------------------------ engine hooks
    @property
    def _meter(self) -> TrafficMeter:
        """The run's shared traffic meter (lives in the shared state)."""
        return self._state.meter

    @property
    def _injector(self) -> Optional[FaultInjector]:
        """The engine's fault injector, or ``None`` outside fault mode."""
        return self._state.injector

    def _fail(self, exc: BaseException) -> None:
        """Abort the run: record ``exc`` and wake every blocked rank."""
        self._state.fail(exc)

    def _recovery_channel(self, source: int) -> _FaultChannel:
        """The shared fault-channel state of ``source -> self.rank``."""
        return self._state.channel(source, self.rank)

    # ------------------------------------------------------------------ low-level sync
    def _barrier_wait(self) -> None:
        try:
            self._state.barrier.wait(timeout=self._state.timeout)
        except threading.BrokenBarrierError:
            raise SpmdError(
                f"rank {self.rank}: SPMD run aborted "
                "(another rank failed or a collective deadlocked)"
            ) from None

    def _board_exchange(self, contribution: Any) -> List[Any]:
        """All ranks contribute one object and observe everyone's contribution."""
        st = self._state
        st.board[self.rank] = contribution
        self._barrier_wait()
        snapshot = list(st.board)
        self._barrier_wait()
        return snapshot

    # ------------------------------------------------------------------ point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> None:
        """Enqueue ``obj`` for ``dest`` and account its wire size.

        With a fault plan installed the message travels inside an
        :class:`~repro.faults.wire.Envelope` (sequence number + payload
        CRC32, charged on the wire) and the plan's message rules may strike
        it; without one, this is the zero-overhead baseline path.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        size = wire_size(obj) if nbytes is None else nbytes
        rec = self._recorder
        if rec is not None:
            rec.comm("send", dest, size)
        if not self._fault:
            self._state.meter.record_send(self.rank, dest, size)
            self._state.queues[(self.rank, dest)].put((tag, obj))
            return
        self._fault_send(obj, dest, tag, size)

    def _fault_send(self, obj: Any, dest: int, tag: int, size: int) -> None:
        """Fault-mode send: frame, buffer for retransmission, maybe inject.

        The clean envelope enters the retransmit buffer *before* anything is
        enqueued: any receiver-side evidence of a message (its own arrival,
        a successor's arrival) therefore proves its buffer entry exists, so
        recovery pulls never race the sender.
        """
        state = self._state
        meter = state.meter
        ch = state.channel(self.rank, dest)
        env = Envelope(ch.next_seq, tag, payload_checksum(obj), obj)
        ch.next_seq += 1
        env_bytes = size + envelope_overhead(env.seq)
        with ch.lock:
            ch.unacked[env.seq] = (env, env_bytes)
        meter.record_send(self.rank, dest, env_bytes)
        q = state.queues[(self.rank, dest)]
        action = (
            state.injector.on_send(self.rank, dest, self._phase)
            if dest != self.rank
            else None
        )
        if action is None:
            q.put(env)
        elif action.kind == "drop":
            # never enqueued; the receiver recovers from the buffer
            meter.record_fault_injected(self.rank)
        elif action.kind == "duplicate":
            meter.record_fault_injected(self.rank)
            q.put(env)
            q.put(Envelope(env.seq, env.tag, env.crc, env.payload))
            # the duplicate costs wire bytes but is not origin volume
            meter.record_retransmit(self.rank, dest, env_bytes)
        elif action.kind == "corrupt":
            meter.record_fault_injected(self.rank)
            # tamper a *copy*: the retransmit buffer keeps the clean CRC
            # (payloads move by shared reference, so the simulated bit-flip
            # lives in the envelope's checksum field)
            q.put(Envelope(env.seq, env.tag, env.crc ^ action.mask, env.payload))
        elif action.kind == "delay":
            meter.record_fault_injected(self.rank)
        else:  # pragma: no cover - injector only emits message kinds here
            q.put(env)
        # this send is one overtaking event: held messages tick AFTER the
        # current message entered the queue (otherwise nothing could ever
        # overtake a held message) and BEFORE the current one may be penned
        # (a held message must not tick at its own send)
        self._release_delayed(ch, q)
        if action is not None and action.kind == "delay":
            with ch.lock:
                ch.delayed.append([action.delay_messages, env])

    @staticmethod
    def _release_delayed(ch: _FaultChannel, q: "queue.SimpleQueue") -> None:
        """Tick the channel's delay pen; enqueue envelopes fully overtaken."""
        if not ch.delayed:
            return
        ripe: List[Envelope] = []
        with ch.lock:
            remaining: List[List[Any]] = []
            for entry in ch.delayed:
                entry[0] -= 1
                if entry[0] <= 0:
                    ripe.append(entry[1])
                else:
                    remaining.append(entry)
            ch.delayed = remaining
        for env in ripe:
            q.put(env)

    # ------------------------------------------------------------------ non-blocking
    def isend(
        self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None
    ) -> Request:
        """Non-blocking send; completes eagerly (the network buffers unboundedly)."""
        # the simulated network buffers without bound, so the transfer
        # "completes" at post time; bytes are accounted exactly like send()
        self.send(obj, dest, tag, nbytes)
        return _SendRequest()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Post a non-blocking receive; requests match messages in posting order."""
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        request = _RecvRequest(self, source, tag)
        self._pending_recvs.setdefault(source, deque()).append(request)
        return request

    def _match_pending_recvs(self, source: int) -> None:
        """Assign queued messages from ``source`` to requests in posting order."""
        pending = self._pending_recvs.get(source)
        if not pending:
            return
        if self._fault:
            # fault mode: raw queue -> sequencing/verification -> inbox
            self._pump(source)
            inbox = self._inbox.get(source)
            while pending and inbox:
                got_tag, obj = inbox.popleft()
                pending.popleft()._complete(got_tag, obj)
            return
        q = self._state.queues[(source, self.rank)]
        while pending:
            try:
                got_tag, obj = q.get_nowait()
            except queue.Empty:
                return
            pending.popleft()._complete(got_tag, obj)

    # ------------------------------------------------------------------ fault-mode receive path
    def _pump(self, source: int) -> None:
        """Drain the raw queue from ``source`` through sequencing/verification."""
        q = self._state.queues[(source, self.rank)]
        while True:
            try:
                env = q.get_nowait()
            except queue.Empty:
                return
            self._accept(source, env)


def _binomial_tree_edges(root: int, p: int) -> List[Tuple[int, int]]:
    """Edges (src, dst) of a binomial broadcast tree rooted at ``root``."""
    edges: List[Tuple[int, int]] = []
    # work in the rotated space where the root is rank 0
    have = [0]
    step = 1
    while step < p:
        for r in list(have):
            other = r + step
            if other < p:
                edges.append(((r + root) % p, (other + root) % p))
                have.append(other)
        step *= 2
    return edges


class ThreadEngine:
    """A reusable simulated machine: thread-per-rank SPMD execution.

    One engine owns the shared state of one simulated cluster (barrier,
    board, per-pair message queues) and runs any number of SPMD programs on
    it, one after the other.  After a clean run the state is **reused** —
    the barrier and queues survive, only the meter and board are re-armed —
    so a long-lived :class:`repro.session.Cluster` does not rebuild ``p²``
    queues for every sort.  A failed run poisons the state (the barrier may
    be broken, queues may hold stray messages), so the next run transparently
    rebuilds it.

    This class is also the **engine selection seam**: alternative backends
    (e.g. a future mpi4py process engine) implement the same two-method
    surface (``__init__(num_pes, timeout=...)`` + :meth:`run`) and register
    under a name via :func:`register_engine`.
    """

    #: registry name of this backend
    name = "threads"

    def __init__(
        self,
        num_pes: int,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[bool] = None,
        trace_capacity: int = DEFAULT_CAPACITY,
    ):
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        # None -> the process-wide default (REPRO_SPMD_TIMEOUT env or 600 s)
        self.timeout = default_timeout() if timeout is None else timeout
        #: whether runs record per-rank trace timelines (explicit flag >
        #: ``REPRO_TRACE`` env > off); see :mod:`repro.obs`
        self.trace = resolve_trace(trace)
        self.trace_capacity = trace_capacity
        #: the installed chaos schedule, or None for the zero-overhead path
        self.fault_plan = fault_plan
        # the injector outlives individual runs so single-shot rules (e.g.
        # crash-once) stay consumed across a session-level retry
        self._injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._state: Optional[_SharedState] = None
        # one machine runs one SPMD program at a time: concurrent run()
        # calls on the same engine serialise here (sharing one barrier and
        # one set of queues between two live programs would corrupt both)
        self._run_lock = threading.Lock()
        #: completed :meth:`run` calls (successful or not)
        self.runs_completed = 0
        #: runs that reused the previous run's shared state (machine reuse)
        self.state_reuses = 0

    def _acquire_state(self, meter: TrafficMeter, timeout: float) -> _SharedState:
        if self._state is not None and self._state.is_clean():
            self._state.reset(meter, timeout)
            self.state_reuses += 1
            return self._state
        return _SharedState(
            num_pes=self.num_pes,
            meter=meter,
            timeout=timeout,
            injector=self._injector,
        )

    def run(
        self,
        fn: Callable[..., Any],
        args_per_rank: Optional[Sequence[Tuple]] = None,
        common_args: Tuple = (),
        meter: Optional[TrafficMeter] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[List[Any], TrafficReport]:
        """Run ``fn(comm, *rank_args, *common_args)`` on every simulated PE.

        Parameters
        ----------
        fn:
            The per-rank program.  Its first argument is the rank's
            :class:`ThreadComm`.
        args_per_rank:
            Optional per-rank positional arguments (one tuple per rank),
            e.g. the rank's slice of the input strings.
        common_args:
            Positional arguments appended for every rank.
        meter:
            Optional externally created :class:`TrafficMeter` (useful when a
            caller aggregates several phases); a fresh one by default.
        timeout:
            Deadlock-detection timeout per blocking operation, in seconds
            (defaults to the engine's timeout).

        Returns
        -------
        (results, report):
            ``results[r]`` is the return value of rank ``r``; ``report`` is
            the traffic report of this run only.
        """
        num_pes = self.num_pes
        if args_per_rank is not None and len(args_per_rank) != num_pes:
            raise ValueError("args_per_rank must have one entry per rank")

        meter = meter if meter is not None else TrafficMeter(num_pes)
        meter.engine = self.name
        with self._run_lock:
            return self._run_locked(
                fn, args_per_rank, common_args, meter,
                self.timeout if timeout is None else timeout,
            )

    def _run_locked(
        self,
        fn: Callable[..., Any],
        args_per_rank: Optional[Sequence[Tuple]],
        common_args: Tuple,
        meter: TrafficMeter,
        timeout: float,
    ) -> Tuple[List[Any], TrafficReport]:
        num_pes = self.num_pes
        state = self._acquire_state(meter, timeout)
        state.recorders = (
            [Recorder(rank, capacity=self.trace_capacity) for rank in range(num_pes)]
            if self.trace
            else None
        )
        recorders = state.recorders
        results: List[Any] = [None] * num_pes

        def runner(rank: int) -> None:
            comm = ThreadComm(rank, state)
            rank_args = tuple(args_per_rank[rank]) if args_per_rank is not None else ()
            try:
                results[rank] = fn(comm, *rank_args, *common_args)
            except SpmdError as exc:
                # secondary failures triggered by another rank's abort are noise
                with state.error_lock:
                    if not state.errors:
                        state.errors.append(exc)
                state.error_event.set()
                state.barrier.abort()
            except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
                state.fail(exc)
            finally:
                if recorders is not None:
                    recorders[rank].finish()

        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"pe-{rank}", daemon=True)
            for rank in range(num_pes)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        self.runs_completed += 1
        # keep the machine only if it is provably reusable
        self._state = state if state.is_clean() else None

        if state.errors:
            primary = state.errors[0]
            raise SpmdError(
                f"SPMD run on {num_pes} PEs failed: {primary!r}"
            ) from primary
        report = meter.report()
        if recorders is not None:
            report.timeline = Timeline.from_exports(
                [rec.export() for rec in recorders], num_pes
            )
            report.timeline.meta["engine"] = self.name
        return results, report

    def shutdown(self) -> None:
        """Release the machine's shared state; idempotent.

        Part of the uniform engine lifecycle contract (see
        ``docs/ENGINES.md``): the thread engine has no OS resources to
        reclaim — rank threads are joined at the end of every :meth:`run` —
        so this only drops the reusable shared state.  The engine remains
        usable; the next run simply rebuilds the state.
        """
        self._state = None


#: engine name -> factory (``factory(num_pes, timeout=...)``)
ENGINES: Dict[str, Callable[..., ThreadEngine]] = {"threads": ThreadEngine}


def register_engine(name: str, factory: Callable[..., Any]) -> None:
    """Register an execution backend under ``name`` (e.g. a future ``"mpi"``).

    ``factory(num_pes, timeout=...)`` must return an object with the
    :class:`ThreadEngine` surface (a ``run`` method with the same signature).
    Backends that support chaos testing additionally accept the optional
    ``fault_plan=`` keyword (a :class:`repro.faults.FaultPlan`); callers
    only pass it when a plan is actually installed, so factories without
    the seam keep working.
    """
    if not name:
        raise ValueError("engine name must be a non-empty string")
    if not callable(factory):
        raise TypeError(f"engine factory for {name!r} must be callable")
    ENGINES[name] = factory


def get_engine(name: str) -> Callable[..., Any]:
    """The engine factory registered under ``name`` (ValueError if absent)."""
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)} "
            "(register new backends with repro.mpi.engine.register_engine)"
        ) from None


def resolve_engine_name(name: Optional[str] = None) -> str:
    """Resolve an engine name: explicit > ``REPRO_ENGINE`` env > ``"threads"``.

    The single resolution rule every entry point shares —
    :class:`repro.session.Cluster`, :func:`run_spmd`,
    :func:`repro.dist.api.dsort` and the CLI's ``--engine`` flag all pass
    their (possibly ``None``) engine argument through here, so exporting
    ``REPRO_ENGINE=processes`` switches a whole test run onto the
    multiprocessing backend without touching code.
    """
    if name:
        return name
    env = os.environ.get("REPRO_ENGINE", "").strip()
    return env or "threads"


def run_spmd(
    num_pes: int,
    fn: Callable[..., Any],
    args_per_rank: Optional[Sequence[Tuple]] = None,
    common_args: Tuple = (),
    meter: Optional[TrafficMeter] = None,
    timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    engine: Optional[str] = None,
    trace: Optional[bool] = None,
) -> Tuple[List[Any], TrafficReport]:
    """Run one SPMD program on a throwaway simulated machine.

    The one-shot convenience wrapper around an execution engine (which
    long-lived callers — e.g. :class:`repro.session.Cluster` — hold on to
    for machine reuse); see :meth:`ThreadEngine.run` for the parameters.
    ``timeout=None`` resolves via :func:`default_timeout` (the
    ``REPRO_SPMD_TIMEOUT`` environment variable, or 600 s); ``fault_plan``
    installs a :class:`repro.faults.FaultPlan` chaos schedule; ``engine``
    picks the backend by registry name via :func:`resolve_engine_name`
    (``None`` honours ``REPRO_ENGINE``, default ``"threads"``); ``trace``
    arms per-rank timeline recording (``None`` honours ``REPRO_TRACE`` —
    and, like ``fault_plan``, the keyword is only forwarded when set, so
    third-party factories without the seam keep working).
    """
    factory = get_engine(resolve_engine_name(engine))
    kwargs: Dict[str, Any] = {"timeout": timeout}
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if trace is not None:
        kwargs["trace"] = trace
    backend = factory(num_pes, **kwargs)
    try:
        return backend.run(
            fn, args_per_rank=args_per_rank, common_args=common_args, meter=meter
        )
    finally:
        shutdown = getattr(backend, "shutdown", None)
        if callable(shutdown):
            shutdown()
