"""Doctest-style gate: every README Python snippet must actually run.

The README is the first thing users copy-paste from; API drift there is
worse than in any docstring.  This test extracts every fenced ``python``
code block from README.md and executes it in a fresh namespace (with the
``src`` layout on ``sys.path``, as the README's own instructions establish).
Stdout is swallowed; exceptions fail the test with the offending block.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import re
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
README = ROOT / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks() -> list:
    return _FENCE.findall(README.read_text())


def test_readme_has_python_snippets():
    assert len(_python_blocks()) >= 2, "README lost its Python quickstart blocks"


@pytest.mark.parametrize(
    "index,block",
    list(enumerate(_python_blocks())),
    ids=lambda v: f"block{v}" if isinstance(v, int) else None,
)
def test_readme_snippet_runs(index, block):
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    namespace: dict = {"__name__": "__readme__"}
    stdout = io.StringIO()
    try:
        with contextlib.redirect_stdout(stdout):
            exec(compile(block, f"README.md[python block {index}]", "exec"), namespace)
    except Exception as exc:  # pragma: no cover - failure reporting
        pytest.fail(
            f"README python block {index} raised {type(exc).__name__}: {exc}\n"
            f"---\n{block}"
        )
    # snippets that print must have printed something real
    if "print(" in block:
        assert stdout.getvalue().strip(), f"README block {index} printed nothing"
