"""Vectorized local sorter: ``np.argsort`` over fixed-width key columns.

The distributed algorithms spend Step 1 sorting each PE's block.  When the
block arrives as a :class:`repro.strings.packed.PackedStringArray` (the hot
path of ``REPRO_PACKED``), the whole sort can run inside numpy instead of
the per-string :mod:`repro.sequential.msd_radix` recursion:

* NUL-free blocks sort through one stable ``np.argsort`` over a padded
  ``|S{width}`` key view (NUL padding compares below every real character,
  so the padded order *is* ``bytes`` order);
* blocks containing NUL bytes sort through a stable ``np.lexsort`` over
  big-endian ``uint64`` key columns with the string length as the final
  tie-break — equal padded keys mean the shorter string is a prefix of the
  longer (the longer one's tail is all NULs up to the key width), so
  shorter-first is exactly ``bytes`` order;
* blocks whose longest string exceeds the fixed-width guard rails fall back
  to the scalar sorter (:func:`vector_sort_with_lcp` returns ``None`` and
  :func:`repro.sequential.msd_radix.msd_radix_sort` runs its recursion).

The output pair — sorted packed array plus its ``int64`` LCP array — is
bit-identical to the scalar sorter's: the sorted sequence of a multiset is
unique and the LCP array is a pure function of it
(:func:`repro.strings.packed.packed_lcp_array` is pinned to the scalar
loop by ``tests/test_packed.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..strings.packed import (
    PackedStringArray,
    _LITTLE_ENDIAN,
    _fixed_width_ok,
    _MAX_FIXED_BYTES,
    fixed_width_keys,
    packed_lcp_array,
    take,
)
from .stats import CharStats

__all__ = ["vector_sort_with_lcp"]

# NUL-bearing blocks build one uint64 column per 8 key bytes; beyond this
# width the column pile costs more passes than the scalar sorter.
_MAX_LEXSORT_WIDTH = 256


def _column_lexsort(arr: PackedStringArray, width: int) -> np.ndarray:
    """Stable argsort of a packed array via ``np.lexsort`` over key columns.

    Safe with embedded NUL bytes: keys are compared as big-endian ``uint64``
    chunks of the NUL-padded fixed-width view, with the string length as the
    last (least-significant) key resolving padded ties shorter-first.
    """
    n = len(arr)
    words = (width + 7) // 8
    raw = fixed_width_keys(arr, words * 8).view(np.uint8).reshape(n, words * 8)
    cols = raw.view(np.uint64)
    if _LITTLE_ENDIAN:
        cols = cols.byteswap()  # big-endian words compare like their bytes
    keys = [arr.lengths] + [cols[:, j] for j in range(words - 1, -1, -1)]
    return np.lexsort(keys).astype(np.int64)


def vector_sort_with_lcp(
    arr: PackedStringArray, stats: Optional[CharStats] = None
) -> Optional[Tuple[PackedStringArray, np.ndarray]]:
    """Sort a packed block; returns ``(sorted, lcp_array)`` or ``None``.

    ``None`` signals the long-string fallback: the block's key matrix would
    blow the fixed-width guard rails, so the caller should run the scalar
    sorter instead.  Otherwise the result is bit-identical to
    :func:`repro.sequential.msd_radix.msd_radix_sort` on the same strings
    (sorted order and LCP array are both content-determined).
    """
    n = len(arr)
    if n == 0:
        return arr, np.zeros(0, dtype=np.int64)
    width = arr.max_len
    if width == 0:
        # all-empty block: already sorted, all LCPs 0
        if stats is not None:
            stats.add_chars(0)
        return arr, np.zeros(n, dtype=np.int64)
    if _fixed_width_ok(arr, width):
        order = np.argsort(fixed_width_keys(arr, width), kind="stable").astype(
            np.int64
        )
    elif width <= _MAX_LEXSORT_WIDTH and n * width <= _MAX_FIXED_BYTES:
        order = _column_lexsort(arr, width)
    else:
        return None
    srt = take(arr, order)
    out_lcps = packed_lcp_array(srt)
    if stats is not None:
        # every character enters the key material exactly once
        stats.add_chars(arr.num_chars)
        stats.bucket_passes += 1
    return srt, out_lcps
