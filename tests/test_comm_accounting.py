"""Communication accounting sanity: the headline metric is always meaningful.

``bytes_per_string`` / ``modeled_time`` feed every figure of the paper, so
they must be finite, positive, and internally consistent (phase bytes sum to
the total) for every algorithm — and the paper's core volume claims must
hold on the calibrated corpora.
"""

import math

import pytest

from repro.dist import ALGORITHMS, dsort
from repro.strings.generators import commoncrawl_like, dna_reads

_DATA = commoncrawl_like(500, seed=201)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS) + ["auto"])
def test_metrics_finite_and_positive(algorithm):
    res = dsort(_DATA, algorithm=algorithm, num_pes=4, seed=1)
    bps = res.bytes_per_string()
    assert math.isfinite(bps) and bps > 0
    time = res.modeled_time()
    assert math.isfinite(time) and time > 0
    assert res.report.total_bytes_sent == sum(res.report.bytes_sent_per_pe)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_phase_bytes_sum_to_total(algorithm):
    res = dsort(_DATA, algorithm=algorithm, num_pes=4, seed=2)
    assert sum(res.report.phase_bytes.values()) == res.report.total_bytes_sent


def test_send_receive_volumes_balance():
    res = dsort(_DATA, algorithm="ms", num_pes=4, seed=3)
    assert sum(res.report.bytes_sent_per_pe) == sum(res.report.bytes_received_per_pe)


def test_single_pe_runs_send_nothing():
    res = dsort(_DATA, algorithm="ms", num_pes=1, seed=4)
    assert res.report.total_bytes_sent == 0
    assert res.bytes_per_string() == 0.0


def test_pdms_golomb_beats_ms_on_high_duplicate_input():
    """The paper's core claim: on duplicate-heavy real-world-like inputs the
    Golomb-coded prefix-doubling sorter communicates fewer bytes than MS."""
    reads = dna_reads(800, seed=202)
    ms = dsort(reads, algorithm="ms", num_pes=4)
    golomb = dsort(reads, algorithm="pdms-golomb", num_pes=4)
    assert golomb.report.total_bytes_sent < ms.report.total_bytes_sent
    # and the Golomb wire format never costs more than the plain one
    plain = dsort(reads, algorithm="pdms", num_pes=4)
    assert golomb.report.total_bytes_sent <= plain.report.total_bytes_sent
