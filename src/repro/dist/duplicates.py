"""Distributed duplicate detection on prefix fingerprints (Section VI).

The prefix-doubling algorithms never compare prefixes directly; they hash
each candidate prefix to a fixed-width *fingerprint* and ask the machine a
multiset question: which of my fingerprints occur exactly once globally?

:func:`find_unique_fingerprints` answers it with the classic two-phase
exchange: fingerprints are range-partitioned to home PEs (so every home PE
sees all copies of a value), counted there, and a bit vector of verdicts
travels back.  With ``golomb=True`` each fingerprint message is sent as a
Golomb-coded sorted set whenever that is smaller than the plain fixed-width
array — the PDMS-Golomb optimisation of Section VI-B.

A false *duplicate* verdict (fingerprint collision) merely makes the caller
keep a string active for another doubling round — an overestimate, which the
DIST approximation tolerates by design.  A false *unique* verdict is
impossible: equal prefixes always hash equally.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Iterator, List, Optional, Sequence

from ..mpi.comm import Communicator
from ..mpi.serialization import WireSized, varint_size
from .golomb import GolombCodedSet

__all__ = [
    "prefix_fingerprint",
    "FingerprintBlock",
    "BitVector",
    "find_unique_fingerprints",
]


def prefix_fingerprint(prefix: bytes, salt: int = 0, bits: int = 64) -> int:
    """Deterministic ``bits``-wide fingerprint of a string prefix.

    ``salt`` decouples the hash functions of different doubling rounds so a
    collision in one round cannot persist into the next.
    """
    if not 1 <= bits <= 64:
        raise ValueError("bits must be in [1, 64]")
    digest = hashlib.blake2b(
        prefix, digest_size=8, key=salt.to_bytes(8, "little", signed=True)
    ).digest()
    return int.from_bytes(digest, "big") & ((1 << bits) - 1)


class FingerprintBlock(WireSized):
    """A plain array of fingerprints: fixed ``bits`` per value on the wire."""

    def __init__(self, values: Sequence[int], bits: int = 64):
        self.values = list(values)
        self.bits = bits

    def wire_bytes(self) -> int:
        """Uncompressed fingerprint cost: a varint count plus ``bits`` each."""
        return varint_size(len(self.values)) + len(self.values) * ((self.bits + 7) // 8)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)


class BitVector(WireSized):
    """A packed vector of booleans (the verdict replies)."""

    def __init__(self, flags: Sequence[bool]):
        self.flags = [bool(f) for f in flags]

    def wire_bytes(self) -> int:
        """One bit per verdict flag, plus a varint count."""
        return varint_size(len(self.flags)) + (len(self.flags) + 7) // 8

    def __len__(self) -> int:
        return len(self.flags)

    def __iter__(self) -> Iterator[bool]:
        return iter(self.flags)

    def __getitem__(self, index: int) -> bool:
        return self.flags[index]


def find_unique_fingerprints(
    comm: Communicator,
    fingerprints: Sequence[int],
    bits: int = 64,
    golomb: bool = False,
    phase: Optional[str] = None,
) -> List[bool]:
    """Per-fingerprint verdicts: is this value globally unique?

    Verdicts come back in the order of ``fingerprints``.  Values must fit in
    ``bits`` bits.  ``golomb=True`` enables the compressed message format
    (the smaller of Golomb-coded and plain is chosen per message, as a real
    implementation would).  ``phase`` overrides the accounting phase label.
    """
    limit = 1 << bits
    for v in fingerprints:
        if not 0 <= v < limit:
            raise ValueError(
                f"fingerprint {v} does not fit in {bits} bits"
            )
    p = comm.size

    with comm.phase(phase if phase is not None else "duplicate-detection"):
        # range-partition values to home PEs; home PE d owns the slice
        # [ceil(d*limit/p), ceil((d+1)*limit/p)).  Values are sent relative
        # to the slice base, which keeps Golomb deltas small; equality is
        # preserved because all copies of a value share a home (and base).
        order_per_dest: List[List[int]] = [[] for _ in range(p)]
        for i, v in enumerate(fingerprints):
            order_per_dest[min(p - 1, v * p // limit)].append(i)

        slice_span = limit // p + 1
        messages = []
        for dest in range(p):
            idxs = order_per_dest[dest]
            idxs.sort(key=lambda i: fingerprints[i])
            base = -(-dest * limit // p)
            values = [fingerprints[i] - base for i in idxs]
            block = FingerprintBlock(values, bits)
            if golomb:
                coded = GolombCodedSet(values, universe=slice_span)
                messages.append(
                    coded if coded.wire_bytes() < block.wire_bytes() else block
                )
            else:
                messages.append(block)

        received = comm.alltoall(messages)
        incoming = [list(msg) for msg in received]
        counts = Counter(v for values in incoming for v in values)
        replies = [
            BitVector([counts[v] == 1 for v in values]) for values in incoming
        ]
        verdicts_home = comm.alltoall(replies)

        out = [False] * len(fingerprints)
        for dest in range(p):
            for i, unique in zip(order_per_dest[dest], verdicts_home[dest]):
                out[i] = unique
    return out
