"""Lifecycle, teardown and accounting of the multiprocessing engine.

The conformance matrix (``tests/test_engine_conformance.py``) proves the
``processes`` backend computes the same answers as the thread engine; this
module pins everything around that computation — availability probing,
engine resolution precedence, worker/segment cleanup, idempotent shutdown,
reuse after shutdown, real-transport accounting and argument validation.
The autouse ``no_engine_leaks`` fixture in ``conftest.py`` turns any leaked
child process or shared-memory segment into a test failure, so every test
here doubles as a leak check.
"""

import multiprocessing
import os

import pytest

from engine_conformance import engine_available
from repro.mpi import (
    SpmdError,
    get_engine,
    resolve_engine_name,
    run_spmd,
)
from repro.mpi.procengine import ProcessEngine, process_engine_available
from repro.session import Cluster

pytestmark = pytest.mark.skipif(
    not process_engine_available()[0],
    reason=process_engine_available()[1],
)


def _sum_ranks(comm):
    """A tiny SPMD program with one collective and one p2p round."""
    total = sum(comm.allgather(comm.rank))
    peer = (comm.rank + 1) % comm.size
    comm.send(comm.rank, dest=peer, tag=1)
    got = comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
    return total, got


class TestLifecycle:
    def test_run_leaves_no_children_or_segments(self):
        engine = ProcessEngine(3)
        try:
            results, _ = engine.run(_sum_ranks)
        finally:
            engine.shutdown()
        assert [r[0] for r in results] == [3, 3, 3]
        assert not multiprocessing.active_children()

    def test_shutdown_is_idempotent(self):
        engine = ProcessEngine(2)
        engine.run(_sum_ranks)
        engine.shutdown()
        engine.shutdown()  # second call must be a no-op, not an error

    def test_engine_is_reusable_after_shutdown(self):
        engine = ProcessEngine(2)
        engine.run(_sum_ranks)
        engine.shutdown()
        results, _ = engine.run(_sum_ranks)
        assert [r[0] for r in results] == [1, 1]
        engine.shutdown()

    def test_consecutive_runs_share_one_engine(self):
        engine = ProcessEngine(2)
        try:
            for _ in range(3):
                results, _ = engine.run(_sum_ranks)
                assert [r[0] for r in results] == [1, 1]
            assert engine.runs_completed == 3
        finally:
            engine.shutdown()

    def test_worker_failure_is_a_typed_error_and_cleans_up(self):
        def boom(comm):
            if comm.rank == 1:
                raise RuntimeError("deliberate worker failure")
            comm.barrier()
            return comm.rank

        engine = ProcessEngine(3)
        try:
            with pytest.raises(SpmdError, match="deliberate worker failure"):
                engine.run(boom)
        finally:
            engine.shutdown()
        assert not multiprocessing.active_children()

    def test_cluster_context_manager_shuts_the_engine_down(self):
        with Cluster(num_pes=2, engine="processes") as cluster:
            res = cluster.sort([b"b", b"a"], "ms")
            assert res.sorted_strings == [b"a", b"b"]
        assert not multiprocessing.active_children()

    def test_cluster_shutdown_is_explicitly_callable(self):
        cluster = Cluster(num_pes=2, engine="processes")
        cluster.sort([b"b", b"a"], "ms")
        cluster.shutdown()
        cluster.shutdown()  # idempotent through the session layer too


class TestValidation:
    def test_rejects_non_positive_pe_count(self):
        with pytest.raises(ValueError):
            ProcessEngine(0)

    def test_availability_probe_reports_a_reason(self):
        ok, reason = process_engine_available()
        assert ok is True
        assert reason == ""

    def test_engine_name_is_processes(self):
        engine = ProcessEngine(1)
        try:
            assert engine.name == "processes"
        finally:
            engine.shutdown()


class TestResolution:
    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "threads")
        assert resolve_engine_name("processes") == "processes"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "processes")
        assert resolve_engine_name(None) == "processes"

    def test_default_is_threads(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_name(None) == "threads"

    def test_registry_resolves_the_class(self):
        assert get_engine("processes") is ProcessEngine

    def test_run_spmd_engine_keyword(self):
        results, report = run_spmd(2, _sum_ranks, engine="processes")
        assert [r[0] for r in results] == [1, 1]
        assert report.engine == "processes"


class TestAccounting:
    def test_transported_bytes_cover_the_simulated_volume(self):
        _, report = run_spmd(3, _sum_ranks, engine="processes")
        # every simulated wire byte had to physically cross an address
        # space, plus frame overhead; threads move nothing for the same run
        assert report.transported_bytes > 0
        _, threaded = run_spmd(3, _sum_ranks, engine="threads")
        assert threaded.transported_bytes == 0
        assert report.total_bytes_sent == threaded.total_bytes_sent

    def test_report_is_tagged_with_the_engine(self):
        _, report = run_spmd(2, _sum_ranks, engine="processes")
        assert report.engine == "processes"

    def test_large_payloads_ride_shared_memory(self):
        from repro.mpi import shm

        def prog(comm):
            blob = bytes([65 + comm.rank]) * (shm.SHM_THRESHOLD + 1024)
            peer = (comm.rank + 1) % comm.size
            comm.send(blob, dest=peer, tag=9)
            got = comm.recv(source=(comm.rank - 1) % comm.size, tag=9)
            return len(got)

        results, report = run_spmd(2, prog, engine="processes")
        assert results == [shm.SHM_THRESHOLD + 1024] * 2
        # the payload crossed via a shared-memory segment, and the segment
        # was unlinked after delivery (the leak fixture re-checks /dev/shm)
        assert report.transported_bytes > 2 * shm.SHM_THRESHOLD

    def test_no_segments_left_in_dev_shm(self):
        run_spmd(2, _sum_ranks, engine="processes")
        if os.path.isdir("/dev/shm"):
            leftovers = [
                n for n in os.listdir("/dev/shm") if n.startswith("reproshm-")
            ]
            assert leftovers == []


class TestConformanceFixtureAxis:
    def test_conformance_helpers_see_this_platform(self):
        ok, reason = engine_available("processes")
        assert ok, reason
