#!/usr/bin/env python3
"""Sorting DNA reads (the DNAREADS scenario of Figure 5, right).

Sorting raw sequencing reads is a preprocessing step for genome assembly and
index construction.  Compared to web text, DNA reads have a tiny alphabet
({A,C,G,T}), shorter LCPs and a lower D/N ratio — the regime where the
prefix-doubling algorithm (PDMS) saves most of the communication volume.

The example sorts a synthetic read set with MS and PDMS, shows that PDMS only
communicates the short distinguishing prefixes, and demonstrates the
origin-tracking API with which a consumer retrieves the full read behind an
output prefix.

Run with::

    python examples/dna_reads_sort.py [num_reads]
"""

from __future__ import annotations

import pathlib
import sys

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import dsort
from repro.strings import dna_reads, dn_ratio


def main() -> None:
    num_reads = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    reads = dna_reads(num_reads, read_len=99, seed=11)
    total_chars = sum(len(s) for s in reads)
    print(
        f"input: {len(reads)} reads, {total_chars} base pairs, "
        f"D/N = {dn_ratio(reads):.2f} (paper's DNAREADS: 0.38)\n"
    )

    ms = dsort(reads, algorithm="ms", num_pes=8, check=True, seed=3)
    pdms = dsort(reads, algorithm="pdms-golomb", num_pes=8, check=True, seed=3)

    print(f"{'':<14}{'bytes/string':>14}{'total MB sent':>16}")
    for name, res in (("MS", ms), ("PDMS-Golomb", pdms)):
        print(
            f"{name:<14}{res.bytes_per_string():>14.1f}"
            f"{res.report.total_bytes_sent / 1e6:>16.3f}"
        )
    saving = ms.report.total_bytes_sent / max(1, pdms.report.total_bytes_sent)
    print(f"\nPDMS-Golomb communicates {saving:.1f}x fewer bytes than MS on this input.")

    # PDMS outputs distinguishing *prefixes* plus their origin (source PE,
    # position); the full read can be fetched from the owning PE on demand.
    pe = 3
    prefixes = pdms.outputs_per_pe[pe][:5]
    origins = pdms.origins_per_pe[pe][:5]
    print(f"\nfirst prefixes on PE {pe} (with origin -> full read lookup):")
    for prefix, (src_pe, _pos) in zip(prefixes, origins):
        print(f"  {prefix.decode():<28} from PE {src_pe}")


if __name__ == "__main__":
    main()
