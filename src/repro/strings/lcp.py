"""Longest-common-prefix (LCP) and distinguishing-prefix machinery.

Definitions follow Section II of the paper:

* ``LCP(s, t)`` is the length of the longest common prefix of ``s`` and ``t``.
* For a *sorted* string array ``S`` the LCP array is
  ``[bot, h_1, ..., h_{|S|-1}]`` with ``h_i = LCP(S[i-1], S[i])``; we encode the
  undefined first entry ``bot`` as 0.
* The distinguishing prefix length ``DIST(s)`` of a string ``s`` in a set
  ``S`` is the number of characters that must be inspected to distinguish it
  from every *other* string in ``S``:
  ``DIST(s) = max_{t != s} LCP(s, t) + 1`` (capped at ``|s|`` — once the whole
  string, including its implicit 0 terminator, has been read nothing more can
  be inspected).
* ``D = sum_s DIST(s)`` is the total distinguishing prefix size, the lower
  bound on the number of characters any string sorting algorithm must
  inspect.

The LCP array of a sorted set is enough to compute ``DIST`` for every string:
for sorted ``S`` the closest strings (by LCP) are the immediate neighbours, so
``DIST(S[i]) = max(h_i, h_{i+1}) + 1`` clipped to ``|S[i]|``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "lcp",
    "lcp_array",
    "lcp_array_of_sorted",
    "verify_lcp_array",
    "distinguishing_prefixes",
    "distinguishing_prefix_size",
    "dn_ratio",
    "merge_lcp_statistics",
    "lcp_compress_lengths",
]


def lcp(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of ``a`` and ``b``.

    A simple character loop; used on the hot path of the sequential sorters,
    so it fast-paths the fully-equal-prefix case with slicing comparisons.
    """
    n = min(len(a), len(b))
    if a[:n] == b[:n]:
        return n
    lo, hi = 0, n
    # binary search over the first mismatch: a[:mid] == b[:mid] is monotone
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


def lcp_array(strings: Sequence[bytes]) -> List[int]:
    """LCP array of a string sequence in its *given* order.

    ``out[0] == 0`` and ``out[i] == lcp(strings[i-1], strings[i])``.  The input
    does not need to be sorted (the distributed exchange step works with LCP
    arrays of arbitrarily ordered received sequences), but the common case is
    a sorted sequence.
    """
    out = [0] * len(strings)
    for i in range(1, len(strings)):
        out[i] = lcp(strings[i - 1], strings[i])
    return out


def lcp_array_of_sorted(strings: Sequence[bytes]) -> List[int]:
    """LCP array of a sorted sequence; raises if the input is not sorted.

    Useful in tests and checkers where silently accepting unsorted input
    would hide bugs.
    """
    for i in range(1, len(strings)):
        if strings[i - 1] > strings[i]:
            raise ValueError(
                f"input not sorted at position {i}: {strings[i-1]!r} > {strings[i]!r}"
            )
    return lcp_array(strings)


def verify_lcp_array(strings: Sequence[bytes], lcps: Sequence[int]) -> bool:
    """Check that ``lcps`` is the correct LCP array for ``strings``."""
    if len(strings) != len(lcps):
        return False
    if strings and lcps and lcps[0] != 0:
        return False
    for i in range(1, len(strings)):
        if lcps[i] != lcp(strings[i - 1], strings[i]):
            return False
    return True


def distinguishing_prefixes(strings: Sequence[bytes]) -> List[int]:
    """``DIST(s)`` for every string of the input, in input order.

    The input need not be sorted; internally the strings are sorted (keeping
    track of their original positions) and the neighbour rule
    ``DIST = max(h_i, h_{i+1}) + 1`` is applied, clipped to the string length.

    Exact duplicates have ``DIST`` equal to their full length (they can never
    be distinguished by a proper prefix; inspecting the terminating 0 — i.e.
    the entire string — is required, matching the paper's convention that the
    0 terminator is part of the string).
    """
    n = len(strings)
    if n == 0:
        return []
    if n == 1:
        # a single string is distinguished by its first character (or by its
        # terminator if it is empty)
        return [min(1, len(strings[0])) if strings[0] else 0]

    order = sorted(range(n), key=lambda i: strings[i])
    sorted_strings = [strings[i] for i in order]
    h = lcp_array(sorted_strings)

    dist_sorted = [0] * n
    for i in range(n):
        left = h[i] if i > 0 else 0
        right = h[i + 1] if i + 1 < n else 0
        d = max(left, right) + 1
        dist_sorted[i] = min(d, len(sorted_strings[i]))
        if len(sorted_strings[i]) == 0:
            dist_sorted[i] = 0

    out = [0] * n
    for pos, original in enumerate(order):
        out[original] = dist_sorted[pos]
    return out


def distinguishing_prefix_size(strings: Sequence[bytes]) -> int:
    """Total distinguishing prefix size ``D`` of the input."""
    return sum(distinguishing_prefixes(strings))


def dn_ratio(strings: Sequence[bytes]) -> float:
    """The ratio ``D / N`` used throughout the paper's evaluation."""
    total = sum(len(s) for s in strings)
    if total == 0:
        return 0.0
    return distinguishing_prefix_size(strings) / total


def merge_lcp_statistics(strings: Sequence[bytes]) -> Tuple[float, float]:
    """Return ``(average LCP, average LCP as a fraction of string length)``.

    These are the two statistics the paper reports for its real-world inputs
    (e.g. COMMONCRAWL: average LCP 23.9, 60 % of each line) and that the
    synthetic corpus generators are calibrated against.
    """
    n = len(strings)
    if n < 2:
        return (0.0, 0.0)
    srt = sorted(strings)
    h = lcp_array(srt)
    mean_lcp = sum(h[1:]) / (n - 1)
    mean_len = sum(len(s) for s in strings) / n
    frac = mean_lcp / mean_len if mean_len > 0 else 0.0
    return (mean_lcp, frac)


def lcp_compress_lengths(strings: Sequence[bytes], lcps: Sequence[int]) -> int:
    """Number of characters remaining after LCP compression.

    With LCP compression (Section V, Step 3) each string transmits only its
    suffix past the LCP with the *previous* string in the same message; the
    first string of a message is always sent in full.  The return value is
    ``sum(len(s_i) - h_i)`` which the exchange step uses for byte accounting.
    """
    if len(strings) != len(lcps):
        raise ValueError("strings and lcps must have equal length")
    total = 0
    for s, h in zip(strings, lcps):
        clipped = min(h, len(s))
        total += len(s) - clipped
    return total
