"""Unit tests for hQuick's internal helpers (pivot selection, subcube gossip)."""

import pytest

from repro.dist.hquick import _local_median, _subcube_allgather, _weighted_median, hquick_sort
from repro.mpi import run_spmd
from repro.strings.generators import random_strings


class TestLocalMedian:
    def test_empty(self):
        assert _local_median([]) is None

    def test_single(self):
        assert _local_median([b"x"]) == b"x"

    def test_median_of_unsorted(self):
        assert _local_median([b"c", b"a", b"b"]) == b"b"

    def test_even_count_takes_upper_middle(self):
        assert _local_median([b"d", b"a", b"b", b"c"]) == b"c"


class TestWeightedMedian:
    def test_ignores_empty_contributions(self):
        entries = [(None, 0), (b"m", 10), (None, 0)]
        assert _weighted_median(entries) == b"m"

    def test_all_empty_gives_empty_string(self):
        assert _weighted_median([(None, 0), (None, 0)]) == b""

    def test_weighting_shifts_the_median(self):
        entries = [(b"a", 1), (b"b", 1), (b"z", 10)]
        assert _weighted_median(entries) == b"z"

    def test_order_independent(self):
        a = [(b"a", 3), (b"b", 2), (b"c", 5)]
        b = list(reversed(a))
        assert _weighted_median(a) == _weighted_median(b)

    def test_balanced_weights_pick_middle(self):
        entries = [(b"a", 1), (b"b", 1), (b"c", 1)]
        assert _weighted_median(entries) == b"b"


class TestSubcubeAllgather:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_gathers_exactly_the_subcube(self, dims):
        p = 8

        def prog(comm):
            gathered = _subcube_allgather(comm, dims, [(bytes([97 + comm.rank]), comm.rank)])
            return sorted(w for _, w in gathered)

        results, _ = run_spmd(p, prog)
        size = 1 << dims
        for rank, members in enumerate(results):
            base = rank & ~(size - 1)
            assert members == list(range(base, base + size))


class TestHQuickEndToEnd:
    def test_single_pe_is_a_local_sort(self):
        data = random_strings(200, 1, 10, seed=1)

        def prog(comm):
            return hquick_sort(comm, data)

        results, report = run_spmd(1, prog)
        assert results[0][0] == sorted(data)
        assert report.total_bytes_sent == 0

    def test_all_ranks_empty(self):
        def prog(comm):
            return hquick_sort(comm, [])

        results, _ = run_spmd(4, prog)
        assert all(r == ([], []) for r in results)

    def test_identical_strings_everywhere(self):
        def prog(comm):
            return hquick_sort(comm, [b"tie"] * 50)

        results, _ = run_spmd(4, prog)
        flat = [s for r in results for s in r[0]]
        assert flat == [b"tie"] * 200
