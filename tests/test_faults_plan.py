"""Fault plans, the deterministic injector, and the checksum primitives."""

import numpy as np
import pytest

from repro.faults import (
    CHECKSUM_WIRE_BYTES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    payload_checksum,
    set_wire_checksums,
    use_wire_checksums,
    wire_checksums_enabled,
)
from repro.strings.packed import PackedStringArray


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="gremlin")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="drop", probability=-0.1)

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", after=-1)

    def test_max_hits_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", max_hits=0)
        FaultRule(kind="drop", max_hits=None)  # unbounded is fine

    def test_message_vs_phase_rules(self):
        assert FaultRule(kind="drop").is_message_rule
        assert FaultRule(kind="corrupt").is_message_rule
        assert not FaultRule(kind="crash").is_message_rule
        assert not FaultRule(kind="straggle").is_message_rule

    def test_channel_matching(self):
        rule = FaultRule(kind="drop", src=1, dst=2, phase="exchange")
        assert rule.matches_channel(1, 2, "exchange")
        assert not rule.matches_channel(0, 2, "exchange")
        assert not rule.matches_channel(1, 3, "exchange")
        assert not rule.matches_channel(1, 2, "local-sort")
        wild = FaultRule(kind="drop")
        assert wild.matches_channel(0, 1, "anything")
        # a message rule never matches phase events, and vice versa
        assert not rule.matches_phase(1, "exchange")
        assert not FaultRule(kind="crash", rank=1).matches_channel(1, 2, "x")

    def test_phase_matching(self):
        rule = FaultRule(kind="crash", rank=1, phase="exchange")
        assert rule.matches_phase(1, "exchange")
        assert not rule.matches_phase(0, "exchange")
        assert not rule.matches_phase(1, "local-sort")


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            rules=(
                FaultRule(kind="drop", src=0, dst=1, probability=0.5),
                FaultRule(kind="crash", rank=2, phase="exchange", after=1),
            ),
            max_retransmits=7,
            retry_delay=0.5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "turbo": True})

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(max_retransmits=-1)
        with pytest.raises(ValueError):
            FaultPlan(retry_delay=0.0)

    def test_wants_checksums(self):
        assert FaultPlan(rules=(FaultRule(kind="corrupt"),)).wants_checksums
        assert not FaultPlan(rules=(FaultRule(kind="drop"),)).wants_checksums


class TestFaultInjector:
    def test_same_plan_replays_identically(self):
        plan = FaultPlan(
            seed=9,
            rules=(FaultRule(kind="drop", probability=0.3, max_hits=None),),
        )
        def schedule():
            inj = FaultInjector(plan)
            return [
                inj.on_send(s, d, "exchange") is not None
                for s in range(3)
                for d in range(3)
                if s != d
                for _ in range(20)
            ]
        assert schedule() == schedule()

    def test_seed_changes_schedule(self):
        def fires(seed):
            inj = FaultInjector(
                FaultPlan(seed=seed, rules=(
                    FaultRule(kind="drop", probability=0.5, max_hits=None),
                ))
            )
            return [inj.on_send(0, 1, "x") is not None for _ in range(64)]
        assert fires(1) != fires(2)

    def test_after_window(self):
        inj = FaultInjector(
            FaultPlan(rules=(FaultRule(kind="drop", after=2, max_hits=None),))
        )
        decisions = [inj.on_send(0, 1, "x") is not None for _ in range(5)]
        assert decisions == [False, False, True, True, True]

    def test_max_hits_budget(self):
        inj = FaultInjector(
            FaultPlan(rules=(FaultRule(kind="drop", max_hits=2),))
        )
        decisions = [inj.on_send(0, 1, "x") is not None for _ in range(5)]
        assert decisions == [True, True, False, False, False]
        assert inj.injected_counts() == {"drop": 2}
        assert inj.total_injected == 2

    def test_hit_budget_is_per_channel(self):
        # max_hits budgets each channel independently, so the schedule can
        # never depend on which rank thread happens to send first
        inj = FaultInjector(FaultPlan(rules=(FaultRule(kind="drop", max_hits=1),)))
        assert inj.on_send(0, 1, "x") is not None
        assert inj.on_send(2, 3, "x") is not None  # fresh channel, fresh budget
        assert inj.on_send(0, 1, "x") is None  # same channel: budget spent
        assert inj.on_send(2, 3, "x") is None

    def test_first_fired_rule_wins_and_losers_keep_their_budget(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="drop", after=0, max_hits=1),
            FaultRule(kind="corrupt", after=0, max_hits=1),
        ))
        inj = FaultInjector(plan)
        first = inj.on_send(0, 1, "x")
        assert first is not None and first.kind == "drop"
        # faults never stack on one message: corrupt lost event one, but a
        # losing rule keeps its budget and fires on the next event
        second = inj.on_send(0, 1, "x")
        assert second is not None and second.kind == "corrupt"
        assert inj.on_send(0, 1, "x") is None
        assert inj.injected_counts() == {"drop": 1, "corrupt": 1}

    def test_retransmits_only_struck_by_corrupt(self):
        plan = FaultPlan(rules=(FaultRule(kind="drop", max_hits=None),))
        inj = FaultInjector(plan)
        assert inj.on_retransmit(0, 1, "x") is None
        plan2 = FaultPlan(rules=(FaultRule(kind="corrupt", max_hits=None),))
        inj2 = FaultInjector(plan2)
        action = inj2.on_retransmit(0, 1, "x")
        assert action is not None and action.kind == "corrupt"
        assert action.mask != 0

    def test_phase_rules(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", rank=1, phase="exchange", max_hits=1),
        ))
        inj = FaultInjector(plan)
        assert inj.on_phase(0, "exchange") is None
        assert inj.on_phase(1, "local-sort") is None
        action = inj.on_phase(1, "exchange")
        assert action is not None and action.kind == "crash"
        # single-shot: consumed
        assert inj.on_phase(1, "exchange") is None


class TestPayloadChecksum:
    def test_deterministic_and_type_tagged(self):
        assert payload_checksum(b"abc") == payload_checksum(b"abc")
        assert payload_checksum(b"abc") != payload_checksum("abc")
        assert payload_checksum(1) != payload_checksum("1")
        assert payload_checksum(None) != payload_checksum(0)
        assert payload_checksum(True) != payload_checksum(1)

    def test_structures(self):
        obj = {"k": [1, 2.5, b"x", None], "t": (True, "s")}
        assert payload_checksum(obj) == payload_checksum(
            {"k": [1, 2.5, b"x", None], "t": (True, "s")}
        )
        assert payload_checksum([1, 2]) != payload_checksum([2, 1])
        # list vs tuple is a Python-side distinction, not a wire one: both
        # serialise as a sequence, so they share a checksum
        assert payload_checksum([1, 2]) == payload_checksum((1, 2))

    def test_numpy_arrays(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert payload_checksum(a) == payload_checksum(a.copy())
        assert payload_checksum(a) != payload_checksum(a.astype(np.int32))
        # non-contiguous views checksum by content, not layout
        big = np.arange(10, dtype=np.int64)
        assert payload_checksum(big[::2]) == payload_checksum(
            np.ascontiguousarray(big[::2])
        )

    def test_packed_string_array(self):
        p = PackedStringArray.from_strings([b"ab", b"c", b""])
        q = PackedStringArray.from_strings([b"ab", b"c", b""])
        assert payload_checksum(p) == payload_checksum(q)
        r = PackedStringArray.from_strings([b"ab", b"d", b""])
        assert payload_checksum(p) != payload_checksum(r)

    def test_unsupported_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="content_crc"):
            payload_checksum(Opaque())

    def test_content_crc_hook(self):
        class Sealed:
            def content_crc(self):
                return 0xDEADBEEF

        assert payload_checksum(Sealed()) == payload_checksum(Sealed())


class TestChecksumToggle:
    def test_default_off_and_scoped_enable(self):
        assert not wire_checksums_enabled()
        with use_wire_checksums(True):
            assert wire_checksums_enabled()
        assert not wire_checksums_enabled()

    def test_set_returns_previous(self):
        prev = set_wire_checksums(True)
        try:
            assert prev is False
            assert set_wire_checksums(False) is True
        finally:
            set_wire_checksums(prev)

    def test_checksum_wire_bytes_constant(self):
        assert CHECKSUM_WIRE_BYTES == 4
