#!/usr/bin/env python3
"""Quickstart: sort a distributed string array and inspect the traffic report.

Runs every algorithm of the paper on a small synthetic D/N input, verifies
the output against the algorithm's contract, and prints the headline metric
of the paper's evaluation — bytes sent per string — next to the modelled
running time under the alpha-beta machine model.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import pathlib
import sys

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import ALGORITHMS, dsort
from repro.dist import use_async_exchange
from repro.strings import dn_instance, dn_ratio


def main() -> None:
    # A D/N = 0.5 instance: the first half of every string is a shared filler
    # prefix, the distinguishing counter sits in the middle (Section VII-A).
    data = dn_instance(num_strings=4000, dn=0.5, length=100, seed=42)
    print(f"input: {len(data)} strings, {sum(len(s) for s in data)} characters, "
          f"D/N = {dn_ratio(data):.2f}")
    print()

    header = f"{'algorithm':<12} {'bytes/string':>12} {'modeled time':>14} {'output'}"
    print(header)
    print("-" * len(header))

    for algorithm in ALGORITHMS:
        result = dsort(data, algorithm=algorithm, num_pes=8, check=True, seed=1)
        kind = "prefixes" if algorithm.startswith("pdms") else "full strings"
        print(
            f"{algorithm:<12} {result.bytes_per_string():>12.1f} "
            f"{result.modeled_time():>12.2e} s  {kind}"
        )

    # The sorted data is available as per-PE slices or as one flat list.
    result = dsort(data, algorithm="ms", num_pes=8, check=True)
    flat = result.sorted_strings
    assert flat == sorted(data)
    print()
    print("first three sorted strings:", [s[:20] for s in flat[:3]])
    print("per-PE output sizes:", [len(part) for part in result.outputs_per_pe])
    print("communication per phase (bytes):", result.report.phase_bytes)

    # Split-phase exchange: receivers decode and prepare the merge while
    # later buckets are still in flight.  Same strings, same bytes on the
    # wire — plus an overlap fraction the cost model credits.
    with use_async_exchange(True):
        overlapped = dsort(data, algorithm="ms", num_pes=8, check=True)
    assert overlapped.sorted_strings == flat
    assert overlapped.report.total_bytes_sent == result.report.total_bytes_sent
    print()
    print("split-phase exchange (REPRO_ASYNC_EXCHANGE=1):")
    print(f"  overlap fraction: {overlapped.overlap_fraction():.2f} "
          "of the exchange window hidden behind merge preparation")
    print(f"  modeled time: {result.modeled_time():.2e} s sync vs "
          f"{overlapped.modeled_time():.2e} s overlapped (same wire bytes)")


if __name__ == "__main__":
    main()
