"""Seeded bug: a blocking send whose peer arithmetic folds to the caller.

``rank + cube - cube`` is identically ``comm.rank``, so the blocking send
addresses the sending rank itself and can never complete.  Expected
finding: ``spmd-self-send``.
"""


def fold_to_self(comm, payload):
    rank = comm.rank
    cube = 0
    comm.send(payload, rank + cube, tag=31)
    return comm.recv(rank ^ 0, tag=31)
