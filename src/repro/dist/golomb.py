"""Golomb coding of sorted integer sets (Section VI-B).

PDMS-Golomb communicates *sorted* sets of fingerprints.  A sorted set of
``n`` values from a universe of size ``u`` can be delta-encoded: the gaps
between consecutive values are geometrically distributed with mean ``u/n``,
for which a Golomb code with parameter ``M ≈ ln(2) · u/n`` is the optimal
prefix-free code.  Every value then costs roughly ``log2(u/n) + 1.5`` bits
instead of the fixed ``log2 u`` bits of a plain fingerprint array — the
denser the set, the bigger the saving.

The codec below is the classic Golomb construction: a gap ``d`` is written
as the unary quotient ``d // M`` followed by the truncated-binary remainder
``d % M``.  Repeated values (gap 0) are legal — exact duplicates of a
fingerprint cost a single bit each.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from ..mpi.serialization import WireSized, varint_size

__all__ = ["golomb_parameter", "encode_sorted", "decode_sorted", "GolombCodedSet"]


def golomb_parameter(universe: int, n: int) -> int:
    """Near-optimal Golomb parameter ``M`` for ``n`` sorted values in ``universe``.

    ``M = ceil(ln(2) · universe / n)``, clamped to at least 1.  ``n == 0``
    returns 1 (nothing will be encoded, any parameter works).
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if n <= 0:
        return 1
    return max(1, math.ceil(math.log(2) * universe / n))


class _BitWriter:
    """MSB-first bit appender backed by a bytearray."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._cur = 0
        self._fill = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        self._cur = (self._cur << 1) | (bit & 1)
        self._fill += 1
        if self._fill == 8:
            self._buf.append(self._cur)
            self._cur = 0
            self._fill = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` bits, MSB first."""
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, q: int) -> None:
        """Append ``q`` in unary: q one-bits then a zero terminator."""
        for _ in range(q):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """The written bits as bytes, zero-padded to a byte boundary."""
        if self._fill:
            return bytes(self._buf) + bytes([self._cur << (8 - self._fill)])
        return bytes(self._buf)


class _BitReader:
    """MSB-first bit consumer over a bytes payload."""

    def __init__(self, payload: bytes) -> None:
        self._payload = payload
        self._pos = 0

    def read_bit(self) -> int:
        """Consume and return the next bit."""
        byte = self._payload[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits as one MSB-first integer."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Consume a unary-coded value (count of one-bits before the zero)."""
        q = 0
        while self.read_bit():
            q += 1
        return q


def _remainder_width(m: int) -> Tuple[int, int]:
    """``(b, cutoff)`` of the truncated-binary remainder code for parameter ``m``."""
    b = (m - 1).bit_length()
    return b, (1 << b) - m


def encode_sorted(values: Sequence[int], universe: int) -> Tuple[bytes, int]:
    """Golomb-encode a sorted sequence of non-negative ints.

    Returns ``(payload, m)``; ``m`` is the parameter the decoder needs.
    Unsorted or negative input raises ``ValueError``.
    """
    prev = 0
    for i, v in enumerate(values):
        if v < 0:
            raise ValueError(f"negative value {v} cannot be Golomb-coded")
        if i > 0 and v < prev:
            raise ValueError("encode_sorted requires a sorted sequence")
        prev = v

    m = golomb_parameter(universe, len(values))
    writer = _BitWriter()
    b, cutoff = _remainder_width(m)
    prev = 0
    for v in values:
        delta = v - prev
        prev = v
        writer.write_unary(delta // m)
        if m > 1:
            r = delta % m
            if r < cutoff:
                writer.write_bits(r, b - 1)
            else:
                writer.write_bits(r + cutoff, b)
    return writer.getvalue(), m


def decode_sorted(payload: bytes, m: int, count: int) -> List[int]:
    """Decode ``count`` values encoded by :func:`encode_sorted` with parameter ``m``."""
    if m < 1:
        raise ValueError("Golomb parameter must be >= 1")
    reader = _BitReader(payload)
    b, cutoff = _remainder_width(m)
    out: List[int] = []
    prev = 0
    for _ in range(count):
        q = reader.read_unary()
        r = 0
        if m > 1:
            r = reader.read_bits(b - 1)
            if r >= cutoff:
                r = ((r << 1) | reader.read_bit()) - cutoff
        prev += q * m + r
        out.append(prev)
    return out


class GolombCodedSet(WireSized):
    """A sorted integer set stored Golomb-coded, usable as a wire message.

    The constructor accepts the values in any order and sorts them; the wire
    size is the compressed payload plus the two varint headers (parameter and
    element count) a real implementation would frame the message with.
    """

    def __init__(self, values: Sequence[int], universe: int):
        self.universe = universe
        self.values = sorted(values)
        self.payload, self.m = encode_sorted(self.values, universe)

    def decode(self) -> List[int]:
        """Recover the sorted values from the Golomb-coded gap stream."""
        return decode_sorted(self.payload, self.m, len(self.values))

    def wire_bytes(self) -> int:
        """Coded payload plus the varint-framed parameter ``M`` and count."""
        return len(self.payload) + varint_size(self.m) + varint_size(len(self.values))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GolombCodedSet({len(self.values)} values, m={self.m})"
