"""Data model of the static analyzer: events, summaries, findings.

The analyzer (see :mod:`repro.analysis.runner`) parses the ``repro``
package with Python's own :mod:`ast` — no third-party parser — and turns
every function that takes a ``comm`` parameter (the SPMD rank-program
convention established by :class:`repro.mpi.comm.Communicator`) into a
:class:`FunctionSummary`: its communication call sites
(:class:`CommEvent`), the repro-internal functions it calls, and enough
location data to report findings.  The lint passes
(:mod:`~repro.analysis.spmd`, :mod:`~repro.analysis.wire`,
:mod:`~repro.analysis.toggles`) consume these summaries and emit
:class:`Finding` objects; :class:`LintReport` aggregates them with
deterministic ordering so two runs over the same tree render identical
human and JSON output.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "COLLECTIVE_METHODS",
    "P2P_METHODS",
    "CommEvent",
    "FunctionSummary",
    "ModuleInfo",
    "Finding",
    "LintReport",
    "SuppressionIndex",
]

#: ``Communicator`` methods every rank must reach in the same order
#: (``record_exchange_collective`` documents "must be called by all ranks at
#: the same program point", which is exactly the property the SPMD pass
#: checks, so it participates as a collective).
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "gather",
        "scatter",
        "allgather",
        "allreduce",
        "alltoall",
        "reduce",
        "record_exchange_collective",
    }
)

#: point-to-point ``Communicator`` methods (matched pairwise, never
#: sequence-checked across ranks).
P2P_METHODS = frozenset({"send", "recv", "sendrecv", "isend", "irecv"})

#: rooted collectives whose ``root`` literals the mismatch rule compares.
ROOTED_METHODS = frozenset({"bcast", "gather", "scatter", "reduce"})

#: reducing collectives whose ``op`` literals the mismatch rule compares.
REDUCING_METHODS = frozenset({"reduce", "allreduce"})


@dataclass(frozen=True)
class CommEvent:
    """One communication call site inside a rank program or helper.

    ``root``, ``op``, ``tag`` and ``peer`` hold the *unparsed source text*
    of the respective argument expression (or ``None`` where the method has
    no such argument), so syntactic matching — e.g. a ``recv`` tag against
    the ``send`` tags of the same call closure — is exact and needs no
    evaluation.
    """

    method: str
    module: str
    qualname: str
    line: int
    phase: str = ""
    root: Optional[str] = None
    op: Optional[str] = None
    tag: Optional[str] = None
    peer: Optional[str] = None

    @property
    def is_collective(self) -> bool:
        """Whether every rank must issue this call in the same order."""
        return self.method in COLLECTIVE_METHODS

    @property
    def is_p2p(self) -> bool:
        """Whether this is a point-to-point post (matched, not ordered)."""
        return self.method in P2P_METHODS

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form with deterministic key order (sorted at dump)."""
        out: Dict[str, object] = {
            "method": self.method,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.line,
            "kind": "collective" if self.is_collective else "p2p",
        }
        if self.phase:
            out["phase"] = self.phase
        for key, value in (
            ("root", self.root),
            ("op", self.op),
            ("tag", self.tag),
            ("peer", self.peer),
        ):
            if value is not None:
                out[key] = value
        return out


@dataclass
class FunctionSummary:
    """Per-function communication summary plus its repro-internal call edges."""

    module: str
    qualname: str
    line: int
    path: str
    comm_param: Optional[str]
    events: List[CommEvent] = field(default_factory=list)
    #: fully qualified ``module:qualname`` keys of resolved repro callees,
    #: in call-site order (duplicates preserved — splicing is positional)
    calls: List[str] = field(default_factory=list)
    #: events and call edges interleaved in AST traversal order:
    #: ``("event", <method>)`` / ``("call", <module:qualname>)`` tuples
    effects: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def key(self) -> str:
        """The index key (``module:qualname``) of this function."""
        return f"{self.module}:{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed source file: its dotted name, path, AST and source lines."""

    module: str
    path: str
    tree: object
    source: str

    @property
    def lines(self) -> List[str]:
        """The source split into lines (1-indexed access via ``lines[n-1]``)."""
        return self.source.splitlines()


@dataclass(frozen=True)
class Finding:
    """One lint finding: rule id, location, and a human-readable message."""

    rule: str
    path: str
    line: int
    message: str
    context: str = ""

    def sort_key(self) -> Tuple[str, int, str, str]:
        """Deterministic ordering: path, then line, then rule, then text."""
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the finding."""
        out: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.context:
            out["context"] = self.context
        return out


#: ``# lint: spmd-ok(<rule>)`` — the one suppression syntax all passes share
_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*spmd-ok\(\s*([A-Za-z0-9_*,\s-]+?)\s*\)")


class SuppressionIndex:
    """Per-file map of ``# lint: spmd-ok(<rule>)`` suppression comments.

    A finding is suppressed when the comment appears on the finding's line
    or on the line directly above it; ``spmd-ok(*)`` suppresses every rule
    on that line.  Multiple rules may be listed comma-separated.
    """

    def __init__(self) -> None:
        self._by_path: Dict[str, Dict[int, frozenset]] = {}

    def index_file(self, path: str, source: str) -> None:
        """Record the suppression comments of one source file."""
        per_line: Dict[int, frozenset] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(text)
            if match:
                rules = frozenset(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
                per_line[lineno] = rules
        if per_line:
            self._by_path[path] = per_line

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a suppression comment covers this finding."""
        per_line = self._by_path.get(finding.path)
        if not per_line:
            return False
        for lineno in (finding.line, finding.line - 1):
            rules = per_line.get(lineno)
            if rules and ("*" in rules or finding.rule in rules):
                return True
        return False


@dataclass
class LintReport:
    """Aggregated result of one analyzer run (all passes, all files)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    commgraphs: Dict[str, Dict[str, object]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    def extend(self, findings: List[Finding], suppressions: SuppressionIndex) -> None:
        """Fold a pass's findings in, routing suppressed ones aside."""
        for finding in findings:
            if suppressions.is_suppressed(finding):
                self.suppressed.append(finding)
            else:
                self.findings.append(finding)

    def finalize(self) -> "LintReport":
        """Sort everything into the canonical deterministic order."""
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)
        return self

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no unsuppressed findings)."""
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: findings, suppressions, stats, comm graphs."""
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stats": dict(sorted(self.stats.items())),
            "algorithms": sorted(self.commgraphs),
        }
