"""The all-to-all string exchange (Section V, Step 3).

Each PE cuts its locally sorted array into ``p`` buckets and delivers bucket
``j`` to PE ``j`` in one personalised all-to-all.  Two message formats are
available:

* :class:`StringBlock` — strings verbatim, each with a varint length header
  (MS-simple; an LCP array may optionally ride along);
* :class:`LcpCompressedBlock` — LCP front coding: the first string travels
  in full, every following string only as its suffix past the LCP with its
  predecessor (MS, PDMS).  The receiver reconstructs the full strings from
  the previous string and the LCP value, so the LCP array rides along for
  free *and* pays for itself.

Both classes implement ``wire_bytes`` so the traffic meter charges exactly
what a real implementation would put on the wire; the Python objects
themselves move by reference inside the simulated machine.

Both classes are **dual-backed**: constructed from a
:class:`repro.strings.packed.PackedStringArray` bucket (the hot path) all
encoding, wire accounting and decoding run as vectorized numpy kernels over
the contiguous byte buffer; constructed from ``list[bytes]`` the original
scalar code runs.  Wire sizes and decoded contents are bit-identical either
way — the benchmark suite pins this across all six ``dsort`` algorithms.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..mpi.comm import Communicator
from ..mpi.serialization import (
    WireSized,
    packed_wire_bytes,
    varint_size,
    varint_total,
)
from ..strings.lcp import lcp_array
from ..strings.packed import (
    PackedStringArray,
    front_code,
    front_decode,
    packed_lcp_array,
)

__all__ = ["StringBlock", "LcpCompressedBlock", "exchange_buckets"]

Strings = Union[Sequence[bytes], PackedStringArray]
Lcps = Union[Sequence[int], np.ndarray, None]


class StringBlock(WireSized):
    """One bucket sent verbatim, optionally together with its LCP array."""

    def __init__(self, strings: Strings, lcps: Lcps = None):
        if lcps is not None and len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        if isinstance(strings, PackedStringArray):
            self._packed: Optional[PackedStringArray] = strings
            self.strings: Sequence[bytes] = strings
            self.lcps = None if lcps is None else np.asarray(lcps, dtype=np.int64)
        else:
            self._packed = None
            self.strings = list(strings)
            self.lcps = list(lcps) if lcps is not None else None

    def decode(self) -> Tuple[List[bytes], List[int]]:
        """``(strings, lcps)``; the LCP array is recomputed when not shipped."""
        if self._packed is not None:
            strings = self._packed.to_list()
            if self.lcps is not None:
                return strings, self.lcps.tolist()
            return strings, packed_lcp_array(self._packed).tolist()
        strings = list(self.strings)
        lcps = list(self.lcps) if self.lcps is not None else lcp_array(strings)
        return strings, lcps

    def wire_bytes(self) -> int:
        if self._packed is not None:
            return packed_wire_bytes(self._packed, self.lcps)
        total = varint_size(len(self.strings))
        for s in self.strings:
            total += varint_size(len(s)) + len(s)
        if self.lcps is not None:
            total += sum(varint_size(h) for h in self.lcps)
        return total


class LcpCompressedBlock(WireSized):
    """One bucket with LCP front coding: ``(lcp, suffix-past-lcp)`` per string."""

    def __init__(self, entries: Sequence[Tuple[int, bytes]]):
        self.entries: Optional[List[Tuple[int, bytes]]] = list(entries)
        self._lcps: Optional[np.ndarray] = None
        self._suffixes: Optional[PackedStringArray] = None
        self._original: Optional[PackedStringArray] = None

    @classmethod
    def _from_packed(
        cls,
        lcps: np.ndarray,
        suffixes: PackedStringArray,
        original: Optional[PackedStringArray] = None,
    ) -> "LcpCompressedBlock":
        blk = cls.__new__(cls)
        blk.entries = None
        blk._lcps = lcps
        blk._suffixes = suffixes
        blk._original = original
        return blk

    @classmethod
    def encode(cls, strings: Strings, lcps: Lcps) -> "LcpCompressedBlock":
        """Front-code a sorted run with its LCP array.

        The first string always travels in full; LCP values are clipped
        defensively (an LCP can never exceed either neighbour).  Packed
        buckets are encoded by the batched :func:`repro.strings.packed.front_code`
        kernel — one gather builds the whole suffix buffer.
        """
        if len(strings) != len(lcps):
            raise ValueError("strings and lcps must have equal length")
        if isinstance(strings, PackedStringArray):
            clipped, suffixes = front_code(strings, lcps)
            # keep a reference to the encoded run: the simulated machine
            # delivers messages zero-copy (exactly as StringBlock does), so
            # the receiver charges wire bytes for the front-coded form but
            # does not redo the byte-level reconstruction that
            # :func:`front_decode` implements (and the tests pin)
            return cls._from_packed(clipped, suffixes, original=strings)
        entries: List[Tuple[int, bytes]] = []
        prev_len = 0
        for i, (s, h) in enumerate(zip(strings, lcps)):
            h = 0 if i == 0 else min(h, len(s), prev_len)
            entries.append((h, s[h:]))
            prev_len = len(s)
        return cls(entries)

    def __len__(self) -> int:
        if self._suffixes is not None:
            return len(self._suffixes)
        return len(self.entries)

    @property
    def chars_sent(self) -> int:
        """Characters on the wire after front coding (suffixes only)."""
        if self._suffixes is not None:
            return self._suffixes.num_chars
        return sum(len(suffix) for _, suffix in self.entries)

    def decode(self) -> Tuple[List[bytes], List[int]]:
        if self._suffixes is not None:
            if self._original is not None:
                return self._original.to_list(), self._lcps.tolist()
            decoded = front_decode(self._lcps, self._suffixes)
            return decoded.to_list(), self._lcps.tolist()
        strings: List[bytes] = []
        lcps: List[int] = []
        prev = b""
        for h, suffix in self.entries:
            if h > len(prev):
                raise ValueError(
                    f"corrupt LCP-compressed block: LCP {h} exceeds the "
                    f"previous string's length {len(prev)}"
                )
            s = prev[:h] + suffix
            strings.append(s)
            lcps.append(h)
            prev = s
        return strings, lcps

    def wire_bytes(self) -> int:
        if self._suffixes is not None:
            return (
                varint_size(len(self._suffixes))
                + varint_total(self._lcps)
                + varint_total(self._suffixes.lengths)
                + self._suffixes.num_chars
            )
        total = varint_size(len(self.entries))
        for h, suffix in self.entries:
            total += varint_size(h) + varint_size(len(suffix)) + len(suffix)
        return total


def exchange_buckets(
    comm: Communicator,
    buckets: Sequence[Tuple[Strings, Lcps]],
    lcp_compression: bool = False,
    payloads: Optional[Sequence[Any]] = None,
    ship_lcps: bool = True,
):
    """Deliver bucket ``j`` to PE ``j``; return the received runs.

    ``buckets`` must contain exactly ``comm.size`` ``(strings, lcps)`` pairs
    (either ``list[bytes]`` + ``list[int]`` or packed arrays + ``int64``
    arrays).  The return value has one entry per *source* PE:
    ``(strings, lcps)`` tuples, or ``(strings, lcps, payload)`` when
    ``payloads`` supplies one extra (wire-accounted) object per destination —
    PDMS uses this to ship each bucket's origin offset alongside the
    prefixes.

    Without ``lcp_compression`` the caller's LCP arrays ride along as varints
    (``ship_lcps=True``, the default) instead of being silently dropped and
    recomputed O(N) at the receiver.  Baselines that genuinely have no LCP
    machinery on the wire (FKmerge, MS-simple) pass ``ship_lcps=False`` to
    keep their message format — and their measured traffic — faithful to the
    paper; their receivers then recompute the LCP arrays locally.
    """
    if len(buckets) != comm.size:
        raise ValueError(
            f"need one bucket per PE ({comm.size}), got {len(buckets)}"
        )
    if payloads is not None and len(payloads) != comm.size:
        raise ValueError("payloads must have one entry per PE")

    with comm.phase("exchange"):
        if lcp_compression:
            blocks = [
                LcpCompressedBlock.encode(strings, lcps)
                for strings, lcps in buckets
            ]
        else:
            blocks = [
                StringBlock(
                    strings, lcps if ship_lcps and lcps is not None else None
                )
                for strings, lcps in buckets
            ]
        if payloads is None:
            received = comm.alltoall(blocks)
        else:
            received = comm.alltoall(
                [(blk, pay) for blk, pay in zip(blocks, payloads)]
            )

        out = []
        decoded_chars = 0
        for message in received:
            if payloads is None:
                block, payload = message, None
            else:
                block, payload = message
            strings, lcps = block.decode()
            decoded_chars += sum(len(s) for s in strings)
            out.append(
                (strings, lcps) if payloads is None else (strings, lcps, payload)
            )
        comm.record_local_work(decoded_chars, sum(len(r[0]) for r in out))
    return out
