"""Tests for wire-size accounting of simulated messages."""

import numpy as np
import pytest

from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.dist.duplicates import BitVector, FingerprintBlock
from repro.dist.golomb import GolombCodedSet
from repro.mpi.serialization import varint_size, wire_size


class TestVarint:
    @pytest.mark.parametrize(
        "value, size",
        [(0, 1), (1, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), (2**31, 5)],
    )
    def test_sizes(self, value, size):
        assert varint_size(value) == size

    def test_negative_values_supported(self):
        assert varint_size(-1) >= 1
        assert varint_size(-1000) >= 2


class TestWireSize:
    def test_bytes_include_length_header(self):
        assert wire_size(b"abcd") == 4 + 1
        assert wire_size(b"") == 1

    def test_str_counts_utf8(self):
        assert wire_size("é") == 2 + 1

    def test_ints_are_varints(self):
        assert wire_size(5) == 1
        assert wire_size(300) == 2

    def test_none_bool_float(self):
        assert wire_size(None) == 1
        assert wire_size(True) == 1
        assert wire_size(3.14) == 8

    def test_lists_and_tuples_sum_elements(self):
        assert wire_size([b"ab", b"c"]) == 1 + (2 + 1) + (1 + 1)
        assert wire_size((1, 2)) == 1 + 1 + 1

    def test_dicts(self):
        assert wire_size({1: b"a"}) == 1 + 1 + 2

    def test_numpy_arrays(self):
        arr = np.zeros(10, dtype=np.int32)
        assert wire_size(arr) == 40
        assert wire_size(np.int64(7)) == 1

    def test_unknown_type_raises(self):
        class Foo:
            pass

        with pytest.raises(TypeError):
            wire_size(Foo())

    def test_wire_sized_hook(self):
        class Custom:
            def wire_bytes(self):
                return 42

        assert wire_size(Custom()) == 42


class TestStringBlock:
    def test_wire_size_counts_strings_and_headers(self):
        blk = StringBlock([b"abc", b""])
        assert blk.wire_bytes() == 1 + (1 + 3) + (1 + 0)

    def test_lcps_add_varints(self):
        with_lcps = StringBlock([b"abc", b"abd"], [0, 2])
        without = StringBlock([b"abc", b"abd"])
        assert with_lcps.wire_bytes() == without.wire_bytes() + 2

    def test_decode_recomputes_lcps(self):
        blk = StringBlock([b"abc", b"abd"])
        strings, lcps = blk.decode()
        assert strings == [b"abc", b"abd"]
        assert lcps == [0, 2]

    def test_decode_keeps_shipped_lcps(self):
        blk = StringBlock([b"abc", b"abd"], [0, 2])
        assert blk.decode() == ([b"abc", b"abd"], [0, 2])


class TestLcpCompressedBlock:
    def test_roundtrip(self):
        strings = [b"algae", b"alpha", b"alps", b"alps"]
        lcps = [0, 2, 3, 4]
        blk = LcpCompressedBlock.encode(strings, lcps)
        decoded, dec_lcps = blk.decode()
        assert decoded == strings
        assert dec_lcps == [0, 2, 3, 4]

    def test_compression_reduces_wire_size(self):
        strings = [b"x" * 100 + bytes([c]) for c in range(97, 105)]
        strings.sort()
        lcps = [0] + [100] * 7
        compressed = LcpCompressedBlock.encode(strings, lcps)
        plain = StringBlock(strings)
        assert compressed.wire_bytes() < plain.wire_bytes() / 4

    def test_chars_sent_counts_suffixes_only(self):
        strings = [b"aaa", b"aab"]
        blk = LcpCompressedBlock.encode(strings, [0, 2])
        assert blk.chars_sent == 3 + 1

    def test_empty_block(self):
        blk = LcpCompressedBlock.encode([], [])
        assert blk.decode() == ([], [])
        assert blk.wire_bytes() == 1

    def test_corrupt_block_detected(self):
        blk = LcpCompressedBlock([(0, b"ab"), (5, b"c")])
        with pytest.raises(ValueError):
            blk.decode()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LcpCompressedBlock.encode([b"a"], [0, 0])


class TestFingerprintAndBitMessages:
    def test_fingerprint_block_fixed_width(self):
        blk = FingerprintBlock([1, 2, 3], bits=64)
        assert blk.wire_bytes() == 1 + 3 * 8
        blk32 = FingerprintBlock([1, 2, 3], bits=32)
        assert blk32.wire_bytes() == 1 + 3 * 4

    def test_bitvector_packs_eight_per_byte(self):
        bv = BitVector([True] * 8)
        assert bv.wire_bytes() == 1 + 1
        bv9 = BitVector([False] * 9)
        assert bv9.wire_bytes() == 1 + 2
        assert list(bv9) == [False] * 9
        assert bv9[3] is False

    def test_golomb_set_wire_size_matches_payload(self):
        gs = GolombCodedSet([3, 17, 90, 1000], universe=2**20)
        assert gs.wire_bytes() >= len(gs.payload)
        assert gs.decode() == [3, 17, 90, 1000]
        assert wire_size(gs) == gs.wire_bytes()
