"""Deterministic fault injection, detection and recovery (``repro.faults``).

The validation harness the real-process engine backends will be run
against: seeded :class:`FaultPlan` schedules inject drops, duplicates,
delays, corruption, rank crashes and stragglers into the simulated machine
(:mod:`repro.mpi.engine` hosts the hooks); CRC32 seals and sequence numbers
detect what was injected; a bounded retransmit protocol and session-level
retries (:meth:`repro.session.Cluster.sort` ``max_retries``) recover.  See
``docs/FAULTS.md`` for the taxonomy, the frame layouts, the retry state
machine and the recovery guarantees table.
"""

from .checksum import (
    block_checksum,
    CHECKSUM_WIRE_BYTES,
    payload_checksum,
    set_wire_checksums,
    use_wire_checksums,
    wire_checksums_enabled,
)
from .errors import CorruptFrameError, FaultError, LostMessageError, RankCrashError
from .inject import FaultAction, FaultInjector
from .plan import FAULT_KINDS, FaultPlan, FaultRule
from .wire import Envelope, envelope_overhead

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultAction",
    "FaultInjector",
    "FaultError",
    "CorruptFrameError",
    "LostMessageError",
    "RankCrashError",
    "Envelope",
    "envelope_overhead",
    "CHECKSUM_WIRE_BYTES",
    "block_checksum",
    "payload_checksum",
    "wire_checksums_enabled",
    "set_wire_checksums",
    "use_wire_checksums",
]
