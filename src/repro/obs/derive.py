"""Derived metrics: a labeled snapshot from a finished report + timeline.

The bridge between the accounting layer (:class:`repro.net.metrics.TrafficReport`,
exact byte counters) and the tracing layer (:class:`repro.obs.timeline.Timeline`,
where time went): :func:`run_metrics` populates a
:class:`~repro.obs.registry.MetricsRegistry` with the run's counters and
the derived gauges the ROADMAP asks for — strings/sec per stage (items
over *exclusive* stage seconds, so barrier wait never deflates a stage's
throughput) and peak RSS per stage (boundary-sampled high-water marks) —
and returns the immutable snapshot that attaches to
``TrafficReport.metrics``.

Every series carries the common label set (``algorithm``, ``engine``,
``topology``) plus its own discriminators (``pe``, ``stage``); see
``docs/OBSERVABILITY.md`` for the full naming scheme.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import MetricsRegistry, MetricsSnapshot

__all__ = ["run_metrics"]


def run_metrics(
    report: Any,
    timeline: Any = None,
    labels: Optional[Dict[str, str]] = None,
    num_strings: Optional[int] = None,
) -> MetricsSnapshot:
    """Build the metrics snapshot of one finished run.

    Parameters
    ----------
    report:
        The run's :class:`~repro.net.metrics.TrafficReport` (duck-typed so
        this module needs no import from :mod:`repro.net`).
    timeline:
        The run's :class:`~repro.obs.timeline.Timeline`, when tracing was
        on; ``None`` skips the time-derived series.
    labels:
        Common labels stamped on every series (``algorithm``, ``engine``,
        ``topology``); the report's engine provenance fills ``engine`` when
        absent.
    num_strings:
        Total input strings, for the per-stage strings/sec gauges.
    """
    common: Dict[str, str] = dict(labels or {})
    if "engine" not in common and getattr(report, "engine", ""):
        common["engine"] = report.engine
    reg = MetricsRegistry()

    sent = reg.counter("repro_bytes_sent_total", "Wire bytes sent, per PE.")
    messages = reg.counter("repro_messages_total", "Point-to-point messages sent, per PE.")
    forwarded = reg.counter(
        "repro_forwarded_bytes_total", "Routing-overhead bytes relayed, per PE."
    )
    for pe in range(report.num_pes):
        sent.inc(report.bytes_sent_per_pe[pe], pe=pe, **common)
        messages.inc(report.messages_per_pe[pe], pe=pe, **common)
        if report.forwarded_bytes_per_pe:
            forwarded.inc(report.forwarded_bytes_per_pe[pe], pe=pe, **common)

    stage_bytes = reg.counter("repro_stage_bytes_total", "Wire bytes sent, per stage.")
    for stage, nbytes in sorted(report.phase_bytes.items()):
        stage_bytes.inc(nbytes, stage=stage, **common)

    barrier = reg.counter(
        "repro_barrier_wait_seconds_total",
        "Seconds ranks spent blocked in barrier(), per surrounding stage.",
    )
    for stage, seconds in sorted(getattr(report, "barrier_wait_seconds", {}).items()):
        barrier.inc(seconds, stage=stage, **common)

    _fault_series(reg, report, common)

    overlap = reg.gauge(
        "repro_overlap_fraction",
        "Fraction of the stage's split-phase windows spent computing.",
    )
    overlap.set(report.overlap_fraction("exchange"), stage="exchange", **common)

    retries = reg.counter("repro_job_retries_total", "Whole-job re-runs after failures.")
    retries.inc(getattr(report, "job_retries", 0), **common)

    if timeline is not None:
        _timeline_series(reg, timeline, common, num_strings)
    return reg.snapshot()


def _fault_series(reg: MetricsRegistry, report: Any, common: Dict[str, str]) -> None:
    """Surface the fault subsystem's counters as per-PE series."""
    injected = reg.counter(
        "repro_faults_injected_total", "Faults injected by the active plan, per PE."
    )
    detected = reg.counter(
        "repro_faults_detected_total", "Fault events detected (CRC, gaps), per PE."
    )
    retries = reg.counter(
        "repro_fault_retries_total", "Retransmit pulls initiated, per PE."
    )
    retransmitted = reg.counter(
        "repro_retransmitted_bytes_total", "Recovery traffic wire bytes, per PE."
    )
    pairs = (
        (injected, report.faults_injected_per_pe),
        (detected, report.faults_detected_per_pe),
        (retries, report.retries_per_pe),
        (retransmitted, report.retransmitted_bytes_per_pe),
    )
    for metric, values in pairs:
        for pe, value in enumerate(values):
            metric.inc(value, pe=pe, **common)


def _timeline_series(
    reg: MetricsRegistry,
    timeline: Any,
    common: Dict[str, str],
    num_strings: Optional[int],
) -> None:
    """The time-derived series: stage seconds, strings/sec, peak RSS."""
    seconds = reg.counter(
        "repro_stage_seconds_total",
        "Summed per-rank seconds per stage, exclusive of barrier wait.",
    )
    wall = reg.counter(
        "repro_stage_wall_seconds_total",
        "Summed per-rank seconds per stage, barrier wait included.",
    )
    throughput = reg.gauge(
        "repro_stage_strings_per_second",
        "Input strings over the stage's summed exclusive seconds.",
    )
    exclusive = timeline.stage_seconds(exclusive=True)
    inclusive = timeline.stage_seconds(exclusive=False)
    for stage, secs in exclusive.items():
        seconds.inc(secs, stage=stage, **common)
        wall.inc(inclusive.get(stage, secs), stage=stage, **common)
        if num_strings and secs > 0.0:
            throughput.set(num_strings / secs, stage=stage, **common)

    barrier_spans = reg.counter(
        "repro_barrier_span_seconds_total",
        "Traced barrier-wait seconds, summed over ranks.",
    )
    barrier_spans.inc(timeline.barrier_seconds(), **common)

    rss = reg.gauge(
        "repro_stage_peak_rss_bytes", "Peak resident-set bytes observed per stage."
    )
    for stage, peak in timeline.peak_rss_per_stage().items():
        rss.set(peak, stage=stage, **common)

    dropped = reg.counter(
        "repro_trace_dropped_events_total", "Trace events lost to ring overflow."
    )
    dropped.inc(timeline.dropped_events, **common)

    durations = reg.histogram(
        "repro_span_duration_seconds", "Distribution of phase-span durations."
    )
    for span in timeline.iter_spans(cat="phase"):
        durations.observe(span.duration, stage=span.name, **common)
