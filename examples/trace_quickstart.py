#!/usr/bin/env python3
"""Tour of ``repro.obs``: trace a sort, read the timeline, export artifacts.

Runs one traced multiway-mergesort (split-phase exchange armed so the
exchange/merge overlap is visible), prints the terminal waterfall, a few
timeline queries and a metrics excerpt, and writes a Chrome-trace JSON
artifact that opens in ``chrome://tracing`` or https://ui.perfetto.dev.

Run with::

    python examples/trace_quickstart.py [num_strings] [trace.json]

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric naming.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Cluster, MSSpec
from repro.obs import render_waterfall, validate_chrome_trace, write_chrome_trace
from repro.strings import dn_instance


def main() -> None:
    num_strings = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    out_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else str(pathlib.Path(tempfile.mkdtemp()) / "trace.json")
    )
    data = dn_instance(num_strings=num_strings, dn=0.5, length=80, seed=3)

    # tracing is a per-cluster knob (or REPRO_TRACE=1 process-wide);
    # outputs and byte accounting are bit-identical with it on or off
    with Cluster(num_pes=4, trace=True, async_exchange=True) as cluster:
        result = cluster.sort(data, MSSpec(), check=True)

    timeline = result.report.timeline
    print(render_waterfall(timeline))
    print()

    # -- the timeline is a queryable span model ----------------------------
    for stage, secs in timeline.stage_seconds(exclusive=True).items():
        print(f"stage seconds      : {stage:<24} {secs * 1e3:8.2f} ms")
    print(f"barrier wait       : {timeline.barrier_seconds() * 1e3:.2f} ms "
          "(metered separately, never booked to a stage)")
    overlap = timeline.overlap_pairs("exchange", "merge")
    print(f"exchange||merge    : {overlap * 1e3:.2f} ms ran concurrently "
          "across ranks (split-phase overlap)")

    # -- derived metrics snapshot ------------------------------------------
    snap = result.report.metrics
    throughput = snap.value("repro_stage_strings_per_second", stage="merge")
    print(f"merge throughput   : {throughput:,.0f} strings/s")
    rss = snap.value("repro_stage_peak_rss_bytes", stage="exchange")
    print(f"exchange peak RSS  : {rss / 1e6:.1f} MB")

    # -- Chrome-trace export ------------------------------------------------
    write_chrome_trace(timeline, out_path, meta={"example": "trace_quickstart"})
    import json

    violations = validate_chrome_trace(json.load(open(out_path)))
    print(f"chrome trace       : {out_path} "
          f"({'valid' if not violations else violations})")


if __name__ == "__main__":
    main()
