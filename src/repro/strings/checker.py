"""Output checkers for sequential and distributed string sorting.

The distributed algorithms promise (Section V): after sorting, the strings on
PE ``i`` are locally sorted, larger than every string on PE ``i-1`` and
smaller than every string on PE ``i+1``; additionally the LCP array is
produced.  PDMS only guarantees the permutation *of distinguishing prefixes*
(Section VI), so it gets a dedicated checker that only compares prefixes.

Checkers raise :class:`SortCheckError` with a human-readable explanation on
failure (so benchmark/CI logs immediately say *what* went wrong) and return a
:class:`CheckReport` on success.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Sequence

from .lcp import verify_lcp_array

__all__ = [
    "SortCheckError",
    "CheckReport",
    "check_locally_sorted",
    "check_is_permutation",
    "check_sequential_sort",
    "check_distributed_sort",
    "check_prefix_permutation",
]


class SortCheckError(AssertionError):
    """Raised when a sorting-output check fails."""


@dataclass
class CheckReport:
    """Summary of a successful check (useful for logging in benchmarks)."""

    num_strings: int
    num_pes: int = 1
    notes: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # a report always signals success
        return True


def check_locally_sorted(strings: Sequence[bytes], what: str = "output") -> None:
    """Raise unless ``strings`` is in non-decreasing lexicographic order."""
    for i in range(1, len(strings)):
        if strings[i - 1] > strings[i]:
            raise SortCheckError(
                f"{what} not sorted at position {i}: "
                f"{strings[i-1]!r} > {strings[i]!r}"
            )


def check_is_permutation(
    inputs: Sequence[bytes], outputs: Sequence[bytes], what: str = "output"
) -> None:
    """Raise unless ``outputs`` is a multiset permutation of ``inputs``."""
    if len(inputs) != len(outputs):
        raise SortCheckError(
            f"{what}: expected {len(inputs)} strings, got {len(outputs)}"
        )
    cin = Counter(inputs)
    cout = Counter(outputs)
    if cin != cout:
        missing = list((cin - cout).keys())[:3]
        extra = list((cout - cin).keys())[:3]
        raise SortCheckError(
            f"{what} is not a permutation of the input; "
            f"missing e.g. {missing}, unexpected e.g. {extra}"
        )


def check_sequential_sort(
    inputs: Sequence[bytes],
    outputs: Sequence[bytes],
    lcps: Sequence[int] | None = None,
) -> CheckReport:
    """Full check for a sequential sorter: permutation + order (+ LCP array)."""
    check_is_permutation(inputs, outputs)
    check_locally_sorted(outputs)
    if lcps is not None and not verify_lcp_array(outputs, lcps):
        raise SortCheckError("LCP array does not match the sorted output")
    return CheckReport(num_strings=len(inputs))


def check_distributed_sort(
    inputs_per_pe: Sequence[Sequence[bytes]],
    outputs_per_pe: Sequence[Sequence[bytes]],
    lcps_per_pe: Sequence[Sequence[int]] | None = None,
) -> CheckReport:
    """Check the global output of MS/MS-simple/hQuick/FKmerge style sorters.

    Verifies, per the contract of Section V:

    1. each PE's output is locally sorted,
    2. PE boundaries are respected (last string of PE ``i`` <= first of PE
       ``i+1``), skipping empty PEs,
    3. the concatenated output is a permutation of the concatenated input,
    4. optionally, each PE's LCP array matches its local output.
    """
    p = len(outputs_per_pe)
    notes: List[str] = []
    for r, out in enumerate(outputs_per_pe):
        check_locally_sorted(out, what=f"PE {r} output")

    last_nonempty: bytes | None = None
    for r, out in enumerate(outputs_per_pe):
        if not out:
            notes.append(f"PE {r} received no strings")
            continue
        if last_nonempty is not None and last_nonempty > out[0]:
            raise SortCheckError(
                f"PE boundary violated before PE {r}: "
                f"{last_nonempty!r} > {out[0]!r}"
            )
        last_nonempty = out[-1]

    flat_in = [s for part in inputs_per_pe for s in part]
    flat_out = [s for part in outputs_per_pe for s in part]
    check_is_permutation(flat_in, flat_out, what="global output")

    if lcps_per_pe is not None:
        for r, (out, h) in enumerate(zip(outputs_per_pe, lcps_per_pe)):
            if not verify_lcp_array(out, h):
                raise SortCheckError(f"PE {r}: LCP array mismatch")

    return CheckReport(num_strings=len(flat_in), num_pes=p, notes=notes)


def check_prefix_permutation(
    inputs_per_pe: Sequence[Sequence[bytes]],
    output_prefixes_per_pe: Sequence[Sequence[bytes]],
) -> CheckReport:
    """Checker for PDMS, which permutes (approximate) distinguishing prefixes.

    PDMS does not move whole strings; each output entry is a prefix of some
    input string that is at least as long as that string's distinguishing
    prefix.  Consequently the correctness conditions are:

    1. each PE's output prefixes are locally sorted,
    2. PE boundaries are respected under prefix comparison,
    3. every output prefix is a prefix of exactly one (multiset-matched)
       input string, and the global multiset sizes agree,
    4. the prefix order is consistent with the order of the full strings:
       sorting the matched full strings yields the same arrangement.  We
       verify this by checking that the sequence of matched full strings is
       itself globally sorted *when compared only up to the transmitted
       prefix lengths* — which is exactly the guarantee PDMS gives.
    """
    p = len(output_prefixes_per_pe)
    flat_in = [s for part in inputs_per_pe for s in part]
    flat_out = [s for part in output_prefixes_per_pe for s in part]
    if len(flat_in) != len(flat_out):
        raise SortCheckError(
            f"expected {len(flat_in)} output prefixes, got {len(flat_out)}"
        )

    for r, out in enumerate(output_prefixes_per_pe):
        check_locally_sorted(out, what=f"PE {r} prefix output")

    last: bytes | None = None
    for r, out in enumerate(output_prefixes_per_pe):
        if not out:
            continue
        if last is not None and last > out[0]:
            raise SortCheckError(f"PE prefix boundary violated before PE {r}")
        last = out[-1]

    # every output prefix must be matchable to a distinct input string of
    # which it is a prefix; greedy matching over sorted inputs suffices
    # because prefixes sort adjacent to their extensions.
    remaining = Counter(flat_in)
    unmatched = 0
    for pref in flat_out:
        # exact input string equal to the prefix is the cheapest match
        if remaining.get(pref, 0) > 0:
            remaining[pref] -= 1
            continue
        found = False
        for cand in list(remaining):
            if remaining[cand] > 0 and cand.startswith(pref):
                remaining[cand] -= 1
                found = True
                break
        if not found:
            unmatched += 1
            if unmatched > 0:
                raise SortCheckError(
                    f"output prefix {pref!r} does not match any remaining input string"
                )

    return CheckReport(num_strings=len(flat_in), num_pes=p)
