"""Property-based tests (hypothesis) for the sequential sorting layer.

Invariants covered:

* every sorter returns a sorted permutation of its input with the exact LCP
  array, for arbitrary byte strings;
* the LCP loser tree agrees with sorted() on arbitrary partitions of the
  input into runs;
* LCP arrays and distinguishing prefixes satisfy their defining relations;
* the Golomb coder round-trips arbitrary sorted integer sequences (the coder
  lives in the dist package but is a pure sequential data structure).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dist.golomb import decode_sorted, encode_sorted
from repro.sequential import (
    lcp_insertion_sort,
    lcp_merge,
    lcp_multiway_merge,
    msd_radix_sort,
    multikey_quicksort,
    multiway_merge,
)
from repro.strings.lcp import distinguishing_prefixes, lcp, lcp_array

# byte strings over a tiny alphabet maximise shared prefixes and duplicates,
# which is where the LCP machinery can go wrong
small_alphabet_text = st.binary(max_size=12).map(
    lambda b: bytes(97 + (c % 3) for c in b)
)
string_lists = st.lists(small_alphabet_text, max_size=60)
wild_string_lists = st.lists(st.binary(max_size=20), max_size=40)


@settings(max_examples=150, deadline=None)
@given(string_lists)
def test_msd_radix_matches_builtin_sort(strings):
    out, lcps = msd_radix_sort(strings)
    assert out == sorted(strings)
    assert lcps == lcp_array(out)


@settings(max_examples=150, deadline=None)
@given(wild_string_lists)
def test_msd_radix_on_arbitrary_bytes(strings):
    out, lcps = msd_radix_sort(strings)
    assert out == sorted(strings)
    assert lcps == lcp_array(out)


@settings(max_examples=150, deadline=None)
@given(string_lists)
def test_multikey_quicksort_matches_builtin_sort(strings):
    out, lcps = multikey_quicksort(strings)
    assert out == sorted(strings)
    assert lcps == lcp_array(out)


@settings(max_examples=100, deadline=None)
@given(st.lists(small_alphabet_text, max_size=25))
def test_lcp_insertion_sort_matches_builtin_sort(strings):
    out, lcps = lcp_insertion_sort(strings)
    assert out == sorted(strings)
    assert lcps == lcp_array(out)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(small_alphabet_text, max_size=15), min_size=1, max_size=6))
def test_lcp_losertree_merges_arbitrary_runs(runs):
    runs = [sorted(r) for r in runs]
    lcps = [lcp_array(r) for r in runs]
    merged, out_lcps = lcp_multiway_merge(runs, lcps)
    expected = sorted(s for r in runs for s in r)
    assert merged == expected
    assert out_lcps == lcp_array(expected)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(small_alphabet_text, max_size=15), min_size=1, max_size=6))
def test_atomic_losertree_merges_arbitrary_runs(runs):
    runs = [sorted(r) for r in runs]
    merged = multiway_merge(runs)
    assert merged == sorted(s for r in runs for s in r)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(small_alphabet_text, max_size=30),
    st.lists(small_alphabet_text, max_size=30),
)
def test_binary_lcp_merge(a, b):
    a, b = sorted(a), sorted(b)
    merged, lcps = lcp_merge(a, lcp_array(a), b, lcp_array(b))
    expected = sorted(a + b)
    assert merged == expected
    assert lcps == lcp_array(expected)


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=30), st.binary(max_size=30))
def test_lcp_definition(a, b):
    h = lcp(a, b)
    assert a[:h] == b[:h]
    if h < min(len(a), len(b)):
        assert a[h] != b[h]


@settings(max_examples=100, deadline=None)
@given(st.lists(small_alphabet_text, min_size=1, max_size=30))
def test_distinguishing_prefix_definition(strings):
    dist = distinguishing_prefixes(strings)
    for i, s in enumerate(strings):
        assert 0 <= dist[i] <= len(s)
        others = strings[:i] + strings[i + 1 :]
        if others and s:
            max_lcp = max(lcp(s, t) for t in others)
            # DIST = max LCP + 1, capped at |s|
            assert dist[i] == min(max_lcp + 1, len(s))


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=200))
def test_golomb_roundtrip(values):
    values = sorted(values)
    payload, m = encode_sorted(values, universe=2**32)
    assert decode_sorted(payload, m, len(values)) == values


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=300),
    st.integers(min_value=17, max_value=40),
)
def test_golomb_compresses_dense_sets(values, bits):
    """Dense sorted sets must encode to fewer bytes than fixed-width storage."""
    values = sorted(values)
    payload, _ = encode_sorted(values, universe=1 << bits)
    fixed = len(values) * ((bits + 7) // 8)
    # allow slack for tiny inputs where headers dominate
    assert len(payload) <= fixed + 8
