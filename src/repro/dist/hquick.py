"""Hypercube quicksort for strings — the atomic baseline (Section IV).

``hQuick`` treats strings as atoms: ``2^d`` PEs (``d = floor(log2 p)``) are
arranged as a hypercube, and in ``d`` rounds the machine recursively splits
along one dimension at a time.  Each round picks a pivot (the weighted
median of the subcube members' local medians), partitions the local data,
and exchanges the wrong-side partition with the partner across the current
dimension.  After the last round every PE's data is confined to its leaf
interval and one local sort finishes the job.

Strings may travel up to ``d`` times, which is exactly why the paper uses
hQuick as the communication-volume baseline the string sorters beat
(Theorem 1 vs. Theorems 4/5).  PEs beyond the largest power of two fold
their input into the cube first and end up empty.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..mpi.comm import Communicator
from ..net.topology import hypercube_dimension, in_upper_half, partner
from ..sequential import sort_strings_with_lcp
from ..sequential.stats import CharStats

__all__ = ["hquick_sort", "_local_median", "_weighted_median", "_subcube_allgather"]

# tag bases keep the engine's SPMD-ordering check meaningful across the
# different message kinds of one round
_TAG_FOLD = 101
_TAG_GOSSIP = 200
_TAG_EXCHANGE = 300

# local medians are taken over a bounded random sample so pivot selection
# stays O(sample log sample) per round even for huge local arrays
_MEDIAN_SAMPLE = 64


def _local_median(strings: Sequence[bytes]) -> Optional[bytes]:
    """Median (upper middle) of a string multiset, ``None`` when empty."""
    if not strings:
        return None
    ordered = sorted(strings)
    return ordered[len(ordered) // 2]


def _weighted_median(entries: Sequence[Tuple[Optional[bytes], int]]) -> bytes:
    """Weighted median of ``(value, weight)`` pairs; empty contributions
    (``None`` values or zero weights) are ignored; all-empty yields ``b""``."""
    items = [(v, w) for v, w in entries if v is not None and w > 0]
    if not items:
        return b""
    items.sort()
    total = sum(w for _, w in items)
    acc = 0
    for value, weight in items:
        acc += weight
        if 2 * acc >= total:
            return value
    return items[-1][0]  # pragma: no cover - loop always returns


def _subcube_allgather(comm: Communicator, dims: int, items: list) -> list:
    """Gossip ``items`` among the ``2^dims`` members of the caller's subcube.

    Standard hypercube all-gather: in round ``k`` each PE exchanges its
    accumulated list with the partner across dimension ``k``.  Only
    point-to-point traffic is used, so PEs outside the participating cube
    need not take part.
    """
    accumulated = list(items)
    for dim in range(dims):
        peer = partner(comm.rank, dim)
        received = comm.sendrecv(
            list(accumulated), peer, tag=_TAG_GOSSIP + dim
        )
        accumulated.extend(received)
    return accumulated


def hquick_sort(
    comm: Communicator,
    strings: Sequence[bytes],
    seed: int = 0,
    local_sorter: str = "msd_radix",
) -> Tuple[List[bytes], List[int]]:
    """Sort the distributed string array with hypercube quicksort.

    Returns this rank's ``(sorted_strings, lcp_array)``.  ``seed`` only
    influences the random median sample (pivot quality), never the result.
    """
    p, rank = comm.size, comm.rank
    d = hypercube_dimension(p)
    cube = 1 << d
    local = list(strings)

    if p > 1:
        with comm.phase("hquick-fold"):
            if rank >= cube:
                comm.send(local, rank - cube, tag=_TAG_FOLD)
                local = []
            elif rank + cube < p:
                local.extend(comm.recv(rank + cube, tag=_TAG_FOLD))

    if rank < cube and d > 0:
        rng = random.Random(seed * 0x9E3779B1 + rank)
        with comm.phase("hquick-partition"):
            for dim in range(d - 1, -1, -1):
                # pivot: weighted median of the (dim+1)-subcube's local medians
                if len(local) > _MEDIAN_SAMPLE:
                    sample = rng.sample(local, _MEDIAN_SAMPLE)
                else:
                    sample = local
                contributions = _subcube_allgather(
                    comm, dim + 1, [(_local_median(sample), len(local))]
                )
                pivot = _weighted_median(contributions)

                lower = [s for s in local if s <= pivot]
                upper = [s for s in local if s > pivot]
                comm.record_local_work(
                    sum(min(len(s), len(pivot) + 1) for s in local), len(local)
                )
                if in_upper_half(rank, dim):
                    keep, give = upper, lower
                else:
                    keep, give = lower, upper
                received = comm.sendrecv(
                    give, partner(rank, dim), tag=_TAG_EXCHANGE + dim
                )
                local = keep + received

    with comm.phase("hquick-local-sort"):
        stats = CharStats()
        out, lcps = sort_strings_with_lcp(local, local_sorter, stats)
        comm.record_local_work(stats.chars_inspected, len(out))
    return out, lcps
