#!/usr/bin/env python3
"""Weak-scaling study over the tunable D/N inputs (Figure 4, reduced scale).

Reproduces the structure of the paper's main experiment: for each ratio
D/N in {0, 0.25, 0.5, 0.75, 1.0}, run all six algorithms while growing the
machine (weak scaling: the per-PE input stays constant) and print both panels
of Figure 4 — modelled running time and bytes sent per string — as text
tables.

Run with::

    python examples/dn_weak_scaling.py [strings_per_pe]

The default size finishes in a couple of minutes; pass a larger value to
sharpen the trends.
"""

from __future__ import annotations

import pathlib
import sys

# allow running straight from a source checkout (src layout)
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import ExperimentRunner, weak_scaling_dn
from repro.net import DEFAULT_MACHINE


def main() -> None:
    strings_per_pe = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    string_length = 150

    # the paper runs 500 000 strings x 500 chars per PE; scale the machine
    # model so each simulated character stands for the corresponding amount
    # of real data (keeps the latency/bandwidth balance of the original runs)
    scale = (500_000 * 500) / (strings_per_pe * string_length)
    runner = ExperimentRunner(machine=DEFAULT_MACHINE.with_data_scale(scale), seed=3)

    results = weak_scaling_dn(
        dn_values=(0.0, 0.25, 0.5, 0.75, 1.0),
        pe_counts=(2, 4, 8),
        strings_per_pe=strings_per_pe,
        string_length=string_length,
        runner=runner,
        seed=3,
    )

    for res in results:
        print("=" * 72)
        print(res.description)
        print()
        print(res.render("bytes_per_string"))
        print()
        print(res.render("modeled_time"))
        print()


if __name__ == "__main__":
    main()
