"""Figure 5, right panel: strong scaling on the DNAREADS corpus.

The paper's DNAREADS instance (125 GB of 1000-Genomes WGS reads, alphabet
{A,C,G,T}, D/N = 0.38) is replaced by the calibrated synthetic read set of
``repro.strings.generators.dna_reads``.

Expected shape (Section VII-D): the prefix-doubling algorithms achieve
considerable savings in communication volume, but MS / MS-simple remain
slightly faster in running time (the savings do not outweigh the extra
duplicate-detection rounds on this input); FKmerge works but scales poorly.
"""

from __future__ import annotations

import pytest

from conftest import print_experiment, scaled
from repro.bench.experiments import DEFAULT_ALGORITHMS
from repro.bench.harness import ExperimentResult, ExperimentRunner
from repro.dist.api import distribute_strings
from repro.strings.generators import dna_reads

PE_COUNTS = (2, 4, 8, 16)
NUM_READS = scaled(6000)

from repro.net import DEFAULT_MACHINE  # noqa: E402

_CORPUS = dna_reads(NUM_READS, seed=11)
# the real DNAREADS instance is 125 GB; scale the machine model accordingly
_DATA_SCALE = 125e9 / max(1, sum(len(s) for s in _CORPUS))
_RUNNER = ExperimentRunner(machine=DEFAULT_MACHINE.with_data_scale(_DATA_SCALE), seed=2)
_RESULT = ExperimentResult(
    name="fig5-right-dnareads",
    description=f"Strong scaling, DNAREADS-like corpus ({NUM_READS} reads)",
)


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_fig5_dnareads_cell(benchmark, algorithm):
    for p in PE_COUNTS[:-1]:
        blocks = distribute_strings(_CORPUS, p, by="chars")
        _RESULT.add(_RUNNER.run_cell(_RESULT.name, algorithm, p, "dnareads", blocks))

    p = PE_COUNTS[-1]
    blocks = distribute_strings(_CORPUS, p, by="chars")
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(_RESULT.name, algorithm, p, "dnareads", blocks),
        rounds=1,
        iterations=1,
    )
    _RESULT.add(cell)
    benchmark.extra_info["bytes_per_string"] = round(cell.bytes_per_string, 2)


def test_fig5_dnareads_render_and_shape(benchmark):
    benchmark(lambda: _RESULT.render("bytes_per_string"))
    print_experiment(_RESULT)

    p = PE_COUNTS[-1]

    def volume(alg):
        return _RESULT.filter(algorithm=alg, num_pes=p)[0].bytes_per_string

    # prefix doubling saves a lot of volume on reads (D/N well below 1)
    assert volume("pdms") < 0.6 * volume("ms")
    assert volume("pdms-golomb") <= volume("pdms") * 1.05
    # plain LCP compression helps only mildly (reads share shorter prefixes)
    assert volume("ms") <= volume("ms-simple")
    # the atomic baseline is the most expensive
    assert volume("hquick") > volume("ms-simple")
