"""Tests for the sequential string sorters (MSD radix, multikey quicksort, ...).

Every sorter must produce exactly the same output as Python's built-in sort
plus the correct LCP array, on a range of adversarial inputs (duplicates,
shared prefixes, empty strings, prefix-of-other-string cases).
"""

import pytest

from repro.sequential import (
    CharStats,
    SEQUENTIAL_SORTERS,
    lcp_insertion_sort,
    lcp_mergesort,
    msd_radix_sort,
    multikey_quicksort,
    sort_strings,
    sort_strings_with_lcp,
)
from repro.strings.generators import (
    commoncrawl_like,
    dn_instance,
    duplicate_heavy,
    random_strings,
    suffix_instance,
)
from repro.strings.lcp import lcp_array

ALL_SORTERS = sorted(SEQUENTIAL_SORTERS)


def _reference(strings):
    out = sorted(strings)
    return out, lcp_array(out)


FIXED_CASES = {
    "empty": [],
    "single": [b"hello"],
    "two_equal": [b"same", b"same"],
    "empty_strings": [b"", b"", b"a"],
    "prefix_chain": [b"a", b"ab", b"abc", b"abcd", b"abcde"],
    "reverse_prefix_chain": [b"abcde", b"abcd", b"abc", b"ab", b"a"],
    "paper_figure2": [
        b"alpha", b"order", b"alps", b"algae", b"sorter", b"snow",
        b"algo", b"sorbet", b"sorted", b"orange", b"soul", b"organ",
    ],
    "all_identical": [b"xyzzy"] * 40,
    "binary_alphabet": [bytes([97 + (i >> j) % 2 for j in range(8)]) for i in range(64)],
    "long_common_prefix": [b"p" * 200 + bytes([c]) for c in range(97, 123)],
    "single_chars": [bytes([c]) for c in range(255, 0, -7)],
}


class TestFixedCases:
    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    @pytest.mark.parametrize("case", sorted(FIXED_CASES))
    def test_sorts_and_produces_lcp(self, sorter, case):
        data = FIXED_CASES[case]
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps


class TestGeneratedInputs:
    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_strings(self, sorter, seed):
        data = random_strings(400, 0, 25, alphabet_size=4, seed=seed)
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps

    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_duplicate_heavy(self, sorter):
        data = duplicate_heavy(600, num_distinct=15, seed=3)
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps

    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_dn_instance(self, sorter):
        data = dn_instance(300, 0.6, length=50, seed=4)
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps

    @pytest.mark.parametrize("sorter", ["msd_radix", "multikey_quicksort", "lcp_mergesort"])
    def test_web_corpus(self, sorter):
        data = commoncrawl_like(500, seed=5)
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps

    @pytest.mark.parametrize("sorter", ["msd_radix", "lcp_mergesort"])
    def test_suffixes(self, sorter):
        data = suffix_instance(text_len=300, alphabet_size=3, seed=6)
        expected, expected_lcps = _reference(data)
        out, lcps = sort_strings_with_lcp(data, sorter)
        assert out == expected
        assert lcps == expected_lcps


class TestInputPreservation:
    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_input_not_mutated(self, sorter):
        data = random_strings(100, 1, 10, seed=7)
        snapshot = list(data)
        sort_strings_with_lcp(data, sorter)
        assert data == snapshot


class TestDispatcher:
    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            sort_strings_with_lcp([b"a"], "quantum_sort")

    def test_sort_strings_drops_lcps(self):
        assert sort_strings([b"b", b"a"]) == [b"a", b"b"]

    def test_default_algorithm_is_msd_radix(self):
        out, lcps = sort_strings_with_lcp([b"b", b"a", b"ab"])
        assert out == [b"a", b"ab", b"b"]
        assert lcps == [0, 1, 0]


class TestThresholdBoundaries:
    """Recursion/threshold edges: the algorithms must agree for any threshold."""

    @pytest.mark.parametrize("threshold", [1, 2, 3, 8, 64])
    def test_multikey_insertion_threshold(self, threshold):
        data = random_strings(150, 0, 12, alphabet_size=3, seed=8)
        expected, expected_lcps = _reference(data)
        out, lcps = multikey_quicksort(data, insertion_threshold=threshold)
        assert out == expected
        assert lcps == expected_lcps

    @pytest.mark.parametrize("radix_threshold", [1, 2, 16, 1000])
    def test_msd_radix_threshold(self, radix_threshold):
        data = random_strings(200, 0, 12, alphabet_size=3, seed=9)
        expected, expected_lcps = _reference(data)
        out, lcps = msd_radix_sort(data, radix_threshold=radix_threshold)
        assert out == expected
        assert lcps == expected_lcps


class TestDepthParameter:
    """Sorting with a known common prefix must only look past that prefix."""

    def test_mkqs_with_depth(self):
        common = b"prefix--"
        tails = [b"zeta", b"alpha", b"beta", b"alpha"]
        data = [common + t for t in tails]
        out, lcps = multikey_quicksort(data, depth=len(common))
        assert out == sorted(data)
        # internal boundaries reflect the true LCPs
        assert lcps[1:] == lcp_array(out)[1:]

    def test_insertion_with_depth(self):
        common = b"xy"
        data = [common + t for t in [b"c", b"a", b"b", b"a"]]
        out, lcps = lcp_insertion_sort(data, depth=2)
        assert out == sorted(data)
        assert lcps[1:] == lcp_array(out)[1:]


class TestWorkCounters:
    def test_character_work_scales_with_d_not_n_chars(self):
        # strings share a huge non-distinguishing suffix; an efficient string
        # sorter must not inspect it
        data = [bytes([c]) + b"z" * 5000 for c in range(97, 123)]
        stats = CharStats()
        msd_radix_sort(data, stats=stats)
        # D is 26 characters; allow generous slack for base-case scanning
        assert stats.chars_inspected < 26 * 50

    def test_lcp_mergesort_char_bound(self):
        data = dn_instance(200, 0.3, length=60, seed=10)
        stats = CharStats()
        lcp_mergesort(data, stats=stats)
        from repro.strings.lcp import distinguishing_prefix_size
        import math

        d = distinguishing_prefix_size(data)
        n = len(data)
        # O(D + n log n) character comparisons with a small constant
        assert stats.chars_inspected <= 4 * (d + n * math.ceil(math.log2(n)))

    def test_stats_accumulate_and_reset(self):
        stats = CharStats()
        msd_radix_sort([b"ab", b"aa"], stats=stats)
        assert stats.chars_inspected > 0
        before = stats.chars_inspected
        other = CharStats()
        other.add_chars(5)
        stats.merge(other)
        assert stats.chars_inspected == before + 5
        stats.reset()
        assert stats.chars_inspected == 0 and stats.string_comparisons == 0
