"""Wire-size accounting for simulated messages.

The simulated communicator does not need to serialise Python objects to move
them between rank threads — references suffice — but the *byte accounting*
must reflect what a real MPI implementation of the paper's algorithms would
put on the wire, because "bytes sent per string" is the headline metric of
Figures 4 and 5.

The rules implemented here:

* ``bytes``/``bytearray``: payload length plus a varint length header
  (strings are sent without 0 terminators but with explicit lengths, which
  is the convention footnote 1 of the paper allows).
* ``int``: LEB128 varint size — LCP values, counts and string lengths are
  small most of the time and a real implementation would use a variable
  length or bit-packed encoding (Section VI-B discusses exactly this).
* ``float``: 8 bytes.
* ``None``/booleans: 1 byte.
* ``list``/``tuple``: sum of the element sizes (no per-element framing beyond
  what elements themselves carry) plus a varint element count.
* ``numpy.ndarray``: ``arr.nbytes``.
* any object exposing ``wire_bytes()``: that value.  The distributed layer
  uses this hook for LCP-compressed string blocks and Golomb-coded
  fingerprint sets so that their compression is reflected exactly.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Sequence

import numpy as np

from ..strings.packed import PackedStringArray

__all__ = [
    "varint_size",
    "varint_sizes",
    "varint_total",
    "packed_wire_bytes",
    "wire_size",
    "WireSized",
    "CHECKSUM_WIRE_BYTES",
    "payload_checksum",
    "block_checksum",
]

#: wire cost of one CRC32 seal (a fixed-width 4-byte trailer)
CHECKSUM_WIRE_BYTES = 4


class WireSized:
    """Mix-in marking message classes that know their own wire size."""

    def wire_bytes(self) -> int:  # pragma: no cover - interface definition
        """Exact bytes this message would occupy on a real wire."""
        raise NotImplementedError


def varint_size(value: int) -> int:
    """Number of bytes of the LEB128 encoding of ``value`` (>= 0)."""
    if value < 0:
        # zig-zag: one extra bit, same asymptotics; negative values are rare
        value = (-value << 1) | 1
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def varint_sizes(values: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`varint_size`: per-element LEB128 sizes (``int64``).

    Negative values get the same zig-zag treatment as the scalar function.
    The element-wise results are identical to ``[varint_size(v) for v in
    values]``, which the property tests pin; the hot path uses this over the
    length and LCP arrays of packed string blocks.
    """
    v = np.asarray(values, dtype=np.int64)
    if (v < 0).any():
        # rare path (no hot-path caller passes negatives): the zig-zag
        # transform (-v << 1) | 1 can exceed int64, so do it per element in
        # unbounded Python ints exactly as the scalar function does
        return np.fromiter(
            (varint_size(int(x)) for x in v), dtype=np.int64, count=v.size
        )
    sizes = np.ones(v.shape, dtype=np.int64)
    # int64 values need at most 9 LEB128 bytes (ceil(63/7)); the would-be
    # tenth threshold 2**63 overflows int64 and is unreachable anyway
    for k in range(1, 9):
        more = v >= np.int64(1) << np.int64(7 * k)
        if not more.any():
            break
        sizes += more
    return sizes


def varint_total(values: Sequence[int]) -> int:
    """Sum of the LEB128 sizes of ``values`` (one reduction, no Python loop)."""
    return int(varint_sizes(values).sum())


def packed_wire_bytes(
    packed: PackedStringArray, lcps: Any = None
) -> int:
    """Wire size of a packed string block: count + length headers + payload
    (+ optional LCP varints) — the vectorized twin of ``StringBlock``'s
    scalar accounting."""
    lengths = packed.lengths
    total = varint_size(len(packed)) + varint_total(lengths) + packed.num_chars
    if lcps is not None:
        total += varint_total(lcps)
    return total


def wire_size(obj: Any) -> int:
    """Wire size in bytes of ``obj`` under the rules documented above."""
    if obj is None:
        return 1
    if isinstance(obj, WireSized):
        return obj.wire_bytes()
    wire = getattr(obj, "wire_bytes", None)
    if callable(wire):
        return int(wire())
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (bytes, bytearray, memoryview)):
        n = len(obj)
        return n + varint_size(n)
    if isinstance(obj, PackedStringArray):
        # same framing as the equivalent list[bytes]: element count plus a
        # varint length header per string
        return packed_wire_bytes(obj)
    if isinstance(obj, str):
        n = len(obj.encode("utf-8"))
        return n + varint_size(n)
    if isinstance(obj, int):
        return varint_size(obj)
    if isinstance(obj, float):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.integer):
        return varint_size(int(obj))
    if isinstance(obj, np.floating):
        return 8
    if isinstance(obj, (list, tuple)):
        return varint_size(len(obj)) + sum(wire_size(x) for x in obj)
    if isinstance(obj, dict):
        return varint_size(len(obj)) + sum(
            wire_size(k) + wire_size(v) for k, v in obj.items()
        )
    raise TypeError(
        f"cannot compute a wire size for objects of type {type(obj).__name__}; "
        "give the message class a wire_bytes() method"
    )


def payload_checksum(obj: Any) -> int:
    """Structural CRC32 of a message payload (content, not object identity).

    The companion of :func:`wire_size` for integrity checking: two payloads
    that would serialise to the same bytes on a real wire checksum equally,
    and any mutation of the *content* — string bytes, lengths, LCP values,
    counts, nesting — changes the result.  Message classes participate by
    exposing a ``content_crc()`` method (the framed blocks of
    :mod:`repro.dist.exchange` and :class:`repro.net.router.RouteFrame` do),
    exactly as ``wire_bytes()`` hooks them into :func:`wire_size`.

    The simulated machine moves objects by reference, so this is how the
    fault layer (:mod:`repro.faults`) detects injected bit-flips without a
    real serialisation round-trip; the 4-byte seal it guards is accounted as
    :data:`CHECKSUM_WIRE_BYTES`.
    """
    return _checksum(obj, 0)


def block_checksum(strings: Any, lcps: Any = None) -> int:
    """Bulk CRC32 seal of a string block: the strings plus an optional LCPs.

    The sealing twin of :func:`payload_checksum` for the exchange-block hot
    path: where the generic walker folds one element at a time (a Python
    loop per string), this folds the whole block in a handful of C-speed
    operations — one ``b"".join`` over the payload plus the ``int64``
    length and LCP arrays.  That is what keeps the sealed exchange path
    inside the perf-smoke overhead gate (< 5% over unsealed).

    Content-equivalent representations seal equally: a ``list[bytes]`` and
    a :class:`~repro.strings.packed.PackedStringArray` holding the same
    strings fold the same count, character payload and length array, and
    the LCPs fold as an ``int64`` array whether given as a list or an
    ``ndarray``.  Any content mutation — string bytes, a length, an LCP,
    the count, the order — changes the result.
    """
    if isinstance(strings, PackedStringArray):
        crc = _checksum(strings, 0)
    else:
        crc = zlib.crc32(b"P" + len(strings).to_bytes(8, "little"), 0)
        crc = zlib.crc32(b"".join(strings), crc)
        lens = np.fromiter(
            map(len, strings), dtype=np.int64, count=len(strings)
        )
        crc = zlib.crc32(lens, crc)
    if lcps is None:
        return zlib.crc32(b"N", crc)
    arr = np.asarray(lcps, dtype=np.int64)
    crc = zlib.crc32(b"A" + str(arr.dtype).encode("ascii") + b";", crc)
    return zlib.crc32(np.ascontiguousarray(arr), crc)


def _checksum(obj: Any, crc: int) -> int:
    """Fold ``obj``'s content into the running CRC32 ``crc`` (type-tagged)."""
    if obj is None:
        return zlib.crc32(b"N", crc)
    content = getattr(obj, "content_crc", None)
    if callable(content):
        return zlib.crc32(b"C" + int(content()).to_bytes(4, "little"), crc)
    if isinstance(obj, bool):
        return zlib.crc32(b"T" if obj else b"F", crc)
    if isinstance(obj, (bytes, bytearray)):
        crc = zlib.crc32(b"B" + len(obj).to_bytes(8, "little"), crc)
        return zlib.crc32(obj, crc)
    if isinstance(obj, memoryview):
        crc = zlib.crc32(b"B" + len(obj).to_bytes(8, "little"), crc)
        return zlib.crc32(bytes(obj), crc)
    if isinstance(obj, PackedStringArray):
        base, end = int(obj.offsets[0]), int(obj.offsets[-1])
        crc = zlib.crc32(b"P" + len(obj).to_bytes(8, "little"), crc)
        crc = zlib.crc32(np.ascontiguousarray(obj.buffer[base:end]), crc)
        return zlib.crc32(np.ascontiguousarray(obj.lengths), crc)
    if isinstance(obj, str):
        raw = obj.encode("utf-8")
        crc = zlib.crc32(b"S" + len(raw).to_bytes(8, "little"), crc)
        return zlib.crc32(raw, crc)
    if isinstance(obj, (int, np.integer)):
        raw = str(int(obj)).encode("ascii")
        return zlib.crc32(b"I" + raw + b";", crc)
    if isinstance(obj, (float, np.floating)):
        return zlib.crc32(b"D" + struct.pack("<d", float(obj)), crc)
    if isinstance(obj, np.ndarray):
        crc = zlib.crc32(b"A" + str(obj.dtype).encode("ascii") + b";", crc)
        return zlib.crc32(np.ascontiguousarray(obj), crc)
    if isinstance(obj, (list, tuple)):
        crc = zlib.crc32(b"L" + len(obj).to_bytes(8, "little"), crc)
        for x in obj:
            crc = _checksum(x, crc)
        return crc
    if isinstance(obj, dict):
        crc = zlib.crc32(b"M" + len(obj).to_bytes(8, "little"), crc)
        for k, v in obj.items():
            crc = _checksum(k, crc)
            crc = _checksum(v, crc)
        return crc
    raise TypeError(
        f"cannot checksum objects of type {type(obj).__name__}; "
        "give the message class a content_crc() method"
    )
