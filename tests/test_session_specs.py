"""Spec serialization contract: round-trips, stable hashes, helpful errors."""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.session import (
    AutoSpec,
    FKMergeSpec,
    HQuickSpec,
    MSSimpleSpec,
    MSSpec,
    PDMSGolombSpec,
    PDMSSpec,
    SortSpec,
    default_registry,
    spec_from_options,
)

ALL_SPEC_CLASSES = [
    HQuickSpec,
    FKMergeSpec,
    MSSpec,
    MSSimpleSpec,
    PDMSSpec,
    PDMSGolombSpec,
    AutoSpec,
]

NON_DEFAULT = {
    HQuickSpec: dict(local_sorter="timsort", seed=3),
    FKMergeSpec: dict(oversampling=4, distribute_by="chars"),
    MSSpec: dict(sampling="character", sample_sort="hquick"),
    MSSimpleSpec: dict(oversampling=2, local_sorter="multikey_quicksort"),
    PDMSSpec: dict(epsilon=0.5, initial_length=8),
    PDMSGolombSpec: dict(epsilon=3.0, sampling="character"),
    AutoSpec: dict(seed=11, initial_length=4),
}


class TestRoundTrip:
    @pytest.mark.parametrize("spec_cls", ALL_SPEC_CLASSES)
    def test_default_round_trips(self, spec_cls):
        spec = spec_cls()
        assert SortSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec_cls", ALL_SPEC_CLASSES)
    def test_non_default_round_trips(self, spec_cls):
        spec = spec_cls(**NON_DEFAULT[spec_cls])
        clone = SortSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.config_hash() == spec.config_hash()

    def test_to_dict_is_json_ready(self):
        payload = json.dumps(PDMSGolombSpec(epsilon=0.25).to_dict())
        assert SortSpec.from_dict(json.loads(payload)) == PDMSGolombSpec(epsilon=0.25)

    def test_registry_agrees_with_algorithm_attribute(self):
        for spec_cls in ALL_SPEC_CLASSES:
            assert default_registry().spec_class(spec_cls.algorithm) is spec_cls


class TestConfigHash:
    def test_pinned_value(self):
        """The hash must be stable across processes and releases.

        This pin is the cross-process guarantee: a checkpoint written by one
        run must be found by the next.  If it ever changes, existing keyed
        artifacts (benchmark cells, checkpoints) silently orphan — only
        change it knowingly.  Changed knowingly in PR 5: every spec gained
        the ``exchange_topology`` field, which participates in the hash so
        routed-delivery cells never alias direct-delivery checkpoints.
        """
        assert MSSpec().config_hash() == "de27335cc4bf64f4"
        assert PDMSGolombSpec(epsilon=0.5).config_hash() == "2728ca969e3b82d1"

    def test_stable_in_a_fresh_process(self):
        code = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.session import MSSpec;"
            "print(MSSpec().config_hash())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == MSSpec().config_hash()

    def test_insensitive_to_dict_key_order(self):
        d = PDMSSpec(epsilon=0.5).to_dict()
        shuffled = dict(reversed(list(d.items())))
        assert SortSpec.from_dict(shuffled).config_hash() == PDMSSpec(
            epsilon=0.5
        ).config_hash()

    def test_distinguishes_configurations(self):
        hashes = {cls().config_hash() for cls in ALL_SPEC_CLASSES}
        assert len(hashes) == len(ALL_SPEC_CLASSES)
        assert MSSpec().config_hash() != MSSpec(sampling="character").config_hash()

    def test_exchange_topology_participates_in_hash(self):
        """Routed-delivery cells must never alias direct-delivery checkpoints."""
        inherit = MSSpec()
        assert (
            inherit.config_hash()
            != MSSpec(exchange_topology="hypercube").config_hash()
        )
        assert (
            MSSpec(exchange_topology="hypercube").config_hash()
            != MSSpec(exchange_topology="grid").config_hash()
        )
        roundtrip = MSSpec.from_dict(MSSpec(exchange_topology="grid").to_dict())
        assert roundtrip.exchange_topology == "grid"


class TestValidation:
    def test_unknown_key_suggests_nearest_match(self):
        with pytest.raises(ValueError, match="sampling"):
            SortSpec.from_dict({"algorithm": "ms", "sampilng": "character"})

    def test_unknown_algorithm_suggests_nearest_match(self):
        with pytest.raises(ValueError, match="pdms"):
            SortSpec.from_dict({"algorithm": "pdsm"})

    def test_missing_algorithm_key(self):
        with pytest.raises(ValueError, match="algorithm"):
            SortSpec.from_dict({"sampling": "character"})

    def test_bad_field_values_rejected_at_construction(self):
        with pytest.raises(ValueError, match="sampling"):
            MSSpec(sampling="chars")
        with pytest.raises(ValueError, match="distribute_by"):
            MSSpec(distribute_by="characters")
        with pytest.raises(ValueError, match="epsilon"):
            PDMSSpec(epsilon=0.0)
        with pytest.raises(ValueError, match="initial_length"):
            PDMSSpec(initial_length=0)
        with pytest.raises(ValueError, match="local_sorter"):
            HQuickSpec(local_sorter="quicksort")
        with pytest.raises(ValueError, match="oversampling"):
            FKMergeSpec(oversampling=0)
        with pytest.raises(ValueError, match="exchange_topology"):
            MSSpec(exchange_topology="hypercubes")

    def test_specs_are_frozen(self):
        spec = MSSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.sampling = "character"

    def test_replace_returns_validated_copy(self):
        spec = PDMSSpec()
        other = spec.replace(epsilon=2.0)
        assert other.epsilon == 2.0 and spec.epsilon == 1.0
        assert other.config_hash() != spec.config_hash()
        with pytest.raises(ValueError):
            spec.replace(epsilon=-1.0)


class TestSpecFromOptions:
    def test_maps_legacy_vocabulary(self):
        spec = spec_from_options(
            "pdms-golomb",
            {"sampling": "character", "epsilon": 0.5, "initial_length": 8},
            seed=7,
            distribute_by="chars",
        )
        assert spec == PDMSGolombSpec(
            sampling="character",
            epsilon=0.5,
            initial_length=8,
            seed=7,
            distribute_by="chars",
        )

    def test_ignores_inapplicable_options(self):
        # the facade's historical contract: epsilon means nothing to hquick
        spec = spec_from_options("hquick", {"epsilon": 0.5, "local_sorter": "timsort"})
        assert spec == HQuickSpec(local_sorter="timsort")

    def test_unknown_option_suggests_nearest_match(self):
        with pytest.raises(ValueError, match="sample_sort"):
            spec_from_options("ms", {"sample_srot": "central"})
