"""Micro-benchmarks of the sequential substrate (Section II components).

These are classic pytest-benchmark timings (not figure reproductions): the
local sorters and mergers are the per-PE building blocks whose character
efficiency underpins the distributed results, and the LCP-aware variants
should inspect far fewer characters than their atomic counterparts on inputs
with long common prefixes.
"""

from __future__ import annotations

import pytest

from repro.sequential import (
    CharStats,
    lcp_multiway_merge,
    multiway_merge,
    sort_strings_with_lcp,
)
from repro.strings.generators import commoncrawl_like, dn_instance, random_strings
from repro.strings.lcp import lcp_array

from conftest import scaled

N = scaled(3000)

INPUTS = {
    "random": random_strings(N, 4, 24, seed=1),
    "dn75": dn_instance(N, 0.75, length=100, seed=2),
    "web": commoncrawl_like(N, seed=3),
}

SORTERS = ("msd_radix", "multikey_quicksort", "lcp_mergesort", "timsort")


@pytest.mark.parametrize("input_name", sorted(INPUTS))
@pytest.mark.parametrize("sorter", SORTERS)
def test_sequential_sorter(benchmark, sorter, input_name):
    data = INPUTS[input_name]
    out, _ = benchmark(sort_strings_with_lcp, data, sorter)
    assert out == sorted(data)


def _runs(data, k):
    runs = [[] for _ in range(k)]
    for i, s in enumerate(data):
        runs[i % k].append(s)
    runs = [sorted(r) for r in runs]
    return runs, [lcp_array(r) for r in runs]


@pytest.mark.parametrize("input_name", sorted(INPUTS))
def test_lcp_losertree_merge(benchmark, input_name):
    runs, lcps = _runs(INPUTS[input_name], 8)
    merged, _ = benchmark(lcp_multiway_merge, runs, lcps)
    assert len(merged) == len(INPUTS[input_name])


@pytest.mark.parametrize("input_name", sorted(INPUTS))
def test_atomic_losertree_merge(benchmark, input_name):
    runs, _ = _runs(INPUTS[input_name], 8)
    merged = benchmark(multiway_merge, runs)
    assert len(merged) == len(INPUTS[input_name])


def test_lcp_merge_character_savings(benchmark):
    """The LCP loser tree inspects far fewer characters on high-LCP input."""
    data = dn_instance(scaled(2000), 0.9, length=120, seed=4)
    runs, lcps = _runs(data, 8)

    def run_both():
        atomic = CharStats()
        multiway_merge(runs, atomic)
        lcp_aware = CharStats()
        lcp_multiway_merge(runs, lcps, lcp_aware)
        return atomic.chars_inspected, lcp_aware.chars_inspected

    atomic_chars, lcp_chars = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert lcp_chars * 5 < atomic_chars
