"""repro — reproduction of "Communication-Efficient String Sorting" (IPDPS 2020).

The package implements the paper's distributed string sorting algorithms
(hQuick, FKmerge, MS, MS-simple, PDMS, PDMS-Golomb) on top of a simulated
distributed-memory machine with exact communication-volume accounting, plus
the full sequential string-sorting substrate (MSD radix sort, multikey
quicksort, LCP insertion sort, LCP loser trees) they rely on.

Quickstart::

    from repro import Cluster, MSSpec
    from repro.strings import dn_instance

    data = dn_instance(num_strings=20_000, dn=0.5, length=64, seed=1)
    cluster = Cluster(num_pes=8)
    result = cluster.sort(data, MSSpec(), check=True)
    print(result.bytes_per_string(), result.modeled_time())

(The legacy one-shot :func:`dsort` facade remains as a thin wrapper over a
throwaway :class:`Cluster`.)

Architecture
------------

``repro`` is layered bottom-up; every layer only depends on the ones below:

* :mod:`repro.strings` — string containers, LCP/DIST machinery, workload
  generators (D/N family, COMMONCRAWL/DNAREADS-like corpora, suffix and
  skewed instances) and output checkers;
* :mod:`repro.sequential` — the per-PE sorters and mergers (MSD radix sort,
  multikey quicksort, LCP insertion sort, LCP-aware loser trees);
* :mod:`repro.net` — the alpha-beta machine model, hypercube topology
  helpers and the :class:`~repro.net.metrics.TrafficMeter` that records
  exact wire volumes;
* :mod:`repro.mpi` — the mpi4py-style :class:`~repro.mpi.comm.Communicator`
  interface and the thread-per-rank SPMD engine simulating the cluster;
* :mod:`repro.dist` — the distributed algorithms themselves: regular
  sampling and splitter agreement (``partition``/``splitters``), the
  LCP-compressed all-to-all (``exchange``), hypercube quicksort
  (``hquick``), Golomb-coded fingerprint duplicate detection
  (``golomb``/``duplicates``), the DIST-prefix approximation
  (``prefix_doubling``), D/N estimation (``dn_estimator``) and the
  per-algorithm rank programs plus the legacy :func:`dsort` shim (``api``);
* :mod:`repro.session` — the public API: :class:`Cluster` sessions over a
  reusable simulated machine, the typed :class:`SortSpec` configuration
  hierarchy, the pluggable algorithm registry and streaming batch ingest;
* :mod:`repro.bench` — the experiment harness reproducing the paper's
  figures (spec-driven sweeps keyed by ``config_hash``), driven by
  ``benchmarks/`` and the CLI (``python -m repro``).
"""

_SUBMODULE_HINT = (
    "the 'repro' package failed to import its submodule {name!r}: {exc}. "
    "Run from the repository with 'src' on sys.path (e.g. PYTHONPATH=src, "
    "'pip install -e .', or via pytest, whose configuration adds it) and "
    "make sure numpy is installed."
)

try:
    from .dist import (
        ALGORITHMS,
        DSortResult,
        dsort,
        distribute_strings,
        ms_sort,
        pdms_sort,
        hquick_sort,
        fkmerge_sort,
        MSConfig,
        PDMSConfig,
    )
    from .mpi import Communicator, run_spmd
    from .net import MachineModel, DEFAULT_MACHINE
    from .sequential import sort_strings, sort_strings_with_lcp
    from .session import (
        AlgorithmRegistry,
        AutoSpec,
        Cluster,
        FKMergeSpec,
        HQuickSpec,
        MSSimpleSpec,
        MSSpec,
        PDMSGolombSpec,
        PDMSSpec,
        SortSpec,
        register_algorithm,
    )
    from .strings import StringSet
except ModuleNotFoundError as exc:  # pragma: no cover - import-time guard
    raise ImportError(
        _SUBMODULE_HINT.format(name=exc.name or "<unknown>", exc=exc)
    ) from exc

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "SortSpec",
    "HQuickSpec",
    "FKMergeSpec",
    "MSSpec",
    "MSSimpleSpec",
    "PDMSSpec",
    "PDMSGolombSpec",
    "AutoSpec",
    "AlgorithmRegistry",
    "register_algorithm",
    "ALGORITHMS",
    "DSortResult",
    "dsort",
    "distribute_strings",
    "ms_sort",
    "pdms_sort",
    "hquick_sort",
    "fkmerge_sort",
    "MSConfig",
    "PDMSConfig",
    "Communicator",
    "run_spmd",
    "MachineModel",
    "DEFAULT_MACHINE",
    "sort_strings",
    "sort_strings_with_lcp",
    "StringSet",
    "__version__",
]
