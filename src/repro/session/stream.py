"""Streaming batch ingest: lazy per-chunk sorting with cumulative accounting.

:class:`BatchStream` is what :meth:`repro.session.Cluster.sort_batches`
returns: an iterator that pulls one chunk at a time from the source
iterable, sorts it on the owning cluster, and yields that chunk's
:class:`repro.dist.api.DSortResult`.  Only the cumulative counters and the
merged :class:`repro.net.metrics.TrafficReport` are retained between
batches — per-batch inputs and outputs are handed to the caller and
forgotten, keeping memory bounded by a single chunk regardless of corpus
size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

from ..dist.api import DSortResult
from ..net.metrics import TrafficReport, fold_traffic_report, zero_traffic_report
from .specs import SortSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .cluster import Cluster

__all__ = ["BatchStream"]

#: sentinel: no chunk is pending resumption (``None`` could be a real chunk)
_NO_CHUNK = object()


class BatchStream:
    """Lazy iterator of per-batch sort results with a running merged report.

    Completed batches are checkpointed: if a batch's sort raises (e.g. a
    fault-plan crash that survived its ``max_retries``), the pulled chunk is
    retained and the *next* ``next()`` call re-sorts that same chunk instead
    of pulling a fresh one — a mid-stream crash never skips or re-sorts
    data, it resumes exactly at the failed batch.

    Attributes
    ----------
    spec:
        The :class:`~repro.session.specs.SortSpec` every batch runs under.
    batches_done:
        Number of batches sorted so far.
    num_strings / num_chars:
        Cumulative input totals over the sorted batches.
    """

    def __init__(
        self,
        cluster: "Cluster",
        batches: Iterable[Sequence],
        spec: SortSpec,
        *,
        check: bool = False,
        max_retries: int = 0,
    ):
        self._cluster = cluster
        self._source: Iterator[Sequence] = iter(batches)
        self.spec = spec
        self._check = check
        self._max_retries = max_retries
        # the checkpoint: a chunk whose sort failed, awaiting resumption
        self._pending: object = _NO_CHUNK
        self.batches_done = 0
        self.num_strings = 0
        self.num_chars = 0
        self._merged = zero_traffic_report(cluster.num_pes)

    # ------------------------------------------------------------------ iteration
    def __iter__(self) -> "BatchStream":
        """The stream is its own (single-pass) iterator."""
        return self

    def __next__(self) -> DSortResult:
        """Pull, sort and account the next chunk; ``StopIteration`` at the end.

        A failed sort leaves the chunk checkpointed: the next call retries
        it rather than pulling (and silently dropping) a fresh chunk.
        """
        if self._pending is _NO_CHUNK:
            # StopIteration propagates: stream drained
            self._pending = next(self._source)
        result = self._cluster.sort(
            self._pending, self.spec, check=self._check,
            max_retries=self._max_retries,
        )
        self._pending = _NO_CHUNK
        self.batches_done += 1
        self.num_strings += result.num_strings
        self.num_chars += result.num_chars
        # fold in place: re-merging the cumulative report every batch would
        # copy the accumulated collective events again (quadratic over a
        # long ingest); the merge contract itself lives in net.metrics
        fold_traffic_report(self._merged, result.report)
        return result

    def run(self) -> "BatchStream":
        """Drain the stream (discarding per-batch results); returns ``self``.

        Use when only the cumulative accounting matters — e.g. measuring the
        total communication volume of a chunked corpus ingest.
        """
        for _ in self:
            pass
        return self

    # ------------------------------------------------------------------ accounting
    @property
    def merged_report(self) -> TrafficReport:
        """Cumulative traffic over the batches sorted so far.

        Exact element-wise sums of the per-batch reports (bytes, messages,
        local work, per-phase bytes, overlap clocks) with all collective
        events retained, so ``merged_report.total_bytes_sent`` equals the
        sum of the individual batches' totals.
        """
        return self._merged

    def bytes_per_string(self) -> float:
        """Cumulative headline metric: total bytes sent / strings ingested."""
        return self._merged.bytes_per_string(self.num_strings)
