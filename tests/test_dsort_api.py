"""Tests for the public dsort facade and input distribution helpers."""

import pytest

from repro import ALGORITHMS, dsort
from repro.dist.api import distribute_strings
from repro.strings.generators import random_strings


class TestDistributeStrings:
    def test_by_strings_balances_counts(self):
        data = random_strings(100, 1, 5, seed=1)
        blocks = distribute_strings(data, 7)
        assert len(blocks) == 7
        assert sum(len(b) for b in blocks) == 100
        assert max(len(b) for b in blocks) - min(len(b) for b in blocks) <= 1

    def test_by_chars_balances_characters(self):
        data = [b"x" * 50] * 4 + [b"y"] * 200
        blocks = distribute_strings(data, 4, by="chars")
        sizes = [sum(len(s) for s in b) for b in blocks]
        assert sum(sizes) == sum(len(s) for s in data)
        assert max(sizes) < 0.6 * sum(sizes)

    def test_preserves_order_and_content(self):
        data = random_strings(53, 1, 6, seed=2)
        blocks = distribute_strings(data, 5)
        assert [s for b in blocks for s in b] == data

    def test_accepts_str_input(self):
        blocks = distribute_strings(["b", "a"], 2)
        assert blocks == [[b"b"], [b"a"]]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            distribute_strings([b"a"], 0)
        with pytest.raises(ValueError):
            distribute_strings([b"a"], 2, by="magic")


class TestDsortFacade:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            dsort([b"a"], algorithm="bogosort", num_pes=2)

    def test_pre_distributed_input(self):
        blocks = [[b"d", b"a"], [b"c", b"b"]]
        res = dsort(blocks, algorithm="ms", pre_distributed=True, check=True)
        assert res.num_pes == 2
        assert res.sorted_strings == [b"a", b"b", b"c", b"d"]

    def test_accepts_str_input(self):
        res = dsort(["pear", "apple", "fig"], algorithm="ms", num_pes=2, check=True)
        assert res.sorted_strings == [b"apple", b"fig", b"pear"]

    def test_result_metadata(self):
        data = random_strings(300, 1, 10, seed=3)
        res = dsort(data, algorithm="ms", num_pes=4)
        assert res.algorithm == "ms"
        assert res.num_pes == 4
        assert res.num_strings == 300
        assert res.num_chars == sum(len(s) for s in data)
        assert res.bytes_per_string() > 0
        assert res.modeled_time() > 0

    def test_more_pes_than_strings(self):
        res = dsort([b"b", b"a", b"c"], algorithm="ms", num_pes=8, check=True)
        assert res.sorted_strings == [b"a", b"b", b"c"]

    def test_single_pe_every_algorithm(self):
        data = random_strings(150, 0, 10, seed=4)
        for algorithm in ALGORITHMS:
            res = dsort(data, algorithm=algorithm, num_pes=1, check=True)
            assert res.num_strings == 150

    def test_empty_input(self):
        res = dsort([], algorithm="ms", num_pes=3, check=True)
        assert res.sorted_strings == []

    def test_check_flag_catches_nothing_on_valid_runs(self):
        data = random_strings(200, 1, 10, seed=5)
        dsort(data, algorithm="pdms", num_pes=3, check=True)

    def test_report_phases_cover_all_steps(self):
        data = random_strings(400, 1, 12, seed=6)
        res = dsort(data, algorithm="ms", num_pes=4)
        assert "splitter-determination" in res.report.phase_bytes
        assert "exchange" in res.report.phase_bytes

    def test_seed_changes_hquick_randomisation_not_result(self):
        data = random_strings(300, 1, 10, seed=7)
        a = dsort(data, algorithm="hquick", num_pes=4, seed=1)
        b = dsort(data, algorithm="hquick", num_pes=4, seed=2)
        assert a.sorted_strings == b.sorted_strings == sorted(data)
