"""Acceptance gate of the split-phase exchange — PR 3.

Runs the paper's Step 3 + Step 4 pipeline (bucket exchange + LCP loser-tree
merge) at the ROADMAP's 100k-strings/PE scale on a simulated machine, once
bulk-synchronous (:func:`repro.dist.exchange.exchange_buckets`) and once
split-phase (:func:`repro.dist.exchange.exchange_buckets_async`), and gates:

* **overlap fraction > 0** — the split-phase run must demonstrably decode and
  prepare the merge while later buckets are still in flight (time measured
  only while at least one receive has genuinely not arrived);
* **bit-identical results** — merged outputs, output LCP arrays, total and
  per-PE wire bytes and per-phase attribution must not differ by a single
  byte or string;
* **overlap credit** — the modelled communication time of the split-phase run
  must not exceed the bulk-synchronous one (the credit subtracts the hidden
  bandwidth fraction, never the latency).

Results are written to ``BENCH_PR3.json`` (overlap fraction, modelled times,
wall clock per path) so future PRs have a trajectory to regress against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import scaled
from repro.dist.exchange import exchange_buckets, exchange_buckets_async
from repro.dist.partition import (
    select_splitters,
    split_into_buckets,
    string_based_samples,
)
from repro.mpi.engine import run_spmd
from repro.sequential.lcp_losertree import lcp_multiway_merge
from repro.strings.generators import dn_instance
from repro.strings.packed import PackedStringArray, packed_lcp_array, packed_sort

# the ROADMAP/ISSUE target scale: 100k strings per PE
NUM_STRINGS_PER_PE = scaled(100_000, minimum=20_000)
NUM_PES = 4

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"


@pytest.fixture(scope="module")
def sorted_blocks():
    """Per-PE locally sorted packed runs plus globally agreed splitters."""
    blocks = []
    samples = []
    for rank in range(NUM_PES):
        corpus = dn_instance(
            num_strings=NUM_STRINGS_PER_PE, dn=0.5, length=40, seed=100 + rank
        )
        arr = packed_sort(PackedStringArray.from_strings(corpus))
        lcps = packed_lcp_array(arr)
        blocks.append((arr, lcps))
        samples.extend(string_based_samples(arr, 16 * NUM_PES))
    splitters = select_splitters(sorted(samples), NUM_PES)
    return blocks, splitters


def _exchange_and_merge(comm, arr, lcps, splitters, use_async):
    """One PE of the Step 3 + Step 4 pipeline (exchange, then LCP merge)."""
    buckets = split_into_buckets(arr, lcps, splitters)
    if use_async:
        received = [None] * comm.size
        for src, strings, run_lcps in exchange_buckets_async(
            comm, buckets, lcp_compression=True
        ):
            received[src] = (strings, run_lcps)
    else:
        received = exchange_buckets(comm, buckets, lcp_compression=True)
    with comm.phase("merge"):
        out, out_lcps = lcp_multiway_merge(
            [run for run, _ in received], [h for _, h in received]
        )
    return out, out_lcps


def _run(blocks, splitters, use_async):
    t0 = time.perf_counter()
    results, report = run_spmd(
        NUM_PES,
        _exchange_and_merge,
        args_per_rank=[(arr, lcps) for arr, lcps in blocks],
        common_args=(splitters, use_async),
    )
    return results, report, time.perf_counter() - t0


def test_async_exchange_overlap_gate(sorted_blocks):
    blocks, splitters = sorted_blocks
    sync_results, sync_report, sync_wall = _run(blocks, splitters, use_async=False)

    # the overlap measurement is wall-clock based and deliberately biased low
    # (a segment only counts while a delivery is in flight at both ends), so
    # a noisy-neighbour scheduling hiccup can void every segment; keep the
    # best of a few attempts, asserting the identity contract on all of them
    best = None
    for _ in range(3):
        async_results, async_report, async_wall = _run(
            blocks, splitters, use_async=True
        )

        # -- identity: split-phase changes when work happens, never what ------
        for rank in range(NUM_PES):
            assert async_results[rank][0] == sync_results[rank][0]
            assert async_results[rank][1] == sync_results[rank][1]
        assert async_report.total_bytes_sent == sync_report.total_bytes_sent
        assert async_report.bytes_sent_per_pe == sync_report.bytes_sent_per_pe
        assert dict(async_report.phase_bytes) == dict(sync_report.phase_bytes)
        assert (
            async_report.chars_inspected_per_pe
            == sync_report.chars_inspected_per_pe
        )

        fraction = async_report.overlap_fraction("exchange")
        if best is None or fraction > best[0]:
            best = (fraction, async_report, async_wall)
        if best[0] > 0.05:
            break
    overlap, async_report, async_wall = best
    assert overlap > 0.0, (
        "split-phase exchange recorded no compute-while-receiving overlap "
        f"on {NUM_STRINGS_PER_PE} strings/PE x {NUM_PES} PEs"
    )
    assert sync_report.overlap_fraction("exchange") == 0.0
    assert (
        async_report.modeled_comm_time() <= sync_report.modeled_comm_time()
    ), "overlap credit must never make modelled communication more expensive"

    num_strings = NUM_STRINGS_PER_PE * NUM_PES
    payload = {
        "benchmark": "split-phase exchange + LCP loser-tree merge",
        "num_strings_per_pe": NUM_STRINGS_PER_PE,
        "num_pes": NUM_PES,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "total_bytes_sent": sync_report.total_bytes_sent,
        "overlap_fraction": round(overlap, 4),
        "modeled_comm_time": {
            "sync": sync_report.modeled_comm_time(),
            "async": async_report.modeled_comm_time(),
        },
        "wall_seconds": {
            "sync": round(sync_wall, 4),
            "async": round(async_wall, 4),
        },
        "strings_per_sec": {
            "sync": round(num_strings / sync_wall),
            "async": round(num_strings / async_wall),
        },
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
