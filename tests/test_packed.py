"""Property tests pinning the packed (vectorized) kernels to the scalar code.

Every vectorized kernel of :mod:`repro.strings.packed` must be bit-exact
with its scalar counterpart — the packed hot path replaces the original
implementation wholesale, so any divergence silently corrupts results or
wire accounting.  Hypothesis drives adversarial inputs: empty strings,
exact duplicates, one-byte alphabets, and strings sharing prefixes longer
than 255 characters (so LCP values need multi-byte varints).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.exchange import LcpCompressedBlock, StringBlock
from repro.dist.partition import bucket_boundaries, split_into_buckets
from repro.mpi.serialization import varint_size, varint_sizes, varint_total, wire_size
from repro.strings.lcp import lcp, lcp_array, lcp_compress_lengths
from repro.strings.packed import (
    PackedStringArray,
    _front_decode_scalar,
    front_code,
    front_decode,
    packed_argsort,
    packed_bucket_boundaries,
    packed_lcp_array,
    packed_sort,
    truncate,
    use_packed,
)

# ---------------------------------------------------------------------------
# input strategies
# ---------------------------------------------------------------------------

# small alphabets maximise duplicates and long shared prefixes
_alphabets = st.sampled_from([b"a", b"ab", b"abc", bytes(range(1, 256))])


@st.composite
def string_lists(draw, min_size=0, max_size=40):
    alphabet = draw(_alphabets)
    base = draw(
        st.lists(
            st.binary(min_size=0, max_size=24).map(
                lambda b: bytes(alphabet[x % len(alphabet)] for x in b)
            ),
            min_size=min_size,
            max_size=max_size,
        )
    )
    if draw(st.booleans()):
        # adversarial tail: empties, duplicates, and a >255-char common prefix
        long = bytes(alphabet[0:1]) * 300
        base += [b"", b"", long, long + b"x", long]
    return base


def scalar_lcp_array(strings):
    """Reference implementation: the original per-pair scalar loop."""
    out = [0] * len(strings)
    for i in range(1, len(strings)):
        out[i] = lcp(strings[i - 1], strings[i])
    return out


# ---------------------------------------------------------------------------
# round trip and container protocol
# ---------------------------------------------------------------------------

class TestRoundTrip:
    @given(string_lists())
    @settings(max_examples=120, deadline=None)
    def test_pack_unpack_identity(self, xs):
        arr = PackedStringArray.from_strings(xs)
        assert arr.to_list() == xs
        assert list(arr) == xs
        assert [arr[i] for i in range(len(arr))] == xs
        assert len(arr) == len(xs)
        assert arr.num_chars == sum(len(s) for s in xs)
        assert arr.max_len == max((len(s) for s in xs), default=0)
        assert arr.lengths.tolist() == [len(s) for s in xs]

    @given(string_lists(min_size=2), st.data())
    @settings(max_examples=60, deadline=None)
    def test_views_are_zero_copy_windows(self, xs, data):
        arr = PackedStringArray.from_strings(xs)
        lo = data.draw(st.integers(0, len(xs)))
        hi = data.draw(st.integers(lo, len(xs)))
        view = arr[lo:hi]
        assert view.buffer is arr.buffer  # shared character data
        assert view.to_list() == xs[lo:hi]
        assert packed_lcp_array(view).tolist() == scalar_lcp_array(xs[lo:hi])

    @given(string_lists())
    @settings(max_examples=60, deadline=None)
    def test_sort_matches_builtin(self, xs):
        arr = PackedStringArray.from_strings(xs)
        assert packed_sort(arr).to_list() == sorted(xs)
        order = packed_argsort(arr)
        assert [xs[i] for i in order] == sorted(xs)
        assert packed_sort(arr).is_sorted()

    @given(string_lists(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncate_matches_slicing(self, xs, data):
        lims = [data.draw(st.integers(0, 30)) for _ in xs]
        arr = PackedStringArray.from_strings(xs)
        assert truncate(arr, lims).to_list() == [s[:l] for s, l in zip(xs, lims)]


# ---------------------------------------------------------------------------
# vectorized vs scalar LCP
# ---------------------------------------------------------------------------

class TestLcpEquivalence:
    @given(string_lists())
    @settings(max_examples=120, deadline=None)
    def test_packed_lcp_equals_scalar(self, xs):
        arr = PackedStringArray.from_strings(xs)
        assert packed_lcp_array(arr).tolist() == scalar_lcp_array(xs)

    @given(string_lists())
    @settings(max_examples=40, deadline=None)
    def test_big_endian_fallback_equivalent(self, xs):
        import repro.strings.packed as packed_mod

        arr = PackedStringArray.from_strings(xs)
        fast = packed_lcp_array(arr)
        original = packed_mod._LITTLE_ENDIAN
        packed_mod._LITTLE_ENDIAN = False
        try:
            slow = packed_lcp_array(arr)
        finally:
            packed_mod._LITTLE_ENDIAN = original
        assert fast.tolist() == slow.tolist() == scalar_lcp_array(xs)

    @given(string_lists())
    @settings(max_examples=60, deadline=None)
    def test_lcp_array_dispatch_is_equivalent(self, xs):
        with use_packed(True):
            fast = lcp_array(xs * 3)  # ×3 pushes past the dispatch threshold
        with use_packed(False):
            slow = lcp_array(xs * 3)
        assert fast == slow

    @given(string_lists())
    @settings(max_examples=60, deadline=None)
    def test_lcp_compress_lengths_packed(self, xs):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        arr = PackedStringArray.from_strings(srt)
        assert lcp_compress_lengths(arr, h) == lcp_compress_lengths(srt, h)


# ---------------------------------------------------------------------------
# front coding: encode / decode / wire accounting
# ---------------------------------------------------------------------------

class TestFrontCoding:
    @given(string_lists())
    @settings(max_examples=120, deadline=None)
    def test_encode_matches_scalar_entries(self, xs):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        scalar_blk = LcpCompressedBlock.encode(srt, h)
        hc, suffixes = front_code(PackedStringArray.from_strings(srt), h)
        assert [(int(a), b) for a, b in zip(hc, suffixes)] == scalar_blk.entries

    @given(string_lists())
    @settings(max_examples=120, deadline=None)
    def test_decode_round_trips(self, xs):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        hc, suffixes = front_code(PackedStringArray.from_strings(srt), h)
        assert front_decode(hc, suffixes).to_list() == srt

    @given(string_lists())
    @settings(max_examples=80, deadline=None)
    def test_block_wire_bytes_identical(self, xs):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        arr = PackedStringArray.from_strings(srt)
        assert (
            LcpCompressedBlock.encode(arr, h).wire_bytes()
            == LcpCompressedBlock.encode(srt, h).wire_bytes()
        )
        assert StringBlock(arr).wire_bytes() == StringBlock(srt).wire_bytes()
        assert StringBlock(arr, h).wire_bytes() == StringBlock(srt, h).wire_bytes()
        assert wire_size(arr) == StringBlock(srt).wire_bytes()

    @given(string_lists())
    @settings(max_examples=60, deadline=None)
    def test_block_decode_identical(self, xs):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        arr = PackedStringArray.from_strings(srt)
        assert (
            LcpCompressedBlock.encode(arr, h).decode()
            == LcpCompressedBlock.encode(srt, h).decode()
        )
        assert StringBlock(arr).decode() == StringBlock(srt).decode()
        assert StringBlock(arr, h).decode() == StringBlock(srt, h).decode()

    def test_corrupt_packed_block_detected(self):
        suffixes = PackedStringArray.from_strings([b"ab", b"c"])
        with pytest.raises(ValueError):
            front_decode(np.array([0, 5]), suffixes)
        with pytest.raises(ValueError):
            front_decode(np.array([1, 0]), suffixes)


class TestFrontDecodeVectorizedOracle:
    """The PSV-chain ``front_decode`` ≡ the scalar per-string loop.

    The vectorized decoder reconstructs each string's borrowed prefix
    through its previous-smaller-value chain over the LCP array; the scalar
    loop (``_front_decode_scalar``, kept exactly as it was) is the oracle.
    Every property feeds *sorted* inputs — front coding is only defined on
    sorted runs — but stresses the chain's edge shapes: empty strings, zero
    LCPs, all-equal runs (chain depth 1), staircase prefixes (maximal chain
    depth), single-string arrays, and non-ASCII / NUL-bearing bytes.
    """

    @staticmethod
    def _roundtrip(srt):
        h = np.asarray(scalar_lcp_array(srt), dtype=np.int64)
        hc, suffixes = front_code(PackedStringArray.from_strings(srt), h.tolist())
        got = front_decode(hc, suffixes)
        want = _front_decode_scalar(np.asarray(hc, dtype=np.int64), suffixes)
        assert got.to_list() == want.to_list() == srt

    @given(string_lists())
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_oracle(self, xs):
        self._roundtrip(sorted(xs))

    @given(st.lists(st.binary(min_size=0, max_size=16), max_size=30))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_binary_strings(self, xs):
        # full byte alphabet: non-ASCII values and embedded NULs
        self._roundtrip(sorted(xs))

    @given(st.binary(min_size=0, max_size=12), st.integers(1, 50))
    @settings(max_examples=80, deadline=None)
    def test_all_equal_run(self, s, n):
        # constant run: every LCP equals len(s); chain depth is exactly 1
        self._roundtrip([s] * n)

    @given(st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_staircase_prefixes(self, n):
        # a, aa, aaa, ...: strictly increasing LCPs, maximal chain depth
        self._roundtrip([b"a" * i for i in range(1, n + 1)])

    @given(st.binary(min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_single_string(self, s):
        self._roundtrip([s])

    @given(st.lists(st.binary(min_size=0, max_size=10), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_zero_lcp_runs(self, xs):
        # distinct leading bytes force every LCP to 0: pure suffix copy
        srt = sorted(xs)
        distinct = [bytes([i]) + s for i, s in enumerate(srt)]
        self._roundtrip(distinct)

    def test_empty_input(self):
        self._roundtrip([])


# ---------------------------------------------------------------------------
# varint accounting
# ---------------------------------------------------------------------------

class TestVarintVectorized:
    @given(st.lists(st.integers(-(2**40), 2**60), max_size=50))
    @settings(max_examples=120, deadline=None)
    def test_varint_sizes_match_scalar(self, values):
        assert varint_sizes(values).tolist() == [varint_size(v) for v in values]
        assert varint_total(values) == sum(varint_size(v) for v in values)

    def test_boundaries(self):
        edges = [0, 1, 127, 128, 2**14 - 1, 2**14, 2**21, 2**63 - 1, -1, -2**62]
        assert varint_sizes(edges).tolist() == [varint_size(v) for v in edges]


# ---------------------------------------------------------------------------
# bucket partition
# ---------------------------------------------------------------------------

class TestPackedPartition:
    @given(string_lists(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_boundaries_match_bisect(self, xs, data):
        srt = sorted(xs)
        k = data.draw(st.integers(0, 4))
        pool = srt + [b"", b"m", b"zzz"]
        splitters = sorted(data.draw(st.lists(st.sampled_from(pool), min_size=k, max_size=k)))
        arr = PackedStringArray.from_strings(srt)
        assert packed_bucket_boundaries(arr, splitters) == bucket_boundaries(srt, splitters)
        assert bucket_boundaries(arr, splitters) == bucket_boundaries(srt, splitters)

    def test_nul_bytes_fall_back_correctly(self):
        srt = sorted([b"\x00", b"\x00a", b"a\x00b", b"a", b"ab", b"b"])
        splitters = [b"\x00a", b"a\x00b"]
        arr = PackedStringArray.from_strings(srt)
        assert packed_bucket_boundaries(arr, splitters) == bucket_boundaries(srt, splitters)

    def test_stringset_caches_sorted_packed(self):
        from repro.strings.lcp import merge_lcp_statistics
        from repro.strings.stringset import StringSet

        ss = StringSet([b"banana", b"band", b"apple", b"apple", b"", b"cherry"])
        first = ss.sorted_packed()
        assert first.to_list() == sorted(ss.strings)
        assert ss.sorted_packed() is first  # cached, no re-sort
        reference = merge_lcp_statistics(list(ss.strings))
        assert merge_lcp_statistics(ss) == reference
        assert merge_lcp_statistics(ss) == reference  # served from the cache

    @given(string_lists(min_size=1), st.data())
    @settings(max_examples=50, deadline=None)
    def test_split_into_buckets_packed_equals_list(self, xs, data):
        srt = sorted(xs)
        h = scalar_lcp_array(srt)
        k = data.draw(st.integers(0, 3))
        splitters = sorted(data.draw(st.lists(st.sampled_from(srt), min_size=k, max_size=k)))
        list_buckets = split_into_buckets(srt, h, splitters)
        packed_buckets = split_into_buckets(
            PackedStringArray.from_strings(srt), np.asarray(h), splitters
        )
        assert len(list_buckets) == len(packed_buckets)
        for (ls, lh), (ps, ph) in zip(list_buckets, packed_buckets):
            assert ps.to_list() == ls
            assert ph.tolist() == lh
