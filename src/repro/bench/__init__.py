"""Benchmark harness: experiment runner and canned figure/table reproductions."""

from .harness import CellResult, ExperimentResult, ExperimentRunner, format_table
from .experiments import (
    DEFAULT_ALGORITHMS,
    weak_scaling_dn,
    strong_scaling_commoncrawl,
    strong_scaling_dnareads,
    strong_scaling_corpus,
    suffix_instance_experiment,
    skewed_sampling_experiment,
    ablation_lcp_golomb,
)

__all__ = [
    "CellResult",
    "ExperimentResult",
    "ExperimentRunner",
    "format_table",
    "DEFAULT_ALGORITHMS",
    "weak_scaling_dn",
    "strong_scaling_commoncrawl",
    "strong_scaling_dnareads",
    "strong_scaling_corpus",
    "suffix_instance_experiment",
    "skewed_sampling_experiment",
    "ablation_lcp_golomb",
]
