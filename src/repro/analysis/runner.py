"""Analyzer orchestration: parse, run the three passes, render the report.

:func:`run_lint` is the single entry point behind both the ``repro lint``
CLI subcommand and the ``tests/test_comm_lint.py`` gate.  It parses the
tree once, runs the SPMD, wire-format and toggle passes, folds findings
through the suppression index, attaches the per-algorithm comm graphs,
and returns a deterministic :class:`~repro.analysis.model.LintReport`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence

from .commgraph import build_commgraph, detect_algorithms, parse_tree
from .model import LintReport
from .spmd import run_spmd_pass
from .toggles import find_env_reads, run_toggle_pass
from .wire import run_wire_pass

__all__ = [
    "default_source_root",
    "default_docs_path",
    "run_lint",
    "render_human",
    "render_json",
    "write_commgraphs",
]


def default_source_root() -> Path:
    """The installed ``repro`` package directory (``src/repro`` in-tree)."""
    return Path(__file__).resolve().parent.parent


def default_docs_path(root: Optional[Path] = None) -> Optional[Path]:
    """``docs/API.md`` relative to the source root, if present.

    With the src layout the repo root is two levels above the package
    directory; installed trees have no docs and the documentation rule is
    skipped there.
    """
    base = root if root is not None else default_source_root()
    candidate = base.parent.parent / "docs" / "API.md"
    return candidate if candidate.is_file() else None


def run_lint(
    root: Optional[Path] = None,
    package: str = "repro",
    extra_paths: Sequence[Path] = (),
    docs_path: Optional[Path] = None,
    full_tree: Optional[bool] = None,
) -> LintReport:
    """Run all three passes; return the finalized deterministic report.

    ``root=None`` scans the installed package.  ``extra_paths`` adds loose
    fixture files (indexed as ``lintfixture.*``).  ``full_tree`` gates the
    stale-toggle rule; by default it is on exactly when the real package
    tree is part of the scan.
    """
    if root is None and not extra_paths:
        root = default_source_root()
    if full_tree is None:
        full_tree = root is not None
    if docs_path is None and root is not None:
        docs_path = default_docs_path(root)
    docs_text = docs_path.read_text(encoding="utf-8") if docs_path else None

    index = parse_tree(root, package=package, extra_paths=extra_paths)

    report = LintReport()
    report.extend(run_spmd_pass(index), index.suppressions)
    report.extend(run_wire_pass(index), index.suppressions)
    report.extend(
        run_toggle_pass(index, docs_text=docs_text, full_tree=full_tree),
        index.suppressions,
    )

    for name, entry in sorted(detect_algorithms(index).items()):
        report.commgraphs[name] = build_commgraph(index, name, entry)

    report.stats = {
        "modules": len(index.modules),
        "functions": len(index.functions),
        "rank_programs": sum(
            1 for s in index.functions.values() if s.comm_param is not None
        ),
        "comm_events": sum(len(s.events) for s in index.functions.values()),
        "env_reads": len(find_env_reads(index)),
        "algorithms": len(report.commgraphs),
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
    }
    return report.finalize()


def render_human(report: LintReport) -> str:
    """Human-readable report (one finding per line, stats footer)."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}"
        )
    if report.suppressed:
        lines.append(f"({len(report.suppressed)} finding(s) suppressed by spmd-ok)")
    stats = report.stats
    lines.append(
        "analyzed {modules} modules / {functions} functions "
        "({rank_programs} rank programs, {comm_events} comm events, "
        "{algorithms} algorithms)".format(**stats)
    )
    lines.append(
        "OK: no findings" if report.ok else f"FAIL: {len(report.findings)} finding(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Canonical JSON report (sorted keys — byte-identical across runs)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def write_commgraphs(report: LintReport, directory: Path) -> List[Path]:
    """Write one ``commgraph-<algorithm>.json`` per algorithm; return paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in sorted(report.commgraphs):
        path = directory / f"commgraph-{name}.json"
        path.write_text(
            json.dumps(report.commgraphs[name], indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written
