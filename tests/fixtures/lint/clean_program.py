"""A correct rank program: every pass must stay silent on this file.

Exercises the idioms the analyzer must *not* flag: a rank-dependent
branch whose arms differ only in point-to-point traffic (the classic
fold), tag-matched send/recv pairs, a single-rooted gather, and peer
arithmetic that genuinely varies across ranks.
"""


def clean_fold_sort(comm, local):
    rank = comm.rank
    size = comm.size
    local = sorted(local)
    comm.allgather(local[:1])
    half = size // 2
    if half and rank >= half:
        comm.send(local, rank - half, tag=21)
    elif rank + half < size:
        local = local + comm.recv(rank + half, tag=21)
    comm.barrier()
    return comm.gather(local, root=0)
