"""Unit tests for the sorting-output checkers."""

import pytest

from repro.strings.checker import (
    SortCheckError,
    check_distributed_sort,
    check_is_permutation,
    check_locally_sorted,
    check_prefix_permutation,
    check_sequential_sort,
)


class TestLocallySorted:
    def test_accepts_sorted(self):
        check_locally_sorted([b"a", b"ab", b"b"])

    def test_accepts_duplicates(self):
        check_locally_sorted([b"a", b"a"])

    def test_accepts_empty(self):
        check_locally_sorted([])

    def test_rejects_unsorted(self):
        with pytest.raises(SortCheckError):
            check_locally_sorted([b"b", b"a"])


class TestPermutation:
    def test_accepts_reordering_with_duplicates(self):
        check_is_permutation([b"a", b"b", b"a"], [b"a", b"a", b"b"])

    def test_rejects_missing_element(self):
        with pytest.raises(SortCheckError):
            check_is_permutation([b"a", b"b"], [b"a", b"a"])

    def test_rejects_length_mismatch(self):
        with pytest.raises(SortCheckError):
            check_is_permutation([b"a"], [b"a", b"a"])


class TestSequentialCheck:
    def test_full_check_passes(self):
        inputs = [b"b", b"a", b"ab"]
        outputs = [b"a", b"ab", b"b"]
        report = check_sequential_sort(inputs, outputs, [0, 1, 0])
        assert report.num_strings == 3

    def test_rejects_wrong_lcp(self):
        with pytest.raises(SortCheckError):
            check_sequential_sort([b"a", b"ab"], [b"a", b"ab"], [0, 0])

    def test_lcp_optional(self):
        check_sequential_sort([b"a"], [b"a"])


class TestDistributedCheck:
    def test_valid_distribution(self):
        inputs = [[b"d", b"a"], [b"c", b"b"]]
        outputs = [[b"a", b"b"], [b"c", b"d"]]
        report = check_distributed_sort(inputs, outputs)
        assert report.num_pes == 2

    def test_empty_pe_is_skipped(self):
        inputs = [[b"b", b"a"], []]
        outputs = [[b"a", b"b"], []]
        report = check_distributed_sort(inputs, outputs)
        assert any("no strings" in n for n in report.notes)

    def test_rejects_boundary_violation(self):
        inputs = [[b"a", b"b"], [b"c", b"d"]]
        outputs = [[b"a", b"c"], [b"b", b"d"]]
        with pytest.raises(SortCheckError, match="boundary"):
            check_distributed_sort(inputs, outputs)

    def test_rejects_locally_unsorted_pe(self):
        inputs = [[b"a", b"b"]]
        outputs = [[b"b", b"a"]]
        with pytest.raises(SortCheckError):
            check_distributed_sort(inputs, outputs)

    def test_rejects_lost_string(self):
        inputs = [[b"a", b"b"]]
        outputs = [[b"a"]]
        with pytest.raises(SortCheckError):
            check_distributed_sort(inputs, outputs)

    def test_checks_lcp_arrays_when_given(self):
        inputs = [[b"ab", b"aa"]]
        outputs = [[b"aa", b"ab"]]
        check_distributed_sort(inputs, outputs, [[0, 1]])
        with pytest.raises(SortCheckError):
            check_distributed_sort(inputs, outputs, [[0, 2]])


class TestPrefixPermutationCheck:
    def test_accepts_valid_prefix_output(self):
        inputs = [[b"alpha", b"beta"], [b"alps", b"bet"]]
        # prefixes long enough to distinguish, globally sorted across PEs
        outputs = [[b"alph", b"alps"], [b"bet", b"beta"]]
        report = check_prefix_permutation(inputs, outputs)
        assert report.num_strings == 4

    def test_accepts_full_strings_as_prefixes(self):
        inputs = [[b"a", b"b"]]
        outputs = [[b"a", b"b"]]
        check_prefix_permutation(inputs, outputs)

    def test_rejects_count_mismatch(self):
        with pytest.raises(SortCheckError):
            check_prefix_permutation([[b"a", b"b"]], [[b"a"]])

    def test_rejects_prefix_of_nothing(self):
        inputs = [[b"alpha"]]
        outputs = [[b"zzz"]]
        with pytest.raises(SortCheckError):
            check_prefix_permutation(inputs, outputs)

    def test_rejects_unsorted_prefixes(self):
        inputs = [[b"alpha", b"beta"]]
        outputs = [[b"bet", b"alp"]]
        with pytest.raises(SortCheckError):
            check_prefix_permutation(inputs, outputs)

    def test_rejects_boundary_violation(self):
        inputs = [[b"aa", b"zz"], [b"mm", b"nn"]]
        outputs = [[b"aa", b"zz"], [b"mm", b"nn"]]
        with pytest.raises(SortCheckError):
            check_prefix_permutation(inputs, outputs)
