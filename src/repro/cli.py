"""Command-line interface: ``python -m repro <command> ...``.

The subcommands cover the workflows a downstream user needs most often:

* ``sort``        — sort a file of newline-separated strings (or a generated
                    workload) with any registered algorithm and report the
                    communication metrics; configurations are typed
                    :class:`repro.session.SortSpec` objects, either built
                    from the flags or loaded verbatim with ``--spec``
                    (JSON, via :meth:`SortSpec.from_dict`);
* ``algorithms``  — list the algorithm registry: every entry's spec class,
                    knobs, defaults and default config hash;
* ``experiment``  — run one of the canned figure reproductions and print its
                    tables (optionally dump JSON);
* ``generate``    — write one of the synthetic workloads to a file, e.g. to
                    feed external tools;
* ``trace run``   — run a sort with per-rank tracing armed and export the
                    timeline as Chrome-trace/Perfetto JSON (plus a terminal
                    phase waterfall; see ``docs/OBSERVABILITY.md``);
* ``metrics``     — run a traced sort and print its metrics snapshot in
                    Prometheus text exposition or JSON;
* ``lint``        — run the static analyzer over the source tree.

The CLI is deliberately thin: it only parses arguments and delegates to the
library (``repro.session``, ``repro.bench``), so everything it does is also
available programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import fields as dataclass_fields
from typing import List, Optional, Sequence

from .bench import experiments as canned
from .bench.harness import ExperimentRunner
from .net.cost_model import DEFAULT_MACHINE
from .session import Cluster, SortSpec, default_registry, spec_from_options
from .strings import generators
from .strings.lcp import dn_ratio

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "dn0": lambda n, seed: generators.dn_instance(n, 0.0, length=100, seed=seed),
    "dn25": lambda n, seed: generators.dn_instance(n, 0.25, length=100, seed=seed),
    "dn50": lambda n, seed: generators.dn_instance(n, 0.5, length=100, seed=seed),
    "dn75": lambda n, seed: generators.dn_instance(n, 0.75, length=100, seed=seed),
    "dn100": lambda n, seed: generators.dn_instance(n, 1.0, length=100, seed=seed),
    "commoncrawl": lambda n, seed: generators.commoncrawl_like(n, seed=seed),
    "dnareads": lambda n, seed: generators.dna_reads(n, seed=seed),
    "random": lambda n, seed: generators.random_strings(n, 1, 30, seed=seed),
    "skewed": lambda n, seed: generators.skewed_dn_instance(n, 0.5, length=100, seed=seed),
    "suffixes": lambda n, seed: generators.suffix_instance(
        text_len=n, max_suffix_len=500, seed=seed
    ),
}

_EXPERIMENTS = {
    "fig4": lambda runner: canned.weak_scaling_dn(
        pe_counts=(2, 4, 8), strings_per_pe=600, string_length=150, runner=runner
    ),
    "fig5-commoncrawl": lambda runner: [
        canned.strong_scaling_commoncrawl(num_strings=6000, pe_counts=(2, 4, 8), runner=runner)
    ],
    "fig5-dnareads": lambda runner: [
        canned.strong_scaling_dnareads(num_strings=5000, pe_counts=(2, 4, 8), runner=runner)
    ],
    "suffix": lambda runner: [
        canned.suffix_instance_experiment(text_len=4000, pe_counts=(4, 8), runner=runner)
    ],
    "skewed": lambda runner: [
        canned.skewed_sampling_experiment(num_strings=5000, pe_counts=(4, 8), runner=runner)
    ],
    "ablations": lambda runner: [
        canned.ablation_lcp_golomb(num_strings=5000, pe_counts=(8,), runner=runner)
    ],
}


def _add_sort_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sort flags (``sort`` / ``trace run`` / ``metrics``).

    ``--output`` is *not* added here: it means "sorted strings file" for
    ``sort`` but "trace artifact" for ``trace run``, so each subcommand
    declares its own.
    """
    parser.add_argument(
        "--algorithm", "-a", choices=default_registry().names(), default="ms"
    )
    parser.add_argument("--num-pes", "-p", type=int, default=8)
    parser.add_argument("--input", "-i", help="file with one string per line (default: generate)")
    parser.add_argument("--workload", "-w", choices=sorted(_GENERATORS), default="dn50")
    parser.add_argument("--num-strings", "-n", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true", help="verify the output contracts")
    parser.add_argument(
        "--sampling", choices=("string", "character"), default="string",
        help="regular sampling scheme for the splitter determination",
    )
    parser.add_argument(
        "--distribute-by", choices=("strings", "chars"), default="strings",
        help="input distribution criterion: balance string counts or "
        "character mass (the latter for length-skewed workloads)",
    )
    parser.add_argument(
        "--spec",
        help="full SortSpec as JSON (inline, or @path to a file); parsed via "
        "SortSpec.from_dict and overriding --algorithm/--sampling/"
        "--distribute-by/--seed",
    )
    parser.add_argument(
        "--async-exchange", action="store_true",
        help="run the bucket exchange split-phase (overlaps merge preparation "
        "with delivery; outputs and wire bytes are bit-identical)",
    )
    parser.add_argument(
        "--exchange-topology", choices=("direct", "hypercube", "grid"),
        default=None,
        help="bucket all-to-all delivery strategy: direct (default), or "
        "multi-level routed delivery (hypercube: log2(p) rounds, grid: "
        "row+column phases); outputs and origin wire bytes are identical, "
        "forwarded routing bytes are reported separately",
    )
    parser.add_argument(
        "--engine", default=None,
        help="execution backend: threads (simulated, default) or processes "
        "(real OS processes with shared-memory payload transport); outputs "
        "and wire bytes are bit-identical across engines (default: the "
        "REPRO_ENGINE environment variable, or threads)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="deadlock-detection timeout per blocking operation, in seconds "
        "(default: the REPRO_SPMD_TIMEOUT environment variable, or 600)",
    )
    parser.add_argument(
        "--fault-plan",
        help="fault-injection plan as JSON (inline, or @path to a file); "
        "installs a seeded chaos schedule (drops, duplicates, delays, "
        "corruption, crashes, stragglers — see docs/FAULTS.md) and prints "
        "the injected/detected/retried counters",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="re-run the sort up to this many times if a fault (e.g. an "
        "injected rank crash) aborts it (default: 0, fail fast)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (``sort`` / ``experiment``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Communication-Efficient String Sorting' (IPDPS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="sort strings with a distributed algorithm")
    _add_sort_options(p_sort)
    p_sort.add_argument("--output", "-o", help="write the sorted strings to this file")
    p_sort.add_argument(
        "--trace", action="store_true",
        help="arm per-rank timeline tracing (repro.obs) and print a terminal "
        "phase waterfall with the report; outputs and byte accounting are "
        "bit-identical with tracing on or off",
    )

    p_alg = sub.add_parser(
        "algorithms", help="list the algorithm registry and the spec knobs"
    )
    p_alg.add_argument(
        "--json", dest="json_out", action="store_true",
        help="machine-readable output (one spec dict per algorithm)",
    )

    p_exp = sub.add_parser("experiment", help="run a canned figure reproduction")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument("--json", dest="json_path", help="dump the raw cells as JSON")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--metric",
        action="append",
        default=None,
        help="metric column(s) to print (default: bytes_per_string and modeled_time)",
    )

    p_gen = sub.add_parser("generate", help="write a synthetic workload to a file")
    p_gen.add_argument("workload", choices=sorted(_GENERATORS))
    p_gen.add_argument("--num-strings", "-n", type=int, default=10000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", "-o", required=True)

    p_lint = sub.add_parser(
        "lint",
        help="run the static analyzer (SPMD, wire-format and toggle lint)",
    )
    p_lint.add_argument(
        "--json", dest="json_out", action="store_true",
        help="machine-readable report (deterministic key order)",
    )
    p_lint.add_argument(
        "--root",
        help="source tree to analyze (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--comm-graph", dest="comm_graph", metavar="DIR",
        help="write one commgraph-<algorithm>.json artifact per algorithm",
    )

    p_trace = sub.add_parser(
        "trace", help="run a traced sort and export the per-rank timeline"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_run = trace_sub.add_parser(
        "run", help="sort with tracing armed and write a Chrome-trace JSON"
    )
    _add_sort_options(p_trace_run)
    p_trace_run.add_argument(
        "--output", "-o", required=True,
        help="Chrome-trace/Perfetto JSON artifact path (open in "
        "chrome://tracing or https://ui.perfetto.dev)",
    )
    p_trace_run.add_argument(
        "--metrics-out",
        help="also write the derived metrics snapshot as JSON to this file",
    )
    p_trace_run.add_argument(
        "--no-waterfall", action="store_true",
        help="skip the terminal phase waterfall",
    )

    p_metrics = sub.add_parser(
        "metrics", help="run a traced sort and print its metrics snapshot"
    )
    _add_sort_options(p_metrics)
    p_metrics.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="Prometheus text exposition (default) or JSON",
    )
    p_metrics.add_argument(
        "--output", "-o",
        help="write the snapshot to this file instead of stdout",
    )

    return parser


def _load_or_generate(args) -> List[bytes]:
    if args.input:
        with open(args.input, "rb") as fh:
            return [line.rstrip(b"\r\n") for line in fh if line.strip()]
    return _GENERATORS[args.workload](args.num_strings, args.seed)


def _spec_from_args(args) -> SortSpec:
    """Build the sort's :class:`SortSpec` from the CLI flags (or ``--spec``)."""
    if args.spec:
        raw = args.spec
        if raw.startswith("@"):
            with open(raw[1:], "r") as fh:
                raw = fh.read()
        return SortSpec.from_dict(json.loads(raw))
    return spec_from_options(
        args.algorithm,
        {"sampling": args.sampling},
        seed=args.seed,
        distribute_by=args.distribute_by,
    )


def _load_fault_plan(raw: Optional[str]):
    """Parse ``--fault-plan`` (inline JSON or ``@path``) into a FaultPlan."""
    if not raw:
        return None
    from .faults import FaultPlan

    if raw.startswith("@"):
        with open(raw[1:], "r") as fh:
            raw = fh.read()
    return FaultPlan.from_json(raw)


def _run_sort(args, trace: Optional[bool]):
    """Build the cluster from the shared flags and run one sort.

    Returns ``(data, spec, plan, cluster, result)`` so each subcommand can
    render its own view of the same run.
    """
    data = _load_or_generate(args)
    spec = _spec_from_args(args)
    plan = _load_fault_plan(args.fault_plan)
    # the flags only ever opt *in*: without them the REPRO_ASYNC_EXCHANGE /
    # REPRO_TRACE environment settings (or the defaults, off) stay in charge
    cluster = Cluster(
        num_pes=args.num_pes,
        engine=args.engine,
        async_exchange=True if args.async_exchange else None,
        exchange_topology=args.exchange_topology,
        timeout=args.timeout,
        fault_plan=plan,
        trace=trace,
    )
    with cluster:
        result = cluster.sort(
            data, spec, check=args.check, max_retries=args.max_retries
        )
    return data, spec, plan, cluster, result


def _cmd_sort(args) -> int:
    data, spec, plan, cluster, result = _run_sort(
        args, trace=True if args.trace else None
    )
    report = result.report
    print(f"algorithm          : {result.algorithm}")
    print(f"config hash        : {spec.config_hash()}")
    print(f"engine             : {cluster.engine_name}")
    print(f"simulated PEs      : {args.num_pes}")
    print(f"strings / chars    : {result.num_strings} / {result.num_chars}")
    print(f"input D/N          : {dn_ratio(data):.3f}")
    print(f"total bytes sent   : {report.total_bytes_sent}")
    if report.transported_bytes > 0:
        print(f"transported bytes  : {report.transported_bytes} "
              "(real pipe frames + shared-memory payloads)")
    if report.forwarded_bytes > 0:
        from .dist.exchange import exchange_topology_name

        # precedence mirrors the exchange itself: spec field, then the
        # cluster-level flag, then the process-wide setting
        topology = (
            getattr(spec, "exchange_topology", None)
            or args.exchange_topology
            or exchange_topology_name()
        )
        print(f"origin bytes       : {report.origin_bytes_sent}")
        print(f"forwarded bytes    : {report.forwarded_bytes} "
              f"(multi-level routing, {topology})")
    if plan is not None:
        print(f"faults             : {report.faults_injected} injected, "
              f"{report.faults_detected} detected, {report.retries} retried")
        if report.retransmitted_bytes > 0:
            print(f"retransmit bytes   : {report.retransmitted_bytes}")
        if report.job_retries > 0:
            print(f"job retries        : {report.job_retries}")
    print(f"bytes per string   : {result.bytes_per_string():.2f}")
    print(f"modelled time      : {result.modeled_time(DEFAULT_MACHINE):.3e} s")
    print(f"bytes by phase     : {dict(report.phase_bytes)}")
    if result.overlap_fraction() > 0.0:
        print(f"exchange overlap   : {result.overlap_fraction():.2f} of the delivery window")
    if args.check:
        print("output check       : passed")
    if report.timeline is not None:
        from .obs import render_waterfall

        print()
        print(render_waterfall(report.timeline))
    if args.output:
        with open(args.output, "wb") as fh:
            for s in result.sorted_strings:
                fh.write(s + b"\n")
        print(f"sorted output      : {args.output}")
    return 0


def _cmd_trace(args) -> int:
    """``repro trace run``: traced sort → Chrome-trace JSON (+ waterfall)."""
    from .obs import render_waterfall, write_chrome_trace

    _data, spec, _plan, cluster, result = _run_sort(args, trace=True)
    report = result.report
    timeline = report.timeline
    if timeline is None:  # pragma: no cover - tracing was explicitly armed
        print("error: the run produced no timeline", file=sys.stderr)
        return 1
    write_chrome_trace(
        timeline,
        args.output,
        meta={
            "algorithm": result.algorithm,
            "config_hash": spec.config_hash(),
            "engine": cluster.engine_name,
            "num_strings": result.num_strings,
        },
    )
    print(f"algorithm          : {result.algorithm}")
    print(f"engine             : {cluster.engine_name}")
    print(f"simulated PEs      : {args.num_pes}")
    print(f"trace spans        : {len(timeline.spans)} "
          f"({timeline.dropped_events} dropped)")
    print(f"trace written      : {args.output}")
    if report.metrics is not None and args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(report.metrics.to_json(), fh, indent=2)
        print(f"metrics written    : {args.metrics_out}")
    if not args.no_waterfall:
        print()
        print(render_waterfall(timeline))
    return 0


def _cmd_metrics(args) -> int:
    """``repro metrics``: traced sort → Prometheus text / JSON snapshot."""
    _data, _spec, _plan, _cluster, result = _run_sort(args, trace=True)
    metrics = result.report.metrics
    if metrics is None:  # pragma: no cover - tracing was explicitly armed
        print("error: the run produced no metrics snapshot", file=sys.stderr)
        return 1
    if args.format == "json":
        rendered = json.dumps(metrics.to_json(), indent=2) + "\n"
    else:
        rendered = metrics.render_prometheus()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered)
        print(f"metrics written    : {args.output}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def _cmd_algorithms(args) -> int:
    registry = default_registry()
    if args.json_out:
        payload = [entry.spec_cls().to_dict() for entry in registry]
        print(json.dumps(payload, indent=2))
        return 0
    for entry in registry:
        default_spec = entry.spec_cls()
        knobs = ", ".join(
            f"{f.name}={getattr(default_spec, f.name)!r}"
            for f in dataclass_fields(entry.spec_cls)
        )
        print(f"{entry.name:<12} spec={entry.spec_cls.__name__:<16} "
              f"config={default_spec.config_hash()}")
        print(f"             {knobs}")
    return 0


def _cmd_experiment(args) -> int:
    runner = ExperimentRunner(seed=args.seed)
    results = _EXPERIMENTS[args.name](runner)
    metrics = args.metric or ["bytes_per_string", "modeled_time"]
    for res in results:
        print("=" * 72)
        print(f"{res.name}: {res.description}")
        for metric in metrics:
            print()
            print(res.render(metric))
        print()
    if args.json_path:
        payload = [json.loads(res.to_json()) for res in results]
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"raw cells written to {args.json_path}")
    return 0


def _cmd_generate(args) -> int:
    data = _GENERATORS[args.workload](args.num_strings, args.seed)
    with open(args.output, "wb") as fh:
        for s in data:
            fh.write(s + b"\n")
    print(f"wrote {len(data)} strings ({sum(len(s) for s in data)} chars) to {args.output}")
    return 0


def _cmd_lint(args) -> int:
    """Run the static analyzer; exit 0 on a clean tree, 1 on findings."""
    from pathlib import Path

    from .analysis import render_human, render_json, run_lint, write_commgraphs

    root = Path(args.root) if args.root else None
    report = run_lint(root=root)
    if args.comm_graph:
        written = write_commgraphs(report, Path(args.comm_graph))
        if not args.json_out:
            print(f"wrote {len(written)} comm-graph artifact(s) to {args.comm_graph}")
    print(render_json(report) if args.json_out else render_human(report))
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sort":
        return _cmd_sort(args)
    if args.command == "algorithms":
        return _cmd_algorithms(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
