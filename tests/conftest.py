"""Shared fixtures of the test suite: the engine axis and leak policing.

Two things live here:

* the ``engine`` fixture — parametrizes a test over every registered
  execution backend (``threads``, ``processes``, plus any third-party
  registration), scoping ``REPRO_ENGINE`` so the whole call tree under test
  runs on that backend, and skipping cells gracefully where the platform
  cannot run one (see ``tests/engine_conformance.py``);
* an autouse leak check — every test must leave the process clean: no live
  multiprocessing children and no orphaned ``reproshm-*`` shared-memory
  segments.  This holds ``ProcessEngine.run``/``shutdown`` to their
  teardown contract (workers joined, segments unlinked) at the granularity
  of every single test.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from engine_conformance import engine_params, set_engine

_SHM_DIR = "/dev/shm"
_SHM_PREFIX = "reproshm-"


@pytest.fixture(params=engine_params())
def engine(request):
    """Run the test once per registered engine (``REPRO_ENGINE`` scoped)."""
    with set_engine(request.param):
        yield request.param


def _stray_segments():
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(_SHM_PREFIX))


@pytest.fixture(autouse=True)
def no_engine_leaks():
    """Fail any test that leaves live worker processes or shm segments.

    Children are given a short grace period: a passing test's workers are
    already joined by ``ProcessEngine.run``, so anything still alive after
    the grace is a genuine leak, not a scheduling hiccup.
    """
    yield
    deadline = time.monotonic() + 2.0
    children = multiprocessing.active_children()
    while children and time.monotonic() < deadline:
        time.sleep(0.02)
        children = multiprocessing.active_children()
    leaked_procs = [p.name for p in children]
    leaked_segments = _stray_segments()
    if leaked_segments:
        # sweep so one offender does not cascade into later tests
        for fname in leaked_segments:
            try:
                os.unlink(os.path.join(_SHM_DIR, fname))
            except OSError:
                pass
    assert not leaked_procs, (
        f"test leaked live worker processes: {leaked_procs} "
        "(engines must join their workers before run() returns)"
    )
    assert not leaked_segments, (
        f"test leaked shared-memory segments: {leaked_segments} "
        "(receivers unlink on decode; engines sweep their prefix)"
    )
