"""The session object of the new API: a reusable simulated machine.

A :class:`Cluster` owns one execution engine (by default the thread-per-rank
:class:`repro.mpi.engine.ThreadEngine`, whose shared machine state is reused
across sorts) together with the per-cluster settings that used to live in
process-global environment toggles (``REPRO_PACKED`` /
``REPRO_ASYNC_EXCHANGE``).  Sorting goes through typed
:class:`repro.session.SortSpec` configurations resolved against a pluggable
:class:`repro.session.AlgorithmRegistry`::

    from repro.session import Cluster, MSSpec

    cluster = Cluster(num_pes=8, async_exchange=True)
    result = cluster.sort(data, MSSpec(sampling="character"), check=True)

Streaming ingest (:meth:`Cluster.sort_batches`) sorts an iterable of chunks
one at a time — bounded memory, per-batch :class:`repro.dist.api.DSortResult`
objects, and a cumulative merged :class:`repro.net.metrics.TrafficReport` —
the path a CommonCrawl WET reader will feed.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..dist.api import DSortResult, RankOutput, distribute_strings
from ..dist.exchange import use_async_exchange, use_exchange_topology
from ..faults.checksum import use_wire_checksums
from ..faults.plan import FaultPlan
from ..net.metrics import TrafficMeter, TrafficReport
from ..net.router import TOPOLOGY_NAMES, exchange_topology_name
from ..obs.derive import run_metrics
from ..mpi.comm import Communicator
from ..mpi.engine import (
    SpmdError,
    default_timeout,
    get_engine,
    resolve_engine_name,
)
from ..net.cost_model import DEFAULT_MACHINE, MachineModel
from ..strings.checker import check_distributed_sort, check_prefix_permutation
from ..strings.packed import PackedStringArray, use_packed
from ..strings.stringset import validate_strings
from .registry import AlgorithmRegistry, default_registry
from .specs import SortSpec
from .stream import BatchStream

__all__ = ["Cluster"]


def _block_num_chars(block: Sequence) -> int:
    if isinstance(block, PackedStringArray):
        return block.num_chars
    return sum(len(s) for s in block)


def _merge_rank_extras(results: List[RankOutput]) -> Dict[str, Any]:
    """Aggregate per-rank ``extra`` dicts, asserting the ranks agree.

    The historical facade reported ``results[0].extra`` only; with
    ``algorithm="auto"`` a bug in the (collective) estimate could let ranks
    silently pick different algorithms.  Here every rank's extras are
    combined and any disagreement on a shared key raises.
    """
    merged: Dict[str, Any] = {}
    owner: Dict[str, int] = {}
    for rank, output in enumerate(results):
        for key, value in output.extra.items():
            if key in merged:
                if merged[key] != value:
                    raise SpmdError(
                        f"ranks disagree on extra {key!r}: rank {owner[key]} "
                        f"reports {merged[key]!r}, rank {rank} reports {value!r}"
                    )
            else:
                merged[key] = value
                owner[key] = rank
    return merged


class Cluster:
    """A reusable simulated machine plus its scoped execution settings.

    Parameters
    ----------
    num_pes:
        Number of simulated PEs of this cluster.
    machine:
        The alpha-beta :class:`~repro.net.cost_model.MachineModel` used for
        modelled-time queries on results produced here.
    engine:
        Execution backend name (see :data:`repro.mpi.engine.ENGINES`):
        ``"threads"`` is the built-in simulator, ``"processes"`` runs the
        same rank programs as real OS processes
        (:class:`repro.mpi.procengine.ProcessEngine`), and third-party
        backends plug in via :func:`repro.mpi.engine.register_engine`.
        ``None`` (default) inherits the process-level setting (the
        ``REPRO_ENGINE`` environment variable, or ``"threads"``); see
        ``docs/ENGINES.md`` for the backend contract.
    packed / async_exchange:
        Per-cluster versions of the former process-global toggles: ``True``
        / ``False`` force the packed hot path / split-phase exchange on or
        off for sorts on this cluster, ``None`` (default) inherits the
        process-level setting (``REPRO_PACKED`` / ``REPRO_ASYNC_EXCHANGE``).
        Neither affects sorted outputs, LCP arrays or wire bytes.
    exchange_topology:
        Per-cluster delivery strategy of the bucket all-to-all:
        ``"direct"``, ``"hypercube"`` or ``"grid"``
        (:mod:`repro.net.router`); ``None`` (default) inherits the
        process-level ``REPRO_EXCHANGE_TOPOLOGY`` setting.  A spec whose
        own ``exchange_topology`` field is set overrides the cluster for
        that sort.  Routing changes startup counts and measured total
        volume (forwarded bytes are attributed separately), never sorted
        outputs, LCP arrays or origin wire bytes.
    timeout:
        Deadlock-detection timeout per blocking operation, in seconds;
        ``None`` (default) inherits the process-level setting (the
        ``REPRO_SPMD_TIMEOUT`` environment variable, or 600 s).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` chaos schedule, installed
        into the engine: point-to-point messages travel in checksummed,
        sequence-numbered envelopes and the plan's seeded rules inject
        drops, duplicates, delays, corruption, crashes and stragglers (see
        ``docs/FAULTS.md``).  ``None`` (default) keeps the zero-overhead
        wire format.
    wire_checksums:
        Per-cluster version of the ``REPRO_WIRE_CHECKSUMS`` toggle: ``True``
        / ``False`` force CRC32 seals on the exchange's wire formats
        (:class:`~repro.dist.exchange.StringBlock` /
        :class:`~repro.dist.exchange.LcpCompressedBlock` /
        :class:`~repro.net.router.RouteFrame`) on or off for sorts on this
        cluster, ``None`` (default) inherits the process-level setting.
        Seals add 4 bytes per block (plus a varint sequence number per
        routed frame) to the accounted wire volume.
    trace:
        Per-cluster version of the ``REPRO_TRACE`` toggle: ``True`` arms
        per-rank timeline recording (:mod:`repro.obs`) for sorts on this
        cluster — the result's report carries ``timeline`` (aligned
        per-rank phase/barrier spans) and ``metrics`` (a labeled
        :class:`~repro.obs.registry.MetricsSnapshot`) attachments —
        ``False`` forces tracing off, ``None`` (default) inherits the
        process-level setting.  Tracing never changes sorted outputs or
        byte accounting; overhead is bounded (<5 %, pinned by
        ``BENCH_PR10.json``) and zero when off.
    registry:
        The :class:`~repro.session.AlgorithmRegistry` resolving algorithm
        names; defaults to the process-wide registry.
    """

    def __init__(
        self,
        num_pes: int = 8,
        *,
        machine: MachineModel = DEFAULT_MACHINE,
        engine: Optional[str] = None,
        packed: Optional[bool] = None,
        async_exchange: Optional[bool] = None,
        exchange_topology: Optional[str] = None,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        wire_checksums: Optional[bool] = None,
        trace: Optional[bool] = None,
        registry: Optional[AlgorithmRegistry] = None,
    ):
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if exchange_topology is not None and exchange_topology not in TOPOLOGY_NAMES:
            raise ValueError(
                f"unknown exchange_topology {exchange_topology!r}; "
                f"use one of {list(TOPOLOGY_NAMES)} or None to inherit"
            )
        self.num_pes = num_pes
        self.machine = machine
        self.packed = packed
        self.async_exchange = async_exchange
        self.exchange_topology = exchange_topology
        self.timeout = default_timeout() if timeout is None else timeout
        self.fault_plan = fault_plan
        self.wire_checksums = wire_checksums
        self.trace = trace
        self.registry = registry if registry is not None else default_registry()
        self.engine_name = resolve_engine_name(engine)
        # only pass the fault/trace seams when explicitly requested:
        # third-party engine factories without the keywords keep working
        # untouched (None still lets the engine honour REPRO_TRACE itself)
        engine_kwargs: Dict[str, Any] = {"timeout": self.timeout}
        if fault_plan is not None:
            engine_kwargs["fault_plan"] = fault_plan
        if trace is not None:
            engine_kwargs["trace"] = trace
        self._engine = get_engine(self.engine_name)(num_pes, **engine_kwargs)
        # serialises toggle application *together with* the run: the engine
        # has its own run lock, but the packed/async windows must cover the
        # whole run of the sort they belong to, not interleave with a
        # sibling sort's window
        self._sort_lock = threading.Lock()

    # ------------------------------------------------------------------ internals
    @property
    def engine(self):
        """The underlying execution engine (reused across sorts)."""
        return self._engine

    def shutdown(self) -> None:
        """Release the engine's resources; idempotent.

        For the thread engine this drops the reusable machine state; for the
        processes engine it reaps any stray workers and sweeps leftover
        shared-memory segments.  The cluster stays usable afterwards (the
        engine rebuilds what it needs on the next sort), so shutting down is
        never *required* for correctness — it is the polite way to end a
        session early, and what ``with Cluster(...) as cluster:`` does on
        exit.
        """
        shutdown = getattr(self._engine, "shutdown", None)
        if callable(shutdown):
            shutdown()

    def __enter__(self) -> "Cluster":
        """Enter a session scope; :meth:`shutdown` runs on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Exit the session scope, releasing engine resources."""
        self.shutdown()

    @contextmanager
    def _scoped_toggles(self):
        """Apply this cluster's packed/async settings for one run.

        The underlying switches are process-global, so the scope is the
        duration of the run.  Concurrent sorts on *this* cluster are safe
        (:meth:`sort` holds one lock across toggle window and engine run);
        concurrent sorts on differently-configured clusters in one process
        would still interleave their windows — use one cluster per thread
        or identical settings in that case.
        """
        with ExitStack() as stack:
            if self.packed is not None:
                stack.enter_context(use_packed(self.packed))
            if self.async_exchange is not None:
                stack.enter_context(use_async_exchange(self.async_exchange))
            if self.exchange_topology is not None:
                stack.enter_context(use_exchange_topology(self.exchange_topology))
            if self.wire_checksums is not None:
                stack.enter_context(use_wire_checksums(self.wire_checksums))
            yield

    def _resolve_spec(
        self, spec: Union[SortSpec, str, None], algorithm: Optional[str]
    ) -> SortSpec:
        if spec is not None and algorithm is not None:
            raise ValueError("pass either spec or algorithm, not both")
        if spec is None:
            name = algorithm if algorithm is not None else "ms"
            return self.registry.spec_class(name)()
        if isinstance(spec, str):
            return self.registry.spec_class(spec)()
        if not isinstance(spec, SortSpec):
            raise TypeError(
                f"spec must be a SortSpec, algorithm name or None, got {spec!r}"
            )
        # surface unregistered spec classes before the SPMD run starts
        self.registry.get(type(spec).algorithm)
        return spec

    def _distribute(
        self, data: Sequence, spec: SortSpec, pre_distributed: bool
    ) -> List[Sequence]:
        if pre_distributed:
            blocks = [
                b if isinstance(b, PackedStringArray) else validate_strings(b)
                for b in data
            ]
            if len(blocks) != self.num_pes:
                raise ValueError(
                    f"pre_distributed input has {len(blocks)} blocks but the "
                    f"cluster simulates {self.num_pes} PEs"
                )
            return blocks
        return distribute_strings(data, self.num_pes, by=spec.distribute_by)

    def _topology_label(self, spec: SortSpec) -> str:
        """The exchange topology a sort effectively used (for metric labels)."""
        name = getattr(spec, "exchange_topology", None) or self.exchange_topology
        return name if name is not None else exchange_topology_name()

    @staticmethod
    def _fold_failed_attempts(
        report: TrafficReport, failed: List[TrafficReport]
    ) -> None:
        """Carry the fault counters of failed attempts into the final report.

        A crashed attempt's traffic is discarded (the retry reruns it from
        scratch, so folding its bytes would double-charge the wire), but its
        *fault* counters are part of the job's story: without them a
        crash-then-retry job would report zero injected faults and the
        chaos suite could not reconcile the report against the plan.
        """
        for fr in failed:
            for target, source in (
                (report.faults_injected_per_pe, fr.faults_injected_per_pe),
                (report.faults_detected_per_pe, fr.faults_detected_per_pe),
                (report.retries_per_pe, fr.retries_per_pe),
            ):
                for i, v in enumerate(source):
                    if v and i < len(target):
                        target[i] += v
        report.job_retries += len(failed)

    # ------------------------------------------------------------------ sorting
    def sort(
        self,
        data: Sequence,
        spec: Union[SortSpec, str, None] = None,
        *,
        algorithm: Optional[str] = None,
        check: bool = False,
        pre_distributed: bool = False,
        max_retries: int = 0,
    ) -> DSortResult:
        """Sort ``data`` on this cluster; returns a :class:`DSortResult`.

        Parameters
        ----------
        data:
            A flat sequence of strings (``bytes``/``str``), a
            :class:`~repro.strings.stringset.StringSet`, a
            :class:`~repro.strings.packed.PackedStringArray`, or — with
            ``pre_distributed=True`` — one block per PE.
        spec:
            A :class:`SortSpec` (or an algorithm name, meaning that
            algorithm's default spec).  Defaults to ``MSSpec()``.
        algorithm:
            Convenience alternative to ``spec``: an algorithm name.
        check:
            Verify the output contract (full-sort or the PDMS
            prefix-permutation contract).
        pre_distributed:
            ``data`` is already one block per PE; ``spec.distribute_by`` is
            ignored.
        max_retries:
            Re-run a failed SPMD job up to this many times (default 0: fail
            fast).  The engine rebuilds its poisoned shared state
            transparently between attempts, so a rank crash injected by a
            single-shot fault rule is recovered by the next attempt.  The
            returned report is the *successful* attempt's traffic plus the
            failed attempts' fault counters (``job_retries`` records how
            many attempts failed).
        """
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        spec = self._resolve_spec(spec, algorithm)
        entry = self.registry.get(type(spec).algorithm)
        blocks = self._distribute(data, spec, pre_distributed)

        def rank_program(comm: Communicator, local) -> RankOutput:
            return entry.runner(comm, local, spec)

        with self._sort_lock, self._scoped_toggles():
            failed_reports: List[TrafficReport] = []
            while True:
                meter = TrafficMeter(self.num_pes)
                try:
                    results, report = self._engine.run(
                        rank_program,
                        args_per_rank=[(b,) for b in blocks],
                        meter=meter,
                    )
                    break
                except SpmdError:
                    if len(failed_reports) >= max_retries:
                        raise
                    # keep the failed attempt's fault counters; the engine's
                    # next run transparently rebuilds the poisoned state
                    failed_reports.append(meter.report())
            if failed_reports:
                self._fold_failed_attempts(report, failed_reports)

        if report.timeline is not None:
            # derive the labeled metrics snapshot while the run's context
            # (algorithm, engine, topology, input size) is still at hand
            report.metrics = run_metrics(
                report,
                report.timeline,
                labels={
                    "algorithm": entry.name,
                    "engine": self.engine_name,
                    "topology": self._topology_label(spec),
                },
                num_strings=sum(len(b) for b in blocks),
            )

        outputs = [r.strings for r in results]
        lcps = [r.lcps for r in results]
        has_origins = any(r.origins is not None for r in results)
        origins = [r.origins or [] for r in results] if has_origins else None

        result = DSortResult(
            algorithm=entry.name,
            num_pes=self.num_pes,
            num_strings=sum(len(b) for b in blocks),
            num_chars=sum(_block_num_chars(b) for b in blocks),
            inputs_per_pe=blocks,
            outputs_per_pe=outputs,
            lcps_per_pe=lcps,
            origins_per_pe=origins,
            report=report,
            extra=_merge_rank_extras(results),
            machine=self.machine,
        )

        if check:
            if has_origins:
                check_prefix_permutation(blocks, outputs)
            else:
                all_lcps = lcps if all(h is not None for h in lcps) else None
                check_distributed_sort(blocks, outputs, all_lcps)
        return result

    def sort_batches(
        self,
        batches: Iterable[Sequence],
        spec: Union[SortSpec, str, None] = None,
        *,
        algorithm: Optional[str] = None,
        check: bool = False,
        max_retries: int = 0,
    ) -> BatchStream:
        """Sort an iterable of chunks one at a time (streaming ingest).

        Each chunk is distributed, sorted and returned as its own
        :class:`DSortResult` while the next chunk has not been pulled from
        ``batches`` yet — memory stays bounded by one chunk plus its sorted
        output, which is what lets a WET-file reader feed terabyte-scale
        corpora through a laptop-sized simulation.  The returned
        :class:`~repro.session.stream.BatchStream` is lazy: iterate it for
        the per-batch results, or call :meth:`~repro.session.stream.BatchStream.run`
        to drain it; its ``merged_report`` always covers exactly the batches
        sorted so far (totals equal to the sum of the per-batch reports).

        ``max_retries`` is forwarded to each batch's :meth:`sort`; completed
        batches are checkpointed by the stream, so a batch that fails even
        after its retries can be re-attempted by calling ``next()`` again —
        the stream resumes at the failed chunk, never re-sorting (or
        skipping) earlier ones.
        """
        spec = self._resolve_spec(spec, algorithm)
        return BatchStream(self, batches, spec, check=check, max_retries=max_retries)
