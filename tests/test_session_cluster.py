"""Cluster sessions: machine reuse, scoped toggles, engine seam, registry."""

from dataclasses import dataclass

import pytest

from repro.dist.api import RankOutput, dsort, ms_sort, MSConfig
from repro.mpi.engine import (
    ENGINES,
    SpmdError,
    ThreadEngine,
    get_engine,
    register_engine,
)
from repro.session import (
    AlgorithmRegistry,
    Cluster,
    HQuickSpec,
    MSSpec,
    PDMSGolombSpec,
    default_registry,
    register_algorithm,
)
from repro.strings.generators import dn_instance, random_strings
from repro.strings.packed import packed_enabled


class TestClusterSort:
    def test_sort_with_default_spec(self):
        data = random_strings(200, 1, 12, seed=1)
        res = Cluster(num_pes=4).sort(data, check=True)
        assert res.algorithm == "ms"
        assert res.sorted_strings == sorted(data)

    def test_algorithm_name_means_default_spec(self):
        data = random_strings(120, 1, 8, seed=2)
        by_name = Cluster(num_pes=3).sort(data, "pdms-golomb", check=True)
        by_spec = Cluster(num_pes=3).sort(data, PDMSGolombSpec(), check=True)
        assert by_name.outputs_per_pe == by_spec.outputs_per_pe
        assert by_name.report.total_bytes_sent == by_spec.report.total_bytes_sent

    def test_spec_and_algorithm_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Cluster(num_pes=2).sort([b"a"], MSSpec(), algorithm="ms")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Cluster(num_pes=2).sort([b"a"], "bogosort")

    def test_pre_distributed_block_count_must_match(self):
        with pytest.raises(ValueError, match="2 blocks"):
            Cluster(num_pes=4).sort([[b"a"], [b"b"]], pre_distributed=True)

    def test_distribute_by_chars_balances_character_mass(self):
        data = [b"x" * 60] * 3 + [b"y"] * 200
        res = Cluster(num_pes=4).sort(
            data, MSSpec(distribute_by="chars"), check=True
        )
        sizes = [sum(len(s) for s in b) for b in res.inputs_per_pe]
        assert max(sizes) < 0.6 * sum(sizes)
        assert res.sorted_strings == sorted(data)

    def test_invalid_num_pes(self):
        with pytest.raises(ValueError):
            Cluster(num_pes=0)


class TestMachineReuse:
    def test_engine_state_is_reused_across_sorts(self):
        data = random_strings(150, 1, 10, seed=3)
        cluster = Cluster(num_pes=4)
        first = cluster.sort(data, MSSpec())
        second = cluster.sort(data, MSSpec())
        assert cluster.engine.runs_completed == 2
        assert cluster.engine.state_reuses >= 1
        # reports are per-run: reuse must not leak bytes between sorts
        assert first.report.total_bytes_sent == second.report.total_bytes_sent

    def test_reuse_across_different_algorithms(self):
        data = random_strings(100, 1, 8, seed=4)
        cluster = Cluster(num_pes=3)
        for name in ("ms", "hquick", "pdms", "fkmerge"):
            cluster.sort(data, name, check=True)
        assert cluster.engine.state_reuses >= 3

    def test_failed_run_rebuilds_the_machine(self):
        cluster = Cluster(num_pes=2)

        reg = default_registry().copy()

        def exploding(comm, local, spec):
            raise RuntimeError("boom")

        @dataclass(frozen=True)
        class BoomSpec(MSSpec):
            algorithm = "boom"

        reg.register("boom", exploding, BoomSpec)
        bad = Cluster(num_pes=2, registry=reg)
        with pytest.raises(SpmdError):
            bad.sort([b"a", b"b"], "boom")
        # the poisoned state must not be reused
        ok = bad.sort([b"b", b"a"], "ms", check=True)
        assert ok.sorted_strings == [b"a", b"b"]


class TestConcurrentSorts:
    def test_concurrent_sorts_on_one_cluster_serialise_safely(self):
        import threading

        data = random_strings(200, 1, 10, seed=20)
        cluster = Cluster(num_pes=3)
        results = [None, None]
        errors = []

        def work(slot):
            try:
                results[slot] = cluster.sort(data, MSSpec(), check=True)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results[0].sorted_strings == results[1].sorted_strings == sorted(data)
        assert (
            results[0].report.total_bytes_sent
            == results[1].report.total_bytes_sent
        )


class TestMachineModel:
    def test_cluster_machine_drives_modeled_time(self):
        from repro.net.cost_model import MachineModel

        data = random_strings(150, 1, 10, seed=21)
        slow = Cluster(num_pes=2, machine=MachineModel(alpha=1.0, beta=1.0))
        fast = Cluster(num_pes=2, machine=MachineModel(alpha=1e-9, beta=1e-12))
        slow_res = slow.sort(data, MSSpec())
        fast_res = fast.sort(data, MSSpec())
        # no explicit model passed: the cluster's own model must apply
        assert slow_res.modeled_time() > fast_res.modeled_time()
        # an explicit argument still overrides
        assert slow_res.modeled_time(fast.machine) == pytest.approx(
            fast_res.modeled_time()
        )


class TestScopedToggles:
    def test_packed_setting_is_scoped_to_the_cluster(self):
        data = dn_instance(num_strings=300, dn=0.5, length=30, seed=5)
        before = packed_enabled()
        packed_on = Cluster(num_pes=4, packed=True).sort(data, MSSpec())
        packed_off = Cluster(num_pes=4, packed=False).sort(data, MSSpec())
        assert packed_enabled() == before  # restored after each sort
        assert packed_on.outputs_per_pe == packed_off.outputs_per_pe
        assert packed_on.lcps_per_pe == packed_off.lcps_per_pe
        assert (
            packed_on.report.total_bytes_sent == packed_off.report.total_bytes_sent
        )

    def test_async_exchange_cluster_overlaps_and_matches_sync(self):
        data = dn_instance(num_strings=400, dn=0.5, length=40, seed=6)
        sync = Cluster(num_pes=4, async_exchange=False).sort(data, MSSpec())
        overlapped = Cluster(num_pes=4, async_exchange=True).sort(data, MSSpec())
        assert overlapped.overlap_fraction() > 0.0
        assert sync.overlap_fraction() == 0.0
        assert overlapped.outputs_per_pe == sync.outputs_per_pe
        assert overlapped.report.total_bytes_sent == sync.report.total_bytes_sent
        assert dict(overlapped.report.phase_bytes) == dict(sync.report.phase_bytes)

    def test_none_inherits_process_setting(self):
        cluster = Cluster(num_pes=2)
        assert cluster.packed is None and cluster.async_exchange is None
        data = random_strings(60, 1, 6, seed=7)
        assert cluster.sort(data, MSSpec(), check=True).sorted_strings == sorted(data)


class TestEngineSeam:
    def test_get_engine_threads(self):
        assert get_engine("threads") is ThreadEngine

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ValueError, match="threads"):
            get_engine("mpi")
        with pytest.raises(ValueError, match="unknown engine"):
            Cluster(num_pes=2, engine="mpi4py")

    def test_registered_engine_is_selectable(self):
        calls = []

        class CountingEngine(ThreadEngine):
            name = "counting"

            def run(self, *args, **kwargs):
                calls.append(1)
                return super().run(*args, **kwargs)

        register_engine("counting", CountingEngine)
        try:
            cluster = Cluster(num_pes=2, engine="counting")
            data = random_strings(40, 1, 6, seed=8)
            res = cluster.sort(data, MSSpec(), check=True)
            assert res.sorted_strings == sorted(data)
            assert calls == [1]
        finally:
            ENGINES.pop("counting", None)


class TestRegistryExtension:
    def test_register_and_sort_custom_algorithm(self):
        @dataclass(frozen=True)
        class VerifiedMSSpec(MSSpec):
            algorithm = "ms-verified"

        def runner(comm, local, spec):
            out, lcps = ms_sort(comm, local, MSConfig(sampling=spec.sampling))
            return RankOutput(out, lcps, extra={"custom": True})

        reg = default_registry().copy()
        reg.register("ms-verified", runner, VerifiedMSSpec)
        assert "ms-verified" in reg and "ms-verified" not in default_registry()

        data = random_strings(150, 1, 10, seed=9)
        cluster = Cluster(num_pes=3, registry=reg)
        res = cluster.sort(data, VerifiedMSSpec(), check=True)
        assert res.algorithm == "ms-verified"
        assert res.extra["custom"] is True
        assert res.sorted_strings == sorted(data)

    def test_register_refuses_silent_shadowing(self):
        reg = default_registry().copy()
        with pytest.raises(ValueError, match="already registered"):
            reg.register("ms", lambda c, l, s: None, MSSpec)
        reg.register("ms", lambda c, l, s: None, MSSpec, overwrite=True)

    def test_register_validates_inputs(self):
        reg = AlgorithmRegistry()
        with pytest.raises(TypeError, match="callable"):
            reg.register("x", "not-callable", MSSpec)
        with pytest.raises(TypeError, match="SortSpec"):
            reg.register("x", lambda c, l, s: None, dict)

    def test_register_algorithm_scoped_registry_helper(self):
        reg = AlgorithmRegistry()
        entry = register_algorithm(
            "only-here", lambda c, l, s: RankOutput([]), HQuickSpec, registry=reg
        )
        assert entry.name == "only-here"
        assert "only-here" in reg
        assert "only-here" not in default_registry()


class TestExtrasAggregation:
    def test_auto_reports_agreed_choice(self):
        data = dn_instance(num_strings=300, dn=0.3, length=40, seed=10)
        res = Cluster(num_pes=4).sort(data, "auto", check=True)
        assert res.extra["chosen_algorithm"] in ("ms", "pdms-golomb")
        assert "estimated_dn" in res.extra

    def test_disagreeing_extras_raise(self):
        @dataclass(frozen=True)
        class RankStampSpec(MSSpec):
            algorithm = "rank-stamp"

        def runner(comm, local, spec):
            return RankOutput(sorted(local), extra={"stamp": comm.rank})

        reg = default_registry().copy()
        reg.register("rank-stamp", runner, RankStampSpec)
        with pytest.raises(SpmdError, match="disagree"):
            Cluster(num_pes=2, registry=reg).sort(
                [b"a", b"b"], RankStampSpec()
            )

    def test_legacy_dsort_also_aggregates(self):
        data = dn_instance(num_strings=200, dn=0.9, length=30, seed=11)
        res = dsort(data, algorithm="auto", num_pes=3)
        assert res.extra["chosen_algorithm"] in ("ms", "pdms-golomb")
