"""Tests for the sampling-based D/N estimator and dsort(algorithm='auto')."""

import pytest

from repro.dist import dsort
from repro.dist.dn_estimator import DnEstimate, estimate_dn_ratio, recommend_algorithm
from repro.mpi import run_spmd
from repro.strings.generators import dn_instance, duplicate_heavy, random_strings, suffix_instance
from repro.strings.lcp import dn_ratio


def _estimate(blocks, sample_per_pe=64, seed=0):
    def prog(comm, local):
        return estimate_dn_ratio(comm, local, sample_per_pe=sample_per_pe, seed=seed)

    results, report = run_spmd(len(blocks), prog, args_per_rank=[(b,) for b in blocks])
    return results, report


def _blocks(strings, p):
    n = len(strings)
    return [strings[r * n // p : (r + 1) * n // p] for r in range(p)]


class TestEstimateDnRatio:
    def test_all_ranks_agree(self):
        data = dn_instance(800, 0.5, length=60, seed=1)
        results, _ = _estimate(_blocks(data, 4))
        assert all(r.dn_ratio == results[0].dn_ratio for r in results)

    def test_estimate_tracks_true_ratio_for_dn_instances(self):
        for target in (0.1, 0.9):
            data = dn_instance(1000, target, length=80, seed=2)
            results, _ = _estimate(_blocks(data, 4), sample_per_pe=100)
            estimate = results[0].dn_ratio
            true = dn_ratio(data)
            assert abs(estimate - true) < 0.25

    def test_estimate_is_cheap(self):
        data = dn_instance(2000, 0.5, length=100, seed=3)
        results, report = _estimate(_blocks(data, 4), sample_per_pe=32)
        # the gossiped sample is tiny compared to the input
        assert report.total_bytes_sent < 0.2 * sum(len(s) for s in data)
        assert results[0].sample_size <= 4 * 32

    def test_empty_input(self):
        results, _ = _estimate([[], []])
        assert results[0].dn_ratio == 0.0
        assert results[0].sample_size == 0

    def test_empty_ranks_mixed_with_data(self):
        data = random_strings(300, 5, 20, seed=4)
        results, _ = _estimate([data, [], []])
        assert results[0].sample_size > 0

    def test_duplicate_heavy_input_estimates_high(self):
        data = duplicate_heavy(800, 10, 12, seed=5)
        results, _ = _estimate(_blocks(data, 4), sample_per_pe=80)
        assert results[0].dn_ratio > 0.5

    def test_suffix_input_estimates_low(self):
        data = suffix_instance(text_len=1000, alphabet_size=4, max_suffix_len=300, seed=6)
        results, _ = _estimate(_blocks(data, 4), sample_per_pe=80)
        assert results[0].dn_ratio < 0.2


class TestRecommendation:
    def test_threshold_behaviour(self):
        low = DnEstimate(0.1, 5, 50, 100, 1000)
        high = DnEstimate(0.9, 45, 50, 100, 1000)
        assert recommend_algorithm(low) == "pdms-golomb"
        assert recommend_algorithm(high) == "ms"
        assert low.recommends_prefix_doubling
        assert not high.recommends_prefix_doubling


class TestAutoAlgorithm:
    def test_auto_picks_pdms_for_low_dn(self):
        data = suffix_instance(text_len=900, alphabet_size=4, max_suffix_len=250, seed=7)
        res = dsort(data, algorithm="auto", num_pes=4, check=True)
        assert res.extra["chosen_algorithm"] == "pdms-golomb"
        assert res.extra["estimated_dn"] < 0.5
        assert res.origins_per_pe is not None

    def test_auto_picks_ms_for_high_dn(self):
        data = duplicate_heavy(600, 8, 14, seed=8)
        res = dsort(data, algorithm="auto", num_pes=4, check=True)
        assert res.extra["chosen_algorithm"] == "ms"
        assert res.sorted_strings == sorted(data)

    def test_auto_result_is_correct_either_way(self):
        data = dn_instance(500, 0.4, length=50, seed=9)
        res = dsort(data, algorithm="auto", num_pes=3, check=True)
        assert res.num_strings == 500
        assert res.extra["chosen_algorithm"] in ("ms", "pdms-golomb")
