"""Distributed string sorting algorithms (Sections IV-VI of the paper).

Layering (each module usable and testable on its own):

* :mod:`~repro.dist.partition` — regular sampling, splitter selection and
  bucket computation (pure per-PE helpers, Theorems 2/3);
* :mod:`~repro.dist.splitters` — the distributed splitter agreement
  protocol on top of them;
* :mod:`~repro.dist.exchange` — the all-to-all bucket exchange with
  optional LCP front coding;
* :mod:`~repro.dist.hquick` — hypercube quicksort, the atomic baseline;
* :mod:`~repro.dist.golomb` / :mod:`~repro.dist.duplicates` — Golomb-coded
  sorted sets and distributed fingerprint duplicate detection;
* :mod:`~repro.dist.prefix_doubling` — the DIST-prefix approximation;
* :mod:`~repro.dist.dn_estimator` — sampling-based D/N estimation for
  ``dsort(algorithm="auto")``;
* :mod:`~repro.dist.api` — the per-algorithm SPMD rank programs, the
  :class:`DSortResult`/:class:`RankOutput` result shapes and the legacy
  :func:`dsort` facade (new code goes through :mod:`repro.session`).
"""

from .api import (
    ALGORITHMS,
    DSortResult,
    MSConfig,
    PDMSConfig,
    RankOutput,
    distribute_strings,
    dsort,
    fkmerge_sort,
    hquick_sort,
    ms_sort,
    pdms_sort,
)
from .dn_estimator import DnEstimate, estimate_dn_ratio, recommend_algorithm
from .exchange import (
    async_exchange_enabled,
    exchange_buckets,
    exchange_buckets_async,
    exchange_topology_name,
    set_async_exchange,
    set_exchange_topology,
    use_async_exchange,
    use_exchange_topology,
)
from .prefix_doubling import PrefixDoublingResult, approximate_dist_prefixes

__all__ = [
    "async_exchange_enabled",
    "exchange_buckets",
    "exchange_buckets_async",
    "set_async_exchange",
    "use_async_exchange",
    "exchange_topology_name",
    "set_exchange_topology",
    "use_exchange_topology",
    "ALGORITHMS",
    "DSortResult",
    "MSConfig",
    "PDMSConfig",
    "RankOutput",
    "distribute_strings",
    "dsort",
    "fkmerge_sort",
    "hquick_sort",
    "ms_sort",
    "pdms_sort",
    "DnEstimate",
    "estimate_dn_ratio",
    "recommend_algorithm",
    "PrefixDoublingResult",
    "approximate_dist_prefixes",
]
