"""The pluggable algorithm registry behind :class:`repro.session.Cluster`.

Every sortable algorithm is one :class:`AlgorithmEntry`: a name, a rank
*runner* (the SPMD per-rank program, ``runner(comm, local_strings, spec)``
returning a :class:`repro.dist.api.RankOutput`) and the :class:`SortSpec`
subclass that configures it.  The six paper algorithms plus ``"auto"`` are
pre-registered in the process-wide default registry; third-party rank
programs plug in through :func:`register_algorithm` without touching
``repro.dist.api``::

    from dataclasses import dataclass
    from repro.session import MSSpec, register_algorithm
    from repro.dist.api import RankOutput

    @dataclass(frozen=True)
    class MySpec(MSSpec):
        algorithm = "my-sorter"

    def my_runner(comm, local, spec):
        ...  # any SPMD program over comm
        return RankOutput(sorted_strings, lcps)

    register_algorithm("my-sorter", my_runner, MySpec)

A :class:`Cluster` can also be given its own registry instance, so
experimental algorithms stay scoped instead of mutating process state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Type

from ..mpi.comm import Communicator
from ..dist.api import (
    MSConfig,
    PDMSConfig,
    RankOutput,
    fkmerge_sort,
    hquick_sort,
    ms_sort,
    pdms_sort,
)
from ..dist.dn_estimator import estimate_dn_ratio, recommend_algorithm
from .specs import (
    AutoSpec,
    FKMergeSpec,
    HQuickSpec,
    MSSimpleSpec,
    MSSpec,
    PDMSGolombSpec,
    PDMSSpec,
    SortSpec,
    _suggest,
)

__all__ = [
    "SpecRunner",
    "AlgorithmEntry",
    "AlgorithmRegistry",
    "default_registry",
    "register_algorithm",
]

#: the SPMD rank-program signature the registry stores
SpecRunner = Callable[[Communicator, list, SortSpec], RankOutput]


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm: its name, rank runner and spec class."""

    name: str
    runner: SpecRunner
    spec_cls: Type[SortSpec]


class AlgorithmRegistry:
    """Name -> :class:`AlgorithmEntry` mapping with helpful lookup errors.

    Registries are cheap value objects: :meth:`copy` an existing one to
    extend it locally, or mutate the process-wide default through
    :func:`register_algorithm`.
    """

    def __init__(self, entries: Optional[Dict[str, AlgorithmEntry]] = None):
        self._entries: Dict[str, AlgorithmEntry] = dict(entries or {})

    # ------------------------------------------------------------------ mutation
    def register(
        self,
        name: str,
        runner: SpecRunner,
        spec_cls: Type[SortSpec],
        *,
        overwrite: bool = False,
    ) -> AlgorithmEntry:
        """Add an algorithm; refuses to shadow an existing name by default."""
        if not name:
            raise ValueError("algorithm name must be a non-empty string")
        if name in self._entries and not overwrite:
            raise ValueError(
                f"algorithm {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        if not callable(runner):
            raise TypeError(f"runner for {name!r} must be callable")
        if not (isinstance(spec_cls, type) and issubclass(spec_cls, SortSpec)):
            raise TypeError(f"spec_cls for {name!r} must be a SortSpec subclass")
        entry = AlgorithmEntry(name=name, runner=runner, spec_cls=spec_cls)
        self._entries[name] = entry
        return entry

    # ------------------------------------------------------------------ lookup
    def get(self, name: str) -> AlgorithmEntry:
        """The entry registered under ``name`` (ValueError with suggestion)."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}"
                f"{_suggest(name, self._entries)}; "
                f"available: {sorted(self._entries)}"
            ) from None

    def spec_class(self, name: str) -> Type[SortSpec]:
        """The :class:`SortSpec` subclass configuring algorithm ``name``."""
        return self.get(name).spec_cls

    def names(self) -> List[str]:
        """All registered algorithm names, sorted."""
        return sorted(self._entries)

    def copy(self) -> "AlgorithmRegistry":
        """An independent registry with the same entries (for local tweaks)."""
        return AlgorithmRegistry(self._entries)

    def __contains__(self, name: object) -> bool:
        """Whether ``name`` is registered."""
        return name in self._entries

    def __iter__(self) -> Iterator[AlgorithmEntry]:
        """Iterate entries in sorted-name order."""
        return iter(self._entries[n] for n in self.names())

    def __len__(self) -> int:
        """Number of registered algorithms."""
        return len(self._entries)


# ---------------------------------------------------------------------------
# built-in runners (spec-typed adapters over the rank programs in dist.api)
# ---------------------------------------------------------------------------

def _ms_config(spec: SampledSpecLike, lcp: bool) -> MSConfig:
    return MSConfig(
        sampling=spec.sampling,
        sample_sort=spec.sample_sort,
        local_sorter=spec.local_sorter,
        oversampling=spec.oversampling,
        lcp_compression=lcp,
        lcp_merge=lcp,
        exchange_topology=spec.exchange_topology,
    )


def _pdms_config(spec: PDMSSpec, golomb: bool) -> PDMSConfig:
    return PDMSConfig(
        sampling=spec.sampling,
        sample_sort=spec.sample_sort,
        local_sorter=spec.local_sorter,
        oversampling=spec.oversampling,
        epsilon=spec.epsilon,
        initial_length=spec.initial_length,
        golomb=golomb,
        exchange_topology=spec.exchange_topology,
    )


def _run_hquick(comm: Communicator, local, spec: HQuickSpec) -> RankOutput:
    out, lcps = hquick_sort(
        comm, local, seed=spec.seed, local_sorter=spec.local_sorter
    )
    return RankOutput(out, lcps)


def _run_fkmerge(comm: Communicator, local, spec: FKMergeSpec) -> RankOutput:
    out, _ = fkmerge_sort(
        comm,
        local,
        oversampling=spec.oversampling,
        local_sorter=spec.local_sorter,
        exchange_topology=spec.exchange_topology,
    )
    return RankOutput(out, None)


def _run_ms(comm: Communicator, local, spec: MSSpec) -> RankOutput:
    out, lcps = ms_sort(comm, local, _ms_config(spec, lcp=True))
    return RankOutput(out, lcps)


def _run_ms_simple(comm: Communicator, local, spec: MSSimpleSpec) -> RankOutput:
    out, lcps = ms_sort(comm, local, _ms_config(spec, lcp=False))
    return RankOutput(out, lcps)


def _run_pdms(comm: Communicator, local, spec: PDMSSpec) -> RankOutput:
    out, lcps, origins, extra = pdms_sort(comm, local, _pdms_config(spec, golomb=False))
    return RankOutput(out, lcps, origins, extra)


def _run_pdms_golomb(comm: Communicator, local, spec: PDMSGolombSpec) -> RankOutput:
    out, lcps, origins, extra = pdms_sort(comm, local, _pdms_config(spec, golomb=True))
    return RankOutput(out, lcps, origins, extra)


def _run_auto(comm: Communicator, local, spec: AutoSpec) -> RankOutput:
    # the D/N estimate is a collective, so every rank agrees on the choice;
    # the per-cluster extras merge still asserts that agreement explicitly
    estimate = estimate_dn_ratio(comm, local, seed=spec.seed)
    chosen = recommend_algorithm(estimate)
    if chosen == "ms":
        output = _run_ms(comm, local, spec)
    else:
        output = _run_pdms_golomb(comm, local, spec)
    output.extra["chosen_algorithm"] = chosen
    output.extra["estimated_dn"] = estimate.dn_ratio
    return output


# purely for the type annotations of the adapters above
SampledSpecLike = MSSpec


_BUILTINS = [
    AlgorithmEntry("hquick", _run_hquick, HQuickSpec),
    AlgorithmEntry("fkmerge", _run_fkmerge, FKMergeSpec),
    AlgorithmEntry("ms-simple", _run_ms_simple, MSSimpleSpec),
    AlgorithmEntry("ms", _run_ms, MSSpec),
    AlgorithmEntry("pdms", _run_pdms, PDMSSpec),
    AlgorithmEntry("pdms-golomb", _run_pdms_golomb, PDMSGolombSpec),
    AlgorithmEntry("auto", _run_auto, AutoSpec),
]

_DEFAULT = AlgorithmRegistry({e.name: e for e in _BUILTINS})


def default_registry() -> AlgorithmRegistry:
    """The process-wide registry (the paper's six algorithms + ``auto``)."""
    return _DEFAULT


def register_algorithm(
    name: str,
    runner: SpecRunner,
    spec_cls: Type[SortSpec],
    *,
    registry: Optional[AlgorithmRegistry] = None,
    overwrite: bool = False,
) -> AlgorithmEntry:
    """Register a rank program so ``Cluster.sort`` (and ``dsort``) can run it.

    ``runner(comm, local_strings, spec)`` must be a valid SPMD program over
    the :class:`repro.mpi.comm.Communicator` interface and return a
    :class:`repro.dist.api.RankOutput`.  By default the process-wide
    registry is mutated; pass ``registry=`` to extend a scoped copy instead.
    """
    target = registry if registry is not None else _DEFAULT
    return target.register(name, runner, spec_cls, overwrite=overwrite)
